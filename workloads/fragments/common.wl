# Shared phase fragments for the checked-in scenarios. This file is only
# ever included -- it defines templates and no phases, so it compiles to
# nothing on its own.

# Small, fast requests: the bread-and-butter traffic every scenario mixes
# in. Instance sizes match tests/stress_util.h's stress scripts.
template small_traffic {
  mode closed
  submitters 4
  iterations 6
  tasks 6 12
  workers 10 24
  priority 0 3
  seed_pool 1000000
  dist uniform
  cache default
  mix submit 1
}

# Heavier requests for pressure phases: more tasks and workers per
# instance, a priority spread wide enough to exercise the queue ordering.
template heavy_traffic {
  mode closed
  submitters 6
  iterations 4
  tasks 12 20
  workers 24 40
  priority 0 8
  seed_pool 1000000
  dist uniform
  cache default
  mix submit 3 urgent 1
}
