# Rush-hour ramp: open-loop traffic that climbs from a trickle through a
# poisson ramp into a bursty peak, then settles into a closed-loop
# cooldown. Blocking admission with a small queue gives deterministic
# backpressure at the peak.

workload rush_hour
seed 42
solver dc
policy block
queue_depth 32
cache off

include "fragments/common.wl"

phase quiet extends small_traffic {
  mode open
  submitters 2
  rate 20
  duration 0.5
  arrival fixed
}

phase ramp extends small_traffic {
  mode open
  submitters 3
  rate 80
  duration 0.2
  arrival poisson
  priority 0 5
}

phase peak extends heavy_traffic {
  mode open
  submitters 2
  rate 160
  duration 0.15
  arrival burst
  tasks 8 14
  workers 16 28
}

phase cooldown extends small_traffic {
  submitters 2
  iterations 3
}
