# Hotspot skew: tasks and workers cluster around the city center
# (gen::SpatialDistribution::kSkewed) and a tiny seed pool makes the same
# few hot instances recur, so the read-write cache and urgent-priority
# traffic both get exercised. Fixed instance sizes keep the hot set small
# (instance identity includes the size).

workload hotspot_skew
seed 7
solver dc
policy block
queue_depth 64
cache rw
cache_entries 512 128

include "fragments/common.wl"

template hotspot_base extends small_traffic {
  dist skewed
  seed_pool 12
  tasks 8 8
  workers 20 20
}

# Warm the cache without serving from it (write-only).
phase warmup extends hotspot_base {
  submitters 3
  iterations 4
  cache wo
}

# The hot period: most traffic re-requests the warmed instances.
phase hotspot extends hotspot_base {
  submitters 6
  iterations 8
  priority 0 4
  mix submit 2 cached 3 urgent 1
}

# Read-only probing must not evict what the hot period relies on.
phase probe extends hotspot_base {
  submitters 2
  iterations 4
  cache ro
}
