# Admission at the capacity edge under the reject policy: worst-case
# outstanding submissions exactly equal queue_depth, the largest load the
# compiler's determinism guard admits for reject/shed policies (one more
# would make rejections timing-dependent). The kReject admission path is
# exercised on every Submit without ever being forced to fire.

workload overload_reject
seed 23
solver dc
policy reject
queue_depth 8
cache off

# Closed loop: at most one outstanding request per submitter.
phase closed_edge {
  mode closed
  submitters 8
  iterations 4
  tasks 6 12
  workers 12 24
  priority 0 3
  mix submit 3 cancel 1
}

# Open loop: every op of the phase can be outstanding at once, so the
# whole phase must fit the queue (2 submitters x 4 ops = queue_depth).
phase open_edge {
  mode open
  submitters 2
  rate 50
  iterations 4
  arrival fixed
  tasks 6 12
  workers 12 24
}
