# Cache storm: an open-loop flood where only three distinct instances
# exist, so the queue fills with duplicates -- the read-write cache and
# single-flight collapsing absorb most of the work. Cancel ops ride along
# to prove cancelled requests never poison the collapse groups.

workload cache_storm
seed 1337
solver dc
policy block
queue_depth 64
cache rw
cache_entries 256 64

phase storm {
  mode open
  submitters 4
  rate 100
  duration 0.24
  arrival burst
  tasks 8 8
  workers 16 16
  seed_pool 3
  mix cached 6 submit 2 cancel 1
}

phase revisit {
  mode closed
  submitters 2
  iterations 4
  tasks 8 8
  workers 16 16
  seed_pool 3
  cache ro
}
