# Drain / restart: `restart on` phases drain the server (every queued
# request completes) and replace it with a fresh one -- the server-owned
# cache dies with its generation, so identical traffic after a restart
# solves cold again while results stay bit-identical. Uses the shed
# policy at capacity-safe load (submitters <= queue_depth) to exercise
# the kShedOldest admission path deterministically.

workload drain_restart
seed 5
solver dc
policy shed
queue_depth 16
cache rw
cache_entries 128 32

template steady {
  mode closed
  submitters 4
  iterations 4
  tasks 8 8
  workers 18 18
  seed_pool 6
  priority 0 2
}

phase warm extends steady {
}

# Fresh server: the same hot set must miss (cold cache) yet produce the
# same per-ticket results.
phase cold extends steady {
  restart on
}

phase wind_down extends steady {
  restart on
  submitters 2
  iterations 3
  mix submit 2 cancel 1
}
