# Adversarial overload under the blocking admission policy: a two-slot
# queue against a burst flood. Submitters stall in Submit until a slot
# frees -- deterministic backpressure, the only overload behaviour that
# cannot depend on dispatch timing (rejections and sheds would).

workload overload_block
seed 99
solver greedy
policy block
queue_depth 2
cache off

phase flood {
  mode open
  submitters 4
  rate 400
  duration 0.05
  arrival burst
  tasks 6 10
  workers 10 20
  priority 0 6
  mix submit 5 urgent 2 cancel 1
}

phase pressure {
  mode closed
  submitters 8
  iterations 3
  tasks 6 10
  workers 10 20
  priority 0 2
}
