#!/usr/bin/env python3
"""Trend diff for two BENCH_*.json results documents.

Compares a BEFORE and an AFTER document produced by the bench harness
(bench/harness.h, BenchReport --out=FILE; schema rdbsc-bench-results v1,
validated by tools/check_bench_json.py) and prints per-table deltas:

  - tables are matched by (metric, x_label); rows and columns by label, so
    documents produced at different sweep scales only compare the labels
    they share (dropped labels are reported, never silently ignored);
  - every shared cell prints before, after, and the relative delta;
  - with --max-regression=PCT the script exits 1 when any lower-is-better
    cell regressed by more than PCT percent. A column is lower-is-better
    when its table metric or column label mentions seconds/time ("(s)",
    "time", "seconds"); other columns (speedups, fractions, reliabilities)
    are informational only.

This is the consumer of the tentpole's before/after speedup claim: the
checked-in bench/results/BENCH_*.before.json / *.after.json pairs are
summarized with exactly this tool.

Usage:
    bench_trend.py BEFORE AFTER [--max-regression=PCT] [--table=SUBSTR]
    bench_trend.py --self-test

Exit status: 0 on success (no regression beyond the threshold), 1 when the
threshold is exceeded (or self-test mismatch), 2 on usage errors, schema
mismatches, or unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_NAME = "rdbsc-bench-results"
SCHEMA_VERSION = 1

LOWER_IS_BETTER_HINTS = ("(s)", "time", "seconds")


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load_document(path: Path):
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_NAME or \
            doc.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"error: {path} is not a {SCHEMA_NAME} v{SCHEMA_VERSION} "
            "document (run tools/check_bench_json.py for details)")
    return doc


def lower_is_better(metric: str, column: str) -> bool:
    text = f"{metric} {column}".lower()
    return any(hint in text for hint in LOWER_IS_BETTER_HINTS)


def table_key(table) -> tuple[str, str]:
    return (table.get("metric", ""), table.get("x_label", ""))


def format_delta(before: float, after: float) -> str:
    if before is None or after is None:
        return "n/a"
    if before == 0.0:
        return "n/a" if after == 0.0 else "inf"
    return f"{(after - before) / before * 100.0:+8.1f}%"


class TrendReport:
    """Accumulates the printed diff and any threshold regressions."""

    def __init__(self, max_regression_pct: float | None,
                 table_filter: str | None):
        self.max_regression_pct = max_regression_pct
        self.table_filter = table_filter
        self.lines: list[str] = []
        self.regressions: list[str] = []
        self.compared_tables = 0

    def note(self, line: str) -> None:
        self.lines.append(line)

    def diff_documents(self, before, after) -> None:
        if before.get("bench") != after.get("bench"):
            self.note(f"note: bench names differ "
                      f"({before.get('bench')!r} vs {after.get('bench')!r})")
        before_tables = {table_key(t): t for t in before.get("tables", [])}
        after_tables = {table_key(t): t for t in after.get("tables", [])}
        for key, table in before_tables.items():
            if self.table_filter and self.table_filter not in key[0]:
                continue
            if key not in after_tables:
                self.note(f"table dropped in AFTER: {key[0]!r}")
                continue
            self.diff_table(table, after_tables[key])
        for key in after_tables:
            if self.table_filter and self.table_filter not in key[0]:
                continue
            if key not in before_tables:
                self.note(f"table only in AFTER (skipped): {key[0]!r}")

    def diff_table(self, before, after) -> None:
        self.compared_tables += 1
        metric = before.get("metric", "")
        x_label = before.get("x_label", "")
        self.note(f"\n-- {metric} (by {x_label}) --")
        b_rows = {r: i for i, r in enumerate(before.get("rows", []))}
        a_rows = {r: i for i, r in enumerate(after.get("rows", []))}
        b_cols = {c: i for i, c in enumerate(before.get("columns", []))}
        a_cols = {c: i for i, c in enumerate(after.get("columns", []))}
        for label, rows in (("rows", (b_rows, a_rows)),
                            ("columns", (b_cols, a_cols))):
            only_before = sorted(set(rows[0]) - set(rows[1]))
            only_after = sorted(set(rows[1]) - set(rows[0]))
            if only_before:
                self.note(f"  {label} only in BEFORE: {only_before}")
            if only_after:
                self.note(f"  {label} only in AFTER: {only_after}")
        shared_cols = [c for c in before.get("columns", []) if c in a_cols]
        shared_rows = [r for r in before.get("rows", []) if r in a_rows]
        for col in shared_cols:
            guarded = self.max_regression_pct is not None and \
                lower_is_better(metric, col)
            for row in shared_rows:
                b = before["cells"][b_rows[row]][b_cols[col]]
                a = after["cells"][a_rows[row]][a_cols[col]]
                if not _is_number(b):
                    b = None
                if not _is_number(a):
                    a = None
                delta = format_delta(b, a)
                fmt = (lambda v: "null" if v is None else f"{v:12.6g}")
                self.note(f"  {col:<16} {x_label}={row:<8} "
                          f"before={fmt(b):>12} after={fmt(a):>12} "
                          f"delta={delta}")
                if guarded and b is not None and a is not None and b > 0.0:
                    pct = (a - b) / b * 100.0
                    if pct > self.max_regression_pct:
                        self.regressions.append(
                            f"{metric} / {col} @ {x_label}={row}: "
                            f"{pct:+.1f}% > {self.max_regression_pct:.1f}%")

    def finish(self) -> int:
        for line in self.lines:
            print(line)
        if self.compared_tables == 0:
            print("error: no comparable tables between the two documents")
            return 2
        if self.regressions:
            print(f"\nREGRESSIONS ({len(self.regressions)} beyond "
                  f"{self.max_regression_pct:.1f}%):")
            for r in self.regressions:
                print(f"  {r}")
            return 1
        if self.max_regression_pct is not None:
            print(f"\nno lower-is-better cell regressed beyond "
                  f"{self.max_regression_pct:.1f}%")
        return 0


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

def _doc(cells, columns=("build (s)", "speedup"), rows=("1000", "2000")):
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "bench": "selftest",
        "options": {"base": 1, "seeds": 1, "paper_scale": 1.0, "threads": 0},
        "tables": [{
            "metric": "timings",
            "x_label": "n",
            "rows": list(rows),
            "columns": list(columns),
            "cells": [list(r) for r in cells],
        }],
        "metrics": [],
    }


def self_test() -> int:
    failures = []

    def run(before, after, max_regression):
        report = TrendReport(max_regression, None)
        report.diff_documents(before, after)
        # Swallow the printed diff; only the exit code matters here.
        report.lines = []
        return report.finish()

    # Improvement on the seconds column, regression on the (unguarded)
    # speedup column: exit 0.
    before = _doc([[1.0, 1.0], [2.0, 1.0]])
    after = _doc([[0.5, 0.5], [1.0, 0.5]])
    if run(before, after, 10.0) != 0:
        failures.append("improvement flagged as regression")

    # 50% slowdown on the seconds column against a 10% threshold: exit 1.
    after_bad = _doc([[1.5, 1.0], [3.0, 1.0]])
    if run(before, after_bad, 10.0) != 1:
        failures.append("regression not flagged")

    # Same slowdown without a threshold: informational, exit 0.
    if run(before, after_bad, None) != 0:
        failures.append("thresholdless run should not fail")

    # Disjoint row labels still compare the shared row only.
    after_shift = _doc([[0.9, 1.0], [1.9, 1.0]], rows=("2000", "4000"))
    if run(before, after_shift, 10.0) != 0:
        failures.append("shared-row comparison failed")

    # No shared tables at all: usage error.
    after_other = _doc([[1.0, 1.0], [1.0, 1.0]])
    after_other["tables"][0]["metric"] = "something else"
    if run(before, after_other, None) != 2:
        failures.append("disjoint tables should be an error")

    # Delta formatting sanity.
    if format_delta(1.0, 1.5).strip() != "+50.0%":
        failures.append("delta formatting broke")
    if format_delta(0.0, 0.0) != "n/a" or format_delta(0.0, 1.0) != "inf":
        failures.append("zero-baseline handling broke")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print("self-test: all trend-diff behaviors verified")
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="diff two rdbsc-bench-results documents")
    parser.add_argument("before", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("after", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=None,
                        metavar="PCT",
                        help="fail (exit 1) when a lower-is-better cell "
                             "regresses by more than PCT percent")
    parser.add_argument("--table", default=None, metavar="SUBSTR",
                        help="only diff tables whose metric contains SUBSTR")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the tool against embedded documents")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.before or not args.after:
        parser.error("BEFORE and AFTER documents are required")
    before = load_document(Path(args.before))
    after = load_document(Path(args.after))
    print(f"bench_trend: {args.before} -> {args.after}")
    report = TrendReport(args.max_regression, args.table)
    report.diff_documents(before, after)
    return report.finish()


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
