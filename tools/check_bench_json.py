#!/usr/bin/env python3
"""Schema validator for the BENCH_*.json results documents.

The bench harness (bench/harness.h, BenchReport) writes structured results
with `--out=FILE`; this script is the consumer-side contract check that CI
runs on every emitted document before archiving it. It validates:

  document    schema == "rdbsc-bench-results", schema_version == 1,
              non-empty "bench" name, "options" with base/seeds/
              paper_scale/threads of the right types
  tables      each with metric/x_label strings, rows/columns string
              arrays, and a cells matrix of numbers (or null for
              non-finite values) whose shape is len(rows) x len(columns)
  metrics     each a counter/gauge/histogram object in the obs::AppendMetric
              shape; histograms additionally satisfy the internal-
              consistency invariants the C++ library guarantees:
                count >= 0; empty histograms are all-zero
                min <= p50 <= p90 <= p95 <= p99 <= p999 <= max
                min <= avg <= max, stddev >= 0

Usage:
    check_bench_json.py FILE [FILE...]    validate documents
    check_bench_json.py --self-test       validate embedded good/bad docs

Exit status: 0 when every document is valid, 1 on violations (or
self-test mismatch), 2 on usage errors / unreadable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_NAME = "rdbsc-bench-results"
SCHEMA_VERSION = 1

HISTOGRAM_FIELDS = ("count", "avg", "min", "max", "stddev",
                    "p50", "p90", "p95", "p99", "p999")
PERCENTILE_ORDER = ("min", "p50", "p90", "p95", "p99", "p999", "max")


def _is_number(value) -> bool:
    # bool is an int subclass in Python; JSON true/false is not a number.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class Checker:
    """Accumulates violations with JSON-path context."""

    def __init__(self, label: str):
        self.label = label
        self.violations: list[str] = []

    def fail(self, path: str, message: str) -> None:
        self.violations.append(f"{self.label}: {path}: {message}")

    def expect(self, ok: bool, path: str, message: str) -> bool:
        if not ok:
            self.fail(path, message)
        return ok

    # --- sections ---------------------------------------------------------

    def check_document(self, doc) -> None:
        if not self.expect(isinstance(doc, dict), "$", "document must be an "
                           f"object, got {type(doc).__name__}"):
            return
        self.expect(doc.get("schema") == SCHEMA_NAME, "$.schema",
                    f"must be {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
        self.expect(doc.get("schema_version") == SCHEMA_VERSION,
                    "$.schema_version",
                    f"must be {SCHEMA_VERSION}, "
                    f"got {doc.get('schema_version')!r}")
        bench = doc.get("bench")
        self.expect(isinstance(bench, str) and bench != "", "$.bench",
                    "must be a non-empty string")
        self.check_options(doc.get("options"))
        tables = doc.get("tables")
        if self.expect(isinstance(tables, list), "$.tables",
                       "must be an array"):
            for i, table in enumerate(tables):
                self.check_table(table, f"$.tables[{i}]")
        metrics = doc.get("metrics")
        if self.expect(isinstance(metrics, list), "$.metrics",
                       "must be an array"):
            for i, metric in enumerate(metrics):
                self.check_metric(metric, f"$.metrics[{i}]")

    def check_options(self, options) -> None:
        if not self.expect(isinstance(options, dict), "$.options",
                           "must be an object"):
            return
        for key in ("base", "seeds", "threads"):
            value = options.get(key)
            self.expect(isinstance(value, int) and
                        not isinstance(value, bool),
                        f"$.options.{key}", "must be an integer")
        self.expect(isinstance(options.get("paper_scale"), bool),
                    "$.options.paper_scale", "must be a boolean")

    def check_table(self, table, path: str) -> None:
        if not self.expect(isinstance(table, dict), path,
                           "must be an object"):
            return
        for key in ("metric", "x_label"):
            self.expect(isinstance(table.get(key), str), f"{path}.{key}",
                        "must be a string")
        shape = {}
        for key in ("rows", "columns"):
            value = table.get(key)
            ok = isinstance(value, list) and all(
                isinstance(v, str) for v in value)
            self.expect(ok, f"{path}.{key}", "must be an array of strings")
            shape[key] = len(value) if ok else None
        cells = table.get("cells")
        if not self.expect(isinstance(cells, list), f"{path}.cells",
                           "must be an array of rows"):
            return
        if shape["rows"] is not None:
            self.expect(len(cells) == shape["rows"], f"{path}.cells",
                        f"has {len(cells)} rows, labels say "
                        f"{shape['rows']}")
        for r, row in enumerate(cells):
            if not self.expect(isinstance(row, list), f"{path}.cells[{r}]",
                               "must be an array"):
                continue
            if shape["columns"] is not None:
                self.expect(len(row) == shape["columns"],
                            f"{path}.cells[{r}]",
                            f"has {len(row)} cells, labels say "
                            f"{shape['columns']}")
            for c, cell in enumerate(row):
                # null encodes a non-finite double (see obs::JsonWriter).
                self.expect(cell is None or _is_number(cell),
                            f"{path}.cells[{r}][{c}]",
                            "must be a number or null")

    def check_metric(self, metric, path: str) -> None:
        if not self.expect(isinstance(metric, dict), path,
                           "must be an object"):
            return
        name = metric.get("name")
        self.expect(isinstance(name, str) and name != "", f"{path}.name",
                    "must be a non-empty string")
        labels = metric.get("labels")
        if self.expect(isinstance(labels, dict), f"{path}.labels",
                       "must be an object"):
            for key, value in labels.items():
                self.expect(isinstance(value, str), f"{path}.labels.{key}",
                            "must be a string")
        kind = metric.get("kind")
        if kind == "counter":
            value = metric.get("value")
            if self.expect(isinstance(value, int) and
                           not isinstance(value, bool),
                           f"{path}.value", "counter must be an integer"):
                self.expect(value >= 0, f"{path}.value",
                            "counter must be non-negative")
        elif kind == "gauge":
            self.expect(_is_number(metric.get("value")) or
                        metric.get("value") is None,
                        f"{path}.value", "gauge must be a number or null")
        elif kind == "histogram":
            self.check_histogram(metric, path)
        else:
            self.fail(f"{path}.kind",
                      f"must be counter/gauge/histogram, got {kind!r}")

    def check_histogram(self, metric, path: str) -> None:
        values = {}
        for field in HISTOGRAM_FIELDS:
            value = metric.get(field)
            if field == "count":
                ok = isinstance(value, int) and not isinstance(value, bool)
                self.expect(ok, f"{path}.count", "must be an integer")
            else:
                # null is legal (non-finite double) but voids ordering
                # checks on that field.
                ok = _is_number(value)
                self.expect(ok or value is None, f"{path}.{field}",
                            "must be a number or null")
            values[field] = value if ok else None
        count = values["count"]
        if count is None:
            return
        if not self.expect(count >= 0, f"{path}.count",
                           "must be non-negative"):
            return
        if count == 0:
            for field in HISTOGRAM_FIELDS[1:]:
                if values[field] is not None:
                    self.expect(values[field] == 0, f"{path}.{field}",
                                "must be 0 for an empty histogram")
            return
        if values["stddev"] is not None:
            self.expect(values["stddev"] >= 0, f"{path}.stddev",
                        "must be non-negative")
        chain = [(f, values[f]) for f in PERCENTILE_ORDER
                 if values[f] is not None]
        for (lo_name, lo), (hi_name, hi) in zip(chain, chain[1:]):
            self.expect(lo <= hi, f"{path}.{hi_name}",
                        f"percentile order violated: {lo_name}={lo} > "
                        f"{hi_name}={hi}")
        if (values["avg"] is not None and values["min"] is not None
                and values["max"] is not None):
            self.expect(values["min"] <= values["avg"] <= values["max"],
                        f"{path}.avg",
                        f"avg={values['avg']} outside "
                        f"[{values['min']}, {values['max']}]")


def check_file(path: Path) -> list[str]:
    try:
        doc = json.loads(path.read_text())
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    except json.JSONDecodeError as err:
        return [f"{path}: not valid JSON: {err}"]
    checker = Checker(str(path))
    checker.check_document(doc)
    return checker.violations


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

GOOD_DOC = {
    "schema": SCHEMA_NAME,
    "schema_version": SCHEMA_VERSION,
    "bench": "fig16_runtime",
    "options": {"base": 100, "seeds": 3, "paper_scale": False, "threads": 0},
    "tables": [
        {
            "metric": "CPU time (s) vs m",
            "x_label": "m",
            "rows": ["m=100", "m=200"],
            "columns": ["g-truth", "sampling"],
            "cells": [[0.5, 0.1], [1.25, None]],
        }
    ],
    "metrics": [
        {"name": "engine.cache", "labels": {"outcome": "hit"},
         "kind": "counter", "value": 7},
        {"name": "pool.width", "labels": {}, "kind": "gauge", "value": 4.0},
        {"name": "engine.stage_seconds",
         "labels": {"solver": "dc", "stage": "solve"},
         "kind": "histogram", "count": 3, "avg": 2.0, "min": 1.0,
         "max": 3.0, "stddev": 0.8, "p50": 2.0, "p90": 3.0, "p95": 3.0,
         "p99": 3.0, "p999": 3.0},
        {"name": "empty.hist", "labels": {}, "kind": "histogram",
         "count": 0, "avg": 0, "min": 0, "max": 0, "stddev": 0,
         "p50": 0, "p90": 0, "p95": 0, "p99": 0, "p999": 0},
    ],
}

# (mutation description, patch function) pairs; every one must be caught.
def _bad_documents():
    import copy

    def mutate(description, fn):
        doc = copy.deepcopy(GOOD_DOC)
        fn(doc)
        return description, doc

    return [
        mutate("wrong schema name",
               lambda d: d.update(schema="other")),
        mutate("wrong schema version",
               lambda d: d.update(schema_version=2)),
        mutate("empty bench name",
               lambda d: d.update(bench="")),
        mutate("missing options.seeds",
               lambda d: d["options"].pop("seeds")),
        mutate("boolean where integer expected",
               lambda d: d["options"].update(base=True)),
        mutate("cells row count mismatch",
               lambda d: d["tables"][0]["cells"].append([1.0, 2.0])),
        mutate("cells column count mismatch",
               lambda d: d["tables"][0]["cells"][0].append(9.9)),
        mutate("string cell",
               lambda d: d["tables"][0]["cells"][0].__setitem__(0, "fast")),
        mutate("negative counter",
               lambda d: d["metrics"][0].update(value=-1)),
        mutate("unknown metric kind",
               lambda d: d["metrics"][0].update(kind="timer")),
        mutate("non-string label value",
               lambda d: d["metrics"][0]["labels"].update(outcome=3)),
        mutate("percentile order violated",
               lambda d: d["metrics"][2].update(p95=10.0)),
        mutate("max below p999",
               lambda d: d["metrics"][2].update(max=0.5)),
        mutate("avg outside min/max",
               lambda d: d["metrics"][2].update(avg=99.0)),
        mutate("negative stddev",
               lambda d: d["metrics"][2].update(stddev=-0.1)),
        mutate("non-zero stats on empty histogram",
               lambda d: d["metrics"][3].update(max=5.0)),
    ]


def self_test() -> int:
    failures = 0
    checker = Checker("good")
    checker.check_document(GOOD_DOC)
    for violation in checker.violations:
        print(f"self-test FAIL: good document rejected: {violation}")
        failures += 1
    for description, doc in _bad_documents():
        checker = Checker(description)
        checker.check_document(doc)
        if not checker.violations:
            print(f"self-test FAIL: not caught: {description}")
            failures += 1
    if failures:
        print(f"self-test: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print(f"self-test: good document accepted, "
          f"{len(_bad_documents())} bad document(s) rejected")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="BENCH_*.json documents to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="validate the embedded good/bad documents")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.files:
        parser.print_usage(sys.stderr)
        print("check_bench_json: no files given", file=sys.stderr)
        return 2
    violations = []
    for path in args.files:
        violations.extend(check_file(path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"check_bench_json: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    names = ", ".join(str(p) for p in args.files)
    print(f"check_bench_json: {len(args.files)} document(s) valid ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
