// Fixture: wall-clock reads in solve paths must be flagged.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <chrono>
#include <ctime>

double StampWithWallClock() {
  std::time_t stamp = time(nullptr);  // EXPECT-LINT(ambient-time)
  auto now = std::chrono::system_clock::now();  // EXPECT-LINT(ambient-time)
  return static_cast<double>(stamp) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}

// steady_clock durations are reproducible and allowed.
double ElapsedOk() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
