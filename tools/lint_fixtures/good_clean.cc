// Fixture: idiomatic code every rule must stay silent on.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <vector>

#define GUARDED_BY(x)

namespace util {
class Deadline {
 public:
  bool Exhausted() const { return false; }
};
class Executor;
class Mutex {};
template <typename T>
class StatusOr;
}  // namespace util

struct Instance;
struct CandidateGraph;
struct SolveResult;
struct SolveStats;

struct CleanState {
  // Annotated mutex: GUARDED_BY companion present.
  mutable util::Mutex mu_;
  std::vector<int> items_ GUARDED_BY(mu_);

  // Unordered storage is fine; only *iterating* it is order-sensitive.
  std::unordered_map<int, double> entries_;

  // The deterministic idiom: collect keys, sort, then walk.
  double Total() const {
    std::vector<int> ids;
    ids.reserve(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) ids.push_back(0);
    std::sort(ids.begin(), ids.end());
    double total = 0.0;
    for (int id : ids) total += entries_.count(id);
    return total;
  }

  // Ordered maps iterate deterministically.
  double Sum(const std::map<int, double>& ordered) const {
    double total = 0.0;
    for (const auto& [id, value] : ordered) total += value;
    return total;
  }
};

struct CleanSolver {
  // Polls the deadline: passes missing-deadline-poll.
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats);
};

// steady_clock durations are reproducible.
double Elapsed() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
