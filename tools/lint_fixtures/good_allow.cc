// Fixture: justified LINT-ALLOW comments must suppress each rule.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace util {
class Mutex {};
}  // namespace util

struct AllowedEverywhere {
  std::unordered_map<int, double> entries_;

  // Same-line allow.
  double Count() const {
    double n = 0.0;
    // LINT-ALLOW(unordered-iter): order-insensitive count of exact 1.0s
    for (const auto& [id, value] : entries_) n += 1.0;
    return n;
  }

  // LINT-ALLOW(unguarded-mutex): cv rendezvous only; no guarded state
  util::Mutex mu_;
};

double WallClockForLogsOnly() {
  // LINT-ALLOW(ambient-time): operator-facing log stamp, never fingerprinted
  auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

int JitterForBackoffOnly() {
  return rand();  // LINT-ALLOW(ambient-rng): retry jitter, not in results
}
