// Fixture: the src/wl determinism contract -- workload compilation must
// draw only from spec-seeded util::Rng streams, never ambient sources,
// and must not leak unordered-container iteration order into schedules.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <chrono>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

struct FakeOp {
  unsigned long long instance_seed;
  double arrival_offset_seconds;
};

// A compiler that seeds schedules from the wall clock or an entropy
// source produces a different workload every run; replays could never
// agree.
FakeOp CompileOneOp() {
  FakeOp op;
  std::random_device entropy;                          // EXPECT-LINT(ambient-rng)
  op.instance_seed = entropy();
  auto now = std::chrono::system_clock::now();         // EXPECT-LINT(ambient-time)
  op.arrival_offset_seconds =
      std::chrono::duration<double>(now.time_since_epoch()).count();
  return op;
}

// Phase lookup tables are fine as unordered maps -- but emitting
// schedules by iterating one bakes the hash order into the compiled
// artifact, so two compiles of one spec can disagree.
std::vector<std::string> EmitPhases(
    const std::unordered_map<std::string, int>& phase_ops) {
  std::vector<std::string> out;
  for (const auto& entry : phase_ops) {  // EXPECT-LINT(unordered-iter)
    out.push_back(entry.first + ":" + std::to_string(entry.second));
  }
  return out;
}
