// Fixture: naked std::mutex members and util::Mutex members without a
// GUARDED_BY companion must be flagged.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <mutex>
#include <vector>

namespace util {
class Mutex {};
}  // namespace util

struct LegacyQueue {
  std::mutex mu_;  // EXPECT-LINT(unguarded-mutex)
  std::vector<int> items_;
};

struct HalfAnnotated {
  mutable util::Mutex mu_;  // EXPECT-LINT(unguarded-mutex)
  std::vector<int> items_;  // protected by mu_, but nothing says so
};
