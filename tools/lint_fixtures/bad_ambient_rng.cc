// Fixture: ambient randomness in solve paths must be flagged.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <cstdlib>
#include <random>

int AmbientDraws() {
  srand(42);  // EXPECT-LINT(ambient-rng)
  int first = rand();  // EXPECT-LINT(ambient-rng)
  std::random_device entropy;  // EXPECT-LINT(ambient-rng)
  return first + static_cast<int>(entropy());
}

// Explicitly seeded engines replay and are allowed.
int SeededDrawOk(unsigned seed) {
  std::mt19937_64 rng(seed);
  return static_cast<int>(rng());
}
