// Fixture: range-for over unordered containers must be flagged.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Ledger {
  std::unordered_map<int, double> entries;
  std::unordered_set<std::string> names;

  double Total() const {
    double total = 0.0;
    for (const auto& [id, value] : entries) {  // EXPECT-LINT(unordered-iter)
      total += value;
    }
    return total;
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    for (const std::string& name : names) {  // EXPECT-LINT(unordered-iter)
      out.push_back(name);
    }
    return out;
  }

  // Multi-line range-for headers must be caught too.
  double TotalAgain() const {
    double total = 0.0;
    for (const auto& [id, value] :  // EXPECT-LINT(unordered-iter)
         entries) {
      total += value;
    }
    return total;
  }
};
