// Fixture: a delta-apply repair driver that never polls its Deadline must
// be flagged. RepairRows recomputes every dirty / horizon-expired
// candidate row of the streaming delta engine; skipping the between-rows
// poll makes event-batch rounds uncancellable. Never compiled -- parsed
// by lint_invariants.py --self-test.
#include <map>

namespace util {
class Deadline;
class Status;
}  // namespace util

namespace index {
class GridIndex;
}  // namespace index

struct Row {
  bool dirty = true;
};

std::map<int, Row> rows_;

// Declarations (no body) are fine.
util::Status RepairRows(const index::GridIndex& index,
                        const util::Deadline& deadline);

// Body never mentions the deadline: the repair loop walks every expired
// row to completion no matter what budget or cancellation the caller set.
util::Status RepairRows(  // EXPECT-LINT(missing-deadline-poll)
    const index::GridIndex& index, const util::Deadline& ignored) {
  for (auto& [id, row] : rows_) {
    (void)index;
    row.dirty = false;
  }
  return {};
}
