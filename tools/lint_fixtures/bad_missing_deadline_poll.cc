// Fixture: a SolveImpl that ignores its Deadline must be flagged.
// Never compiled -- parsed by tools/lint_invariants.py --self-test.
namespace util {
class Deadline;
class Executor;
template <typename T>
class StatusOr;
}  // namespace util

struct Instance;
struct CandidateGraph;
struct SolveResult;
struct SolveStats;

struct RunawaySolver {
  // Body never mentions the deadline: cannot be cancelled or budgeted.
  util::StatusOr<SolveResult> SolveImpl(  // EXPECT-LINT(missing-deadline-poll)
      const Instance& instance, const CandidateGraph& graph,
      const util::Deadline& deadline, util::Executor& executor,
      SolveStats* partial_stats) {
    SolveResult* result = nullptr;
    for (int iteration = 0; iteration < 1000000; ++iteration) {
      (void)instance;
      (void)graph;
      (void)executor;
      (void)partial_stats;
    }
    return *result;
  }

  // Declarations (no body) are fine.
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const util::Deadline& deadline);
};
