// Fixture: a kernel row driver that never polls its Deadline must be
// flagged. ValidPairsRows owns the innermost O(m*n) loop of graph
// construction; skipping the between-blocks poll makes every build
// uncancellable. Never compiled -- parsed by lint_invariants.py
// --self-test.
#include <cstdint>

namespace util {
class Deadline;
class Arena;
}  // namespace util

class InstanceSoA;
struct EdgeRow;

// Body never mentions the deadline: the row loop runs to completion no
// matter what budget or cancellation the caller set.
bool ValidPairsRows(  // EXPECT-LINT(missing-deadline-poll)
    const InstanceSoA& soa, int64_t begin, int64_t end,
    const util::Deadline& ignored, util::Arena* arena, EdgeRow* rows) {
  for (int64_t j = begin; j < end; ++j) {
    (void)soa;
    (void)arena;
    (void)rows;
  }
  return true;
}

// Declarations (no body) are fine.
bool ValidPairsRows(const InstanceSoA& soa, int64_t begin, int64_t end,
                    const util::Deadline& deadline, util::Arena* arena,
                    EdgeRow* rows);
