#!/usr/bin/env python3
"""Invariant linter for the RDB-SC tree.

Enforces repo-specific concurrency and determinism contracts that neither
the compiler nor clang-tidy can express:

  unordered-iter          Range-for over a std::unordered_{map,set} in the
                          solver/engine/index/sim sources. Iteration order
                          of those containers is unspecified and leaks into
                          SolveResult contents, fingerprints, and stats,
                          breaking the bit-identical determinism contract.
                          Collect keys, sort, then iterate -- or justify
                          with a LINT-ALLOW.
  missing-deadline-poll   Every solver SolveImpl body in src/core (plus the
                          batched kernel row driver ValidPairsRows in
                          src/core/kernels.* and the delta-apply repair
                          driver RepairRows in src/index) must poll its
                          util::Deadline (Exhausted()/Check()) or forward
                          it into a helper that does. A solver, kernel, or
                          delta-repair loop that ignores the deadline
                          cannot be cancelled or budget-limited.
  ambient-time            No wall-clock reads (time(), system_clock) in
                          src/core, src/index, src/engine, src/obs,
                          src/sim, or src/wl. Wall time is
                          non-reproducible; std::chrono::steady_clock is
                          fine for durations.
  ambient-rng             No ambient randomness (rand()/srand()/
                          std::random_device) in src/core, src/index,
                          src/engine, src/obs, src/sim, or src/wl. All
                          randomized algorithms must draw
                          from an explicitly seeded engine so runs replay.
  unguarded-mutex         No naked std::mutex members (use util::Mutex from
                          util/mutex.h so -Wthread-safety sees it), and
                          every util::Mutex member must have at least one
                          GUARDED_BY companion in the same file.

Suppress a finding with a justification on the same or previous line:

    // LINT-ALLOW(rule-name): why this occurrence is safe

The reason is mandatory; a bare LINT-ALLOW does not suppress.

Usage:
    lint_invariants.py [--root DIR]     lint DIR/src (default: repo root)
    lint_invariants.py --self-test      run against tools/lint_fixtures/

Self-test mode applies every rule to each fixture file regardless of path
scoping. Lines annotated `// EXPECT-LINT(rule-name)` must produce exactly
that finding; any unexpected or missing finding fails the self-test.

Exit status: 0 when clean, 1 on findings (or self-test mismatch), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"LINT-ALLOW\((?P<rule>[a-z-]+)\)\s*:\s*(?P<reason>\S.*)")
EXPECT_RE = re.compile(r"EXPECT-LINT\((?P<rule>[a-z-]+)\)")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving layout.

    Every replaced character becomes a space (newlines survive), so byte
    offsets and line numbers in the result match the original text.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    if text[i + 1] != "\n":
                        out[i + 1] = " "
                    i += 2
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_balanced(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Returns the offset just past the delimiter matching text[open_pos]."""
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class SourceFile:
    def __init__(self, path: Path, display: Path | None = None):
        self.path = path
        self.display = display if display is not None else path
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.splitlines()
        # Unordered-container member names contributed by the sibling
        # header (x.cc iterating a member declared in x.h).
        self.extra_unordered_names: set[str] = set()

    def allowed(self, line: int, rule: str) -> bool:
        """True when line (1-based) or the one above carries a matching
        LINT-ALLOW with a non-empty reason."""
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[candidate - 1])
                if m and m.group("rule") == rule:
                    return True
        return False


# ---------------------------------------------------------------------------
# Rule: unordered-iter
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
FOR_RE = re.compile(r"\bfor\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_names(src: SourceFile) -> set[str]:
    """Names declared in this file with an unordered container type."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(src.code):
        lt = src.code.index("<", m.end() - 1)
        end = match_balanced(src.code, lt, "<", ">")
        # The declared name is the first identifier after the closing '>'
        # (skipping cv-qualifiers and reference/pointer tokens).
        rest = src.code[end:]
        for ident in IDENT_RE.finditer(rest):
            word = ident.group(0)
            if word in ("const", "mutable", "static", "inline", "typename"):
                continue
            # Stop at statement/declaration boundaries before any name.
            boundary = rest[: ident.start()]
            if any(ch in boundary for ch in ";{}()"):
                break
            names.add(word)
            break
    return names


def check_unordered_iter(src: SourceFile) -> list[Finding]:
    names = unordered_names(src) | src.extra_unordered_names
    if not names:
        return []
    findings = []
    for m in FOR_RE.finditer(src.code):
        open_paren = src.code.index("(", m.end() - 1)
        close = match_balanced(src.code, open_paren, "(", ")")
        header = src.code[open_paren + 1 : close - 1]
        if ";" in header:  # classic for, not range-for
            continue
        colon = header.find(":")
        if colon < 0:
            continue
        range_expr = header[colon + 1 :]
        if range_expr.lstrip().startswith("{"):
            continue  # braced init-list: element order is as written
        used = []
        for ident in IDENT_RE.finditer(range_expr):
            if ident.group(0) not in names:
                continue
            # m[k] / m.at(k) pick one element; only iterating the
            # container itself is order-sensitive.
            rest = range_expr[ident.end() :].lstrip()
            if rest.startswith("[") or rest.startswith("("):
                continue
            used.append(ident.group(0))
        if not used:
            continue
        line = line_of(src.code, m.start())
        if src.allowed(line, "unordered-iter"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "unordered-iter",
                f"range-for over unordered container '{used[0]}'; iteration "
                "order is unspecified and breaks determinism -- collect and "
                "sort keys first, or add LINT-ALLOW(unordered-iter) with a "
                "reason",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Rule: missing-deadline-poll
# ---------------------------------------------------------------------------

# SolveImpl: the solver entry points. ValidPairsRows: the batched kernel
# row driver (core/kernels.cc) that owns the innermost O(m*n) loop -- it
# must poll between row blocks or graph builds become uncancellable.
# RepairRows: the delta-apply repair driver (index/delta_graph.cc) that
# recomputes dirty / horizon-expired candidate rows -- same contract, or
# streaming rounds become uncancellable.
SOLVEIMPL_RE = re.compile(r"\b(?:SolveImpl|ValidPairsRows|RepairRows)\s*\(")
DEADLINE_USE_RE = re.compile(r"\bdeadline\b")


def check_missing_deadline_poll(src: SourceFile) -> list[Finding]:
    findings = []
    for m in SOLVEIMPL_RE.finditer(src.code):
        open_paren = src.code.index("(", m.end() - 1)
        params_end = match_balanced(src.code, open_paren, "(", ")")
        # Skip qualifiers (const, override, noexcept...) up to '{' or ';'.
        i = params_end
        while i < len(src.code) and src.code[i] not in "{;":
            i += 1
        if i >= len(src.code) or src.code[i] == ";":
            continue  # declaration, not a definition
        body_end = match_balanced(src.code, i, "{", "}")
        body = src.code[i:body_end]
        if DEADLINE_USE_RE.search(body):
            continue
        line = line_of(src.code, m.start())
        if src.allowed(line, "missing-deadline-poll"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "missing-deadline-poll",
                "SolveImpl/ValidPairsRows body never polls or forwards its "
                "Deadline; the solver cannot be cancelled or budget-limited",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Rules: ambient-time / ambient-rng
# ---------------------------------------------------------------------------

AMBIENT_TIME_RE = re.compile(r"\btime\s*\(|\bsystem_clock\b")
AMBIENT_RNG_RE = re.compile(r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b")


def check_ambient(src: SourceFile) -> list[Finding]:
    findings = []
    for rule, pattern, what in (
        ("ambient-time", AMBIENT_TIME_RE, "wall-clock read"),
        ("ambient-rng", AMBIENT_RNG_RE, "ambient randomness"),
    ):
        for m in pattern.finditer(src.code):
            line = line_of(src.code, m.start())
            if src.allowed(line, rule):
                continue
            token = m.group(0).strip()
            findings.append(
                Finding(
                    src.display,
                    line,
                    rule,
                    f"{what} '{token}' in a deterministic solve path; use "
                    "steady_clock for durations and explicitly seeded "
                    "engines for randomness",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Rule: unguarded-mutex
# ---------------------------------------------------------------------------

STD_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:mutex|shared_mutex|recursive_mutex)\s+"
    r"(\w+)\s*;",
    re.MULTILINE,
)
UTIL_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:util::)?(?:Mutex|SharedMutex)\s+(\w+)\s*;",
    re.MULTILINE,
)


def check_unguarded_mutex(src: SourceFile) -> list[Finding]:
    findings = []
    for m in STD_MUTEX_DECL_RE.finditer(src.code):
        line = line_of(src.code, m.start(1))
        if src.allowed(line, "unguarded-mutex"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "unguarded-mutex",
                f"naked std::mutex member '{m.group(1)}'; use util::Mutex "
                "(util/mutex.h) so -Wthread-safety can check the lock "
                "discipline",
            )
        )
    for m in UTIL_MUTEX_DECL_RE.finditer(src.code):
        name = m.group(1)
        if re.search(r"GUARDED_BY\(\s*(?:\w+(?:\.|->))?" + re.escape(name) + r"\s*\)",
                     src.code):
            continue
        line = line_of(src.code, m.start(1))
        if src.allowed(line, "unguarded-mutex"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "unguarded-mutex",
                f"mutex member '{name}' has no GUARDED_BY companion in this "
                "file; annotate the state it protects or add "
                "LINT-ALLOW(unguarded-mutex) with a reason",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Scoping and driver
# ---------------------------------------------------------------------------

# rule -> directories (relative to root) it applies to. unguarded-mutex
# skips util/mutex.h itself (it *defines* the annotated wrappers).
RULE_SCOPES = {
    "unordered-iter": ("src/core", "src/engine", "src/sim", "src/index",
                       "src/obs", "src/wl"),
    "missing-deadline-poll": ("src/core", "src/index"),
    # src/wl compiles *all* workload randomness ahead of replay and its
    # fingerprints must be wall-clock free, so it inherits the ambient
    # rules: schedules draw only from util::Rng streams seeded by the
    # spec, and replay may touch steady_clock (pacing/latency) but never
    # system_clock/time(). src/sim joined with the streaming delta engine
    # (events.h / streaming.* and the delta-maintained platform tick):
    # event application and round trajectories must replay bit-identically,
    # so the simulator draws only from seeded util::Rng streams too.
    "ambient-time": ("src/core", "src/engine", "src/index", "src/obs",
                     "src/sim", "src/wl"),
    "ambient-rng": ("src/core", "src/engine", "src/index", "src/obs",
                    "src/sim", "src/wl"),
    "unguarded-mutex": ("src",),
}

UNGUARDED_MUTEX_EXEMPT = ("src/util/mutex.h", "src/util/thread_annotations.h")

RULE_CHECKS = {
    "unordered-iter": check_unordered_iter,
    "missing-deadline-poll": check_missing_deadline_poll,
    "ambient-time": check_ambient,  # shared checker, filtered below
    "ambient-rng": check_ambient,
    "unguarded-mutex": check_unguarded_mutex,
}


def rules_for(rel: str) -> list[str]:
    rules = []
    for rule, scopes in RULE_SCOPES.items():
        if not any(rel == s or rel.startswith(s + "/") for s in scopes):
            continue
        if rule == "unguarded-mutex" and rel in UNGUARDED_MUTEX_EXEMPT:
            continue
        rules.append(rule)
    return rules


def run_rules(src: SourceFile, rules: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    ambient_done = False
    for rule in rules:
        if rule in ("ambient-time", "ambient-rng"):
            if ambient_done:
                continue
            ambient_done = True
            wanted = {r for r in rules if r in ("ambient-time", "ambient-rng")}
            findings.extend(
                f for f in check_ambient(src) if f.rule in wanted
            )
        else:
            findings.extend(RULE_CHECKS[rule](src))
    return findings


def lint_tree(root: Path) -> int:
    findings: list[Finding] = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        rules = rules_for(rel)
        if not rules:
            continue
        src = SourceFile(path, display=Path(rel))
        if path.suffix == ".cc":
            sibling = path.with_suffix(".h")
            if sibling.is_file():
                src.extra_unordered_names = unordered_names(
                    SourceFile(sibling))
        findings.extend(run_rules(src, rules))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


def self_test(fixtures: Path) -> int:
    all_rules = list(RULE_CHECKS)
    failures = 0
    files = sorted(fixtures.glob("*.cc")) + sorted(fixtures.glob("*.h"))
    if not files:
        print(f"self-test: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    for path in files:
        src = SourceFile(path)
        found = {(f.line, f.rule) for f in run_rules(src, all_rules)}
        expected = set()
        for i, raw in enumerate(src.raw_lines, start=1):
            for m in EXPECT_RE.finditer(raw):
                expected.add((i, m.group("rule")))
        for line, rule in sorted(expected - found):
            print(f"self-test FAIL {path.name}:{line}: expected [{rule}] "
                  "but the linter stayed silent")
            failures += 1
        for line, rule in sorted(found - expected):
            print(f"self-test FAIL {path.name}:{line}: unexpected [{rule}]")
            failures += 1
    if failures:
        print(f"self-test: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print(f"self-test: {len(files)} fixture(s) behaved as annotated")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the known-bad fixtures and verify each "
                             "EXPECT-LINT annotation fires")
    args = parser.parse_args()
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "lint_fixtures")
    if not (args.root / "src").is_dir():
        print(f"error: {args.root}/src is not a directory", file=sys.stderr)
        return 2
    return lint_tree(args.root)


if __name__ == "__main__":
    sys.exit(main())
