#include "wl/spec.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace rdbsc::wl {
namespace {

/// One whitespace-delimited token with its 1-based source position.
struct Token {
  std::string text;
  int line = 0;
  int col = 0;
  bool quoted = false;
};

/// Everything `}`-terminated blocks and top-level dispatch share: the
/// spec under construction, the template table, and the include stack
/// (canonical paths of every file currently being parsed, outermost
/// first -- membership means a cycle).
struct ParseState {
  WorkloadSpec spec;
  std::map<std::string, PhaseSpec> templates;
  const FileLoader* loader = nullptr;
  std::vector<std::string> include_stack;
  bool saw_workload_name = false;
};

std::string Pos(const std::string& source, const Token& token) {
  return source + ":" + std::to_string(token.line) + ":" +
         std::to_string(token.col) + ": ";
}

util::Status Err(const std::string& source, const Token& token,
                 const std::string& message) {
  return util::Status::InvalidArgument(Pos(source, token) + message);
}

/// Splits one line into tokens. Strips `#` comments (outside quotes);
/// a `"..."` group is one token with quotes removed (no escapes).
util::Status TokenizeLine(const std::string& source, std::string_view line,
                          int line_no, std::vector<Token>& out) {
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') break;
    Token token;
    token.line = line_no;
    token.col = static_cast<int>(i) + 1;
    if (c == '"') {
      size_t end = line.find('"', i + 1);
      if (end == std::string_view::npos) {
        return Err(source, token, "unterminated string literal");
      }
      token.text = std::string(line.substr(i + 1, end - i - 1));
      token.quoted = true;
      i = end + 1;
    } else {
      size_t end = i;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
             line[end] != '\r' && line[end] != '#') {
        ++end;
      }
      token.text = std::string(line.substr(i, end - i));
      i = end;
    }
    out.push_back(std::move(token));
  }
  return util::Status::OK();
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(text[0])) && text[0] != '_') {
    return false;
  }
  for (char c : text) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

util::Status ParseInt(const std::string& source, const Token& token,
                      int64_t& out) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(token.text.c_str(), &end, 10);
  if (errno != 0 || end == token.text.c_str() || *end != '\0') {
    return Err(source, token, "expected an integer, got '" + token.text + "'");
  }
  out = value;
  return util::Status::OK();
}

util::Status ParseNonNegInt(const std::string& source, const Token& token,
                            int64_t& out) {
  util::Status status = ParseInt(source, token, out);
  if (!status.ok()) return status;
  if (out < 0) {
    return Err(source, token, "expected a non-negative integer, got '" +
                                  token.text + "'");
  }
  return util::Status::OK();
}

util::Status ParseDouble(const std::string& source, const Token& token,
                         double& out) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(token.text.c_str(), &end);
  if (errno != 0 || end == token.text.c_str() || *end != '\0') {
    return Err(source, token, "expected a number, got '" + token.text + "'");
  }
  out = value;
  return util::Status::OK();
}

util::Status ExpectArgs(const std::string& source,
                        const std::vector<Token>& tokens, size_t count) {
  if (tokens.size() == count + 1) return util::Status::OK();
  if (tokens.size() < count + 1) {
    return Err(source, tokens[0],
               "'" + tokens[0].text + "' expects " + std::to_string(count) +
                   (count == 1 ? " argument" : " arguments"));
  }
  return Err(source, tokens[count + 1],
             "unexpected token '" + tokens[count + 1].text + "' after '" +
                 tokens[0].text + "'");
}

util::Status ParseRange(const std::string& source,
                        const std::vector<Token>& tokens, int64_t& lo,
                        int64_t& hi) {
  util::Status status = ExpectArgs(source, tokens, 2);
  if (!status.ok()) return status;
  status = ParseNonNegInt(source, tokens[1], lo);
  if (!status.ok()) return status;
  status = ParseNonNegInt(source, tokens[2], hi);
  if (!status.ok()) return status;
  if (lo > hi) {
    return Err(source, tokens[1],
               "empty range: " + std::to_string(lo) + " > " +
                   std::to_string(hi));
  }
  return util::Status::OK();
}

util::Status ParseCacheKeyword(const std::string& source, const Token& token,
                               bool allow_default, engine::CacheMode& out) {
  if (token.text == "off") {
    out = engine::CacheMode::kOff;
  } else if (token.text == "ro") {
    out = engine::CacheMode::kReadOnly;
  } else if (token.text == "wo") {
    out = engine::CacheMode::kWriteOnly;
  } else if (token.text == "rw") {
    out = engine::CacheMode::kReadWrite;
  } else if (allow_default && token.text == "default") {
    out = engine::CacheMode::kDefault;
  } else {
    return Err(source, token,
               "unknown cache mode '" + token.text + "' (expected off|ro|wo|rw" +
                   (allow_default ? "|default)" : ")"));
  }
  return util::Status::OK();
}

util::Status ParseOpKind(const std::string& source, const Token& token,
                         OpKind& out) {
  if (token.text == "submit") {
    out = OpKind::kSubmit;
  } else if (token.text == "urgent") {
    out = OpKind::kUrgent;
  } else if (token.text == "cached") {
    out = OpKind::kCached;
  } else if (token.text == "uncached") {
    out = OpKind::kUncached;
  } else if (token.text == "cancel") {
    out = OpKind::kCancel;
  } else {
    return Err(source, token,
               "unknown op kind '" + token.text +
                   "' (expected submit|urgent|cached|uncached|cancel)");
  }
  return util::Status::OK();
}

/// One statement inside a `template`/`phase` block.
util::Status ApplyPhaseStatement(const std::string& source,
                                 const std::vector<Token>& tokens,
                                 PhaseSpec& phase) {
  const std::string& key = tokens[0].text;
  util::Status status;
  if (key == "mode") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    if (tokens[1].text == "closed") {
      phase.mode = PhaseMode::kClosed;
    } else if (tokens[1].text == "open") {
      phase.mode = PhaseMode::kOpen;
    } else {
      return Err(source, tokens[1],
                 "unknown mode '" + tokens[1].text +
                     "' (expected closed|open)");
    }
    return util::Status::OK();
  }
  if (key == "submitters") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    return ParseNonNegInt(source, tokens[1], phase.submitters);
  }
  if (key == "iterations") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    return ParseNonNegInt(source, tokens[1], phase.iterations);
  }
  if (key == "duration") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    status = ParseDouble(source, tokens[1], phase.duration_seconds);
    if (!status.ok()) return status;
    if (phase.duration_seconds < 0.0) {
      return Err(source, tokens[1], "duration must be >= 0");
    }
    return util::Status::OK();
  }
  if (key == "rate") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    status = ParseDouble(source, tokens[1], phase.rate_per_second);
    if (!status.ok()) return status;
    if (phase.rate_per_second < 0.0) {
      return Err(source, tokens[1], "rate must be >= 0");
    }
    return util::Status::OK();
  }
  if (key == "arrival") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    if (tokens[1].text == "fixed") {
      phase.arrival = ArrivalProcess::kFixed;
    } else if (tokens[1].text == "poisson") {
      phase.arrival = ArrivalProcess::kPoisson;
    } else if (tokens[1].text == "burst") {
      phase.arrival = ArrivalProcess::kBurst;
    } else {
      return Err(source, tokens[1],
                 "unknown arrival process '" + tokens[1].text +
                     "' (expected fixed|poisson|burst)");
    }
    return util::Status::OK();
  }
  if (key == "tasks") {
    return ParseRange(source, tokens, phase.tasks_min, phase.tasks_max);
  }
  if (key == "workers") {
    return ParseRange(source, tokens, phase.workers_min, phase.workers_max);
  }
  if (key == "priority") {
    return ParseRange(source, tokens, phase.priority_min, phase.priority_max);
  }
  if (key == "seed_pool") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    status = ParseNonNegInt(source, tokens[1], phase.seed_pool);
    if (!status.ok()) return status;
    if (phase.seed_pool < 1) {
      return Err(source, tokens[1], "seed_pool must be >= 1");
    }
    return util::Status::OK();
  }
  if (key == "dist") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    if (tokens[1].text == "uniform") {
      phase.skewed = false;
    } else if (tokens[1].text == "skewed") {
      phase.skewed = true;
    } else {
      return Err(source, tokens[1],
                 "unknown distribution '" + tokens[1].text +
                     "' (expected uniform|skewed)");
    }
    return util::Status::OK();
  }
  if (key == "cache") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    return ParseCacheKeyword(source, tokens[1], /*allow_default=*/true,
                             phase.cache);
  }
  if (key == "restart") {
    status = ExpectArgs(source, tokens, 1);
    if (!status.ok()) return status;
    if (tokens[1].text == "on") {
      phase.restart = true;
    } else if (tokens[1].text == "off") {
      phase.restart = false;
    } else {
      return Err(source, tokens[1],
                 "expected on|off, got '" + tokens[1].text + "'");
    }
    return util::Status::OK();
  }
  if (key == "mix") {
    if (tokens.size() < 3 || (tokens.size() - 1) % 2 != 0) {
      return Err(source, tokens[0],
                 "'mix' expects op/weight pairs: mix OP W [OP W ...]");
    }
    std::vector<MixEntry> mix;
    int64_t total = 0;
    for (size_t i = 1; i + 1 < tokens.size(); i += 2) {
      MixEntry entry;
      status = ParseOpKind(source, tokens[i], entry.op);
      if (!status.ok()) return status;
      status = ParseNonNegInt(source, tokens[i + 1], entry.weight);
      if (!status.ok()) return status;
      for (const MixEntry& seen : mix) {
        if (seen.op == entry.op) {
          return Err(source, tokens[i],
                     "duplicate op kind '" + tokens[i].text + "' in mix");
        }
      }
      total += entry.weight;
      mix.push_back(entry);
    }
    if (total <= 0) {
      return Err(source, tokens[0], "mix weights must sum to > 0");
    }
    phase.mix = std::move(mix);
    return util::Status::OK();
  }
  return Err(source, tokens[0], "unknown phase key '" + key + "'");
}

/// Directory part of `path` including the trailing '/', or "" when there
/// is none -- what relative include paths join onto.
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "" : path.substr(0, slash + 1);
}

std::string StemOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos || dot == 0 ? base : base.substr(0, dot);
}

util::Status ParseInto(std::string_view text, const std::string& source,
                       ParseState& state);

/// `include "path"`: resolve against the including file's directory,
/// detect cycles, load, and parse into the same state.
util::Status HandleInclude(const std::string& source,
                           const std::vector<Token>& tokens,
                           ParseState& state) {
  util::Status status = ExpectArgs(source, tokens, 1);
  if (!status.ok()) return status;
  if (!tokens[1].quoted) {
    return Err(source, tokens[1], "include path must be a \"quoted\" string");
  }
  if (state.loader == nullptr || !*state.loader) {
    return Err(source, tokens[0], "includes are not available here");
  }
  std::string target = tokens[1].text;
  if (target.empty()) {
    return Err(source, tokens[1], "empty include path");
  }
  if (target[0] != '/') target = DirOf(source) + target;
  for (const std::string& open : state.include_stack) {
    if (open == target) {
      std::string chain;
      for (const std::string& entry : state.include_stack) {
        chain += entry + " -> ";
      }
      return Err(source, tokens[0],
                 "include cycle: " + chain + target);
    }
  }
  util::StatusOr<std::string> contents = (*state.loader)(target);
  if (!contents.ok()) {
    return Err(source, tokens[1],
               "cannot include '" + target +
                   "': " + contents.status().message());
  }
  return ParseInto(contents.value(), target, state);
}

/// Parses one document's statements into `state`. Pushes `source` onto
/// the include stack for the duration.
util::Status ParseInto(std::string_view text, const std::string& source,
                       ParseState& state) {
  state.include_stack.push_back(source);
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;

  // Block context: non-null while inside `template NAME {` / `phase NAME {`.
  PhaseSpec block;
  bool in_block = false;
  bool block_is_template = false;

  util::Status status;
  while (std::getline(lines, line)) {
    ++line_no;
    std::vector<Token> tokens;
    status = TokenizeLine(source, line, line_no, tokens);
    if (!status.ok()) break;
    if (tokens.empty()) continue;

    if (in_block) {
      if (tokens[0].text == "}") {
        status = ExpectArgs(source, tokens, 0);
        if (!status.ok()) break;
        if (block_is_template) {
          state.templates[block.name] = block;
        } else {
          state.spec.phases.push_back(block);
          // A later phase may extend an earlier one by name.
          state.templates[block.name] = block;
        }
        in_block = false;
        continue;
      }
      status = ApplyPhaseStatement(source, tokens, block);
      if (!status.ok()) break;
      continue;
    }

    const std::string& key = tokens[0].text;
    if (key == "template" || key == "phase") {
      // NAME [extends BASE] {
      bool has_extends = tokens.size() >= 3 && tokens[2].text == "extends";
      size_t expect = has_extends ? 4 : 2;
      if (tokens.size() != expect + 1 || tokens.back().text != "{") {
        status = Err(source, tokens[0],
                     "expected '" + key + " NAME [extends BASE] {'");
        break;
      }
      if (!IsIdentifier(tokens[1].text) || tokens[1].quoted) {
        status = Err(source, tokens[1],
                     "invalid " + key + " name '" + tokens[1].text + "'");
        break;
      }
      block = PhaseSpec{};
      if (has_extends) {
        auto it = state.templates.find(tokens[3].text);
        if (it == state.templates.end()) {
          status = Err(source, tokens[3],
                       "unknown template '" + tokens[3].text + "'");
          break;
        }
        block = it->second;
      }
      block.name = tokens[1].text;
      if (key == "phase") {
        bool duplicate = false;
        for (const PhaseSpec& existing : state.spec.phases) {
          if (existing.name == block.name) {
            status = Err(source, tokens[1],
                         "duplicate phase name '" + block.name + "'");
            duplicate = true;
            break;
          }
        }
        if (duplicate) break;
      }
      in_block = true;
      block_is_template = key == "template";
      continue;
    }
    if (key == "}") {
      status = Err(source, tokens[0], "unmatched '}'");
      break;
    }
    if (key == "include") {
      status = HandleInclude(source, tokens, state);
      if (!status.ok()) break;
      continue;
    }
    if (key == "workload") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      if (!IsIdentifier(tokens[1].text)) {
        status = Err(source, tokens[1],
                     "invalid workload name '" + tokens[1].text + "'");
        break;
      }
      state.spec.name = tokens[1].text;
      state.saw_workload_name = true;
      continue;
    }
    if (key == "seed") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      int64_t seed = 0;
      status = ParseNonNegInt(source, tokens[1], seed);
      if (!status.ok()) break;
      state.spec.seed = static_cast<uint64_t>(seed);
      continue;
    }
    if (key == "solver") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      if (!IsIdentifier(tokens[1].text)) {
        status = Err(source, tokens[1],
                     "invalid solver name '" + tokens[1].text + "'");
        break;
      }
      state.spec.solver = tokens[1].text;
      continue;
    }
    if (key == "policy") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      if (tokens[1].text == "block") {
        state.spec.policy = engine::OverloadPolicy::kBlock;
      } else if (tokens[1].text == "reject") {
        state.spec.policy = engine::OverloadPolicy::kReject;
      } else if (tokens[1].text == "shed") {
        state.spec.policy = engine::OverloadPolicy::kShedOldest;
      } else {
        status = Err(source, tokens[1],
                     "unknown admission policy '" + tokens[1].text +
                         "' (expected block|reject|shed)");
        break;
      }
      continue;
    }
    if (key == "queue_depth") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      status = ParseNonNegInt(source, tokens[1], state.spec.queue_depth);
      if (!status.ok()) break;
      if (state.spec.queue_depth < 1) {
        status = Err(source, tokens[1], "queue_depth must be >= 1");
        break;
      }
      continue;
    }
    if (key == "cache") {
      status = ExpectArgs(source, tokens, 1);
      if (!status.ok()) break;
      status = ParseCacheKeyword(source, tokens[1], /*allow_default=*/false,
                                 state.spec.cache_mode);
      if (!status.ok()) break;
      continue;
    }
    if (key == "cache_entries") {
      status = ExpectArgs(source, tokens, 2);
      if (!status.ok()) break;
      status =
          ParseNonNegInt(source, tokens[1], state.spec.cache_result_entries);
      if (!status.ok()) break;
      status =
          ParseNonNegInt(source, tokens[2], state.spec.cache_graph_entries);
      if (!status.ok()) break;
      continue;
    }
    status = Err(source, tokens[0], "unknown statement '" + key + "'");
    break;
  }

  if (status.ok() && in_block) {
    Token eof;
    eof.line = line_no;
    eof.col = 1;
    status = Err(source, eof,
                 "unterminated block for '" + block.name + "' (missing '}')");
  }
  state.include_stack.pop_back();
  return status;
}

std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSubmit: return "submit";
    case OpKind::kUrgent: return "urgent";
    case OpKind::kCached: return "cached";
    case OpKind::kUncached: return "uncached";
    case OpKind::kCancel: return "cancel";
  }
  return "submit";
}

std::string_view PhaseModeName(PhaseMode mode) {
  return mode == PhaseMode::kClosed ? "closed" : "open";
}

std::string_view ArrivalName(ArrivalProcess arrival) {
  switch (arrival) {
    case ArrivalProcess::kFixed: return "fixed";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBurst: return "burst";
  }
  return "fixed";
}

std::string_view CacheModeKeyword(engine::CacheMode mode) {
  switch (mode) {
    case engine::CacheMode::kDefault: return "default";
    case engine::CacheMode::kOff: return "off";
    case engine::CacheMode::kReadOnly: return "ro";
    case engine::CacheMode::kWriteOnly: return "wo";
    case engine::CacheMode::kReadWrite: return "rw";
  }
  return "off";
}

std::string_view PolicyKeyword(engine::OverloadPolicy policy) {
  switch (policy) {
    case engine::OverloadPolicy::kBlock: return "block";
    case engine::OverloadPolicy::kReject: return "reject";
    case engine::OverloadPolicy::kShedOldest: return "shed";
  }
  return "block";
}

util::StatusOr<WorkloadSpec> ParseWorkloadText(std::string_view text,
                                               const std::string& source_name,
                                               const FileLoader& loader) {
  ParseState state;
  state.loader = &loader;
  util::Status status = ParseInto(text, source_name, state);
  if (!status.ok()) return status;
  if (!state.saw_workload_name) state.spec.name = StemOf(source_name);
  if (state.spec.name.empty()) state.spec.name = "workload";
  return std::move(state.spec);
}

util::StatusOr<WorkloadSpec> ParseWorkloadFile(const std::string& path) {
  FileLoader loader = [](const std::string& target)
      -> util::StatusOr<std::string> {
    std::ifstream in(target, std::ios::binary);
    if (!in) {
      return util::Status::NotFound("cannot open '" + target + "'");
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
  };
  util::StatusOr<std::string> text = loader(path);
  if (!text.ok()) return text.status();
  return ParseWorkloadText(text.value(), path, loader);
}

std::string DumpSpec(const WorkloadSpec& spec) {
  std::string out;
  out += "workload " + spec.name + "\n";
  out += "seed " + std::to_string(spec.seed) + "\n";
  out += "solver " + spec.solver + "\n";
  out += "policy " + std::string(PolicyKeyword(spec.policy)) + "\n";
  out += "queue_depth " + std::to_string(spec.queue_depth) + "\n";
  out += "cache " + std::string(CacheModeKeyword(spec.cache_mode)) + "\n";
  out += "cache_entries " + std::to_string(spec.cache_result_entries) + " " +
         std::to_string(spec.cache_graph_entries) + "\n";
  for (const PhaseSpec& phase : spec.phases) {
    out += "\nphase " + phase.name + " {\n";
    out += "  mode " + std::string(PhaseModeName(phase.mode)) + "\n";
    out += "  submitters " + std::to_string(phase.submitters) + "\n";
    out += "  iterations " + std::to_string(phase.iterations) + "\n";
    out += "  duration " + FormatDouble(phase.duration_seconds) + "\n";
    out += "  rate " + FormatDouble(phase.rate_per_second) + "\n";
    out += "  arrival " + std::string(ArrivalName(phase.arrival)) + "\n";
    out += "  tasks " + std::to_string(phase.tasks_min) + " " +
           std::to_string(phase.tasks_max) + "\n";
    out += "  workers " + std::to_string(phase.workers_min) + " " +
           std::to_string(phase.workers_max) + "\n";
    out += "  priority " + std::to_string(phase.priority_min) + " " +
           std::to_string(phase.priority_max) + "\n";
    out += "  seed_pool " + std::to_string(phase.seed_pool) + "\n";
    out += std::string("  dist ") + (phase.skewed ? "skewed" : "uniform") +
           "\n";
    out += "  cache " + std::string(CacheModeKeyword(phase.cache)) + "\n";
    out += std::string("  restart ") + (phase.restart ? "on" : "off") + "\n";
    out += "  mix";
    for (const MixEntry& entry : phase.mix) {
      out += " " + std::string(OpKindName(entry.op)) + " " +
             std::to_string(entry.weight);
    }
    out += "\n}\n";
  }
  return out;
}

}  // namespace rdbsc::wl
