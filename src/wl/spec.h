#ifndef RDBSC_WL_SPEC_H_
#define RDBSC_WL_SPEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "engine/server.h"
#include "util/status.h"

namespace rdbsc::wl {

/// Declarative workload specs (genny-style: a workload is *data*, checked
/// into `workloads/*.wl`, not a hand-written bench binary). A spec names
/// an admission-server configuration plus an ordered list of phases; the
/// compiler (wl/compile.h) lowers it into fully scripted per-submitter
/// schedules, and the runner (wl/runner.h) replays those against
/// engine::Server with bit-identical per-ticket results across worker
/// counts and reruns.
///
/// Format (line oriented; `#` starts a comment; one statement per line;
/// a block opens with `{` as the last token of its line and closes with
/// `}` alone on a line; blocks do not nest):
///
///   workload rush_hour          # document name (optional)
///   seed 42                     # root seed of every derived RNG stream
///   solver dc                   # engine solver registry name
///   policy block                # block | reject | shed
///   queue_depth 64
///   cache rw                    # off | ro | wo | rw (server default)
///   cache_entries 4096 1024     # result entries, graph entries
///
///   include "fragments/common.wl"   # relative to the including file
///
///   template base {             # reusable phase fragment
///     submitters 4
///     tasks 6 12
///   }
///
///   phase ramp extends base {   # start from `base`, then override
///     mode open                 # closed | open
///     rate 40                   # arrivals / second / submitter (open)
///     duration 1.5              # seconds; op count = floor(rate*duration)
///     arrival poisson           # fixed | poisson | burst
///     iterations 8              # ops / submitter (closed, or open
///                               # without a duration)
///     workers 10 24             # instance worker count range
///     priority 0 3              # priority range (urgent ops use the max)
///     seed_pool 1000000         # distinct instance seeds (repeat rate)
///     dist uniform              # uniform | skewed task/worker locations
///     cache default             # off | ro | wo | rw | default
///     restart on                # drain + fresh server before this phase
///     mix submit 3 cached 1 cancel 1   # weighted op mix
///   }
///
/// Op kinds in a `mix`: `submit` (plain request), `urgent` (priority
/// pinned to the phase maximum), `cached` (CacheMode::kReadWrite),
/// `uncached` (CacheMode::kOff), `cancel` (admitted, then completed as
/// kCancelled at dispatch -- SubmitControls::cancel_at_dispatch, the
/// replay-deterministic cancel).
///
/// Composition: `include "file"` splices another file's statements
/// (templates, settings, phases) into the current document; includes may
/// nest and cycles are detected. `phase NAME extends OTHER` starts from a
/// template's (or earlier phase's) resolved settings and overrides.
///
/// Every parse error is positioned: "file:line:col: message".

/// How a phase issues its ops.
enum class PhaseMode {
  /// Fixed concurrency: each submitter submits, waits for the result,
  /// then submits its next op.
  kClosed,
  /// Deterministic arrival process: each submitter submits its whole
  /// schedule at compiled arrival offsets without waiting, then waits for
  /// every ticket.
  kOpen,
};

/// Arrival-offset shape of an open phase (offsets are *compiled into*
/// the schedule, so replays see identical schedules whatever the wall
/// clock does).
enum class ArrivalProcess {
  kFixed,    ///< evenly spaced: offset_i = i / rate
  kPoisson,  ///< exponential gaps drawn from the phase stream
  kBurst,    ///< groups of 8 back-to-back, groups spaced 8 / rate apart
};

/// One weighted entry of a phase's op mix.
enum class OpKind { kSubmit, kUrgent, kCached, kUncached, kCancel };

struct MixEntry {
  OpKind op = OpKind::kSubmit;
  int64_t weight = 1;
};

/// One named phase, fully resolved (template inheritance is applied at
/// parse time; a PhaseSpec never references another).
struct PhaseSpec {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  int64_t submitters = 2;
  /// Ops per submitter. Open phases with duration > 0 ignore this and
  /// derive floor(rate * duration) instead.
  int64_t iterations = 4;
  double duration_seconds = 0.0;
  double rate_per_second = 0.0;  ///< open phases only; must be > 0 there
  ArrivalProcess arrival = ArrivalProcess::kFixed;
  int64_t tasks_min = 6, tasks_max = 12;
  int64_t workers_min = 10, workers_max = 24;
  int64_t priority_min = 0, priority_max = 0;
  /// Instance seeds are drawn from [1, seed_pool]; a small pool yields
  /// repeats (cache hits / single-flight collapses).
  int64_t seed_pool = 1'000'000;
  bool skewed = false;  ///< gen::SpatialDistribution of tasks and workers
  engine::CacheMode cache = engine::CacheMode::kDefault;
  /// Drain and replace the server before this phase starts.
  bool restart = false;
  std::vector<MixEntry> mix = {{OpKind::kSubmit, 1}};
};

/// A parsed workload document: server settings plus its phases, with all
/// includes spliced and templates resolved.
struct WorkloadSpec {
  std::string name;  ///< `workload NAME`, or the source name's stem
  uint64_t seed = 1;
  std::string solver = "dc";
  engine::OverloadPolicy policy = engine::OverloadPolicy::kBlock;
  int64_t queue_depth = 256;
  engine::CacheMode cache_mode = engine::CacheMode::kOff;
  int64_t cache_result_entries = 4096;
  int64_t cache_graph_entries = 1024;
  std::vector<PhaseSpec> phases;
};

/// Resolves an `include` path to file contents; kNotFound (or any error)
/// fails the parse with the include statement's position attached. Tests
/// inject in-memory file sets through this seam.
using FileLoader =
    std::function<util::StatusOr<std::string>(const std::string& path)>;

/// Parses `text` as a workload document named `source_name` (used in
/// error positions and include resolution: relative include paths join
/// onto source_name's directory). `loader` serves include targets; with
/// no loader any `include` is an error.
util::StatusOr<WorkloadSpec> ParseWorkloadText(
    std::string_view text, const std::string& source_name,
    const FileLoader& loader = nullptr);

/// Parses the file at `path`, serving includes from the filesystem
/// relative to the including file.
util::StatusOr<WorkloadSpec> ParseWorkloadFile(const std::string& path);

/// Canonical printer: every field of every phase, explicitly, in
/// declaration order -- no includes, templates, defaults, or comments
/// survive. Fixed point of parse ∘ dump: DumpSpec(parse(DumpSpec(s)))
/// == DumpSpec(s) for every parseable s (the round-trip test surface).
std::string DumpSpec(const WorkloadSpec& spec);

/// Enum <-> keyword names shared by the parser, the printer, and the
/// runner's metric labels.
std::string_view OpKindName(OpKind kind);
std::string_view PhaseModeName(PhaseMode mode);
std::string_view ArrivalName(ArrivalProcess arrival);
std::string_view CacheModeKeyword(engine::CacheMode mode);
std::string_view PolicyKeyword(engine::OverloadPolicy policy);

}  // namespace rdbsc::wl

#endif  // RDBSC_WL_SPEC_H_
