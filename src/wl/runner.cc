#include "wl/runner.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>

#include "engine/fingerprint.h"
#include "gen/workload.h"
#include "obs/json.h"
#include "util/deadline.h"
#include "util/hash.h"

namespace rdbsc::wl {
namespace {

/// The instance a compiled op stands for: the stress harness's generator
/// settings (wide cones, long periods -- dense candidate graphs), sized
/// and seeded by the schedule, with the phase's spatial distribution.
core::Instance MakeInstance(const CompiledOp& op) {
  gen::WorkloadConfig config;
  config.num_tasks = op.num_tasks;
  config.num_workers = op.num_workers;
  config.seed = op.instance_seed;
  config.angle_range = 3.14159;
  config.start_min = 0.0;
  config.start_max = 2.0;
  config.rt_min = 2.0;
  config.rt_max = 4.0;
  config.v_min = 0.3;
  config.v_max = 0.6;
  if (op.skewed) {
    config.task_distribution = gen::SpatialDistribution::kSkewed;
    config.worker_distribution = gen::SpatialDistribution::kSkewed;
  }
  return gen::GenerateInstance(config);
}

engine::ServerConfig MakeServerConfig(const CompiledWorkload& compiled,
                                      const ReplayOptions& options,
                                      obs::Registry* registry) {
  engine::ServerConfig config;
  config.engine.solver_name = compiled.solver;
  config.engine.solver_options.seed = compiled.seed;
  config.engine.metrics = registry;
  config.num_workers = options.num_workers < 1 ? 1 : options.num_workers;
  config.max_queue_depth = static_cast<int>(compiled.queue_depth);
  config.overload_policy = compiled.policy;
  config.cache_mode = compiled.cache_mode;
  config.cache_result_entries =
      static_cast<size_t>(compiled.cache_result_entries);
  config.cache_graph_entries =
      static_cast<size_t>(compiled.cache_graph_entries);
  return config;
}

/// Sums one generation's counters into the running totals; the
/// instantaneous fields (queue depth, latency percentiles) are
/// last-writer-wins, i.e. the final generation's.
void AccumulateStats(const engine::ServerStats& generation,
                     engine::ServerStats& total) {
  engine::ServerStats sum = generation;
  sum.submitted += total.submitted;
  sum.admitted += total.admitted;
  sum.rejected += total.rejected;
  sum.shed += total.shed;
  sum.completed += total.completed;
  sum.deadline_exceeded += total.deadline_exceeded;
  sum.cancelled += total.cancelled;
  sum.failed += total.failed;
  sum.cache_hits += total.cache_hits;
  sum.cache_misses += total.cache_misses;
  sum.cache_evictions += total.cache_evictions;
  sum.collapsed += total.collapsed;
  total = sum;
}

/// Folds a retiring generation's server.* metrics into the replay
/// registry snapshot, re-labelled with {gen=N} so generations stay
/// distinguishable in the results document.
void ImportServerMetrics(const engine::Server& server, int generation,
                         std::vector<obs::MetricSnapshot>& out) {
  obs::RegistrySnapshot snapshot = server.metrics().Snapshot();
  for (obs::MetricSnapshot& metric : snapshot.metrics) {
    metric.labels.emplace_back("gen", std::to_string(generation));
    std::sort(metric.labels.begin(), metric.labels.end());
    out.push_back(std::move(metric));
  }
}

struct OpOutcome {
  std::string fingerprint;
  double latency_seconds = 0.0;
  util::StatusCode code = util::StatusCode::kOk;
};

/// Submits one op and waits for its result. Submit errors (possible only
/// under capacity-guarded reject/shed configs or shutdown races, neither
/// of which a compiled workload produces) still yield a fingerprint so
/// slot alignment survives.
OpOutcome RunOp(engine::Server& server, const CompiledOp& op) {
  OpOutcome outcome;
  engine::SubmitControls controls;
  controls.priority = op.priority;
  controls.cache = op.cache;
  controls.cancel_at_dispatch = op.op == OpKind::kCancel;
  auto t0 = std::chrono::steady_clock::now();
  util::StatusOr<engine::Ticket> ticket =
      server.Submit(MakeInstance(op), controls);
  if (!ticket.ok()) {
    outcome.fingerprint = engine::ResultFingerprint(
        util::StatusOr<EngineResult>(ticket.status()));
    outcome.code = ticket.status().code();
    outcome.latency_seconds = util::SecondsSince(t0);
    return outcome;
  }
  const util::StatusOr<EngineResult>& result = ticket.value().Wait();
  outcome.fingerprint = engine::ResultFingerprint(result);
  outcome.code = result.ok() ? util::StatusCode::kOk : result.status().code();
  outcome.latency_seconds = util::SecondsSince(t0);
  return outcome;
}

void RecordOutcome(obs::Registry& registry, const CompiledPhase& phase,
                   const CompiledOp& op, const OpOutcome& outcome,
                   PhaseReport& report, util::Mutex& report_mu) {
  const char* bucket = outcome.code == util::StatusCode::kOk ? "ok"
                       : outcome.code == util::StatusCode::kCancelled
                           ? "cancelled"
                           : "error";
  registry
      .GetCounter("wl.ops", {{"phase", phase.name},
                             {"op", std::string(OpKindName(op.op))},
                             {"outcome", bucket}})
      .Increment();
  registry
      .GetHistogram("wl.op_seconds", {{"phase", phase.name}}, 1e-9)
      .Observe(outcome.latency_seconds);
  util::MutexLock lock(report_mu);
  ++report.ops;
  if (outcome.code == util::StatusCode::kOk) {
    ++report.ok;
  } else if (outcome.code == util::StatusCode::kCancelled) {
    ++report.cancelled;
  } else {
    ++report.errors;
  }
}

}  // namespace

util::StatusOr<ReplayReport> ReplayWorkload(const CompiledWorkload& compiled,
                                            const ReplayOptions& options) {
  obs::Registry local_registry;
  obs::Registry* registry =
      options.metrics != nullptr ? options.metrics : &local_registry;
  std::vector<obs::MetricSnapshot> imported_server_metrics;

  ReplayReport report;
  auto replay_t0 = std::chrono::steady_clock::now();

  std::unique_ptr<engine::Server> server;
  auto start_generation = [&]() -> util::Status {
    util::StatusOr<std::unique_ptr<engine::Server>> created =
        engine::Server::Create(MakeServerConfig(compiled, options, registry));
    if (!created.ok()) return created.status();
    server = std::move(created.value());
    ++report.server_generations;
    return util::Status::OK();
  };
  auto retire_generation = [&]() {
    if (server == nullptr) return;
    server->Shutdown(engine::ShutdownMode::kDrain);
    AccumulateStats(server->Stats(), report.server);
    ImportServerMetrics(*server, report.server_generations,
                        imported_server_metrics);
    server.reset();
  };

  util::Status status = start_generation();
  if (!status.ok()) return status;

  for (const CompiledPhase& phase : compiled.phases) {
    if (phase.restart) {
      retire_generation();
      status = start_generation();
      if (!status.ok()) return status;
    }

    PhaseReport phase_report;
    phase_report.name = phase.name;
    // Guards the equally local phase_report tallies.
    // LINT-ALLOW(unguarded-mutex): function-local mutex; GUARDED_BY members only
    util::Mutex report_mu;
    auto phase_t0 = std::chrono::steady_clock::now();

    const size_t num_submitters = phase.submitters.size();
    std::vector<std::vector<std::string>> prints(num_submitters);
    std::vector<std::thread> threads;
    threads.reserve(num_submitters);
    for (size_t s = 0; s < num_submitters; ++s) {
      threads.emplace_back([&, s] {
        const std::vector<CompiledOp>& ops = phase.submitters[s].ops;
        prints[s].reserve(ops.size());
        if (phase.mode == PhaseMode::kClosed) {
          for (const CompiledOp& op : ops) {
            OpOutcome outcome = RunOp(*server, op);
            RecordOutcome(*registry, phase, op, outcome, phase_report,
                          report_mu);
            prints[s].push_back(std::move(outcome.fingerprint));
          }
          return;
        }
        // Open loop: submit the whole schedule (paced when dilation > 0),
        // then wait for every ticket in arrival order.
        struct Pending {
          util::StatusOr<engine::Ticket> ticket;
          std::chrono::steady_clock::time_point t0;
        };
        std::vector<Pending> pending;
        pending.reserve(ops.size());
        for (const CompiledOp& op : ops) {
          if (options.time_dilation > 0.0) {
            std::this_thread::sleep_until(
                phase_t0 + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   op.arrival_offset_seconds *
                                   options.time_dilation)));
          }
          engine::SubmitControls controls;
          controls.priority = op.priority;
          controls.cache = op.cache;
          controls.cancel_at_dispatch = op.op == OpKind::kCancel;
          Pending entry{server->Submit(MakeInstance(op), controls),
                        std::chrono::steady_clock::now()};
          pending.push_back(std::move(entry));
        }
        for (size_t i = 0; i < pending.size(); ++i) {
          OpOutcome outcome;
          if (!pending[i].ticket.ok()) {
            outcome.fingerprint =
                engine::ResultFingerprint(util::StatusOr<EngineResult>(
                    pending[i].ticket.status()));
            outcome.code = pending[i].ticket.status().code();
          } else {
            const util::StatusOr<EngineResult>& result =
                pending[i].ticket.value().Wait();
            outcome.fingerprint = engine::ResultFingerprint(result);
            outcome.code =
                result.ok() ? util::StatusCode::kOk : result.status().code();
          }
          outcome.latency_seconds = util::SecondsSince(pending[i].t0);
          RecordOutcome(*registry, phase, ops[i], outcome, phase_report,
                        report_mu);
          prints[s].push_back(std::move(outcome.fingerprint));
        }
      });
    }
    for (std::thread& t : threads) t.join();

    phase_report.wall_seconds = util::SecondsSince(phase_t0);
    report.phases.push_back(std::move(phase_report));
    for (std::vector<std::string>& per : prints) {
      report.fingerprints.insert(report.fingerprints.end(),
                                 std::make_move_iterator(per.begin()),
                                 std::make_move_iterator(per.end()));
    }
  }

  retire_generation();
  report.wall_seconds = util::SecondsSince(replay_t0);

  obs::RegistrySnapshot snapshot = registry->Snapshot();
  for (obs::MetricSnapshot& metric : imported_server_metrics) {
    snapshot.metrics.push_back(std::move(metric));
  }
  // Attach each phase's latency distribution to its report.
  for (PhaseReport& phase : report.phases) {
    for (const obs::MetricSnapshot& metric : snapshot.metrics) {
      if (metric.name == "wl.op_seconds" &&
          metric.labels ==
              obs::Labels{{"phase", phase.name}}) {
        phase.latency = metric.histogram;
        break;
      }
    }
  }
  report.metrics = std::move(snapshot);
  return report;
}

std::string FingerprintDigest(const std::vector<std::string>& fingerprints) {
  util::Hasher hasher;
  for (const std::string& print : fingerprints) {
    hasher.Mix(std::string_view(print));
  }
  return "n=" + std::to_string(fingerprints.size()) + ";h=" +
         hasher.Digest().ToHex();
}

std::string ResultsJson(const CompiledWorkload& compiled,
                        const ReplayReport& report,
                        const ReplayOptions& options) {
  std::string out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema");
  w.String(obs::kResultsSchemaName);
  w.Key("schema_version");
  w.Int(obs::kResultsSchemaVersion);
  w.Key("bench");
  w.String("workload_" + compiled.name);
  w.Key("options");
  w.BeginObject();
  w.Key("base");
  w.Int(compiled.total_ops);
  w.Key("seeds");
  w.Int(1);
  w.Key("threads");
  w.Int(options.num_workers < 1 ? 1 : options.num_workers);
  w.Key("paper_scale");
  w.Bool(false);
  w.EndObject();
  w.Key("workload");
  w.BeginObject();
  w.Key("name");
  w.String(compiled.name);
  w.Key("solver");
  w.String(compiled.solver);
  w.Key("seed");
  w.Int(static_cast<int64_t>(compiled.seed));
  w.Key("policy");
  w.String(PolicyKeyword(compiled.policy));
  w.Key("fingerprint_digest");
  w.String(FingerprintDigest(report.fingerprints));
  w.Key("server_generations");
  w.Int(report.server_generations);
  w.Key("wall_seconds");
  w.Double(report.wall_seconds);
  w.EndObject();

  w.Key("tables");
  w.BeginArray();

  w.BeginObject();
  w.Key("metric");
  w.String("phase outcomes (count)");
  w.Key("x_label");
  w.String("outcome");
  w.Key("rows");
  w.BeginArray();
  for (const PhaseReport& phase : report.phases) w.String(phase.name);
  w.EndArray();
  w.Key("columns");
  w.BeginArray();
  w.String("ops");
  w.String("ok");
  w.String("cancelled");
  w.String("errors");
  w.EndArray();
  w.Key("cells");
  w.BeginArray();
  for (const PhaseReport& phase : report.phases) {
    w.BeginArray();
    w.Int(phase.ops);
    w.Int(phase.ok);
    w.Int(phase.cancelled);
    w.Int(phase.errors);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();

  w.BeginObject();
  w.Key("metric");
  w.String("op latency (seconds)");
  w.Key("x_label");
  w.String("statistic");
  w.Key("rows");
  w.BeginArray();
  for (const PhaseReport& phase : report.phases) w.String(phase.name);
  w.EndArray();
  w.Key("columns");
  w.BeginArray();
  w.String("p50");
  w.String("p95");
  w.String("p99");
  w.String("max");
  w.EndArray();
  w.Key("cells");
  w.BeginArray();
  for (const PhaseReport& phase : report.phases) {
    w.BeginArray();
    w.Double(phase.latency.p50());
    w.Double(phase.latency.p95());
    w.Double(phase.latency.p99());
    w.Double(phase.latency.max());
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();

  w.BeginObject();
  w.Key("metric");
  w.String("server totals (count)");
  w.Key("x_label");
  w.String("counter");
  w.Key("rows");
  w.BeginArray();
  w.String("total");
  w.EndArray();
  w.Key("columns");
  w.BeginArray();
  w.String("submitted");
  w.String("admitted");
  w.String("completed");
  w.String("cancelled");
  w.String("cache_hits");
  w.String("collapsed");
  w.String("generations");
  w.EndArray();
  w.Key("cells");
  w.BeginArray();
  w.BeginArray();
  w.Int(report.server.submitted);
  w.Int(report.server.admitted);
  w.Int(report.server.completed);
  w.Int(report.server.cancelled);
  w.Int(report.server.cache_hits);
  w.Int(report.server.collapsed);
  w.Int(report.server_generations);
  w.EndArray();
  w.EndArray();
  w.EndObject();

  w.EndArray();

  w.Key("metrics");
  w.BeginArray();
  for (const obs::MetricSnapshot& metric : report.metrics.metrics) {
    obs::AppendMetric(w, metric);
  }
  w.EndArray();

  w.EndObject();
  out += "\n";
  return out;
}

}  // namespace rdbsc::wl
