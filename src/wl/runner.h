#ifndef RDBSC_WL_RUNNER_H_
#define RDBSC_WL_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/server.h"
#include "obs/registry.h"
#include "util/status.h"
#include "wl/compile.h"

namespace rdbsc::wl {

/// How to replay a compiled workload.
struct ReplayOptions {
  /// Server dispatch threads (clamped to >= 1). Per-ticket results are
  /// bit-identical across worker counts -- that is the contract the
  /// replay tests assert at {1, 2, 8}.
  int num_workers = 1;
  /// Scales open-loop arrival offsets into wall-clock sleeps: 1.0 replays
  /// the compiled pacing, 0.0 floods (no sleeps at all -- the CI setting;
  /// fingerprints are pacing-independent by construction, only latency
  /// metrics change).
  double time_dilation = 1.0;
  /// Optional external sink for the wl.* and engine.* metrics (unowned,
  /// must outlive the call); null records into a replay-local registry.
  /// Either way ReplayReport::metrics carries the final snapshot.
  obs::Registry* metrics = nullptr;
};

/// Per-phase outcome tallies plus the submit -> completion latency
/// distribution of the phase's ops.
struct PhaseReport {
  std::string name;
  int64_t ops = 0;
  int64_t ok = 0;
  int64_t cancelled = 0;  ///< compiled cancel ops (kCancelled results)
  int64_t errors = 0;     ///< any other non-OK completion
  double wall_seconds = 0.0;
  obs::HistogramSnapshot latency;
};

/// Everything one replay produced. `fingerprints` holds one
/// engine::ResultFingerprint per compiled op in (phase, submitter,
/// op-index) order -- scheduling-independent, so two replays compare with
/// a single ==. Wall-clock fields and metrics are observational and may
/// differ between replays; fingerprints may not.
struct ReplayReport {
  std::vector<std::string> fingerprints;
  std::vector<PhaseReport> phases;
  /// Counters summed over every server generation (a `restart on` phase
  /// drains and replaces the server); the latency/queue fields are the
  /// final generation's.
  engine::ServerStats server;
  int server_generations = 0;
  double wall_seconds = 0.0;
  /// Final snapshot of the replay registry: wl.ops{phase,op,outcome}
  /// counters, wl.op_seconds{phase} histograms, the engine.* stage
  /// metrics, and each generation's server.* metrics re-labelled with
  /// {gen=N}.
  obs::RegistrySnapshot metrics;
};

/// Replays `compiled` against a fresh engine::Server: one real thread per
/// scripted submitter, phases strictly in order with a full barrier (all
/// tickets completed) between consecutive phases. Closed-mode submitters
/// wait for each ticket before their next op; open-mode submitters submit
/// the whole schedule (paced by arrival offsets when time_dilation > 0)
/// and then wait. Fails only on setup errors (e.g. unknown solver); op
/// failures land in the fingerprints and tallies instead.
util::StatusOr<ReplayReport> ReplayWorkload(const CompiledWorkload& compiled,
                                            const ReplayOptions& options = {});

/// Digest of a fingerprint vector: "n=<count>;h=<32 hex>". One comparable
/// line per replay for benches and logs; tests compare full vectors for
/// better failure messages.
std::string FingerprintDigest(const std::vector<std::string>& fingerprints);

/// Renders a replay as a schema-valid results document
/// (obs::kResultsSchemaName, validated by tools/check_bench_json.py):
/// per-phase outcome and latency tables, server totals, the full metric
/// snapshot, and the fingerprint digest.
std::string ResultsJson(const CompiledWorkload& compiled,
                        const ReplayReport& report,
                        const ReplayOptions& options);

}  // namespace rdbsc::wl

#endif  // RDBSC_WL_RUNNER_H_
