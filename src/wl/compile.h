#ifndef RDBSC_WL_COMPILE_H_
#define RDBSC_WL_COMPILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "wl/spec.h"

namespace rdbsc::wl {

/// Compilation caps: a parseable spec may still describe an absurd
/// schedule; these bound what Compile accepts so the fuzz contract
/// ("every compiled schedule is replayable") holds -- a compiled workload
/// can always be replayed to completion in bounded time and memory.
inline constexpr int64_t kMaxPhases = 64;
inline constexpr int64_t kMaxSubmitters = 64;
inline constexpr int64_t kMaxOpsPerSubmitter = 10'000;
inline constexpr int64_t kMaxTotalOps = 200'000;
inline constexpr int64_t kMaxInstanceSize = 500;  ///< tasks or workers
inline constexpr int64_t kMaxPriority = 10'000;
inline constexpr double kMaxDurationSeconds = 3'600.0;
inline constexpr double kMaxRatePerSecond = 1e6;

/// One fully resolved submission: every field the runner needs, with all
/// randomness (mix roll, instance seed/size, priority, arrival offset)
/// already drawn at compile time -- replay draws nothing, which is what
/// makes two replays of one compiled workload submit identical requests.
struct CompiledOp {
  OpKind op = OpKind::kSubmit;
  uint64_t instance_seed = 0;
  int num_tasks = 0;
  int num_workers = 0;
  int priority = 0;
  engine::CacheMode cache = engine::CacheMode::kDefault;
  bool skewed = false;
  /// Seconds after phase start (open phases; 0.0 in closed phases).
  double arrival_offset_seconds = 0.0;
};

/// The ordered schedule of one scripted submitter thread.
struct CompiledSubmitter {
  std::vector<CompiledOp> ops;
};

struct CompiledPhase {
  std::string name;
  PhaseMode mode = PhaseMode::kClosed;
  bool restart = false;
  std::vector<CompiledSubmitter> submitters;
  int64_t total_ops = 0;
};

/// A lowered workload: server settings plus per-phase, per-submitter op
/// schedules. Pure data -- identical for every Compile of one spec.
struct CompiledWorkload {
  std::string name;
  std::string solver;
  uint64_t seed = 1;
  engine::OverloadPolicy policy = engine::OverloadPolicy::kBlock;
  int64_t queue_depth = 256;
  engine::CacheMode cache_mode = engine::CacheMode::kOff;
  int64_t cache_result_entries = 4096;
  int64_t cache_graph_entries = 1024;
  std::vector<CompiledPhase> phases;
  int64_t total_ops = 0;
};

/// Lowers `spec` into scripted schedules. Each (phase, submitter) pair
/// gets an independent RNG stream derived from the root seed with
/// util::Hasher, so schedules are stable under reordering of unrelated
/// phases and under submitter-count changes elsewhere.
///
/// Rejects (kInvalidArgument) anything outside the caps above, an open
/// phase without a positive rate, a solver name missing from the
/// registry, and -- the determinism guard -- a reject/shed admission
/// policy whose worst-case outstanding submissions exceed queue_depth:
/// whether a given request gets rejected/shed depends on dispatch timing,
/// so a checked-in scenario must either block under overload or stay
/// within provable queue capacity.
util::StatusOr<CompiledWorkload> CompileWorkload(const WorkloadSpec& spec);

/// Deterministic full dump of a compiled workload (every op of every
/// schedule). The fuzz test's double-compile oracle: two Compile calls on
/// one spec must produce byte-identical debug strings.
std::string CompiledDebugString(const CompiledWorkload& compiled);

}  // namespace rdbsc::wl

#endif  // RDBSC_WL_COMPILE_H_
