#include "wl/compile.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/registry.h"
#include "util/hash.h"
#include "util/rng.h"

namespace rdbsc::wl {
namespace {

util::Status CompileError(const std::string& phase, const std::string& msg) {
  if (phase.empty()) {
    return util::Status::InvalidArgument("workload: " + msg);
  }
  return util::Status::InvalidArgument("phase '" + phase + "': " + msg);
}

/// Ops per submitter of `phase`: closed phases run `iterations`; open
/// phases with a duration derive floor(rate * duration) -- resolved here,
/// at compile time, so the schedule *length* never depends on the wall
/// clock -- and fall back to `iterations` without one.
int64_t OpsPerSubmitter(const PhaseSpec& phase) {
  if (phase.mode == PhaseMode::kOpen && phase.duration_seconds > 0.0) {
    return static_cast<int64_t>(
        std::floor(phase.rate_per_second * phase.duration_seconds + 1e-9));
  }
  return phase.iterations;
}

util::Status ValidatePhase(const PhaseSpec& phase) {
  if (phase.submitters < 1 || phase.submitters > kMaxSubmitters) {
    return CompileError(phase.name,
                        "submitters must be in [1, " +
                            std::to_string(kMaxSubmitters) + "], got " +
                            std::to_string(phase.submitters));
  }
  if (phase.mode == PhaseMode::kOpen) {
    if (phase.rate_per_second <= 0.0) {
      return CompileError(phase.name, "open mode requires rate > 0");
    }
    if (phase.rate_per_second > kMaxRatePerSecond) {
      return CompileError(phase.name, "rate exceeds the cap");
    }
    if (phase.duration_seconds > kMaxDurationSeconds) {
      return CompileError(phase.name, "duration exceeds the cap");
    }
  }
  int64_t ops = OpsPerSubmitter(phase);
  if (ops < 1 || ops > kMaxOpsPerSubmitter) {
    return CompileError(
        phase.name, "ops per submitter must be in [1, " +
                        std::to_string(kMaxOpsPerSubmitter) + "], got " +
                        std::to_string(ops));
  }
  if (phase.tasks_min > phase.tasks_max ||
      phase.workers_min > phase.workers_max ||
      phase.priority_min > phase.priority_max || phase.seed_pool < 1) {
    return CompileError(phase.name, "empty range");
  }
  if (phase.tasks_min < 1 || phase.tasks_max > kMaxInstanceSize) {
    return CompileError(phase.name, "tasks range must be within [1, " +
                                        std::to_string(kMaxInstanceSize) +
                                        "]");
  }
  if (phase.workers_min < 1 || phase.workers_max > kMaxInstanceSize) {
    return CompileError(phase.name, "workers range must be within [1, " +
                                        std::to_string(kMaxInstanceSize) +
                                        "]");
  }
  if (phase.priority_max > kMaxPriority) {
    return CompileError(phase.name, "priority exceeds the cap");
  }
  if (phase.mix.empty()) {
    return CompileError(phase.name, "empty op mix");
  }
  int64_t total_weight = 0;
  for (const MixEntry& entry : phase.mix) {
    if (entry.weight < 0) {
      return CompileError(phase.name, "negative mix weight");
    }
    total_weight += entry.weight;
  }
  if (total_weight <= 0) {
    return CompileError(phase.name, "mix weights must sum to > 0");
  }
  return util::Status::OK();
}

/// The determinism guard for non-blocking admission: whether a concrete
/// request gets rejected (kReject) or shed (kShedOldest) depends on how
/// fast workers drain the queue -- pure dispatch timing. The guard admits
/// such policies only when the worst case provably fits: with at most S
/// requests outstanding at once, the queue never holds more than S - 1
/// when the S-th Submit arrives, so S <= queue_depth means no admission
/// decision is ever forced. Closed phases bound S by the submitter count
/// (each waits before its next op); open phases submit their whole
/// schedule without waiting, so S is the phase's total op count.
util::Status CheckCapacity(const WorkloadSpec& spec, const PhaseSpec& phase) {
  if (spec.policy == engine::OverloadPolicy::kBlock) {
    return util::Status::OK();
  }
  int64_t outstanding = phase.mode == PhaseMode::kClosed
                            ? phase.submitters
                            : phase.submitters * OpsPerSubmitter(phase);
  if (outstanding > spec.queue_depth) {
    return CompileError(
        phase.name,
        "up to " + std::to_string(outstanding) +
            " outstanding requests exceed queue_depth " +
            std::to_string(spec.queue_depth) +
            " under a reject/shed policy; rejections are timing-dependent "
            "and would break replay determinism -- use 'policy block', "
            "raise queue_depth, or shrink the phase");
  }
  return util::Status::OK();
}

engine::CacheMode OpCacheMode(OpKind op, engine::CacheMode phase_cache) {
  switch (op) {
    case OpKind::kCached: return engine::CacheMode::kReadWrite;
    case OpKind::kUncached: return engine::CacheMode::kOff;
    default: return phase_cache;
  }
}

/// Draws one submitter's schedule from its private stream. Draw order is
/// fixed (mix roll, seed, tasks, workers, priority, arrival gap) and
/// identical for every op kind, so the stream stays aligned whatever the
/// rolls produce.
CompiledSubmitter CompileSubmitter(const PhaseSpec& phase, int64_t ops,
                                   uint64_t stream_seed) {
  util::Rng rng(stream_seed);
  int64_t total_weight = 0;
  for (const MixEntry& entry : phase.mix) total_weight += entry.weight;

  CompiledSubmitter submitter;
  submitter.ops.reserve(static_cast<size_t>(ops));
  double offset = 0.0;
  for (int64_t i = 0; i < ops; ++i) {
    CompiledOp op;
    int64_t roll = rng.UniformInt(0, total_weight - 1);
    for (const MixEntry& entry : phase.mix) {
      roll -= entry.weight;
      if (roll < 0) {
        op.op = entry.op;
        break;
      }
    }
    op.instance_seed =
        static_cast<uint64_t>(rng.UniformInt(1, phase.seed_pool));
    op.num_tasks =
        static_cast<int>(rng.UniformInt(phase.tasks_min, phase.tasks_max));
    op.num_workers =
        static_cast<int>(rng.UniformInt(phase.workers_min, phase.workers_max));
    int64_t priority =
        rng.UniformInt(phase.priority_min, phase.priority_max);
    op.priority = static_cast<int>(
        op.op == OpKind::kUrgent ? phase.priority_max : priority);
    op.cache = OpCacheMode(op.op, phase.cache);
    op.skewed = phase.skewed;

    if (phase.mode == PhaseMode::kOpen) {
      switch (phase.arrival) {
        case ArrivalProcess::kFixed:
          op.arrival_offset_seconds = offset;
          offset += 1.0 / phase.rate_per_second;
          break;
        case ArrivalProcess::kPoisson: {
          op.arrival_offset_seconds = offset;
          double u = rng.Uniform(0.0, 1.0);
          offset += -std::log1p(-u) / phase.rate_per_second;
          break;
        }
        case ArrivalProcess::kBurst:
          op.arrival_offset_seconds =
              static_cast<double>(i / 8) * (8.0 / phase.rate_per_second);
          break;
      }
    }
    submitter.ops.push_back(op);
  }
  return submitter;
}

}  // namespace

util::StatusOr<CompiledWorkload> CompileWorkload(const WorkloadSpec& spec) {
  if (spec.phases.empty()) {
    return CompileError("", "a workload needs at least one phase");
  }
  if (static_cast<int64_t>(spec.phases.size()) > kMaxPhases) {
    return CompileError("", "too many phases (cap " +
                                std::to_string(kMaxPhases) + ")");
  }
  if (!core::SolverRegistry::Global().Contains(spec.solver)) {
    return CompileError("", "unknown solver '" + spec.solver + "'");
  }
  if (spec.queue_depth < 1) {
    return CompileError("", "queue_depth must be >= 1");
  }
  if (spec.queue_depth > 1'000'000 || spec.cache_result_entries > 1'000'000 ||
      spec.cache_graph_entries > 1'000'000) {
    return CompileError("",
                        "queue_depth/cache_entries capped at 1000000");
  }
  if (spec.cache_result_entries < 0 || spec.cache_graph_entries < 0) {
    return CompileError("", "cache_entries must be >= 0");
  }

  CompiledWorkload compiled;
  compiled.name = spec.name;
  compiled.solver = spec.solver;
  compiled.seed = spec.seed;
  compiled.policy = spec.policy;
  compiled.queue_depth = spec.queue_depth;
  compiled.cache_mode = spec.cache_mode;
  compiled.cache_result_entries = spec.cache_result_entries;
  compiled.cache_graph_entries = spec.cache_graph_entries;

  for (size_t phase_index = 0; phase_index < spec.phases.size();
       ++phase_index) {
    const PhaseSpec& phase = spec.phases[phase_index];
    util::Status status = ValidatePhase(phase);
    if (!status.ok()) return status;
    status = CheckCapacity(spec, phase);
    if (!status.ok()) return status;

    int64_t ops = OpsPerSubmitter(phase);
    CompiledPhase out;
    out.name = phase.name;
    out.mode = phase.mode;
    out.restart = phase.restart;
    out.submitters.reserve(static_cast<size_t>(phase.submitters));
    for (int64_t s = 0; s < phase.submitters; ++s) {
      // Streams keyed by (root seed, phase *name*, submitter index):
      // renaming or reordering other phases leaves this one's schedule
      // untouched.
      uint64_t stream_seed = util::Hasher()
                                 .Mix(spec.seed)
                                 .Mix(std::string_view(phase.name))
                                 .Mix(s)
                                 .Digest()
                                 .lo;
      out.submitters.push_back(CompileSubmitter(phase, ops, stream_seed));
      out.total_ops += ops;
    }
    compiled.total_ops += out.total_ops;
    if (compiled.total_ops > kMaxTotalOps) {
      return CompileError(phase.name,
                          "workload exceeds the total op cap of " +
                              std::to_string(kMaxTotalOps));
    }
    compiled.phases.push_back(std::move(out));
  }
  return compiled;
}

std::string CompiledDebugString(const CompiledWorkload& compiled) {
  std::string out;
  out += "workload " + compiled.name + " solver=" + compiled.solver +
         " seed=" + std::to_string(compiled.seed) +
         " policy=" + std::string(PolicyKeyword(compiled.policy)) +
         " queue_depth=" + std::to_string(compiled.queue_depth) +
         " cache=" + std::string(CacheModeKeyword(compiled.cache_mode)) +
         " entries=" + std::to_string(compiled.cache_result_entries) + "/" +
         std::to_string(compiled.cache_graph_entries) +
         " total_ops=" + std::to_string(compiled.total_ops) + "\n";
  char buffer[64];
  for (const CompiledPhase& phase : compiled.phases) {
    out += "phase " + phase.name + " mode=" +
           std::string(PhaseModeName(phase.mode)) +
           " restart=" + (phase.restart ? "1" : "0") +
           " ops=" + std::to_string(phase.total_ops) + "\n";
    for (size_t s = 0; s < phase.submitters.size(); ++s) {
      for (size_t i = 0; i < phase.submitters[s].ops.size(); ++i) {
        const CompiledOp& op = phase.submitters[s].ops[i];
        std::snprintf(buffer, sizeof(buffer), " off=%.17g",
                      op.arrival_offset_seconds);
        out += "  s" + std::to_string(s) + "#" + std::to_string(i) + " " +
               std::string(OpKindName(op.op)) +
               " seed=" + std::to_string(op.instance_seed) +
               " t=" + std::to_string(op.num_tasks) +
               " w=" + std::to_string(op.num_workers) +
               " pr=" + std::to_string(op.priority) + " cache=" +
               std::string(CacheModeKeyword(op.cache)) +
               " skew=" + (op.skewed ? "1" : "0") + buffer + "\n";
      }
    }
  }
  return out;
}

}  // namespace rdbsc::wl
