#include "gen/workload.h"

#include <algorithm>
#include <vector>

#include "geo/angle.h"

namespace rdbsc::gen {
namespace {

constexpr double kClusterCenter = 0.5;
constexpr double kClusterSigma = 0.2;
constexpr double kClusterFraction = 0.9;
constexpr double kConfidenceSigma = 0.02;

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

geo::Point SampleLocation(SpatialDistribution distribution, util::Rng& rng) {
  switch (distribution) {
    case SpatialDistribution::kUniform:
      return {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    case SpatialDistribution::kSkewed:
      if (rng.Bernoulli(kClusterFraction)) {
        return {Clamp01(rng.Gaussian(kClusterCenter, kClusterSigma)),
                Clamp01(rng.Gaussian(kClusterCenter, kClusterSigma))};
      }
      return {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
  }
  return {0.0, 0.0};
}

double SampleTime(TimeDistribution distribution, double lo, double hi,
                  util::Rng& rng) {
  switch (distribution) {
    case TimeDistribution::kUniform:
      return rng.Uniform(lo, hi);
    case TimeDistribution::kGaussian:
      return rng.TruncatedGaussian((lo + hi) / 2.0, (hi - lo) / 6.0, lo, hi);
  }
  return lo;
}

core::Instance GenerateInstance(const WorkloadConfig& config) {
  util::Rng rng(config.seed);

  std::vector<core::Task> tasks;
  tasks.reserve(config.num_tasks);
  for (int i = 0; i < config.num_tasks; ++i) {
    core::Task t;
    t.location = SampleLocation(config.task_distribution, rng);
    t.start = SampleTime(config.start_distribution, config.start_min,
                         config.start_max, rng);
    t.end = t.start + rng.Uniform(config.rt_min, config.rt_max);
    t.beta = rng.Uniform(config.beta_min, config.beta_max);
    tasks.push_back(t);
  }

  const double checkin_max =
      config.checkin_max < 0.0 ? config.start_max : config.checkin_max;
  std::vector<core::Worker> workers;
  workers.reserve(config.num_workers);
  for (int j = 0; j < config.num_workers; ++j) {
    core::Worker w;
    w.location = SampleLocation(config.worker_distribution, rng);
    w.available_from = SampleTime(config.checkin_distribution,
                                  config.start_min, checkin_max, rng);
    w.velocity = rng.Uniform(config.v_min, config.v_max);
    double lo = rng.Uniform(0.0, geo::kTwoPi);
    double width = rng.Uniform(0.0, config.angle_range);
    w.direction = geo::AngularInterval(lo, lo + width);
    double mean = (config.p_min + config.p_max) / 2.0;
    w.confidence = rng.TruncatedGaussian(mean, kConfidenceSigma, config.p_min,
                                         config.p_max);
    workers.push_back(w);
  }

  return core::Instance(std::move(tasks), std::move(workers), /*now=*/0.0);
}

}  // namespace rdbsc::gen
