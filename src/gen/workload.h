#ifndef RDBSC_GEN_WORKLOAD_H_
#define RDBSC_GEN_WORKLOAD_H_

#include <cstdint>
#include <numbers>

#include "core/instance.h"
#include "util/config.h"
#include "util/rng.h"

namespace rdbsc::gen {

/// Spatial distribution of generated locations (Section 8.1): UNIFORM over
/// [0,1]^2, or SKEWED with 90% of points in a Gaussian cluster centered at
/// (0.5, 0.5) with sigma = 0.2 and the rest uniform.
enum class SpatialDistribution { kUniform, kSkewed };

/// Distribution of task start times and worker check-ins over the day
/// horizon (Section 8.1: "st in [0,24] follows either Uniform or Gaussian
/// distribution"). Gaussian is centered on the horizon midpoint with
/// sigma = range/6, truncated to the range.
enum class TimeDistribution { kUniform, kGaussian };

/// All Table 2 knobs for the synthetic workload generator. Defaults are the
/// paper's bold default values (scaled counts are chosen by the benches).
struct WorkloadConfig {
  int num_tasks = 10'000;
  int num_workers = 10'000;
  SpatialDistribution task_distribution = SpatialDistribution::kUniform;
  SpatialDistribution worker_distribution = SpatialDistribution::kUniform;

  /// Task valid periods [st, st + rt]: st uniform in [start_min, start_max],
  /// rt uniform in [rt_min, rt_max] (hours).
  double start_min = 0.0;
  double start_max = 24.0;
  TimeDistribution start_distribution = TimeDistribution::kUniform;
  double rt_min = 1.0;
  double rt_max = 2.0;

  /// Requester weight beta, uniform in [beta_min, beta_max].
  double beta_min = 0.4;
  double beta_max = 0.6;

  /// Worker confidence: Gaussian with mean (p_min+p_max)/2 and sigma 0.02,
  /// truncated into [p_min, p_max].
  double p_min = 0.9;
  double p_max = 1.0;

  /// Worker velocity, uniform in [v_min, v_max] (space units per hour).
  double v_min = 0.2;
  double v_max = 0.3;

  /// Moving-direction cone: alpha- uniform in [0, 2*pi), width uniform in
  /// (0, angle_range] (Table 2 default (0, pi/6]).
  double angle_range = std::numbers::pi / 6.0;

  /// Worker check-in times (Section 8.1 generates these alongside the
  /// locations): uniform in [start_min, checkin_max]; a negative value
  /// follows start_max. Workers cannot depart before their check-in.
  double checkin_max = -1.0;
  TimeDistribution checkin_distribution = TimeDistribution::kUniform;

  uint64_t seed = 7;
};

/// Generates a synthetic RDB-SC instance per `config`. Deterministic for a
/// fixed seed.
core::Instance GenerateInstance(const WorkloadConfig& config);

/// Draws one location from the given distribution (exposed for tests and
/// for the POI generator).
geo::Point SampleLocation(SpatialDistribution distribution, util::Rng& rng);

/// Draws one timestamp in [lo, hi] from the given distribution.
double SampleTime(TimeDistribution distribution, double lo, double hi,
                  util::Rng& rng);

}  // namespace rdbsc::gen

#endif  // RDBSC_GEN_WORKLOAD_H_
