#include "gen/trajectory.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "geo/angle.h"
#include "gen/workload.h"

namespace rdbsc::gen {
namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Minimal angular interval containing all `angles`: the complement of the
// largest gap between consecutive sorted angles.
geo::AngularInterval MinimalCoveringSector(std::vector<double> angles) {
  if (angles.empty()) return geo::AngularInterval::FullCircle();
  for (double& a : angles) a = geo::NormalizeAngle(a);
  std::sort(angles.begin(), angles.end());
  double best_gap = -1.0;
  size_t gap_after = 0;
  for (size_t i = 0; i < angles.size(); ++i) {
    size_t next = (i + 1) % angles.size();
    double gap = geo::CcwDelta(angles[i], angles[next]);
    if (angles.size() == 1) gap = geo::kTwoPi;
    if (gap > best_gap) {
      best_gap = gap;
      gap_after = i;
    }
  }
  if (best_gap <= 0.0) {
    // All bearings identical: a hair-width cone at that direction.
    return geo::AngularInterval(angles.front(), angles.front());
  }
  size_t start = (gap_after + 1) % angles.size();
  return geo::AngularInterval(angles[start],
                              angles[start] + (geo::kTwoPi - best_gap));
}

}  // namespace

std::vector<Trajectory> GenerateTrajectories(const TrajectoryConfig& config) {
  util::Rng rng(config.seed);
  std::vector<Trajectory> trajectories;
  trajectories.reserve(config.num_taxis);

  for (int taxi = 0; taxi < config.num_taxis; ++taxi) {
    Trajectory traj;
    geo::Point pos = SampleLocation(SpatialDistribution::kSkewed, rng);
    double heading = rng.Uniform(0.0, geo::kTwoPi);
    double speed = rng.Uniform(config.speed_min, config.speed_max);
    double clock = 0.0;
    traj.points.push_back(pos);
    traj.times.push_back(clock);

    for (int leg = 0; leg < config.waypoints_per_trip; ++leg) {
      double dir = heading + rng.Uniform(-config.heading_jitter,
                                         config.heading_jitter);
      double len = rng.Uniform(0.05, 0.2);
      geo::Point target{Clamp01(pos.x + len * std::cos(dir)),
                        Clamp01(pos.y + len * std::sin(dir))};
      for (int s = 1; s <= config.samples_per_leg; ++s) {
        double frac = static_cast<double>(s) / config.samples_per_leg;
        geo::Point sample{pos.x + (target.x - pos.x) * frac,
                          pos.y + (target.y - pos.y) * frac};
        clock += geo::Distance(traj.points.back(), sample) / speed;
        traj.points.push_back(sample);
        traj.times.push_back(clock);
      }
      pos = target;
    }
    trajectories.push_back(std::move(traj));
  }
  return trajectories;
}

core::Worker WorkerFromTrajectory(const Trajectory& trajectory,
                                  double confidence) {
  assert(!trajectory.points.empty());
  core::Worker w;
  w.location = trajectory.points.front();
  w.confidence = confidence;

  // Mean speed over the trace; falls back to a slow walk for a stationary
  // or single-point trace.
  double distance = 0.0;
  for (size_t i = 1; i < trajectory.points.size(); ++i) {
    distance += geo::Distance(trajectory.points[i - 1], trajectory.points[i]);
  }
  double elapsed =
      trajectory.times.empty()
          ? 0.0
          : trajectory.times.back() - trajectory.times.front();
  w.velocity = (distance > 0.0 && elapsed > 0.0) ? distance / elapsed : 0.05;

  // The enclosing sector of all later points as seen from the start
  // (the paper's "draw a sector at the start point and contain all the
  // other points of the trajectory").
  std::vector<double> bearings;
  for (size_t i = 1; i < trajectory.points.size(); ++i) {
    if (!(trajectory.points[i] == w.location)) {
      bearings.push_back(geo::Bearing(w.location, trajectory.points[i]));
    }
  }
  w.direction = MinimalCoveringSector(std::move(bearings));
  return w;
}

std::vector<geo::Point> GeneratePois(const PoiConfig& config) {
  util::Rng rng(config.seed);
  std::vector<geo::Point> centers;
  centers.reserve(config.num_clusters);
  for (int c = 0; c < config.num_clusters; ++c) {
    centers.push_back({rng.Uniform(0.15, 0.85), rng.Uniform(0.15, 0.85)});
  }
  std::vector<geo::Point> pois;
  pois.reserve(config.num_pois);
  for (int i = 0; i < config.num_pois; ++i) {
    if (centers.empty() || rng.Bernoulli(config.background_fraction)) {
      pois.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
    } else {
      const geo::Point& c = centers[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(centers.size()) - 1))];
      pois.push_back({Clamp01(rng.Gaussian(c.x, config.cluster_sigma)),
                      Clamp01(rng.Gaussian(c.y, config.cluster_sigma))});
    }
  }
  return pois;
}

core::Instance GenerateRealInstance(const RealWorkloadConfig& config) {
  util::Rng rng(config.seed);

  std::vector<geo::Point> pois = GeneratePois(config.poi);
  // Uniform sample of POIs as task sites, preserving the POI distribution
  // (Section 8.2 samples 10,000 of the 74,013 Beijing POIs this way).
  std::vector<size_t> order(pois.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());

  int num_tasks = std::min<int>(config.num_tasks,
                                static_cast<int>(pois.size()));
  std::vector<core::Task> tasks;
  tasks.reserve(num_tasks);
  for (int i = 0; i < num_tasks; ++i) {
    core::Task t;
    t.location = pois[order[i]];
    t.start = rng.Uniform(config.start_min, config.start_max);
    t.end = t.start + rng.Uniform(config.rt_min, config.rt_max);
    t.beta = rng.Uniform(config.beta_min, config.beta_max);
    tasks.push_back(t);
  }

  std::vector<Trajectory> traces = GenerateTrajectories(config.trajectory);
  const double checkin_max =
      config.checkin_max < 0.0 ? config.start_max : config.checkin_max;
  std::vector<core::Worker> workers;
  workers.reserve(traces.size());
  for (const Trajectory& trace : traces) {
    double mean = (config.p_min + config.p_max) / 2.0;
    double confidence =
        rng.TruncatedGaussian(mean, 0.02, config.p_min, config.p_max);
    core::Worker w = WorkerFromTrajectory(trace, confidence);
    w.available_from = rng.Uniform(config.start_min, checkin_max);
    workers.push_back(w);
  }

  return core::Instance(std::move(tasks), std::move(workers), /*now=*/0.0);
}

}  // namespace rdbsc::gen
