#ifndef RDBSC_GEN_TRAJECTORY_H_
#define RDBSC_GEN_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "util/rng.h"

namespace rdbsc::gen {

/// A taxi-like GPS trace: timestamped positions. Stands in for the T-Drive
/// dataset (see DESIGN.md substitution table).
struct Trajectory {
  std::vector<geo::Point> points;
  std::vector<double> times;
};

/// Random-waypoint trace generator: each taxi starts at a city-skewed
/// location and drives towards a handful of random waypoints at a per-taxi
/// cruising speed.
struct TrajectoryConfig {
  int num_taxis = 1'000;
  int waypoints_per_trip = 4;
  int samples_per_leg = 5;
  double speed_min = 0.15;  ///< space units per hour
  double speed_max = 0.45;
  /// Waypoints deviate from the overall heading by at most this angle, so
  /// traces have a dominant direction like commuting taxis do.
  double heading_jitter = 0.6;
  uint64_t seed = 11;
};

std::vector<Trajectory> GenerateTrajectories(const TrajectoryConfig& config);

/// Derives a worker from a trace exactly as Section 8.2 does with T-Drive:
/// location = first point, velocity = mean speed along the trace, direction
/// cone = the minimal sector at the start point containing every later
/// point. `confidence` is supplied by the caller (peer-rating substitute).
core::Worker WorkerFromTrajectory(const Trajectory& trajectory,
                                  double confidence);

/// POI generator standing in for the Beijing POI dataset: a mixture of
/// `num_clusters` Gaussian city blocks plus a uniform background.
struct PoiConfig {
  int num_pois = 5'000;
  int num_clusters = 12;
  double cluster_sigma = 0.05;
  double background_fraction = 0.15;
  uint64_t seed = 13;
};

std::vector<geo::Point> GeneratePois(const PoiConfig& config);

/// Assembles the paper's "real data" experiment input: tasks sampled from
/// POIs, workers derived from trajectories, with the same parameter knobs
/// as the synthetic generator for periods/confidences/beta.
struct RealWorkloadConfig {
  PoiConfig poi;
  TrajectoryConfig trajectory;
  int num_tasks = 1'000;  ///< POIs uniformly sampled as task sites
  double start_min = 0.0;
  double start_max = 24.0;
  double rt_min = 1.0;
  double rt_max = 2.0;
  double beta_min = 0.4;
  double beta_max = 0.6;
  double p_min = 0.9;
  double p_max = 1.0;
  /// Check-in times, uniform in [start_min, checkin_max]; negative follows
  /// start_max (see gen::WorkloadConfig::checkin_max).
  double checkin_max = -1.0;
  uint64_t seed = 17;
};

core::Instance GenerateRealInstance(const RealWorkloadConfig& config);

}  // namespace rdbsc::gen

#endif  // RDBSC_GEN_TRAJECTORY_H_
