#ifndef RDBSC_INDEX_DELTA_GRAPH_H_
#define RDBSC_INDEX_DELTA_GRAPH_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/model.h"
#include "index/grid_index.h"
#include "util/deadline.h"
#include "util/status.h"

namespace rdbsc::index {

/// Per-round cost counters of the delta engine: how much state one event
/// batch actually repaired (vs. the O(m*n) a full rebuild would touch).
/// Cumulative; callers diff consecutive snapshots for per-round metrics
/// (sim.delta.* in src/obs).
struct DeltaStats {
  int64_t cells_touched = 0;    ///< cells scanned by row recomputes
  int64_t edges_repaired = 0;   ///< row edges rewritten or patched
  int64_t rows_recomputed = 0;  ///< rows rebuilt through the index
  int64_t rows_reused = 0;      ///< rows served from their horizon
  int64_t compactions = 0;      ///< patch lists folded into their base row
  int64_t bulk_refills = 0;     ///< full-churn rounds served by one
                                ///< vectorized bulk retrieval

  DeltaStats operator-(const DeltaStats& o) const {
    return {cells_touched - o.cells_touched, edges_repaired - o.edges_repaired,
            rows_recomputed - o.rows_recomputed, rows_reused - o.rows_reused,
            compactions - o.compactions, bulk_refills - o.bulk_refills};
  }
};

/// Incremental CSR edit structure over the candidate edge set: one row per
/// indexed worker, maintained as a compacted base row (sorted task ids)
/// plus sorted add/delete patch lists that are folded into the base when
/// they outgrow `compaction_threshold`. Event handlers patch only the
/// affected rows; RepairRows recomputes just the rows whose stability
/// horizon (core::PairWindow) expired, each through
/// GridIndex::RetrieveWorkerRow -- so a k-event round costs O(k * affected
/// state) instead of the O(m*n) full retrieval. When at least half the
/// rows of a large instance (>= `bulk_min_rows`) are due anyway, the
/// round flips to one vectorized GridIndex::RetrievePairs bulk refill,
/// collapsing the worst case from per-row scalar recomputes to a single
/// kernel-speed retrieval pass.
///
/// Determinism contract: after RepairRows at the index clock, Pairs() is
/// bit-identical to GridIndex::RetrievePairs() on the same index -- row
/// recomputes use the scalar IsValidPair oracle, horizons are
/// conservative, and rows live in an ordered map so every materialization
/// order is id-sorted. IncrementalAssigner cross-checks this in Debug and
/// delta_index_test proves it over randomized event sequences.
///
/// Thread safety: none -- same single-owner discipline as the mutating
/// half of GridIndex (parallelism lives inside retrieval, not here).
class DeltaGraph {
 public:
  static constexpr int kDefaultCompactionThreshold = 16;
  /// Minimum tracked-row count before RepairRows may serve a full-churn
  /// round through one vectorized bulk retrieval instead of per-row
  /// scalar recomputes (below it the per-row path is cheap anyway, and
  /// keeping small instances per-row preserves their horizons exactly).
  static constexpr int64_t kDefaultBulkMinRows = 64;

  explicit DeltaGraph(
      int compaction_threshold = kDefaultCompactionThreshold,
      int64_t bulk_min_rows = kDefaultBulkMinRows)
      : compaction_threshold_(compaction_threshold),
        bulk_min_rows_(bulk_min_rows) {}

  /// Drops every row and zeroes nothing else (stats stay cumulative).
  void Reset() { rows_.clear(); }

  /// Registers a row for a newly indexed worker (born dirty: the first
  /// RepairRows computes it). Fails with kAlreadyExists on duplicates.
  util::Status AddRow(core::WorkerId id);
  /// Drops the row of a worker leaving the index; kNotFound when absent.
  util::Status RemoveRow(core::WorkerId id);
  /// Invalidates one row (the worker moved); kNotFound when absent.
  util::Status MarkRowDirty(core::WorkerId id);

  /// Patches every live row for a task that just entered `index` (which
  /// already contains it): rows whose pair is valid at the index clock
  /// gain a patch edge; stability horizons shrink to cover the new pair's
  /// windows. O(rows), not O(rows * tasks).
  void OnTaskArrived(const GridIndex& index, core::TaskId id,
                     const core::Task& task);
  /// Patches every live row for a removed task (expiry or completion).
  void OnTaskRemoved(core::TaskId id);

  /// Brings every row current with `index`'s clock: dirty or
  /// horizon-expired rows are recomputed via RetrieveWorkerRow, the rest
  /// are reused as-is. Polls `deadline` between row blocks and returns
  /// kDeadlineExceeded / kCancelled when it trips (rows already repaired
  /// stay repaired; the call is safely retryable).
  util::Status RepairRows(const GridIndex& index,
                          const util::Deadline& deadline = util::Deadline());

  /// The maintained edge set as a sorted (worker, task) pair list --
  /// bit-identical to GridIndex::RetrievePairs() after RepairRows.
  std::vector<std::pair<core::WorkerId, core::TaskId>> Pairs() const;

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const DeltaStats& stats() const { return stats_; }

 private:
  struct Row {
    std::vector<core::TaskId> base;  ///< compacted row, sorted
    std::vector<core::TaskId> adds;  ///< patch: edges gained, sorted
    std::vector<core::TaskId> dels;  ///< patch: base edges lost, sorted
    double stable_until = 0.0;
    bool dirty = true;
  };

  /// (base \ dels) merged with adds, sorted.
  static std::vector<core::TaskId> Materialize(const Row& row);
  void MaybeCompact(Row* row);
  /// Refills every row from one vectorized GridIndex::RetrievePairs pass
  /// (the full-churn fast path of RepairRows). Refilled rows carry no
  /// stability lookahead: stable_until is the index clock.
  util::Status BulkRefill(const GridIndex& index,
                          const util::Deadline& deadline);

  int compaction_threshold_;
  int64_t bulk_min_rows_;
  /// Ordered map: repair and materialization walk rows in id order, so
  /// every observable sequence (pair list, stats accumulation) is
  /// independent of event arrival order.
  std::map<core::WorkerId, Row> rows_;
  DeltaStats stats_;
};

}  // namespace rdbsc::index

#endif  // RDBSC_INDEX_DELTA_GRAPH_H_
