#include "index/grid_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

namespace rdbsc::index {
namespace {

constexpr int kMaxCellsPerAxis = 1024;

}  // namespace

GridIndex::GridIndex(double eta, double now, core::ArrivalPolicy policy)
    : now_(now), policy_(policy) {
  double clamped = std::clamp(eta, 1.0 / kMaxCellsPerAxis, 1.0);
  cells_per_axis_ = std::max(1, static_cast<int>(std::ceil(1.0 / clamped)));
  cells_per_axis_ = std::min(cells_per_axis_, kMaxCellsPerAxis);
  eta_ = 1.0 / cells_per_axis_;
  cells_.resize(static_cast<size_t>(cells_per_axis_) * cells_per_axis_);
  util::MutexLock lock(tcells_->mu);
  tcells_->lists.resize(cells_.size());
  tcells_->valid.assign(cells_.size(), 0);
}

GridIndex GridIndex::Build(const core::Instance& instance, double eta) {
  // Unlimited deadline: the interruptible overload cannot fail.
  return Build(instance, eta, util::Deadline()).value();
}

util::StatusOr<GridIndex> GridIndex::Build(const core::Instance& instance,
                                           double eta,
                                           const util::Deadline& deadline) {
  // Poll between insert blocks: bulk-load cost is dominated by the
  // per-insert reachability maintenance, which scales with num_cells().
  constexpr int kInsertsPerDeadlineCheck = 64;

  GridIndex index(eta, instance.now(), instance.policy());
  for (core::TaskId i = 0; i < instance.num_tasks(); ++i) {
    if (i % kInsertsPerDeadlineCheck == 0 && deadline.Exhausted()) {
      return util::InterruptedStatus(deadline, "grid build interrupted");
    }
    util::Status status = index.InsertTask(i, instance.task(i));
    assert(status.ok());
    (void)status;
  }
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (j % kInsertsPerDeadlineCheck == 0 && deadline.Exhausted()) {
      return util::InterruptedStatus(deadline, "grid build interrupted");
    }
    util::Status status = index.InsertWorker(j, instance.worker(j));
    assert(status.ok());
    (void)status;
  }
  return index;
}

int GridIndex::CellOf(geo::Point p) const {
  int cx = static_cast<int>(std::clamp(p.x, 0.0, 1.0) / eta_);
  int cy = static_cast<int>(std::clamp(p.y, 0.0, 1.0) / eta_);
  cx = std::min(cx, cells_per_axis_ - 1);
  cy = std::min(cy, cells_per_axis_ - 1);
  return cy * cells_per_axis_ + cx;
}

geo::Box GridIndex::BoxOf(int cell) const {
  int cx = cell % cells_per_axis_;
  int cy = cell / cells_per_axis_;
  return geo::Box{{cx * eta_, cy * eta_}, {(cx + 1) * eta_, (cy + 1) * eta_}};
}

void GridIndex::AbsorbWorker(Cell* cell, const core::Worker& worker) {
  cell->v_max = std::max(cell->v_max, worker.velocity);
  if (cell->has_dir_cover) {
    cell->dir_cover = geo::CoverUnion(cell->dir_cover, worker.direction);
  } else {
    cell->dir_cover = worker.direction;
    cell->has_dir_cover = true;
  }
}

void GridIndex::AbsorbTask(Cell* cell, const core::Task& task) {
  if (cell->tasks.size() == 1) {
    cell->s_min = task.start;
    cell->e_max = task.end;
  } else {
    cell->s_min = std::min(cell->s_min, task.start);
    cell->e_max = std::max(cell->e_max, task.end);
  }
}

void GridIndex::RebuildSummaries(int cell_id) {
  Cell& cell = cells_[cell_id];
  cell.v_max = 0.0;
  cell.has_dir_cover = false;
  cell.dir_cover = geo::AngularInterval::FullCircle();
  for (const auto& [id, worker] : cell.workers) {
    AbsorbWorker(&cell, worker);
  }
  cell.s_min = std::numeric_limits<double>::infinity();
  cell.e_max = -std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : cell.tasks) {
    cell.s_min = std::min(cell.s_min, task.start);
    cell.e_max = std::max(cell.e_max, task.end);
  }
}

util::Status GridIndex::InsertWorker(core::WorkerId id,
                                     const core::Worker& worker) {
  if (worker_cell_.contains(id)) {
    return util::Status::AlreadyExists("worker id already indexed");
  }
  int cell_id = CellOf(worker.location);
  worker_cell_[id] = cell_id;
  Cell& cell = cells_[cell_id];
  cell.workers.emplace_back(id, worker);
  AbsorbWorker(&cell, worker);
  InvalidateReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::RemoveWorker(core::WorkerId id) {
  auto it = worker_cell_.find(id);
  if (it == worker_cell_.end()) {
    return util::Status::NotFound("worker id not indexed");
  }
  int cell_id = it->second;
  Cell& cell = cells_[cell_id];
  auto pos = std::find_if(cell.workers.begin(), cell.workers.end(),
                          [id](const auto& entry) {
                            return entry.first == id;
                          });
  assert(pos != cell.workers.end());
  cell.workers.erase(pos);
  // Summaries may have shrunk; rebuild eagerly so the const retrieval
  // paths never have to repair cells (they may run concurrently).
  RebuildSummaries(cell_id);
  worker_cell_.erase(it);
  InvalidateReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::InsertTask(core::TaskId id, const core::Task& task) {
  if (task_cell_.contains(id)) {
    return util::Status::AlreadyExists("task id already indexed");
  }
  int cell_id = CellOf(task.location);
  task_cell_[id] = cell_id;
  Cell& cell = cells_[cell_id];
  cell.tasks.emplace_back(id, task);
  AbsorbTask(&cell, task);
  PatchReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::RemoveTask(core::TaskId id) {
  auto it = task_cell_.find(id);
  if (it == task_cell_.end()) {
    return util::Status::NotFound("task id not indexed");
  }
  int cell_id = it->second;
  Cell& cell = cells_[cell_id];
  auto pos = std::find_if(cell.tasks.begin(), cell.tasks.end(),
                          [id](const auto& entry) {
                            return entry.first == id;
                          });
  assert(pos != cell.tasks.end());
  cell.tasks.erase(pos);
  RebuildSummaries(cell_id);
  task_cell_.erase(it);
  PatchReachability(cell_id);
  return util::Status::OK();
}

bool GridIndex::CanPrune(const Cell& from, int from_id, const Cell& to,
                         int to_id) const {
  geo::Box from_box = BoxOf(from_id);
  geo::Box to_box = BoxOf(to_id);
  // Temporal rule (Section 7.1): even the fastest worker of `from` cannot
  // reach the nearest point of `to` before the latest deadline there.
  // (The paper prints e_max(cell_i); tasks live in the target cell, so we
  // use e_max(cell_j) -- see DESIGN.md.)
  if (from.v_max <= 0.0) return true;
  double t_min = now_ + geo::MinDistance(from_box, to_box) / from.v_max;
  if (t_min > to.e_max) return true;
  // Direction rule: the bearing interval between the two boxes must meet
  // the covering interval of the workers' cones.
  if (from_id != to_id && from.has_dir_cover) {
    if (!geo::BearingInterval(from_box, to_box).Intersects(from.dir_cover)) {
      return true;
    }
  }
  return false;
}

void GridIndex::InvalidateReachability(int cell) {
  util::MutexLock lock(tcells_->mu);
  tcells_->valid[cell] = 0;
}

void GridIndex::PatchReachability(int target) {
  // Task churn in `target`: re-evaluate that single target cell in every
  // valid cached list (Section 7.2's task insertion/removal maintenance).
  const Cell& to = cells_[target];
  util::MutexLock lock(tcells_->mu);
  for (int from_id = 0; from_id < num_cells(); ++from_id) {
    if (!tcells_->valid[from_id]) continue;
    const Cell& from = cells_[from_id];
    bool reachable = !to.tasks.empty() && !from.workers.empty() &&
                     !CanPrune(from, from_id, to, target);
    auto& list = tcells_->lists[from_id];
    auto pos = std::lower_bound(list.begin(), list.end(), target);
    bool present = pos != list.end() && *pos == target;
    if (reachable && !present) {
      list.insert(pos, target);
    } else if (!reachable && present) {
      list.erase(pos);
    }
    ++reachability_patches_;
  }
}

const std::vector<int>& GridIndex::CachedReachableLocked(int cell) const {
  if (!tcells_->valid[cell]) {
    const Cell& from = cells_[cell];
    std::vector<int>& list = tcells_->lists[cell];
    list.clear();
    if (!from.workers.empty()) {
      for (int to_id = 0; to_id < num_cells(); ++to_id) {
        const Cell& to = cells_[to_id];
        if (to.tasks.empty()) continue;
        if (!CanPrune(from, cell, to, to_id)) list.push_back(to_id);
      }
    }
    tcells_->valid[cell] = 1;
    ++tcells_->rebuilds;
  }
  return tcells_->lists[cell];
}

const std::vector<int>& GridIndex::CachedReachable(int cell) const {
  util::MutexLock lock(tcells_->mu);
  return CachedReachableLocked(cell);
}

const std::vector<std::vector<int>>* GridIndex::WarmReachability(
    bool count_prune_scan, RetrievalStats* stats,
    const util::Deadline& deadline) const {
  util::MutexLock lock(tcells_->mu);
  for (int from_id = 0; from_id < num_cells(); ++from_id) {
    if (cells_[from_id].workers.empty()) continue;
    if (deadline.Exhausted()) return nullptr;
    bool was_cached = tcells_->valid[from_id] != 0;
    const std::vector<int>& targets = CachedReachableLocked(from_id);
    if (stats != nullptr) {
      if (was_cached || !count_prune_scan) {
        stats->cell_pairs_examined += static_cast<int64_t>(targets.size());
      } else {
        stats->cell_pairs_examined += num_cells();
        stats->cell_pairs_pruned +=
            num_cells() - static_cast<int64_t>(targets.size());
      }
    }
  }
  // Escape under a documented contract: every list a subsequent const
  // retrieval scan dereferences was built above, and nothing mutates the
  // cache again until a (exclusive-access) mutator runs.
  return &tcells_->lists;
}

std::pair<std::vector<core::TaskBlock>, size_t> GridIndex::BuildTaskBlocks()
    const {
  std::vector<core::TaskBlock> blocks(cells_.size());
  size_t max_size = 0;
  for (size_t c = 0; c < cells_.size(); ++c) {
    const Cell& cell = cells_[c];
    if (cell.tasks.empty()) continue;
    blocks[c].Reserve(cell.tasks.size());
    for (const auto& [tid, task] : cell.tasks) blocks[c].Add(tid, task);
    max_size = std::max(max_size, blocks[c].size());
  }
  return {std::move(blocks), max_size};
}

util::StatusOr<std::vector<std::vector<core::TaskId>>>
GridIndex::RetrieveEdges(int num_workers, RetrievalStats* stats,
                         util::Executor* executor,
                         const util::Deadline& deadline) const {
  // Phase 1 (serialized): build every missing tcell_list and account the
  // cell-pair counters. After this, the cache entries read below are
  // immutable for the duration of the scan, so shards need no locking.
  RetrievalStats totals;
  const std::vector<std::vector<int>>* tcell_lists =
      WarmReachability(/*count_prune_scan=*/true, &totals, deadline);
  if (tcell_lists == nullptr) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }
  const auto [blocks, max_block] = BuildTaskBlocks();

  // Phase 2 (sharded over source cells): the per-cell pair tests, which
  // dominate retrieval cost, batched through the SoA kernel (exact same
  // edge set as the scalar IsValidPair loop; core/kernels.h). Every worker
  // lives in exactly one cell, so shards write disjoint rows of `edges`
  // and the merged edge set is independent of shard boundaries; each
  // per-worker row is sorted, so the worker-outer loop order is
  // output-identical to the historical target-cell-outer order.
  std::vector<std::vector<core::TaskId>> edges(num_workers);
  util::Executor& exec = util::OrSerial(executor);
  std::vector<RetrievalStats> shard_stats(exec.width());
  std::atomic<bool> interrupted{false};
  exec.ShardedFor(num_cells(), [&](int shard, int64_t begin, int64_t end) {
    RetrievalStats local;
    std::vector<uint8_t> cls(max_block);
    for (int64_t from_id = begin; from_id < end; ++from_id) {
      const Cell& from = cells_[from_id];
      if (from.workers.empty()) continue;
      if (interrupted.load(std::memory_order_relaxed) ||
          deadline.Exhausted()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      for (const auto& [wid, worker] : from.workers) {
        assert(wid < num_workers);
        const core::WorkerGeom geom = core::PrecomputeWorker(worker, now_);
        for (int to_id : (*tcell_lists)[from_id]) {
          const core::TaskBlock& block = blocks[to_id];
          local.pair_tests += static_cast<int64_t>(block.size());
          local.edges += static_cast<int64_t>(core::ValidPairsRow(
              geom, worker, now_, policy_, block, cls.data(), &edges[wid]));
        }
        std::sort(edges[wid].begin(), edges[wid].end());
      }
    }
    shard_stats[shard] = local;
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }
  for (const RetrievalStats& shard : shard_stats) totals.Merge(shard);
  if (stats != nullptr) *stats = totals;
  return edges;
}

util::StatusOr<std::vector<std::pair<core::WorkerId, core::TaskId>>>
GridIndex::RetrievePairs(RetrievalStats* stats, util::Executor* executor,
                         const util::Deadline& deadline) const {
  RetrievalStats totals;
  const std::vector<std::vector<int>>* tcell_lists =
      WarmReachability(/*count_prune_scan=*/false, &totals, deadline);
  if (tcell_lists == nullptr) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }

  const auto [blocks, max_block] = BuildTaskBlocks();
  util::Executor& exec = util::OrSerial(executor);
  std::vector<RetrievalStats> shard_stats(exec.width());
  std::vector<std::vector<std::pair<core::WorkerId, core::TaskId>>>
      shard_pairs(exec.width());
  std::atomic<bool> interrupted{false};
  exec.ShardedFor(num_cells(), [&](int shard, int64_t begin, int64_t end) {
    RetrievalStats local;
    auto& pairs = shard_pairs[shard];
    std::vector<uint8_t> cls(max_block);
    std::vector<core::TaskId> row;
    for (int64_t from_id = begin; from_id < end; ++from_id) {
      const Cell& from = cells_[from_id];
      if (from.workers.empty()) continue;
      if (interrupted.load(std::memory_order_relaxed) ||
          deadline.Exhausted()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      for (const auto& [wid, worker] : from.workers) {
        const core::WorkerGeom geom = core::PrecomputeWorker(worker, now_);
        for (int to_id : (*tcell_lists)[from_id]) {
          const core::TaskBlock& block = blocks[to_id];
          local.pair_tests += static_cast<int64_t>(block.size());
          row.clear();
          core::ValidPairsRow(geom, worker, now_, policy_, block, cls.data(),
                              &row);
          for (core::TaskId tid : row) pairs.emplace_back(wid, tid);
          local.edges += static_cast<int64_t>(row.size());
        }
      }
    }
    shard_stats[shard] = local;
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }

  // Shard-order concatenation followed by the (shard-independent) global
  // sort reproduces the serial result exactly.
  std::vector<std::pair<core::WorkerId, core::TaskId>> pairs;
  for (auto& shard : shard_pairs) {
    pairs.insert(pairs.end(), shard.begin(), shard.end());
  }
  std::sort(pairs.begin(), pairs.end());
  for (const RetrievalStats& shard : shard_stats) totals.Merge(shard);
  if (stats != nullptr) *stats = totals;
  return pairs;
}

void GridIndex::set_now(double now) {
  assert(now >= now_ && "the index clock must be non-decreasing");
  now_ = now;
}

std::vector<int> GridIndex::ReachableCells(geo::Point location) const {
  int from_id = CellOf(location);
  const Cell& from = cells_[from_id];
  std::vector<int> reachable;
  if (from.workers.empty()) return reachable;
  for (int to_id = 0; to_id < num_cells(); ++to_id) {
    const Cell& to = cells_[to_id];
    if (to.tasks.empty()) continue;
    if (!CanPrune(from, from_id, to, to_id)) reachable.push_back(to_id);
  }
  return reachable;
}

}  // namespace rdbsc::index
