#include "index/grid_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

namespace rdbsc::index {
namespace {

constexpr int kMaxCellsPerAxis = 1024;

}  // namespace

GridIndex::GridIndex(double eta, double now, core::ArrivalPolicy policy)
    : now_(now), policy_(policy) {
  double clamped = std::clamp(eta, 1.0 / kMaxCellsPerAxis, 1.0);
  cells_per_axis_ = std::max(1, static_cast<int>(std::ceil(1.0 / clamped)));
  cells_per_axis_ = std::min(cells_per_axis_, kMaxCellsPerAxis);
  eta_ = 1.0 / cells_per_axis_;
  cells_.resize(static_cast<size_t>(cells_per_axis_) * cells_per_axis_);
  blocks_.resize(cells_.size());
  util::MutexLock lock(tcells_->mu);
  tcells_->lists.resize(cells_.size());
  tcells_->valid.assign(cells_.size(), 0);
}

GridIndex GridIndex::Build(const core::Instance& instance, double eta) {
  // Unlimited deadline: the interruptible overload cannot fail.
  return Build(instance, eta, util::Deadline()).value();
}

util::StatusOr<GridIndex> GridIndex::Build(const core::Instance& instance,
                                           double eta,
                                           const util::Deadline& deadline) {
  // Poll between insert blocks: bulk-load cost is dominated by the
  // per-insert reachability maintenance, which scales with num_cells().
  constexpr int kInsertsPerDeadlineCheck = 64;

  GridIndex index(eta, instance.now(), instance.policy());
  for (core::TaskId i = 0; i < instance.num_tasks(); ++i) {
    if (i % kInsertsPerDeadlineCheck == 0 && deadline.Exhausted()) {
      return util::InterruptedStatus(deadline, "grid build interrupted");
    }
    util::Status status = index.InsertTask(i, instance.task(i));
    assert(status.ok());
    (void)status;
  }
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (j % kInsertsPerDeadlineCheck == 0 && deadline.Exhausted()) {
      return util::InterruptedStatus(deadline, "grid build interrupted");
    }
    util::Status status = index.InsertWorker(j, instance.worker(j));
    assert(status.ok());
    (void)status;
  }
  return index;
}

int GridIndex::CellOf(geo::Point p) const {
  int cx = static_cast<int>(std::clamp(p.x, 0.0, 1.0) / eta_);
  int cy = static_cast<int>(std::clamp(p.y, 0.0, 1.0) / eta_);
  cx = std::min(cx, cells_per_axis_ - 1);
  cy = std::min(cy, cells_per_axis_ - 1);
  return cy * cells_per_axis_ + cx;
}

geo::Box GridIndex::BoxOf(int cell) const {
  int cx = cell % cells_per_axis_;
  int cy = cell / cells_per_axis_;
  return geo::Box{{cx * eta_, cy * eta_}, {(cx + 1) * eta_, (cy + 1) * eta_}};
}

void GridIndex::AbsorbWorker(Cell* cell, const core::Worker& worker) {
  cell->v_max = std::max(cell->v_max, worker.velocity);
  if (cell->has_dir_cover) {
    cell->dir_cover = geo::CoverUnion(cell->dir_cover, worker.direction);
  } else {
    cell->dir_cover = worker.direction;
    cell->has_dir_cover = true;
  }
}

void GridIndex::RebuildSummaries(int cell_id) {
  Cell& cell = cells_[cell_id];
  cell.v_max = 0.0;
  cell.has_dir_cover = false;
  cell.dir_cover = geo::AngularInterval::FullCircle();
  for (const auto& [id, worker] : cell.workers) {
    AbsorbWorker(&cell, worker);
  }
  // An empty task list folds back to the constructed state (not +-inf), so
  // an emptied cell is bit-identical to a never-touched one.
  cell.s_min = 0.0;
  cell.e_max = 0.0;
  for (size_t k = 0; k < cell.tasks.size(); ++k) {
    const core::Task& task = cell.tasks[k].second;
    cell.s_min = k == 0 ? task.start : std::min(cell.s_min, task.start);
    cell.e_max = k == 0 ? task.end : std::max(cell.e_max, task.end);
  }
}

void GridIndex::RebuildBlock(int cell_id) {
  const Cell& cell = cells_[cell_id];
  core::TaskBlock block;
  block.Reserve(cell.tasks.size());
  for (const auto& [tid, task] : cell.tasks) block.Add(tid, task);
  max_block_ = std::max(max_block_, block.size());
  blocks_[static_cast<size_t>(cell_id)] = std::move(block);
}

util::Status GridIndex::InsertWorker(core::WorkerId id,
                                     const core::Worker& worker) {
  if (worker_cell_.contains(id)) {
    return util::Status::AlreadyExists("worker id already indexed");
  }
  int cell_id = CellOf(worker.location);
  worker_cell_[id] = cell_id;
  Cell& cell = cells_[cell_id];
  auto pos = std::lower_bound(
      cell.workers.begin(), cell.workers.end(), id,
      [](const auto& entry, core::WorkerId v) { return entry.first < v; });
  cell.workers.emplace(pos, id, worker);
  // Refold rather than absorb: CoverUnion is order-dependent, so folding
  // the sorted member list keeps the summary canonical under any insert
  // order (ascending-id bulk loads are unchanged -- there absorb and
  // refold coincide).
  RebuildSummaries(cell_id);
  InvalidateReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::RemoveWorker(core::WorkerId id) {
  auto it = worker_cell_.find(id);
  if (it == worker_cell_.end()) {
    return util::Status::NotFound("worker id not indexed");
  }
  int cell_id = it->second;
  Cell& cell = cells_[cell_id];
  auto pos = std::lower_bound(
      cell.workers.begin(), cell.workers.end(), id,
      [](const auto& entry, core::WorkerId v) { return entry.first < v; });
  assert(pos != cell.workers.end() && pos->first == id);
  cell.workers.erase(pos);
  // Summaries may have shrunk; rebuild eagerly so the const retrieval
  // paths never have to repair cells (they may run concurrently).
  RebuildSummaries(cell_id);
  worker_cell_.erase(it);
  InvalidateReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::MoveWorker(core::WorkerId id, geo::Point to) {
  auto it = worker_cell_.find(id);
  if (it == worker_cell_.end()) {
    return util::Status::NotFound("worker id not indexed");
  }
  int from_cell = it->second;
  Cell& from = cells_[from_cell];
  auto pos = std::lower_bound(
      from.workers.begin(), from.workers.end(), id,
      [](const auto& entry, core::WorkerId v) { return entry.first < v; });
  assert(pos != from.workers.end() && pos->first == id);
  int to_cell = CellOf(to);
  if (to_cell == from_cell) {
    // Same-cell jitter: location feeds no summary (v_max / dir_cover /
    // task bounds are location-free), so this is a pure payload update --
    // no refold, no reachability churn.
    pos->second.location = to;
    return util::Status::OK();
  }
  core::Worker moved = pos->second;
  moved.location = to;
  from.workers.erase(pos);
  RebuildSummaries(from_cell);
  InvalidateReachability(from_cell);
  Cell& dest = cells_[to_cell];
  auto dpos = std::lower_bound(
      dest.workers.begin(), dest.workers.end(), id,
      [](const auto& entry, core::WorkerId v) { return entry.first < v; });
  dest.workers.emplace(dpos, id, moved);
  RebuildSummaries(to_cell);
  InvalidateReachability(to_cell);
  it->second = to_cell;
  return util::Status::OK();
}

const core::Worker* GridIndex::FindWorker(core::WorkerId id) const {
  auto it = worker_cell_.find(id);
  if (it == worker_cell_.end()) return nullptr;
  const Cell& cell = cells_[it->second];
  auto pos = std::lower_bound(
      cell.workers.begin(), cell.workers.end(), id,
      [](const auto& entry, core::WorkerId v) { return entry.first < v; });
  assert(pos != cell.workers.end() && pos->first == id);
  return &pos->second;
}

util::Status GridIndex::InsertTask(core::TaskId id, const core::Task& task) {
  if (task_cell_.contains(id)) {
    return util::Status::AlreadyExists("task id already indexed");
  }
  int cell_id = CellOf(task.location);
  task_cell_[id] = cell_id;
  Cell& cell = cells_[cell_id];
  auto pos = std::lower_bound(
      cell.tasks.begin(), cell.tasks.end(), id,
      [](const auto& entry, core::TaskId v) { return entry.first < v; });
  cell.tasks.emplace(pos, id, task);
  RebuildSummaries(cell_id);
  RebuildBlock(cell_id);
  PatchReachability(cell_id);
  return util::Status::OK();
}

util::Status GridIndex::RemoveTask(core::TaskId id) {
  auto it = task_cell_.find(id);
  if (it == task_cell_.end()) {
    return util::Status::NotFound("task id not indexed");
  }
  int cell_id = it->second;
  Cell& cell = cells_[cell_id];
  auto pos = std::lower_bound(
      cell.tasks.begin(), cell.tasks.end(), id,
      [](const auto& entry, core::TaskId v) { return entry.first < v; });
  assert(pos != cell.tasks.end() && pos->first == id);
  cell.tasks.erase(pos);
  RebuildSummaries(cell_id);
  RebuildBlock(cell_id);
  task_cell_.erase(it);
  PatchReachability(cell_id);
  return util::Status::OK();
}

bool GridIndex::CanPrune(const Cell& from, int from_id, const Cell& to,
                         int to_id) const {
  geo::Box from_box = BoxOf(from_id);
  geo::Box to_box = BoxOf(to_id);
  // Temporal rule (Section 7.1): even the fastest worker of `from` cannot
  // reach the nearest point of `to` before the latest deadline there.
  // (The paper prints e_max(cell_i); tasks live in the target cell, so we
  // use e_max(cell_j) -- see DESIGN.md.)
  if (from.v_max <= 0.0) return true;
  double t_min = now_ + geo::MinDistance(from_box, to_box) / from.v_max;
  if (t_min > to.e_max) return true;
  // Direction rule: the bearing interval between the two boxes must meet
  // the covering interval of the workers' cones.
  if (from_id != to_id && from.has_dir_cover) {
    if (!geo::BearingInterval(from_box, to_box).Intersects(from.dir_cover)) {
      return true;
    }
  }
  return false;
}

void GridIndex::InvalidateReachability(int cell) {
  util::MutexLock lock(tcells_->mu);
  tcells_->valid[cell] = 0;
}

void GridIndex::PatchReachability(int target) {
  // Task churn in `target`: re-evaluate that single target cell in every
  // valid cached list (Section 7.2's task insertion/removal maintenance).
  const Cell& to = cells_[target];
  util::MutexLock lock(tcells_->mu);
  for (int from_id = 0; from_id < num_cells(); ++from_id) {
    if (!tcells_->valid[from_id]) continue;
    const Cell& from = cells_[from_id];
    bool reachable = !to.tasks.empty() && !from.workers.empty() &&
                     !CanPrune(from, from_id, to, target);
    auto& list = tcells_->lists[from_id];
    auto pos = std::lower_bound(list.begin(), list.end(), target);
    bool present = pos != list.end() && *pos == target;
    if (reachable && !present) {
      list.insert(pos, target);
    } else if (!reachable && present) {
      list.erase(pos);
    }
    ++reachability_patches_;
  }
}

const std::vector<int>& GridIndex::CachedReachableLocked(int cell) const {
  if (!tcells_->valid[cell]) {
    const Cell& from = cells_[cell];
    std::vector<int>& list = tcells_->lists[cell];
    list.clear();
    if (!from.workers.empty()) {
      for (int to_id = 0; to_id < num_cells(); ++to_id) {
        const Cell& to = cells_[to_id];
        if (to.tasks.empty()) continue;
        if (!CanPrune(from, cell, to, to_id)) list.push_back(to_id);
      }
    }
    tcells_->valid[cell] = 1;
    ++tcells_->rebuilds;
  }
  return tcells_->lists[cell];
}

const std::vector<int>& GridIndex::CachedReachable(int cell) const {
  util::MutexLock lock(tcells_->mu);
  return CachedReachableLocked(cell);
}

const std::vector<std::vector<int>>* GridIndex::WarmReachability(
    bool count_prune_scan, RetrievalStats* stats,
    const util::Deadline& deadline) const {
  util::MutexLock lock(tcells_->mu);
  for (int from_id = 0; from_id < num_cells(); ++from_id) {
    if (cells_[from_id].workers.empty()) continue;
    if (deadline.Exhausted()) return nullptr;
    bool was_cached = tcells_->valid[from_id] != 0;
    const std::vector<int>& targets = CachedReachableLocked(from_id);
    if (stats != nullptr) {
      if (was_cached || !count_prune_scan) {
        stats->cell_pairs_examined += static_cast<int64_t>(targets.size());
      } else {
        stats->cell_pairs_examined += num_cells();
        stats->cell_pairs_pruned +=
            num_cells() - static_cast<int64_t>(targets.size());
      }
    }
  }
  // Escape under a documented contract: every list a subsequent const
  // retrieval scan dereferences was built above, and nothing mutates the
  // cache again until a (exclusive-access) mutator runs.
  return &tcells_->lists;
}

util::StatusOr<std::vector<std::vector<core::TaskId>>>
GridIndex::RetrieveEdges(int num_workers, RetrievalStats* stats,
                         util::Executor* executor,
                         const util::Deadline& deadline) const {
  // Phase 1 (serialized): build every missing tcell_list and account the
  // cell-pair counters. After this, the cache entries read below are
  // immutable for the duration of the scan, so shards need no locking.
  RetrievalStats totals;
  const std::vector<std::vector<int>>* tcell_lists =
      WarmReachability(/*count_prune_scan=*/true, &totals, deadline);
  if (tcell_lists == nullptr) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }
  // The scans below read the delta-maintained per-cell blocks directly
  // (repaired on task churn), so a retrieval pass no longer rebuilds the
  // columnar mirror of every cell.
  const std::vector<core::TaskBlock>& blocks = blocks_;
  const size_t max_block = max_block_;

  // Phase 2 (sharded over source cells): the per-cell pair tests, which
  // dominate retrieval cost, batched through the SoA kernel (exact same
  // edge set as the scalar IsValidPair loop; core/kernels.h). Every worker
  // lives in exactly one cell, so shards write disjoint rows of `edges`
  // and the merged edge set is independent of shard boundaries; each
  // per-worker row is sorted, so the worker-outer loop order is
  // output-identical to the historical target-cell-outer order.
  std::vector<std::vector<core::TaskId>> edges(num_workers);
  util::Executor& exec = util::OrSerial(executor);
  std::vector<RetrievalStats> shard_stats(exec.width());
  std::atomic<bool> interrupted{false};
  exec.ShardedFor(num_cells(), [&](int shard, int64_t begin, int64_t end) {
    RetrievalStats local;
    std::vector<uint8_t> cls(max_block);
    for (int64_t from_id = begin; from_id < end; ++from_id) {
      const Cell& from = cells_[from_id];
      if (from.workers.empty()) continue;
      if (interrupted.load(std::memory_order_relaxed) ||
          deadline.Exhausted()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      for (const auto& [wid, worker] : from.workers) {
        assert(wid < num_workers);
        const core::WorkerGeom geom = core::PrecomputeWorker(worker, now_);
        for (int to_id : (*tcell_lists)[from_id]) {
          const core::TaskBlock& block = blocks[to_id];
          local.pair_tests += static_cast<int64_t>(block.size());
          local.edges += static_cast<int64_t>(core::ValidPairsRow(
              geom, worker, now_, policy_, block, cls.data(), &edges[wid]));
        }
        std::sort(edges[wid].begin(), edges[wid].end());
      }
    }
    shard_stats[shard] = local;
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }
  for (const RetrievalStats& shard : shard_stats) totals.Merge(shard);
  if (stats != nullptr) *stats = totals;
  return edges;
}

util::StatusOr<std::vector<std::pair<core::WorkerId, core::TaskId>>>
GridIndex::RetrievePairs(RetrievalStats* stats, util::Executor* executor,
                         const util::Deadline& deadline) const {
  RetrievalStats totals;
  const std::vector<std::vector<int>>* tcell_lists =
      WarmReachability(/*count_prune_scan=*/false, &totals, deadline);
  if (tcell_lists == nullptr) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }

  const std::vector<core::TaskBlock>& blocks = blocks_;
  const size_t max_block = max_block_;
  util::Executor& exec = util::OrSerial(executor);
  std::vector<RetrievalStats> shard_stats(exec.width());
  std::vector<std::vector<std::pair<core::WorkerId, core::TaskId>>>
      shard_pairs(exec.width());
  std::atomic<bool> interrupted{false};
  exec.ShardedFor(num_cells(), [&](int shard, int64_t begin, int64_t end) {
    RetrievalStats local;
    auto& pairs = shard_pairs[shard];
    std::vector<uint8_t> cls(max_block);
    std::vector<core::TaskId> row;
    for (int64_t from_id = begin; from_id < end; ++from_id) {
      const Cell& from = cells_[from_id];
      if (from.workers.empty()) continue;
      if (interrupted.load(std::memory_order_relaxed) ||
          deadline.Exhausted()) {
        interrupted.store(true, std::memory_order_relaxed);
        break;
      }
      for (const auto& [wid, worker] : from.workers) {
        const core::WorkerGeom geom = core::PrecomputeWorker(worker, now_);
        for (int to_id : (*tcell_lists)[from_id]) {
          const core::TaskBlock& block = blocks[to_id];
          local.pair_tests += static_cast<int64_t>(block.size());
          row.clear();
          core::ValidPairsRow(geom, worker, now_, policy_, block, cls.data(),
                              &row);
          for (core::TaskId tid : row) pairs.emplace_back(wid, tid);
          local.edges += static_cast<int64_t>(row.size());
        }
      }
    }
    shard_stats[shard] = local;
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "retrieval interrupted");
  }

  // Shard-order concatenation followed by the (shard-independent) global
  // sort reproduces the serial result exactly.
  std::vector<std::pair<core::WorkerId, core::TaskId>> pairs;
  for (auto& shard : shard_pairs) {
    pairs.insert(pairs.end(), shard.begin(), shard.end());
  }
  std::sort(pairs.begin(), pairs.end());
  for (const RetrievalStats& shard : shard_stats) totals.Merge(shard);
  if (stats != nullptr) *stats = totals;
  return pairs;
}

void GridIndex::set_now(double now) {
  assert(now >= now_ && "the index clock must be non-decreasing");
  now_ = now;
}

util::StatusOr<WorkerRowResult> GridIndex::RetrieveWorkerRow(
    core::WorkerId id) const {
  auto it = worker_cell_.find(id);
  if (it == worker_cell_.end()) {
    return util::Status::NotFound("worker id not indexed");
  }
  const core::Worker* worker = FindWorker(id);
  assert(worker != nullptr);
  WorkerRowResult result;
  result.stable_until = std::numeric_limits<double>::infinity();
  // The cached tcell_list is a conservative superset of the fresh one
  // (pruning is monotone in the non-decreasing clock), and a cell pruned
  // at any earlier clock can never host a valid -- or future-valid -- pair
  // for this cell's workers, so scanning it yields exactly the
  // IsValidPair edge row and a sound horizon over every pair that could
  // ever activate. The reference stays valid until the next mutation, and
  // mutators require exclusive access.
  const std::vector<int>& targets = CachedReachable(it->second);
  for (int to_id : targets) {
    const Cell& to = cells_[to_id];
    ++result.cells_scanned;
    result.pair_tests += static_cast<int64_t>(to.tasks.size());
    for (const auto& [tid, task] : to.tasks) {
      const core::PairWindow pw =
          core::ClassifyPairWindow(task, *worker, now_, policy_);
      if (pw.valid) result.tasks.push_back(tid);
      result.stable_until = std::min(result.stable_until, pw.stable_until);
    }
  }
  // Ids ascend within a cell but cells are scanned in tcell order; one
  // global sort canonicalizes (same convention as RetrievePairs).
  std::sort(result.tasks.begin(), result.tasks.end());
  return result;
}

CellState GridIndex::DebugCellState(int cell) const {
  const Cell& c = cells_[cell];
  CellState state;
  state.workers.reserve(c.workers.size());
  for (const auto& [wid, w] : c.workers) state.workers.push_back(wid);
  state.tasks.reserve(c.tasks.size());
  for (const auto& [tid, t] : c.tasks) state.tasks.push_back(tid);
  state.v_max = c.v_max;
  state.has_dir_cover = c.has_dir_cover;
  state.dir_lo = c.dir_cover.lo();
  state.dir_width = c.dir_cover.width();
  state.s_min = c.s_min;
  state.e_max = c.e_max;
  return state;
}

std::vector<int> GridIndex::ReachableCells(geo::Point location) const {
  int from_id = CellOf(location);
  const Cell& from = cells_[from_id];
  std::vector<int> reachable;
  if (from.workers.empty()) return reachable;
  for (int to_id = 0; to_id < num_cells(); ++to_id) {
    const Cell& to = cells_[to_id];
    if (to.tasks.empty()) continue;
    if (!CanPrune(from, from_id, to, to_id)) reachable.push_back(to_id);
  }
  return reachable;
}

}  // namespace rdbsc::index
