#ifndef RDBSC_INDEX_COST_MODEL_H_
#define RDBSC_INDEX_COST_MODEL_H_

namespace rdbsc::index {

/// Inputs of the RDB-SC-Grid cost model (Appendix I of the paper).
struct CostModelParams {
  /// Largest moving distance observed in worker history, L_max.
  double l_max = 0.3;
  /// Correlation fractal dimension D2 of the task locations (2 for uniform
  /// data; estimate with util::EstimateCorrelationDimension).
  double d2 = 2.0;
  /// Number of indexed tasks, N.
  int num_points = 10'000;
};

/// The model's update cost (Eq. 22): cells scanned in the reachable area
/// plus tasks examined there, for a grid of cell side `eta`.
double EstimateUpdateCost(double eta, const CostModelParams& params);

/// The optimal cell side: the eta solving Eq. (23), found by bisection on
/// the monotone left-hand side. Reduces to cbrt(L_max / (N-1)) when D2 = 2.
/// The result is clamped into [1/1024, 1] so it always yields a sane grid.
double OptimalEta(const CostModelParams& params);

}  // namespace rdbsc::index

#endif  // RDBSC_INDEX_COST_MODEL_H_
