#ifndef RDBSC_INDEX_GRID_INDEX_H_
#define RDBSC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/model.h"
#include "geo/box.h"
#include "util/deadline.h"
#include "util/executor.h"
#include "util/status.h"

namespace rdbsc::index {

/// Counters describing one valid-pair retrieval pass (Figure 17 metrics).
struct RetrievalStats {
  int64_t cell_pairs_examined = 0;
  int64_t cell_pairs_pruned = 0;
  int64_t pair_tests = 0;  ///< individual (worker, task) validity checks
  int64_t edges = 0;       ///< valid pairs found

  /// Shard-order merge of per-shard counters (all sums, so the totals are
  /// independent of shard boundaries and thread count).
  void Merge(const RetrievalStats& other) {
    cell_pairs_examined += other.cell_pairs_examined;
    cell_pairs_pruned += other.cell_pairs_pruned;
    pair_tests += other.pair_tests;
    edges += other.edges;
  }
};

/// RDB-SC-Grid (Section 7): a uniform grid over [0,1]^2 with cell side eta.
/// Each cell keeps its workers and tasks together with summary bounds
/// (maximum speed, a covering direction interval, earliest start / latest
/// deadline), enabling the cell-level pruning rule when retrieving valid
/// task-and-worker pairs. Workers and tasks can be inserted and removed
/// dynamically; summaries are rebuilt eagerly on removal so every
/// read-only entry point sees consistent cells.
///
/// Thread safety: mutators (Insert*/Remove*/set_now) require exclusive
/// access, but any number of threads may run the const retrieval methods
/// concurrently -- the lazily built reachability cache is the only mutable
/// state they touch and it is guarded internally.
class GridIndex {
 public:
  /// Creates an empty grid with cell side `eta` (clamped so the grid has
  /// between 1 and 1024 cells per axis). `now`/`policy` parameterize the
  /// validity predicate used during retrieval.
  explicit GridIndex(double eta, double now = 0.0,
                     core::ArrivalPolicy policy = core::ArrivalPolicy::kStrict);

  /// A trivial one-cell grid (needed by StatusOr; use the eta overloads).
  GridIndex() : GridIndex(1.0) {}

  /// Bulk-loads every worker and task of `instance`.
  static GridIndex Build(const core::Instance& instance, double eta);

  /// Same bulk-load with interruption points: `deadline` is polled
  /// between insert blocks, so a budget or cancellation cuts grid
  /// construction short with kDeadlineExceeded / kCancelled.
  static util::StatusOr<GridIndex> Build(const core::Instance& instance,
                                         double eta,
                                         const util::Deadline& deadline);

  /// Inserts a worker under `id`; fails with kAlreadyExists on duplicates.
  util::Status InsertWorker(core::WorkerId id, const core::Worker& worker);
  /// Removes a worker; fails with kNotFound when absent.
  util::Status RemoveWorker(core::WorkerId id);
  /// Inserts a task under `id`; fails with kAlreadyExists on duplicates.
  util::Status InsertTask(core::TaskId id, const core::Task& task);
  /// Removes a task; fails with kNotFound when absent.
  util::Status RemoveTask(core::TaskId id);

  /// Retrieves all valid (worker, task) pairs using the cell-level pruning.
  /// The result is indexed by worker id (ids must be < `num_workers`).
  /// Produces exactly the same edge set as CandidateGraph::Build, for every
  /// executor width (source cells are sharded across `executor`; each
  /// worker's list is produced whole by the shard owning its cell).
  /// `deadline` is polled between cells; a tripped budget or token returns
  /// kDeadlineExceeded / kCancelled instead of finishing the scan.
  util::StatusOr<std::vector<std::vector<core::TaskId>>> RetrieveEdges(
      int num_workers, RetrievalStats* stats = nullptr,
      util::Executor* executor = nullptr,
      const util::Deadline& deadline = util::Deadline()) const;

  /// Same retrieval as a flat sorted (worker, task) pair list; works with
  /// arbitrary (sparse) external ids.
  util::StatusOr<std::vector<std::pair<core::WorkerId, core::TaskId>>>
  RetrievePairs(RetrievalStats* stats = nullptr,
                util::Executor* executor = nullptr,
                const util::Deadline& deadline = util::Deadline()) const;

  /// Advances the clock used by validity tests and temporal pruning.
  /// Must be non-decreasing: cached reachability lists stay conservative
  /// (supersets) only when deadlines can only get closer.
  void set_now(double now);
  double now() const { return now_; }

  /// The target-cell list of the cell containing `location`: ids of cells
  /// holding at least one task some worker of that cell might reach
  /// (Section 7.1 "tcell_list"). Exposed for inspection and tests.
  std::vector<int> ReachableCells(geo::Point location) const;

  /// The cached tcell_list of `cell` (Section 7.2 dynamic maintenance):
  /// rebuilt lazily after worker churn in the cell, membership-patched
  /// after task churn elsewhere. RetrieveEdges consults this cache. The
  /// returned reference stays valid until the next mutation.
  const std::vector<int>& CachedReachable(int cell) const;

  /// Number of tcell_list rebuilds / membership patches performed so far
  /// (the cost the Appendix I model estimates).
  int64_t reachability_rebuilds() const {
    std::lock_guard<std::mutex> lock(*cache_mu_);
    return reachability_rebuilds_;
  }
  int64_t reachability_patches() const { return reachability_patches_; }

  int cells_per_axis() const { return cells_per_axis_; }
  int num_cells() const { return cells_per_axis_ * cells_per_axis_; }
  double eta() const { return eta_; }
  int num_workers() const { return static_cast<int>(worker_cell_.size()); }
  int num_tasks() const { return static_cast<int>(task_cell_.size()); }

 private:
  struct Cell {
    std::vector<std::pair<core::WorkerId, core::Worker>> workers;
    std::vector<std::pair<core::TaskId, core::Task>> tasks;
    // Worker summaries.
    double v_max = 0.0;
    geo::AngularInterval dir_cover = geo::AngularInterval::FullCircle();
    bool has_dir_cover = false;
    // Task summaries.
    double s_min = 0.0;
    double e_max = 0.0;
  };

  int CellOf(geo::Point p) const;
  geo::Box BoxOf(int cell) const;
  static void AbsorbWorker(Cell* cell, const core::Worker& worker);
  static void AbsorbTask(Cell* cell, const core::Task& task);
  /// Recomputes a cell's summaries from scratch (called eagerly after a
  /// removal shrinks them).
  void RebuildSummaries(int cell_id);

  /// Invalidates the cached tcell_list of `cell` (worker churn there).
  void InvalidateReachability(int cell);
  /// Re-evaluates target cell `target` in every valid cached list (task
  /// churn in `target`).
  void PatchReachability(int target);

  /// Cache lookup/rebuild; requires cache_mu_ held.
  const std::vector<int>& CachedReachableLocked(int cell) const;

  /// Builds every missing tcell_list touched by a retrieval pass and
  /// accumulates the cell-pair counters exactly as the serial scan did
  /// (one cache_mu_ critical section; `count_prune_scan` reproduces
  /// RetrieveEdges' uncached-scan accounting, RetrievePairs passes false).
  /// Returns false when `deadline` tripped mid-warm.
  bool WarmReachability(bool count_prune_scan, RetrievalStats* stats,
                        const util::Deadline& deadline) const;

  /// True when no worker of `from` can reach any task of `to` before its
  /// deadline or within its direction cover (the pruning rule).
  bool CanPrune(const Cell& from, int from_id, const Cell& to,
                int to_id) const;

  double eta_;
  int cells_per_axis_;
  double now_;
  core::ArrivalPolicy policy_;
  std::vector<Cell> cells_;
  std::unordered_map<core::WorkerId, int> worker_cell_;
  std::unordered_map<core::TaskId, int> task_cell_;
  // Per-source-cell cached tcell_lists (sorted), built on demand. Guarded
  // by cache_mu_ against concurrent read-only retrievals; mutators run
  // with exclusive access and touch it lock-free. Heap-allocated so the
  // index stays movable (GridIndex::Build returns by value).
  mutable std::unique_ptr<std::mutex> cache_mu_ =
      std::make_unique<std::mutex>();
  mutable std::vector<std::vector<int>> tcell_cache_;
  mutable std::vector<uint8_t> tcell_valid_;
  mutable int64_t reachability_rebuilds_ = 0;
  int64_t reachability_patches_ = 0;
};

}  // namespace rdbsc::index

#endif  // RDBSC_INDEX_GRID_INDEX_H_
