#ifndef RDBSC_INDEX_GRID_INDEX_H_
#define RDBSC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/kernels.h"
#include "core/model.h"
#include "geo/box.h"
#include "util/deadline.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rdbsc::index {

/// Counters describing one valid-pair retrieval pass (Figure 17 metrics).
struct RetrievalStats {
  int64_t cell_pairs_examined = 0;
  int64_t cell_pairs_pruned = 0;
  int64_t pair_tests = 0;  ///< individual (worker, task) validity checks
  int64_t edges = 0;       ///< valid pairs found

  /// Shard-order merge of per-shard counters (all sums, so the totals are
  /// independent of shard boundaries and thread count).
  void Merge(const RetrievalStats& other) {
    cell_pairs_examined += other.cell_pairs_examined;
    cell_pairs_pruned += other.cell_pairs_pruned;
    pair_tests += other.pair_tests;
    edges += other.edges;
  }
};

/// The valid-task row of one worker plus its stability horizon, as
/// computed by GridIndex::RetrieveWorkerRow: `tasks` holds exactly the
/// (sorted) task ids IsValidPair accepts for the worker at the index
/// clock, and the verdict set is guaranteed unchanged for every later
/// clock <= `stable_until` (see core::PairWindow). DeltaGraph caches
/// these rows and recomputes each one only when its horizon expires.
struct WorkerRowResult {
  std::vector<core::TaskId> tasks;
  double stable_until = 0.0;
  int cells_scanned = 0;
  int64_t pair_tests = 0;
};

/// A copy of one cell's membership and summary state, for the delta ==
/// rebuild bit-identity property suite (delta_index_test compares every
/// cell of a delta-maintained index against a rebuilt-from-scratch one).
struct CellState {
  std::vector<core::WorkerId> workers;
  std::vector<core::TaskId> tasks;
  double v_max = 0.0;
  bool has_dir_cover = false;
  double dir_lo = 0.0;
  double dir_width = 0.0;
  double s_min = 0.0;
  double e_max = 0.0;

  bool operator==(const CellState&) const = default;
};

/// RDB-SC-Grid (Section 7): a uniform grid over [0,1]^2 with cell side eta.
/// Each cell keeps its workers and tasks together with summary bounds
/// (maximum speed, a covering direction interval, earliest start / latest
/// deadline), enabling the cell-level pruning rule when retrieving valid
/// task-and-worker pairs. Workers and tasks can be inserted, moved and
/// removed dynamically; summaries, the per-cell SoA task blocks, and the
/// reachability cache are repaired eagerly per mutated cell so every
/// read-only entry point sees consistent cells.
///
/// Canonical cell state: members are kept sorted by id and summaries are
/// refolded in that order on every mutation, so a cell's entire state is a
/// pure function of its member set -- an index maintained through any
/// sequence of insert/move/remove events is bit-identical, cell for cell,
/// to one rebuilt from scratch over the surviving members (the delta
/// engine's determinism contract; CoverUnion folds are order-dependent,
/// which is exactly why the fold order must be canonicalized).
///
/// Thread safety: mutators (Insert*/Remove*/set_now) require exclusive
/// access, but any number of threads may run the const retrieval methods
/// concurrently -- the lazily built reachability cache is the only mutable
/// state they touch and it is guarded internally (TCellCache, with the
/// lock discipline proven by -Wthread-safety; mutators take the same
/// mutex so every cache access is annotated).
class GridIndex {
 public:
  /// Creates an empty grid with cell side `eta` (clamped so the grid has
  /// between 1 and 1024 cells per axis). `now`/`policy` parameterize the
  /// validity predicate used during retrieval.
  explicit GridIndex(double eta, double now = 0.0,
                     core::ArrivalPolicy policy = core::ArrivalPolicy::kStrict);

  /// A trivial one-cell grid (needed by StatusOr; use the eta overloads).
  GridIndex() : GridIndex(1.0) {}

  /// Bulk-loads every worker and task of `instance`.
  static GridIndex Build(const core::Instance& instance, double eta);

  /// Same bulk-load with interruption points: `deadline` is polled
  /// between insert blocks, so a budget or cancellation cuts grid
  /// construction short with kDeadlineExceeded / kCancelled.
  static util::StatusOr<GridIndex> Build(const core::Instance& instance,
                                         double eta,
                                         const util::Deadline& deadline);

  /// Inserts a worker under `id`; fails with kAlreadyExists on duplicates.
  util::Status InsertWorker(core::WorkerId id, const core::Worker& worker);
  /// Removes a worker; fails with kNotFound when absent.
  util::Status RemoveWorker(core::WorkerId id);
  /// Moves an indexed worker to `to` (the WorkerMoved delta event). A
  /// same-cell jitter is a pure payload update (location feeds no cell
  /// summary); a cross-cell move repairs exactly the two affected cells.
  /// Fails with kNotFound when absent.
  util::Status MoveWorker(core::WorkerId id, geo::Point to);
  /// Inserts a task under `id`; fails with kAlreadyExists on duplicates.
  util::Status InsertTask(core::TaskId id, const core::Task& task);
  /// Removes a task; fails with kNotFound when absent.
  util::Status RemoveTask(core::TaskId id);

  /// The indexed worker payload, or nullptr when absent. Stable until the
  /// next mutation of the worker's cell.
  const core::Worker* FindWorker(core::WorkerId id) const;

  /// Retrieves all valid (worker, task) pairs using the cell-level pruning.
  /// The result is indexed by worker id (ids must be < `num_workers`).
  /// Produces exactly the same edge set as CandidateGraph::Build, for every
  /// executor width (source cells are sharded across `executor`; each
  /// worker's list is produced whole by the shard owning its cell).
  /// `deadline` is polled between cells; a tripped budget or token returns
  /// kDeadlineExceeded / kCancelled instead of finishing the scan.
  util::StatusOr<std::vector<std::vector<core::TaskId>>> RetrieveEdges(
      int num_workers, RetrievalStats* stats = nullptr,
      util::Executor* executor = nullptr,
      const util::Deadline& deadline = util::Deadline()) const;

  /// Same retrieval as a flat sorted (worker, task) pair list; works with
  /// arbitrary (sparse) external ids.
  util::StatusOr<std::vector<std::pair<core::WorkerId, core::TaskId>>>
  RetrievePairs(RetrievalStats* stats = nullptr,
                util::Executor* executor = nullptr,
                const util::Deadline& deadline = util::Deadline()) const;

  /// The valid-task row of one indexed worker at the current clock, with
  /// its stability horizon (see WorkerRowResult): the scalar
  /// ClassifyPairWindow oracle over every task block of the worker's
  /// cached tcell_list. Emits exactly the ids RetrievePairs would emit for
  /// this worker (cached lists are conservative supersets, and pruned
  /// cells can never host a valid -- or future-valid -- pair for this
  /// cell's workers). Fails with kNotFound for an unindexed worker.
  util::StatusOr<WorkerRowResult> RetrieveWorkerRow(core::WorkerId id) const;

  /// Advances the clock used by validity tests and temporal pruning.
  /// Must be non-decreasing: cached reachability lists stay conservative
  /// (supersets) only when deadlines can only get closer.
  void set_now(double now);
  double now() const { return now_; }
  core::ArrivalPolicy policy() const { return policy_; }

  /// The target-cell list of the cell containing `location`: ids of cells
  /// holding at least one task some worker of that cell might reach
  /// (Section 7.1 "tcell_list"). Exposed for inspection and tests.
  std::vector<int> ReachableCells(geo::Point location) const;

  /// The cached tcell_list of `cell` (Section 7.2 dynamic maintenance):
  /// rebuilt lazily after worker churn in the cell, membership-patched
  /// after task churn elsewhere. RetrieveEdges consults this cache. The
  /// returned reference stays valid until the next mutation.
  const std::vector<int>& CachedReachable(int cell) const;

  /// Number of tcell_list rebuilds / membership patches performed so far
  /// (the cost the Appendix I model estimates).
  int64_t reachability_rebuilds() const {
    util::MutexLock lock(tcells_->mu);
    return tcells_->rebuilds;
  }
  int64_t reachability_patches() const { return reachability_patches_; }

  int cells_per_axis() const { return cells_per_axis_; }
  int num_cells() const { return cells_per_axis_ * cells_per_axis_; }
  double eta() const { return eta_; }
  int num_workers() const { return static_cast<int>(worker_cell_.size()); }
  int num_tasks() const { return static_cast<int>(task_cell_.size()); }

  /// Id of the cell containing `p` (delta callers use this to attribute
  /// touched-cell metrics to mutations).
  int CellIndexOf(geo::Point p) const { return CellOf(p); }

  /// Copy of one cell's membership and summaries (bit-identity suite).
  CellState DebugCellState(int cell) const;

 private:
  struct Cell {
    std::vector<std::pair<core::WorkerId, core::Worker>> workers;
    std::vector<std::pair<core::TaskId, core::Task>> tasks;
    // Worker summaries.
    double v_max = 0.0;
    geo::AngularInterval dir_cover = geo::AngularInterval::FullCircle();
    bool has_dir_cover = false;
    // Task summaries.
    double s_min = 0.0;
    double e_max = 0.0;
  };

  int CellOf(geo::Point p) const;
  geo::Box BoxOf(int cell) const;
  static void AbsorbWorker(Cell* cell, const core::Worker& worker);
  /// Recomputes a cell's summaries from scratch, folding members in
  /// sorted-id order (called eagerly after every membership change; the
  /// canonical fold order is what makes delta == rebuild bit-identical).
  void RebuildSummaries(int cell_id);
  /// Recomputes a cell's SoA task block from its (sorted) task list and
  /// bumps the scratch-size bound. Called eagerly on task churn so
  /// retrieval passes read maintained blocks instead of rebuilding all of
  /// them per pass.
  void RebuildBlock(int cell_id);

  /// Invalidates the cached tcell_list of `cell` (worker churn there).
  void InvalidateReachability(int cell) EXCLUDES(tcells_->mu);
  /// Re-evaluates target cell `target` in every valid cached list (task
  /// churn in `target`).
  void PatchReachability(int target) EXCLUDES(tcells_->mu);

  /// Cache lookup/rebuild; the caller holds the cache mutex.
  const std::vector<int>& CachedReachableLocked(int cell) const
      REQUIRES(tcells_->mu);

  /// Builds every missing tcell_list touched by a retrieval pass and
  /// accumulates the cell-pair counters exactly as the serial scan did
  /// (one critical section; `count_prune_scan` reproduces RetrieveEdges'
  /// uncached-scan accounting, RetrievePairs passes false). Returns the
  /// warmed per-source-cell lists -- stable until the next mutation, so
  /// the retrieval scan may read them lock-free through the returned
  /// pointer while the index is only used const -- or nullptr when
  /// `deadline` tripped mid-warm.
  const std::vector<std::vector<int>>* WarmReachability(
      bool count_prune_scan, RetrievalStats* stats,
      const util::Deadline& deadline) const EXCLUDES(tcells_->mu);

  /// True when no worker of `from` can reach any task of `to` before its
  /// deadline or within its direction cover (the pruning rule).
  bool CanPrune(const Cell& from, int from_id, const Cell& to,
                int to_id) const;

  /// Per-source-cell cached tcell_lists (sorted), built on demand, plus
  /// their validity bits and rebuild counter -- everything the const
  /// retrieval paths may touch concurrently, guarded by one mutex.
  /// Mutators take the (then-uncontended) mutex too, so the lock
  /// discipline is uniform and provable. Heap-allocated so the index
  /// stays movable (GridIndex::Build returns by value).
  struct TCellCache {
    mutable util::Mutex mu;
    std::vector<std::vector<int>> lists GUARDED_BY(mu);
    std::vector<uint8_t> valid GUARDED_BY(mu);
    int64_t rebuilds GUARDED_BY(mu) = 0;
  };

  double eta_;
  int cells_per_axis_;
  double now_;
  core::ArrivalPolicy policy_;
  std::vector<Cell> cells_;
  /// Maintained columnar mirror of every cell's (sorted) task list -- the
  /// SoA spans the retrieval scans batch through the kernels. blocks_[c]
  /// is repaired on task churn in cell c only; max_block_ is a monotone
  /// upper bound on block sizes (classification scratch bound; never
  /// shrunk, so removals stay O(affected cell)).
  std::vector<core::TaskBlock> blocks_;
  size_t max_block_ = 0;
  std::unordered_map<core::WorkerId, int> worker_cell_;
  std::unordered_map<core::TaskId, int> task_cell_;
  std::unique_ptr<TCellCache> tcells_ = std::make_unique<TCellCache>();
  int64_t reachability_patches_ = 0;
};

}  // namespace rdbsc::index

#endif  // RDBSC_INDEX_GRID_INDEX_H_
