#include "index/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "util/config.h"

namespace rdbsc::index {
namespace {

constexpr double kEtaMin = 1.0 / 1024.0;
constexpr double kEtaMax = 1.0;

// Left-hand side of Eq. (23): (L_max + eta)^(D2-2) * eta^3, which is
// monotone increasing in eta for D2 <= 2 (d log/d eta = 3/eta -
// (2-D2)/(L_max+eta) > 0).
double Lhs(double eta, const CostModelParams& params) {
  return std::pow(params.l_max + eta, params.d2 - 2.0) * eta * eta * eta;
}

}  // namespace

double EstimateUpdateCost(double eta, const CostModelParams& params) {
  assert(eta > 0.0);
  const double pi = std::numbers::pi;
  double reach = pi * (params.l_max + eta) * (params.l_max + eta);
  double cells = reach / (eta * eta);
  double tasks =
      (params.num_points - 1) * std::pow(reach, params.d2 / 2.0);
  return cells + tasks;
}

double OptimalEta(const CostModelParams& params) {
  assert(params.num_points >= 1);
  assert(params.d2 > 0.0 && params.d2 <= 2.0);
  if (params.num_points <= 1) return kEtaMax;

  const double pi = std::numbers::pi;
  // Right-hand side of Eq. (23).
  double rhs = 2.0 * std::pow(pi, 1.0 - params.d2 / 2.0) * params.l_max /
               (params.d2 * (params.num_points - 1));

  if (Lhs(kEtaMin, params) >= rhs) return kEtaMin;
  if (Lhs(kEtaMax, params) <= rhs) return kEtaMax;

  double lo = kEtaMin;
  double hi = kEtaMax;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (Lhs(mid, params) < rhs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace rdbsc::index
