#include "index/delta_graph.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/kernels.h"

namespace rdbsc::index {
namespace {

/// Rows between deadline polls during repair; mirrors the retrieval
/// kernels' core::kKernelRowsPerPoll granularity.
constexpr int kRepairRowsPerPoll = 32;

bool SortedContains(const std::vector<core::TaskId>& v, core::TaskId id) {
  return std::binary_search(v.begin(), v.end(), id);
}

/// Inserts `id` into sorted `v`; returns false when already present.
bool SortedInsert(std::vector<core::TaskId>* v, core::TaskId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it != v->end() && *it == id) return false;
  v->insert(it, id);
  return true;
}

/// Erases `id` from sorted `v`; returns false when absent.
bool SortedErase(std::vector<core::TaskId>* v, core::TaskId id) {
  auto it = std::lower_bound(v->begin(), v->end(), id);
  if (it == v->end() || *it != id) return false;
  v->erase(it);
  return true;
}

}  // namespace

util::Status DeltaGraph::AddRow(core::WorkerId id) {
  if (!rows_.try_emplace(id).second) {
    return util::Status::AlreadyExists("delta row already exists");
  }
  return util::Status::OK();
}

util::Status DeltaGraph::RemoveRow(core::WorkerId id) {
  if (rows_.erase(id) == 0) {
    return util::Status::NotFound("delta row not found");
  }
  return util::Status::OK();
}

util::Status DeltaGraph::MarkRowDirty(core::WorkerId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return util::Status::NotFound("delta row not found");
  }
  it->second.dirty = true;
  return util::Status::OK();
}

void DeltaGraph::OnTaskArrived(const GridIndex& index, core::TaskId id,
                               const core::Task& task) {
  const double now = index.now();
  for (auto& [wid, row] : rows_) {
    if (row.dirty) continue;  // full recompute already pending
    const core::Worker* worker = index.FindWorker(wid);
    if (worker == nullptr) {
      // Row exists but the worker left the index: force a recompute so
      // RepairRows surfaces the NotFound instead of serving stale edges.
      row.dirty = true;
      continue;
    }
    const core::PairWindow pw =
        core::ClassifyPairWindow(task, *worker, now, index.policy());
    if (pw.valid) {
      // Re-expose a previously deleted base edge, else patch-add.
      if (!SortedErase(&row.dels, id)) SortedInsert(&row.adds, id);
      ++stats_.edges_repaired;
      MaybeCompact(&row);
    }
    // The row's horizon must now also cover the new pair's window,
    // whether it is currently valid or merely not-yet-valid.
    row.stable_until = std::min(row.stable_until, pw.stable_until);
  }
}

void DeltaGraph::OnTaskRemoved(core::TaskId id) {
  for (auto& entry : rows_) {
    Row& row = entry.second;
    if (row.dirty) continue;
    if (SortedErase(&row.adds, id)) {
      ++stats_.edges_repaired;
    } else if (SortedContains(row.base, id) && SortedInsert(&row.dels, id)) {
      ++stats_.edges_repaired;
      MaybeCompact(&row);
    }
    // Removal never shrinks a validity window: horizons stay as-is.
  }
}

util::Status DeltaGraph::RepairRows(const GridIndex& index,
                                    const util::Deadline& deadline) {
  const double now = index.now();
  // Full-churn rounds (at least half the rows due) on large instances are
  // cheaper as one vectorized bulk retrieval than as per-row scalar
  // recomputes: the per-row path exists to win when few rows changed, and
  // above the crossover it must never cost more than the rebuild it
  // replaces. Small instances stay per-row so their horizons are exact.
  if (static_cast<int64_t>(rows_.size()) >= bulk_min_rows_) {
    int64_t due = 0;
    for (const auto& [wid, row] : rows_) {
      if (row.dirty || now > row.stable_until) ++due;
    }
    if (due > 0 && 2 * due >= static_cast<int64_t>(rows_.size())) {
      return BulkRefill(index, deadline);
    }
  }
  int since_poll = 0;
  for (auto& [wid, row] : rows_) {
    if (++since_poll >= kRepairRowsPerPoll) {
      since_poll = 0;
      if (util::Status s = deadline.Check(); !s.ok()) return s;
    }
    if (!row.dirty && now <= row.stable_until) {
      ++stats_.rows_reused;
      continue;
    }
    util::StatusOr<WorkerRowResult> fresh = index.RetrieveWorkerRow(wid);
    if (!fresh.ok()) return fresh.status();
    WorkerRowResult result = std::move(fresh).value();
    stats_.cells_touched += result.cells_scanned;
    stats_.edges_repaired += static_cast<int64_t>(result.tasks.size());
    ++stats_.rows_recomputed;
    row.base = std::move(result.tasks);
    row.adds.clear();
    row.dels.clear();
    row.stable_until = result.stable_until;
    row.dirty = false;
  }
  return util::Status::OK();
}

util::Status DeltaGraph::BulkRefill(const GridIndex& index,
                                    const util::Deadline& deadline) {
  // Surface stale rows exactly like the per-row path would: a tracked
  // worker that left the index is a caller bug, not a silently-empty row.
  for (const auto& [wid, row] : rows_) {
    if (index.FindWorker(wid) == nullptr) {
      return util::Status::NotFound("delta row's worker not in index");
    }
  }
  RetrievalStats rstats;
  util::StatusOr<std::vector<std::pair<core::WorkerId, core::TaskId>>> pairs =
      index.RetrievePairs(&rstats, nullptr, deadline);
  if (!pairs.ok()) return pairs.status();
  const double now = index.now();
  // RetrievePairs emits (worker, task)-sorted output and rows_ iterates
  // by worker id, so one lockstep merge rebuilds every base row sorted
  // -- no per-pair lookups. Workers indexed but not tracked here are
  // skipped: callers maintaining a row subset stay correct.
  auto pit = pairs.value().cbegin();
  const auto pend = pairs.value().cend();
  for (auto& [wid, row] : rows_) {
    row.base.clear();
    row.adds.clear();
    row.dels.clear();
    // The bulk kernel yields verdicts, not windows, so the refilled rows
    // carry no lookahead: they are current exactly at this clock and due
    // again once it advances. On a churn-heavy stream that is the regime
    // anyway; quiet streams stay on the per-row horizon path above.
    row.stable_until = now;
    row.dirty = false;
    while (pit != pend && pit->first < wid) ++pit;
    auto run_end = pit;
    while (run_end != pend && run_end->first == wid) ++run_end;
    row.base.reserve(static_cast<size_t>(run_end - pit));
    for (; pit != run_end; ++pit) row.base.push_back(pit->second);
  }
  stats_.cells_touched += rstats.cell_pairs_examined - rstats.cell_pairs_pruned;
  stats_.edges_repaired += static_cast<int64_t>(pairs.value().size());
  stats_.rows_recomputed += static_cast<int64_t>(rows_.size());
  ++stats_.bulk_refills;
  return util::Status::OK();
}

std::vector<std::pair<core::WorkerId, core::TaskId>> DeltaGraph::Pairs()
    const {
  std::vector<std::pair<core::WorkerId, core::TaskId>> pairs;
  size_t bound = 0;  // dels only shrink rows: reserve the upper bound
  for (const auto& [wid, row] : rows_) {
    bound += row.base.size() + row.adds.size();
  }
  pairs.reserve(bound);
  for (const auto& [wid, row] : rows_) {
    if (row.adds.empty() && row.dels.empty()) {
      for (core::TaskId tid : row.base) pairs.emplace_back(wid, tid);
      continue;
    }
    for (core::TaskId tid : Materialize(row)) pairs.emplace_back(wid, tid);
  }
  return pairs;
}

std::vector<core::TaskId> DeltaGraph::Materialize(const Row& row) {
  std::vector<core::TaskId> out;
  out.reserve(row.base.size() + row.adds.size());
  // Merge (base \ dels) with adds; all three inputs are sorted and adds
  // is disjoint from base, so the output is sorted and unique.
  auto add_it = row.adds.begin();
  for (core::TaskId tid : row.base) {
    if (SortedContains(row.dels, tid)) continue;
    while (add_it != row.adds.end() && *add_it < tid) {
      out.push_back(*add_it++);
    }
    out.push_back(tid);
  }
  out.insert(out.end(), add_it, row.adds.end());
  return out;
}

void DeltaGraph::MaybeCompact(Row* row) {
  if (static_cast<int>(row->adds.size() + row->dels.size()) <=
      compaction_threshold_) {
    return;
  }
  row->base = Materialize(*row);
  row->adds.clear();
  row->dels.clear();
  ++stats_.compactions;
}

}  // namespace rdbsc::index
