#include "core/exact.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "core/dominance.h"
#include "core/registry.h"

namespace rdbsc::core {
namespace {

// Deadline polling granularity of the enumeration walk.
constexpr int64_t kDeadlineStride = 1024;

// Walks every assignment in the population (odometer over the candidate
// lists of connected workers), calling `leaf` with the incrementally
// maintained state at each complete assignment. Polls `deadline` every
// kDeadlineStride assignments; returns false when the walk was cut short.
bool ForEachAssignment(const Instance& instance, const CandidateGraph& graph,
                       const util::Deadline& deadline,
                       const std::function<void(AssignmentState&)>& leaf) {
  std::vector<WorkerId> connected;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (graph.Degree(j) > 0) connected.push_back(j);
  }
  AssignmentState state(instance);
  int64_t visited = 0;
  bool aborted = false;
  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (aborted) return;
    if (depth == connected.size()) {
      if (visited % kDeadlineStride == 0 && deadline.Exhausted()) {
        aborted = true;
        return;
      }
      ++visited;
      leaf(state);
      return;
    }
    WorkerId j = connected[depth];
    for (TaskId i : graph.TasksOf(j)) {
      if (aborted) return;
      state.Add(i, j);
      recurse(depth + 1);
      state.Remove(j);
    }
  };
  recurse(0);
  return !aborted;
}

}  // namespace

int64_t ExactSolver::Population(const CandidateGraph& graph, int64_t cap) {
  int64_t population = 1;
  for (WorkerId j = 0; j < graph.num_workers(); ++j) {
    int degree = graph.Degree(j);
    if (degree == 0) continue;
    if (population > cap / degree) return -1;
    population *= degree;
  }
  return population;
}

util::StatusOr<SolveResult> ExactSolver::SolveImpl(
    const Instance& instance, const CandidateGraph& graph,
    const util::Deadline& deadline, util::Executor& /*executor*/,
    SolveStats* partial_stats) {
  auto t0 = std::chrono::steady_clock::now();
  int64_t population = Population(graph, max_enumeration_);
  if (population < 0) {
    return util::Status::InvalidArgument(
        "assignment population exceeds the EXACT enumeration cap of " +
        std::to_string(max_enumeration_) +
        "; use an approximation solver (sampling/dc) for this instance");
  }

  SolveResult result;
  auto bail = [&]() {
    result.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return BudgetError(deadline, result.stats, partial_stats);
  };

  // Pass 1: objectives of every assignment.
  std::vector<BiPoint> points;
  bool completed =
      ForEachAssignment(instance, graph, deadline,
                        [&](AssignmentState& state) {
                          ObjectiveValue value = state.Objectives();
                          points.push_back(
                              {value.min_reliability, value.total_std});
                        });
  result.stats.exact_std_evals = static_cast<int64_t>(points.size());
  if (!completed) return bail();

  result.assignment = Assignment(instance.num_workers());
  if (points.empty()) {
    result.objectives = ObjectiveValue{};
    return result;
  }
  size_t winner = TopDominating(points);

  // Pass 2: re-walk to the winner and materialize it.
  size_t cursor = 0;
  completed = ForEachAssignment(instance, graph, deadline,
                                [&](AssignmentState& state) {
                                  if (cursor == winner) {
                                    result.assignment = state.assignment();
                                  }
                                  ++cursor;
                                });
  if (!completed) return bail();
  // Fresh evaluation: the DFS's incremental adds/removes accumulate tiny
  // rounding drift that must not leak into the reported optimum.
  result.objectives = EvaluateAssignment(instance, result.assignment);
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

util::StatusOr<std::vector<Assignment>> EnumerateParetoFront(
    const Instance& instance, const CandidateGraph& graph,
    int64_t max_enumeration) {
  if (ExactSolver::Population(graph, max_enumeration) < 0) {
    return util::Status::FailedPrecondition(
        "assignment population exceeds the enumeration cap");
  }
  const util::Deadline unlimited;
  std::vector<BiPoint> points;
  ForEachAssignment(instance, graph, unlimited,
                    [&](AssignmentState& state) {
                      ObjectiveValue value = state.Objectives();
                      points.push_back(
                          {value.min_reliability, value.total_std});
                    });
  if (points.empty()) return std::vector<Assignment>{};

  std::vector<size_t> skyline = SkylineIndices(points);
  // Deduplicate by objective value: identical points are the same front
  // vertex realized by different assignments; keep the first.
  std::vector<size_t> unique;
  for (size_t s : skyline) {
    bool duplicate = false;
    for (size_t u : unique) {
      if (points[u].x == points[s].x && points[u].y == points[s].y) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) unique.push_back(s);
  }
  std::sort(unique.begin(), unique.end());

  std::vector<Assignment> front;
  size_t cursor = 0;
  size_t next = 0;
  ForEachAssignment(instance, graph, unlimited,
                    [&](AssignmentState& state) {
                      if (next < unique.size() && cursor == unique[next]) {
                        front.push_back(state.assignment());
                        ++next;
                      }
                      ++cursor;
                    });
  return front;
}

namespace internal {

void RegisterExactSolver(SolverRegistry& registry) {
  registry
      .Register("exact",
                [](const SolverOptions& options) {
                  return std::make_unique<ExactSolver>(options);
                })
      .ok();
}

}  // namespace internal

}  // namespace rdbsc::core
