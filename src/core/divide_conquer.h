#ifndef RDBSC_CORE_DIVIDE_CONQUER_H_
#define RDBSC_CORE_DIVIDE_CONQUER_H_

#include <algorithm>
#include <string>

#include "core/solver.h"

namespace rdbsc::core {

/// RDB-SC_DC (Figures 6-9): recursively bisects the bipartite validity
/// graph with BG_Partition (2-means on task locations, Fig. 7), solves
/// leaf subproblems with SAMPLING (or GREEDY), and reconciles duplicated
/// ("conflicting") workers with SA_Merge (Fig. 9), classifying them into
/// independent (ICW) and dependent (DCW) conflicting workers per Lemmas
/// 6.1-6.2 and enumerating each DCW group's 2^k keep-side combinations.
///
/// The partition phase is serial (it drives the random stream); the leaf
/// subproblems are independent and fan out across the request's executor,
/// each with a seed pre-drawn in recursion order, so parallel runs are
/// bit-identical to serial for a fixed options.seed.
class DivideConquerSolver : public Solver {
 public:
  explicit DivideConquerSolver(SolverOptions options = {},
                               std::string name = "D&C")
      : options_(options), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

 protected:
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats) override;

 private:
  SolverOptions options_;
  std::string name_;
};

/// The paper's ground-truth proxy G-TRUTH: D&C with the embedded sampling
/// budget raised 10x (Section 8.1).
class GroundTruthSolver : public DivideConquerSolver {
 public:
  explicit GroundTruthSolver(SolverOptions options = {})
      : DivideConquerSolver(Boost(options), "G-TRUTH") {}

 private:
  static SolverOptions Boost(SolverOptions options) {
    options.sample_multiplier = std::max(1, options.sample_multiplier) * 10;
    options.max_sample_size = options.max_sample_size * 10;
    return options;
  }
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_DIVIDE_CONQUER_H_
