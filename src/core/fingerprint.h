#ifndef RDBSC_CORE_FINGERPRINT_H_
#define RDBSC_CORE_FINGERPRINT_H_

#include "core/instance.h"
#include "core/solver.h"
#include "util/hash.h"

namespace rdbsc::core {

/// Mixes every field of `instance` that can influence a solve into
/// `hasher`, in a fixed documented order: task count, each task
/// (location, period, beta), worker count, each worker (location,
/// velocity, direction cone, confidence, available_from), `now`, and the
/// arrival policy. Two instances mix equal streams iff they are
/// bit-identical content-wise, independent of how they were produced.
void MixInstance(util::Hasher& hasher, const Instance& instance);

/// Mixes every SolverOptions knob (all of them feed some solver's
/// decisions; hashing the superset keeps the fingerprint solver-agnostic).
void MixSolverOptions(util::Hasher& hasher, const SolverOptions& options);

/// The stable 128-bit content identity of one instance snapshot. This is
/// the base every cache key builds on: the engine layers solver name /
/// options / graph strategy on top (engine/fingerprint.h), and
/// sim::IncrementalAssigner uses it to recognize recurring round
/// snapshots.
util::Hash128 InstanceFingerprint(const Instance& instance);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_FINGERPRINT_H_
