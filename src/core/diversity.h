#ifndef RDBSC_CORE_DIVERSITY_H_
#define RDBSC_CORE_DIVERSITY_H_

#include <vector>

#include "core/model.h"

namespace rdbsc::core {

/// One assigned worker as seen from its task: the approach angle at the task
/// location (Figure 2(a)), the arrival time inside the valid period
/// (Figure 2(b)) and the worker's confidence.
struct Observation {
  double angle = 0.0;       ///< approach direction, radians in [0, 2*pi)
  double arrival = 0.0;     ///< arrival time, clamped into [task.start, end]
  double confidence = 0.9;  ///< worker reliability p_j
};

/// Builds the observation of worker `w` for task `t` given the system time.
Observation MakeObservation(const Task& t, const Worker& w, double now,
                            ArrivalPolicy policy);

/// Spatial diversity SD (Eq. 3): entropy of the circular gaps between the
/// given approach angles. 0 for fewer than two distinct rays.
double SpatialDiversity(const std::vector<double>& angles);

/// Temporal diversity TD (Eq. 4): entropy of the sub-intervals into which
/// the arrival times divide [start, end]. 0 for an empty set of arrivals.
double TemporalDiversity(const std::vector<double>& arrivals, double start,
                         double end);

/// Deterministic spatial/temporal diversity STD (Eq. 5) of a concrete
/// worker set, i.e. assuming every observation is realized.
double Std(const Task& task, const std::vector<Observation>& obs);

/// Expected spatial diversity E[SD] under possible-worlds semantics,
/// computed with the spatial diversity matrix M_SD of Section 3.2
/// (prefix-product formulation, O(r^2) time instead of the paper's O(r^3)).
double ExpectedSpatialDiversity(const std::vector<Observation>& obs);

/// Expected temporal diversity E[TD], computed with the temporal diversity
/// matrix M_TD of Section 3.2. The valid period boundaries act as virtual
/// always-present dividers (see DESIGN.md on the Eq. 10 index convention).
double ExpectedTemporalDiversity(const std::vector<Observation>& obs,
                                 double start, double end);

/// Expected combined diversity E[STD] = beta*E[SD] + (1-beta)*E[TD]
/// (Lemma 3.1).
double ExpectedStd(const Task& task, const std::vector<Observation>& obs);

/// Test oracle: E[STD] by exhaustive enumeration of all 2^r possible worlds
/// (Eq. 6). Requires obs.size() <= 25.
double ExpectedStdBruteForce(const Task& task,
                             const std::vector<Observation>& obs);

/// Lower/upper bounds on E[STD] used by the greedy pruning strategy
/// (Section 4.3): ub is STD with every worker present (Lemma 4.2 maximum);
/// lb is P(diversity non-zero) times the smallest realizable non-zero
/// diversity. Both are O(r log r).
struct DiversityBounds {
  double lb = 0.0;
  double ub = 0.0;
};
DiversityBounds ExpectedStdBounds(const Task& task,
                                  const std::vector<Observation>& obs);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_DIVERSITY_H_
