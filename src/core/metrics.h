#ifndef RDBSC_CORE_METRICS_H_
#define RDBSC_CORE_METRICS_H_

#include <vector>

#include "core/assignment.h"
#include "core/instance.h"

namespace rdbsc::core {

/// Structural statistics of an assignment, used by the benches and
/// examples to explain *why* one approach beats another (e.g. GREEDY's
/// herding shows up as a heavy roster histogram tail plus many empty
/// tasks).
struct AssignmentMetrics {
  int assigned_workers = 0;
  int nonempty_tasks = 0;
  int empty_tasks = 0;
  int max_roster = 0;  ///< largest number of workers on one task
  double mean_roster = 0.0;  ///< mean workers per non-empty task
  /// roster_histogram[r] = number of tasks with exactly r workers
  /// (r capped at the vector size - 1; the last bucket aggregates).
  std::vector<int> roster_histogram;
  double mean_task_reliability = 0.0;  ///< over non-empty tasks
  double min_task_reliability = 0.0;
  double total_expected_std = 0.0;
};

/// Computes the metrics above; `histogram_buckets` bounds the roster
/// histogram length (>= 2).
AssignmentMetrics ComputeMetrics(const Instance& instance,
                                 const Assignment& assignment,
                                 int histogram_buckets = 9);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_METRICS_H_
