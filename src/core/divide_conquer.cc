#include "core/divide_conquer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/dominance.h"
#include "core/greedy.h"
#include "core/registry.h"
#include "core/sampling.h"
#include "util/kmeans.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

// A subproblem in global id space: a task subset, a worker subset, and the
// validity edges restricted to them.
struct Sub {
  std::vector<TaskId> tasks;
  std::vector<WorkerId> workers;
  // edges[k] = valid tasks (global ids, within `tasks`) of workers[k].
  std::vector<std::vector<TaskId>> edges;
};

// One worker-task assignment pair in global id space.
using Pair = std::pair<TaskId, WorkerId>;

class DcRunner {
 public:
  DcRunner(const Instance& instance, const SolverOptions& options,
           const util::Deadline& deadline, util::Executor& executor)
      : instance_(instance),
        options_(options),
        deadline_(deadline),
        executor_(executor),
        rng_(options.seed) {}

  util::StatusOr<std::vector<Pair>> Run(const CandidateGraph& graph,
                                        SolveStats* stats) {
    Sub root;
    root.tasks.resize(instance_.num_tasks());
    for (TaskId i = 0; i < instance_.num_tasks(); ++i) root.tasks[i] = i;
    for (WorkerId j = 0; j < instance_.num_workers(); ++j) {
      if (graph.Degree(j) == 0) continue;
      root.workers.push_back(j);
      const auto row = graph.TasksOf(j);
      root.edges.emplace_back(row.begin(), row.end());
    }
    stats_ = stats;

    // Phase 1 (serial): BG_Partition recursion. All rng_ draws happen
    // here, in the exact order of the recursive formulation, so phases 2-3
    // can run leaves in any order without perturbing the random stream.
    util::StatusOr<int> root_node = Descend(std::move(root));
    if (!root_node.ok()) return root_node.status();

    // Phase 2 (sharded): the leaves are fully independent subproblems --
    // each carries its own pre-drawn seed and shares only the read-only
    // instance and the runner deadline.
    const int num_leaves = static_cast<int>(leaves_.size());
    std::vector<std::vector<Pair>> leaf_pairs(num_leaves);
    std::vector<util::Status> leaf_status(num_leaves);
    std::vector<SolveStats> leaf_stats(num_leaves);
    std::atomic<bool> failed{false};
    executor_.ShardedFor(
        num_leaves, [&](int /*shard*/, int64_t begin, int64_t end) {
          for (int64_t leaf = begin; leaf < end; ++leaf) {
            if (failed.load(std::memory_order_relaxed)) return;
            util::StatusOr<std::vector<Pair>> solved = SolveLeaf(
                leaves_[leaf].sub, leaves_[leaf].seed, &leaf_stats[leaf]);
            if (solved.ok()) {
              leaf_pairs[leaf] = std::move(solved).value();
            } else {
              leaf_status[leaf] = solved.status();
              failed.store(true, std::memory_order_relaxed);
            }
          }
        });
    for (int leaf = 0; leaf < num_leaves; ++leaf) {
      if (!leaf_status[leaf].ok()) return leaf_status[leaf];
      if (stats_ != nullptr) {
        stats_->exact_std_evals += leaf_stats[leaf].exact_std_evals;
        stats_->sample_size =
            std::max(stats_->sample_size, leaf_stats[leaf].sample_size);
      }
    }

    // Phase 3 (serial): SA_Merge bottom-up in tree order -- merge takes no
    // random draws, so this reproduces the recursive result exactly.
    return Combine(root_node.value(), &leaf_pairs);
  }

 private:
  // One node of the materialized BG_Partition tree (Fig. 6 call graph).
  struct Node {
    int left = -1;
    int right = -1;
    int leaf_index = -1;  ///< into leaves_ when this is a leaf
  };
  struct Leaf {
    Sub sub;
    uint64_t seed;  ///< embedded-solver seed, drawn in recursion order
  };

  // The recursive descent of RDB-SC_DC (Fig. 6), with the leaf *solves*
  // deferred: this phase only partitions and records leaves.
  util::StatusOr<int> Descend(Sub sub) {
    if (util::Status budget = deadline_.Check(); !budget.ok()) {
      return budget;
    }
    if (static_cast<int>(sub.tasks.size()) <= options_.gamma ||
        sub.workers.empty()) {
      return MakeLeaf(std::move(sub));
    }
    Sub left, right;
    if (!Partition(sub, &left, &right)) return MakeLeaf(std::move(sub));
    util::StatusOr<int> l = Descend(std::move(left));
    if (!l.ok()) return l.status();
    util::StatusOr<int> r = Descend(std::move(right));
    if (!r.ok()) return r.status();
    nodes_.push_back(Node{l.value(), r.value(), -1});
    return static_cast<int>(nodes_.size()) - 1;
  }

  int MakeLeaf(Sub sub) {
    // Matches the recursive formulation's draw: one fork per leaf, taken
    // when the recursion reaches it.
    leaves_.push_back(Leaf{std::move(sub), rng_.Fork().engine()()});
    nodes_.push_back(
        Node{-1, -1, static_cast<int>(leaves_.size()) - 1});
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Bottom-up SA_Merge over the materialized tree.
  util::StatusOr<std::vector<Pair>> Combine(
      int node_index, std::vector<std::vector<Pair>>* leaf_pairs) {
    const Node& node = nodes_[node_index];
    if (node.leaf_index >= 0) {
      return std::move((*leaf_pairs)[node.leaf_index]);
    }
    util::StatusOr<std::vector<Pair>> s1 = Combine(node.left, leaf_pairs);
    if (!s1.ok()) return s1.status();
    util::StatusOr<std::vector<Pair>> s2 = Combine(node.right, leaf_pairs);
    if (!s2.ok()) return s2.status();
    return Merge(s1.value(), s2.value());
  }

  // Leaf: materialize a local Instance and run the embedded solver.
  // Called from pool threads; must only touch the leaf's own state.
  util::StatusOr<std::vector<Pair>> SolveLeaf(const Sub& sub, uint64_t seed,
                                              SolveStats* leaf_stats) const {
    std::vector<Task> tasks;
    tasks.reserve(sub.tasks.size());
    std::unordered_map<TaskId, TaskId> global_to_local;
    for (size_t a = 0; a < sub.tasks.size(); ++a) {
      global_to_local[sub.tasks[a]] = static_cast<TaskId>(a);
      tasks.push_back(instance_.task(sub.tasks[a]));
    }
    std::vector<Worker> workers;
    workers.reserve(sub.workers.size());
    std::vector<std::vector<TaskId>> local_edges(sub.workers.size());
    for (size_t k = 0; k < sub.workers.size(); ++k) {
      workers.push_back(instance_.worker(sub.workers[k]));
      for (TaskId g : sub.edges[k]) {
        local_edges[k].push_back(global_to_local.at(g));
      }
    }
    Instance local(std::move(tasks), std::move(workers), instance_.now(),
                   instance_.policy());
    CandidateGraph local_graph =
        CandidateGraph::FromEdges(local, std::move(local_edges));

    SolverOptions leaf_options = options_;
    leaf_options.seed = seed;
    // The leaf solver shares this runner's deadline so a budget covers the
    // whole divide-and-conquer tree, not each leaf separately. Leaves run
    // serially inside: the fan-out happens at leaf granularity.
    SolveRequest leaf_request;
    leaf_request.instance = &local;
    leaf_request.graph = &local_graph;
    leaf_request.deadline = &deadline_;
    util::StatusOr<SolveResult> solved =
        options_.leaf_use_greedy
            ? GreedySolver(leaf_options).Solve(leaf_request)
            : SamplingSolver(leaf_options).Solve(leaf_request);
    if (!solved.ok()) return solved.status();
    const SolveResult& leaf = solved.value();
    leaf_stats->exact_std_evals = leaf.stats.exact_std_evals;
    leaf_stats->sample_size = leaf.stats.sample_size;

    std::vector<Pair> pairs;
    for (WorkerId lj = 0; lj < local.num_workers(); ++lj) {
      TaskId li = leaf.assignment.TaskOf(lj);
      if (li != kNoTask) {
        pairs.emplace_back(sub.tasks[li], sub.workers[lj]);
      }
    }
    return pairs;
  }

  // BG_Partition (Fig. 7). Returns false when the split degenerates.
  bool Partition(const Sub& sub, Sub* left, Sub* right) {
    std::vector<util::KmPoint> points;
    points.reserve(sub.tasks.size());
    for (TaskId i : sub.tasks) {
      points.push_back({instance_.task(i).location.x,
                        instance_.task(i).location.y});
    }
    util::TwoMeansResult clusters = util::TwoMeans(points, rng_);

    std::unordered_set<TaskId> in_left;
    for (size_t a = 0; a < sub.tasks.size(); ++a) {
      if (clusters.label[a] == 0) {
        left->tasks.push_back(sub.tasks[a]);
        in_left.insert(sub.tasks[a]);
      } else {
        right->tasks.push_back(sub.tasks[a]);
      }
    }
    if (left->tasks.empty() || right->tasks.empty()) return false;

    for (size_t k = 0; k < sub.workers.size(); ++k) {
      std::vector<TaskId> left_edges;
      std::vector<TaskId> right_edges;
      for (TaskId g : sub.edges[k]) {
        (in_left.contains(g) ? left_edges : right_edges).push_back(g);
      }
      // Workers reaching only one side are isolated there; straddling
      // workers are duplicated into both subproblems (Fig. 8).
      if (!left_edges.empty()) {
        left->workers.push_back(sub.workers[k]);
        left->edges.push_back(std::move(left_edges));
      }
      if (!right_edges.empty()) {
        right->workers.push_back(sub.workers[k]);
        right->edges.push_back(std::move(right_edges));
      }
    }
    return true;
  }

  // SA_Merge (Fig. 9).
  util::StatusOr<std::vector<Pair>> Merge(const std::vector<Pair>& s1,
                                          const std::vector<Pair>& s2) {
    // Conflicting workers: assigned in both halves (their copies disagree).
    std::unordered_map<WorkerId, TaskId> task1, task2;
    for (const Pair& p : s1) task1[p.second] = p.first;
    for (const Pair& p : s2) task2[p.second] = p.first;

    std::vector<WorkerId> conflicts;
    // LINT-ALLOW(unordered-iter): membership scan; conflicts sorted below
    for (const auto& [w, t] : task1) {
      if (task2.contains(w)) conflicts.push_back(w);
    }
    std::sort(conflicts.begin(), conflicts.end());

    if (conflicts.empty()) {
      std::vector<Pair> merged = s1;
      merged.insert(merged.end(), s2.begin(), s2.end());
      return merged;
    }

    // Evaluation state over the full instance, loaded with every
    // non-conflicting pair (Lemma 6.1: those assignments are stable).
    AssignmentState state(instance_);
    std::unordered_set<WorkerId> conflict_set(conflicts.begin(),
                                              conflicts.end());
    for (const Pair& p : s1) {
      if (!conflict_set.contains(p.second)) state.Add(p.first, p.second);
    }
    for (const Pair& p : s2) {
      if (!conflict_set.contains(p.second)) state.Add(p.first, p.second);
    }

    // Dependency components: conflicting workers sharing a task option must
    // be resolved together (Lemma 6.2); singletons are ICWs.
    std::unordered_map<TaskId, std::vector<int>> by_task;
    for (size_t c = 0; c < conflicts.size(); ++c) {
      by_task[task1[conflicts[c]]].push_back(static_cast<int>(c));
      by_task[task2[conflicts[c]]].push_back(static_cast<int>(c));
    }
    std::vector<int> component(conflicts.size(), -1);
    int num_components = 0;
    for (size_t seed = 0; seed < conflicts.size(); ++seed) {
      if (component[seed] != -1) continue;
      std::vector<int> stack{static_cast<int>(seed)};
      component[seed] = num_components;
      while (!stack.empty()) {
        int c = stack.back();
        stack.pop_back();
        for (TaskId t : {task1[conflicts[c]], task2[conflicts[c]]}) {
          for (int other : by_task[t]) {
            if (component[other] == -1) {
              component[other] = num_components;
              stack.push_back(other);
            }
          }
        }
      }
      ++num_components;
    }
    std::vector<std::vector<int>> groups(num_components);
    for (size_t c = 0; c < conflicts.size(); ++c) {
      groups[component[c]].push_back(static_cast<int>(c));
    }

    for (const std::vector<int>& group : groups) {
      if (util::Status budget = deadline_.Check(); !budget.ok()) {
        return budget;
      }
      ResolveGroup(group, conflicts, task1, task2, &state);
    }

    std::vector<Pair> merged;
    for (WorkerId j = 0; j < instance_.num_workers(); ++j) {
      TaskId i = state.TaskOf(j);
      if (i != kNoTask) merged.emplace_back(i, j);
    }
    return merged;
  }

  // Keeps exactly one copy of each conflicting worker in `group`, choosing
  // the combination with the best merged objectives.
  void ResolveGroup(const std::vector<int>& group,
                    const std::vector<WorkerId>& conflicts,
                    std::unordered_map<WorkerId, TaskId>& task1,
                    std::unordered_map<WorkerId, TaskId>& task2,
                    AssignmentState* state) {
    const int k = static_cast<int>(group.size());
    if (k > options_.max_dcw_group) {
      // Oversized DCW group: greedy per-worker fallback.
      for (int c : group) {
        WorkerId w = conflicts[c];
        ObjectiveValue keep1 = state->PreviewAdd(task1[w], w);
        ObjectiveValue keep2 = state->PreviewAdd(task2[w], w);
        state->Add(Better(keep1, keep2) ? task1[w] : task2[w], w);
      }
      return;
    }

    // Exhaustive 2^k enumeration (Lemma 6.2): bit b of `combo` selects the
    // side whose copy of worker group[b] survives.
    std::vector<ObjectiveValue> values;
    values.reserve(size_t{1} << k);
    for (uint32_t combo = 0; combo < (uint32_t{1} << k); ++combo) {
      for (int b = 0; b < k; ++b) {
        WorkerId w = conflicts[group[b]];
        state->Add((combo >> b) & 1 ? task2[w] : task1[w], w);
      }
      values.push_back(state->Objectives());
      for (int b = 0; b < k; ++b) state->Remove(conflicts[group[b]]);
    }

    std::vector<BiPoint> combo_points(values.size());
    for (size_t a = 0; a < values.size(); ++a) {
      combo_points[a] = {values[a].min_reliability, values[a].total_std};
    }
    uint32_t best = static_cast<uint32_t>(TopDominating(combo_points));
    for (int b = 0; b < k; ++b) {
      WorkerId w = conflicts[group[b]];
      state->Add((best >> b) & 1 ? task2[w] : task1[w], w);
    }
  }

  // Deterministic total order on objectives used for tie-breaking.
  static bool Better(const ObjectiveValue& a, const ObjectiveValue& b) {
    if (a.total_std != b.total_std) return a.total_std > b.total_std;
    return a.min_reliability > b.min_reliability;
  }

  const Instance& instance_;
  const SolverOptions& options_;
  const util::Deadline& deadline_;
  util::Executor& executor_;
  util::Rng rng_;
  SolveStats* stats_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
};

}  // namespace

util::StatusOr<SolveResult> DivideConquerSolver::SolveImpl(
    const Instance& instance, const CandidateGraph& graph,
    const util::Deadline& deadline, util::Executor& executor,
    SolveStats* partial_stats) {
  auto t0 = std::chrono::steady_clock::now();
  SolveResult result;
  DcRunner runner(instance, options_, deadline, executor);
  util::StatusOr<std::vector<Pair>> pairs = runner.Run(graph, &result.stats);
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!pairs.ok()) {
    return BudgetError(deadline, result.stats, partial_stats);
  }

  result.assignment = Assignment(instance.num_workers());
  for (const Pair& p : pairs.value()) {
    result.assignment.Assign(p.second, p.first);
  }
  result.objectives = EvaluateAssignment(instance, result.assignment);
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

namespace internal {

void RegisterDivideConquerSolvers(SolverRegistry& registry) {
  registry
      .Register("dc",
                [](const SolverOptions& options) {
                  return std::make_unique<DivideConquerSolver>(options);
                })
      .ok();
  registry
      .Register("gtruth",
                [](const SolverOptions& options) {
                  return std::make_unique<GroundTruthSolver>(options);
                })
      .ok();
}

}  // namespace internal

}  // namespace rdbsc::core
