#include "core/greedy.h"

#include "core/dominance.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "util/math.h"

namespace rdbsc::core {
namespace {

// One candidate (task, worker) edge with its per-round increase pair and
// cached diversity information.
struct Candidate {
  TaskId task = kNoTask;
  WorkerId worker = kNoWorker;
  // Round-invariant while the task roster is unchanged:
  int64_t cached_version = -1;  // task version the caches were computed at
  double lb_dd = 0.0;           // lower bound of Delta E[STD]
  double ub_dd = 0.0;           // upper bound of Delta E[STD]
  bool has_exact = false;
  double exact_dd = 0.0;  // exact Delta E[STD]
  // Recomputed every round (depends on the global minimum):
  double dmr = 0.0;  // Delta of the minimum reduced reliability
  bool alive = true;
};

// The two smallest reduced reliabilities over all tasks (empty tasks carry
// R = 0), so Delta_min_R of any single-task change is O(1).
struct MinPair {
  double min1 = std::numeric_limits<double>::infinity();
  TaskId arg1 = kNoTask;
  double min2 = std::numeric_limits<double>::infinity();
};

MinPair ComputeMins(const AssignmentState& state, int num_tasks) {
  MinPair mp;
  for (TaskId i = 0; i < num_tasks; ++i) {
    double r = state.TaskReducedReliability(i);
    if (r < mp.min1) {
      mp.min2 = mp.min1;
      mp.min1 = r;
      mp.arg1 = i;
    } else if (r < mp.min2) {
      mp.min2 = r;
    }
  }
  return mp;
}

}  // namespace

util::StatusOr<SolveResult> GreedySolver::SolveImpl(
    const Instance& instance, const CandidateGraph& graph,
    const util::Deadline& deadline, util::Executor& /*executor*/,
    SolveStats* partial_stats) {
  auto t0 = std::chrono::steady_clock::now();
  SolveResult result;
  AssignmentState state(instance);

  // Line 2 of Fig. 3: all valid pairs.
  std::vector<Candidate> pairs;
  std::vector<std::vector<size_t>> task_pairs(instance.num_tasks());
  std::vector<std::vector<size_t>> worker_pairs(instance.num_workers());
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    for (TaskId i : graph.TasksOf(j)) {
      task_pairs[i].push_back(pairs.size());
      worker_pairs[j].push_back(pairs.size());
      pairs.push_back(Candidate{.task = i, .worker = j});
    }
  }

  std::vector<int64_t> task_version(instance.num_tasks(), 0);
  // Cached E[STD] bounds of each task's current roster.
  std::vector<DiversityBounds> task_bounds(instance.num_tasks());
  std::vector<int64_t> task_bounds_version(instance.num_tasks(), -1);

  std::vector<size_t> alive;  // candidate indices still assignable
  alive.reserve(pairs.size());
  for (size_t c = 0; c < pairs.size(); ++c) alive.push_back(c);

  std::vector<size_t> survivors;

  while (!alive.empty()) {
    if (deadline.Exhausted()) {
      result.stats.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      return BudgetError(deadline, result.stats, partial_stats);
    }
    MinPair mp = ComputeMins(state, instance.num_tasks());

    // Refresh per-candidate caches and the per-round reliability deltas.
    for (size_t c : alive) {
      Candidate& cand = pairs[c];
      TaskId i = cand.task;
      if (task_bounds_version[i] != task_version[i]) {
        task_bounds[i] = state.TaskStdBounds(i);
        task_bounds_version[i] = task_version[i];
      }
      if (cand.cached_version != task_version[i]) {
        DiversityBounds after = state.PreviewTaskStdBounds(i, cand.worker);
        cand.lb_dd = std::max(0.0, after.lb - task_bounds[i].ub);
        cand.ub_dd = std::max(0.0, after.ub - task_bounds[i].lb);
        cand.cached_version = task_version[i];
        cand.has_exact = false;
      }
      double wt = util::ReliabilityWeight(instance.worker(cand.worker)
                                              .confidence);
      double excl = (i == mp.arg1) ? mp.min2 : mp.min1;
      double new_min =
          std::min(excl, state.TaskReducedReliability(i) + wt);
      cand.dmr = std::max(0.0, new_min - mp.min1);
    }

    // Lemma 4.3 pruning: a pair is beaten when some other pair has a
    // reliability delta at least as large and a diversity lower bound
    // exceeding this pair's diversity upper bound.
    survivors.clear();
    if (options_.use_pruning && alive.size() > 1) {
      std::vector<size_t> order(alive);
      std::sort(order.begin(), order.end(), [&pairs](size_t a, size_t b) {
        return pairs[a].dmr > pairs[b].dmr;
      });
      // prefix_max_lb[k] = max lb_dd among order[0..k] (dmr >= order[k]'s).
      double running_max_lb = -std::numeric_limits<double>::infinity();
      size_t g = 0;
      while (g < order.size()) {
        size_t h = g;
        double group_max_lb = -std::numeric_limits<double>::infinity();
        while (h < order.size() &&
               pairs[order[h]].dmr == pairs[order[g]].dmr) {
          group_max_lb = std::max(group_max_lb, pairs[order[h]].lb_dd);
          ++h;
        }
        double max_lb = std::max(running_max_lb, group_max_lb);
        for (size_t k = g; k < h; ++k) {
          if (max_lb > pairs[order[k]].ub_dd) {
            ++result.stats.pruned_pairs;
          } else {
            survivors.push_back(order[k]);
          }
        }
        running_max_lb = max_lb;
        g = h;
      }
    } else {
      survivors = alive;
    }
    if (survivors.empty()) survivors = alive;  // never prune everything

    // Diversity increase for the survivors (lines 4-5 of Fig. 3): exact,
    // or the Section 4.3 optimistic bound estimate.
    for (size_t c : survivors) {
      Candidate& cand = pairs[c];
      if (!cand.has_exact) {
        if (options_.greedy_increment ==
            SolverOptions::GreedyIncrement::kExact) {
          double after = state.PreviewTaskStd(cand.task, cand.worker);
          cand.exact_dd = after - state.TaskExpectedStd(cand.task);
          ++result.stats.exact_std_evals;
        } else {
          cand.exact_dd = cand.ub_dd;
        }
        cand.has_exact = true;
      }
    }

    // Skyline filter and dominance-count ranking of the (dmr, dstd)
    // increase pairs (lines 6-8), via the shared dominance utilities.
    std::vector<BiPoint> increase_pairs(survivors.size());
    for (size_t k = 0; k < survivors.size(); ++k) {
      increase_pairs[k] = {pairs[survivors[k]].dmr,
                           pairs[survivors[k]].exact_dd};
    }
    size_t best_local = TopDominating(increase_pairs);

    // Commit the winning pair and retire its worker (lines 8-9).
    const Candidate winner = pairs[survivors[best_local]];
    state.Add(winner.task, winner.worker);
    ++task_version[winner.task];
    for (size_t c : worker_pairs[winner.worker]) pairs[c].alive = false;
    std::erase_if(alive, [&pairs](size_t c) { return !pairs[c].alive; });
  }

  result.assignment = state.assignment();
  result.objectives = state.Objectives();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

namespace internal {

void RegisterGreedySolver(SolverRegistry& registry) {
  registry
      .Register("greedy",
                [](const SolverOptions& options) {
                  return std::make_unique<GreedySolver>(options);
                })
      .ok();
}

}  // namespace internal

}  // namespace rdbsc::core
