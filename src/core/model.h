#ifndef RDBSC_CORE_MODEL_H_
#define RDBSC_CORE_MODEL_H_

#include <cstdint>

#include "geo/angle.h"
#include "geo/point.h"

namespace rdbsc::core {

/// Index of a task inside an Instance.
using TaskId = int32_t;
/// Index of a worker inside an Instance.
using WorkerId = int32_t;

/// Sentinel meaning "no task" / "no worker".
inline constexpr TaskId kNoTask = -1;
inline constexpr WorkerId kNoWorker = -1;

/// A time-constrained spatial task (Definition 1): a location plus a valid
/// period [start, end] during which answers must be produced, and the
/// requester's diversity weight beta (Eq. 5; beta = 1 means spatial-only,
/// beta = 0 temporal-only).
struct Task {
  geo::Point location;
  double start = 0.0;
  double end = 1.0;
  double beta = 0.5;

  /// Length of the valid period; must be positive for a well-formed task.
  double Duration() const { return end - start; }
};

/// A dynamically moving worker (Definition 2): current location, speed,
/// the cone of directions the worker is willing to move in, and the
/// confidence (probability of reliably completing an assigned task).
/// `available_from` is the worker's check-in time (Section 8.1 generates
/// these per worker): the worker cannot start moving before it.
struct Worker {
  geo::Point location;
  double velocity = 0.1;
  geo::AngularInterval direction = geo::AngularInterval::FullCircle();
  double confidence = 0.9;
  double available_from = 0.0;
};

/// How arrival times interact with a task's valid period (Definition 4
/// requires the arrival to fall inside [start, end]).
enum class ArrivalPolicy {
  /// Arrival must satisfy start <= arrival <= end (the paper's rule).
  kStrict,
  /// Arrival may be early; the worker waits until `start` (used by the
  /// platform simulator where workers idle at the site).
  kAllowWait,
};

/// Travel time for `w` to reach `location` (straight line at w.velocity).
/// Workers with non-positive velocity can never arrive (returns +infinity).
double TravelTime(const Worker& w, geo::Point location);

/// The effective time at which `w`, departing at `now`, can perform a task
/// at `location` under `policy`; +infinity when unreachable.
double ArrivalTime(const Worker& w, const Task& t, double now,
                   ArrivalPolicy policy);

/// True when the pair (t, w) is valid: the task lies inside the worker's
/// direction cone and the arrival time falls inside the valid period
/// (Section 2.3, "validity of pair").
bool IsValidPair(const Task& t, const Worker& w, double now,
                 ArrivalPolicy policy);

/// The direction from which `w` performs the task, measured at the task
/// location: the bearing from the task towards the worker's starting point
/// (the worker approaches along this ray; see Figure 2(a)).
double ApproachAngle(const Task& t, const Worker& w);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_MODEL_H_
