#ifndef RDBSC_CORE_REGISTRY_H_
#define RDBSC_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.h"
#include "util/status.h"

namespace rdbsc::core {

/// Name -> factory table for every solver the library (or an application)
/// provides. The single construction point for solvers: examples, benches,
/// the platform simulator and the Engine facade all create solvers here,
/// so wiring a new approach in means registering one factory -- not
/// touching N call sites.
///
/// Global() comes pre-loaded with the six built-in approaches:
///
///   "greedy"         round-based GREEDY (Figure 3, global pair selection)
///   "worker-greedy"  the paper's experimental per-worker GREEDY (Sec 8.1)
///   "sampling"       SAMPLING with the (epsilon, delta) bound (Figure 5)
///   "dc"             divide-and-conquer (Figures 6-9)
///   "gtruth"         G-TRUTH, D&C with a 10x sampling budget (Sec 8.1)
///   "exact"          exhaustive enumeration oracle (tiny instances only)
class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Solver>(const SolverOptions&)>;

  /// The process-wide registry, with the built-in solvers registered.
  static SolverRegistry& Global();

  /// Adds a factory under `name`; kAlreadyExists on a duplicate name.
  util::Status Register(std::string name, Factory factory);

  /// Instantiates the solver registered under `name` with `options`.
  /// kNotFound (listing the registered names) for unknown names.
  util::StatusOr<std::unique_ptr<Solver>> Create(
      std::string_view name, const SolverOptions& options = {}) const;

  bool Contains(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

/// Registry keys of the four approaches compared head-to-head in the
/// paper's Section 8.1 experiments (EXACT and the per-worker greedy are
/// excluded there). The single source for benches and integration tests,
/// so the swept approach set cannot drift between them.
inline constexpr std::string_view kSection81Approaches[] = {
    "greedy", "sampling", "dc", "gtruth"};

namespace internal {

/// Self-registration hooks, each defined in its solver's .cc file so the
/// name/factory wiring lives with the implementation. Global() calls them
/// once on first use; the explicit calls also anchor the solver objects
/// into registry-only binaries (a static-archive linker drops translation
/// units nothing references, which would silently empty the registry).
void RegisterGreedySolver(SolverRegistry& registry);
void RegisterWorkerGreedySolver(SolverRegistry& registry);
void RegisterSamplingSolver(SolverRegistry& registry);
void RegisterDivideConquerSolvers(SolverRegistry& registry);
void RegisterExactSolver(SolverRegistry& registry);

}  // namespace internal

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_REGISTRY_H_
