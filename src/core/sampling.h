#ifndef RDBSC_CORE_SAMPLING_H_
#define RDBSC_CORE_SAMPLING_H_

#include "core/solver.h"

namespace rdbsc::core {

/// RDB-SC_Sampling (Figure 5): draws K random assignments (one uniformly
/// random valid task per worker), ranks them by skyline dominance score
/// over (min reliability, total_STD), and returns the top sample. K is the
/// (epsilon, delta)-bounded K-hat of Section 5.2 unless overridden.
class SamplingSolver : public Solver {
 public:
  explicit SamplingSolver(SolverOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "SAMPLING"; }

  /// The sample count the solver would use on `graph` (after the
  /// (epsilon, delta) computation, multiplier and clamping).
  int EffectiveSampleSize(const CandidateGraph& graph) const;

 protected:
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats) override;

 private:
  SolverOptions options_;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_SAMPLING_H_
