#include "core/sampling.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/dominance.h"
#include "core/registry.h"
#include "core/sample_size.h"
#include "util/rng.h"

namespace rdbsc::core {

int SamplingSolver::EffectiveSampleSize(const CandidateGraph& graph) const {
  int64_t k;
  if (options_.fixed_sample_size > 0) {
    k = options_.fixed_sample_size;
  } else {
    SampleSizeParams params;
    params.epsilon = options_.epsilon;
    params.delta = options_.delta;
    params.log_population = graph.LogPopulation();
    k = DetermineSampleSize(params, options_.max_sample_size);
  }
  k *= std::max(1, options_.sample_multiplier);
  k = std::max<int64_t>(k, options_.min_sample_size);
  k = std::min<int64_t>(k, options_.max_sample_size);
  return static_cast<int>(k);
}

util::StatusOr<SolveResult> SamplingSolver::SolveImpl(
    const Instance& instance, const CandidateGraph& graph,
    const util::Deadline& deadline, util::Executor& executor,
    SolveStats* partial_stats) {
  auto t0 = std::chrono::steady_clock::now();

  const int k = EffectiveSampleSize(graph);

  // One independent child stream per sample, seeded in sample order (the
  // in-shard Rng(seed) construction is exactly what Fork() does). Each
  // sample depends only on its own stream, so batches can be evaluated on
  // any executor width and still reproduce the serial run bit for bit.
  util::Rng rng(options_.seed);
  std::vector<uint64_t> sample_seeds(k);
  for (int h = 0; h < k; ++h) sample_seeds[h] = rng.engine()();

  std::vector<Assignment> samples(k);
  std::vector<ObjectiveValue> values(k);
  std::atomic<int> completed{0};
  std::atomic<bool> interrupted{false};
  executor.ShardedFor(k, [&](int /*shard*/, int64_t begin, int64_t end) {
    for (int64_t h = begin; h < end; ++h) {
      if (interrupted.load(std::memory_order_relaxed) ||
          deadline.Exhausted()) {
        interrupted.store(true, std::memory_order_relaxed);
        return;
      }
      // Lines 4-7 of Fig. 5: pick, for every worker, one incident edge
      // uniformly at random.
      Assignment sample(instance.num_workers());
      util::Rng sample_rng(sample_seeds[h]);
      for (WorkerId j = 0; j < instance.num_workers(); ++j) {
        const auto& tasks = graph.TasksOf(j);
        if (tasks.empty()) continue;
        size_t pick = static_cast<size_t>(sample_rng.UniformInt(
            0, static_cast<int64_t>(tasks.size()) - 1));
        sample.Assign(j, tasks[pick]);
      }
      values[h] = EvaluateAssignment(instance, sample);
      samples[h] = std::move(sample);
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  SolveResult result;
  result.stats.exact_std_evals =
      static_cast<int64_t>(completed.load()) * instance.num_tasks();
  if (interrupted.load(std::memory_order_relaxed)) {
    result.stats.sample_size = completed.load();
    result.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return BudgetError(deadline, result.stats, partial_stats);
  }

  // Line 8: rank samples by how many other samples they dominate.
  std::vector<BiPoint> sample_points(k);
  for (int h = 0; h < k; ++h) {
    sample_points[h] = {values[h].min_reliability, values[h].total_std};
  }
  size_t best = TopDominating(sample_points);

  result.assignment = std::move(samples[best]);
  result.objectives = values[best];
  result.stats.sample_size = k;
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

namespace internal {

void RegisterSamplingSolver(SolverRegistry& registry) {
  registry
      .Register("sampling",
                [](const SolverOptions& options) {
                  return std::make_unique<SamplingSolver>(options);
                })
      .ok();
}

}  // namespace internal

}  // namespace rdbsc::core
