#include "core/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/math.h"

namespace rdbsc::core {

AssignmentMetrics ComputeMetrics(const Instance& instance,
                                 const Assignment& assignment,
                                 int histogram_buckets) {
  assert(histogram_buckets >= 2);
  AssignmentMetrics metrics;
  metrics.roster_histogram.assign(histogram_buckets, 0);

  AssignmentState state(instance);
  state.Reset(assignment);

  double reliability_sum = 0.0;
  double min_rel = std::numeric_limits<double>::infinity();
  int64_t roster_sum = 0;
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    int roster = static_cast<int>(state.WorkersOf(i).size());
    int bucket = std::min(roster, histogram_buckets - 1);
    ++metrics.roster_histogram[bucket];
    if (roster == 0) {
      ++metrics.empty_tasks;
      continue;
    }
    ++metrics.nonempty_tasks;
    roster_sum += roster;
    metrics.max_roster = std::max(metrics.max_roster, roster);
    double rel =
        util::ReducedToProbability(state.TaskReducedReliability(i));
    reliability_sum += rel;
    min_rel = std::min(min_rel, rel);
  }
  metrics.assigned_workers = assignment.NumAssigned();
  metrics.total_expected_std = state.TotalExpectedStd();
  if (metrics.nonempty_tasks > 0) {
    metrics.mean_roster =
        static_cast<double>(roster_sum) / metrics.nonempty_tasks;
    metrics.mean_task_reliability =
        reliability_sum / metrics.nonempty_tasks;
    metrics.min_task_reliability = min_rel;
  }
  return metrics;
}

}  // namespace rdbsc::core
