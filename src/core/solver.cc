#include "core/solver.h"

namespace rdbsc::core {

util::StatusOr<SolveResult> Solver::Solve(const SolveRequest& request) {
  if (request.instance == nullptr || request.graph == nullptr) {
    return util::Status::InvalidArgument(
        "SolveRequest needs both an instance and a candidate graph");
  }
  if (request.graph->num_workers() != request.instance->num_workers() ||
      request.graph->num_tasks() != request.instance->num_tasks()) {
    return util::Status::InvalidArgument(
        "candidate graph shape does not match the instance");
  }
  util::Executor& executor = util::OrSerial(request.executor);
  if (request.deadline != nullptr) {
    return SolveImpl(*request.instance, *request.graph, *request.deadline,
                     executor, request.partial_stats);
  }
  util::Deadline deadline(request.budget_seconds, request.cancel);
  return SolveImpl(*request.instance, *request.graph, deadline, executor,
                   request.partial_stats);
}

util::StatusOr<SolveResult> Solver::Solve(const Instance& instance,
                                          const CandidateGraph& graph) {
  SolveRequest request;
  request.instance = &instance;
  request.graph = &graph;
  return Solve(request);
}

util::Status Solver::BudgetError(const util::Deadline& deadline,
                                 SolveStats stats,
                                 SolveStats* partial_stats) {
  stats.budget_exhausted = true;
  if (partial_stats != nullptr) *partial_stats = stats;
  util::Status status = deadline.Check();
  // The deadline can only have tripped for good (time is monotone and
  // tokens never un-cancel), but guard against a racy re-read anyway.
  if (status.ok()) {
    status = util::Status::DeadlineExceeded("wall-clock budget exhausted");
  }
  return status;
}

}  // namespace rdbsc::core
