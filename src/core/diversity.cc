#include "core/diversity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "geo/angle.h"
#include "util/math.h"

namespace rdbsc::core {
namespace {

using geo::kTwoPi;
using util::ClampConfidence;
using util::EntropyTerm;

// Entropy of a two-way split a : (1-a); the diversity of a two-ray world.
double TwoWayEntropy(double a) { return EntropyTerm(a) + EntropyTerm(1.0 - a); }

// Observations sorted by approach angle, with circular gap g[i] from ray i
// to ray i+1 (cyclic).
struct AngularLayout {
  std::vector<double> angle;
  std::vector<double> confidence;
  std::vector<double> gap;
};

AngularLayout SortByAngle(const std::vector<Observation>& obs) {
  AngularLayout layout;
  const size_t r = obs.size();
  std::vector<size_t> order(r);
  for (size_t i = 0; i < r; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&obs](size_t a, size_t b) {
    return obs[a].angle < obs[b].angle;
  });
  layout.angle.reserve(r);
  layout.confidence.reserve(r);
  for (size_t i : order) {
    layout.angle.push_back(geo::NormalizeAngle(obs[i].angle));
    layout.confidence.push_back(ClampConfidence(obs[i].confidence));
  }
  layout.gap.resize(r);
  for (size_t i = 0; i < r; ++i) {
    size_t next = (i + 1) % r;
    double delta = geo::CcwDelta(layout.angle[i], layout.angle[next]);
    // All-equal angles make every delta 0 except the wrap, which CcwDelta
    // reports as 0 too; patch the final wrap gap so gaps sum to 2*pi.
    layout.gap[i] = delta;
  }
  if (r > 0) {
    double sum = 0.0;
    for (size_t i = 0; i + 1 < r; ++i) sum += layout.gap[i];
    layout.gap[r - 1] = kTwoPi - sum;
  }
  return layout;
}

// Observations sorted by arrival, with the virtual boundary dividers at
// `start` and `end` prepended/appended (probability 1 each).
struct TemporalLayout {
  std::vector<double> time;  // size r + 2, time[0] = start, back() = end
  std::vector<double> confidence;
};

TemporalLayout SortByArrival(const std::vector<Observation>& obs,
                             double start, double end) {
  TemporalLayout layout;
  layout.time.reserve(obs.size() + 2);
  layout.confidence.reserve(obs.size() + 2);
  layout.time.push_back(start);
  layout.confidence.push_back(1.0);
  std::vector<size_t> order(obs.size());
  for (size_t i = 0; i < obs.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&obs](size_t a, size_t b) {
    return obs[a].arrival < obs[b].arrival;
  });
  for (size_t i : order) {
    layout.time.push_back(std::clamp(obs[i].arrival, start, end));
    layout.confidence.push_back(ClampConfidence(obs[i].confidence));
  }
  layout.time.push_back(end);
  layout.confidence.push_back(1.0);
  return layout;
}

}  // namespace

Observation MakeObservation(const Task& t, const Worker& w, double now,
                            ArrivalPolicy policy) {
  Observation obs;
  obs.angle = ApproachAngle(t, w);
  obs.arrival = std::clamp(ArrivalTime(w, t, now, policy), t.start, t.end);
  obs.confidence = w.confidence;
  return obs;
}

double SpatialDiversity(const std::vector<double>& angles) {
  const size_t r = angles.size();
  if (r < 2) return 0.0;
  std::vector<double> sorted(angles);
  for (double& a : sorted) a = geo::NormalizeAngle(a);
  std::sort(sorted.begin(), sorted.end());
  double entropy = 0.0;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < r; ++i) {
    double gap = sorted[i + 1] - sorted[i];
    sum += gap;
    entropy += EntropyTerm(gap / kTwoPi);
  }
  entropy += EntropyTerm((kTwoPi - sum) / kTwoPi);
  return entropy;
}

double TemporalDiversity(const std::vector<double>& arrivals, double start,
                         double end) {
  assert(end > start);
  if (arrivals.empty()) return 0.0;
  std::vector<double> sorted(arrivals);
  std::sort(sorted.begin(), sorted.end());
  const double duration = end - start;
  double entropy = 0.0;
  double prev = start;
  for (double t : sorted) {
    double clamped = std::clamp(t, prev, end);
    entropy += EntropyTerm((clamped - prev) / duration);
    prev = clamped;
  }
  entropy += EntropyTerm((end - prev) / duration);
  return entropy;
}

double Std(const Task& task, const std::vector<Observation>& obs) {
  std::vector<double> angles;
  std::vector<double> arrivals;
  angles.reserve(obs.size());
  arrivals.reserve(obs.size());
  for (const Observation& o : obs) {
    angles.push_back(o.angle);
    arrivals.push_back(o.arrival);
  }
  return task.beta * SpatialDiversity(angles) +
         (1.0 - task.beta) * TemporalDiversity(arrivals, task.start, task.end);
}

double ExpectedSpatialDiversity(const std::vector<Observation>& obs) {
  const size_t r = obs.size();
  if (r < 2) return 0.0;
  AngularLayout layout = SortByAngle(obs);

  // M_SD[j][k] summed on the fly (Eq. 9): for each ordered pair (j, k) of
  // rays, the entropy of the angle swept CCW from j to k, weighted by the
  // probability that j and k are both realized and everything strictly
  // between them is not -- i.e. the probability that (j, k) are adjacent
  // rays in the realized world.
  double expected = 0.0;
  for (size_t j = 0; j < r; ++j) {
    double between_absent = 1.0;  // prod of (1 - p_x) for x strictly between
    double swept = 0.0;           // angle from ray j to ray k
    for (size_t step = 1; step < r; ++step) {
      size_t k = (j + step) % r;
      swept += layout.gap[(j + step - 1) % r];
      expected += EntropyTerm(swept / kTwoPi) * layout.confidence[j] *
                  layout.confidence[k] * between_absent;
      between_absent *= 1.0 - layout.confidence[k];
    }
  }
  return expected;
}

double ExpectedTemporalDiversity(const std::vector<Observation>& obs,
                                 double start, double end) {
  assert(end > start);
  if (obs.empty()) return 0.0;
  TemporalLayout layout = SortByArrival(obs, start, end);
  const double duration = end - start;
  const size_t b = layout.time.size();  // r + 2 boundary candidates

  // M_TD summed on the fly (Eq. 10): a sub-interval [time[a], time[k]]
  // materializes exactly when both of its dividers are realized and every
  // divider strictly between them is not. The valid-period endpoints are
  // always-present dividers (confidence 1).
  double expected = 0.0;
  for (size_t a = 0; a + 1 < b; ++a) {
    double between_absent = 1.0;
    for (size_t k = a + 1; k < b; ++k) {
      double len = layout.time[k] - layout.time[a];
      expected += EntropyTerm(len / duration) * layout.confidence[a] *
                  layout.confidence[k] * between_absent;
      between_absent *= 1.0 - layout.confidence[k];
    }
  }
  return expected;
}

double ExpectedStd(const Task& task, const std::vector<Observation>& obs) {
  double spatial =
      task.beta > 0.0 ? ExpectedSpatialDiversity(obs) : 0.0;
  double temporal =
      task.beta < 1.0
          ? ExpectedTemporalDiversity(obs, task.start, task.end)
          : 0.0;
  return task.beta * spatial + (1.0 - task.beta) * temporal;
}

double ExpectedStdBruteForce(const Task& task,
                             const std::vector<Observation>& obs) {
  const size_t r = obs.size();
  assert(r <= 25 && "possible-worlds enumeration limited to 2^25 worlds");
  double expected = 0.0;
  for (uint64_t world = 0; world < (uint64_t{1} << r); ++world) {
    double prob = 1.0;
    std::vector<Observation> present;
    for (size_t i = 0; i < r; ++i) {
      double p = ClampConfidence(obs[i].confidence);
      if (world & (uint64_t{1} << i)) {
        prob *= p;
        present.push_back(obs[i]);
      } else {
        prob *= 1.0 - p;
      }
    }
    if (prob > 0.0) expected += prob * Std(task, present);
  }
  return expected;
}

DiversityBounds ExpectedStdBounds(const Task& task,
                                  const std::vector<Observation>& obs) {
  DiversityBounds bounds;
  const size_t r = obs.size();
  if (r == 0) return bounds;

  bounds.ub = Std(task, obs);  // Lemma 4.2: diversity peaks with all present.

  // P(at least one present) and P(at least two present).
  double none = 1.0;
  for (const Observation& o : obs) none *= 1.0 - ClampConfidence(o.confidence);
  double exactly_one = 0.0;
  {
    // prefix[i] = prod of (1-p) over obs[0..i); suffix analogous.
    std::vector<double> prefix(r + 1, 1.0);
    for (size_t i = 0; i < r; ++i) {
      prefix[i + 1] = prefix[i] * (1.0 - ClampConfidence(obs[i].confidence));
    }
    double suffix = 1.0;
    for (size_t i = r; i-- > 0;) {
      exactly_one += ClampConfidence(obs[i].confidence) * prefix[i] * suffix;
      suffix *= 1.0 - ClampConfidence(obs[i].confidence);
    }
  }
  double p_ge1 = 1.0 - none;
  double p_ge2 = std::max(0.0, p_ge1 - exactly_one);

  // Smallest realizable non-zero SD: the two rays across the narrowest gap
  // (Section 4.3; minimizer of the concave two-way entropy).
  double min_sd = 0.0;
  if (r >= 2) {
    AngularLayout layout = SortByAngle(obs);
    double min_gap = kTwoPi;
    for (double g : layout.gap) min_gap = std::min(min_gap, g);
    min_sd = TwoWayEntropy(min_gap / kTwoPi);
  }

  // Smallest realizable non-zero TD: the single worker whose arrival splits
  // the period most unevenly.
  double min_td = 0.0;
  {
    double best = std::numeric_limits<double>::infinity();
    const double duration = task.Duration();
    for (const Observation& o : obs) {
      double a = (std::clamp(o.arrival, task.start, task.end) - task.start) /
                 duration;
      best = std::min(best, TwoWayEntropy(a));
    }
    min_td = best;
  }

  bounds.lb = task.beta * p_ge2 * min_sd + (1.0 - task.beta) * p_ge1 * min_td;
  bounds.lb = std::min(bounds.lb, bounds.ub);
  return bounds;
}

}  // namespace rdbsc::core
