#include "core/dominance.h"

#include <algorithm>
#include <limits>

namespace rdbsc::core {

std::vector<size_t> SkylineIndices(const std::vector<BiPoint>& points) {
  std::vector<size_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&points](size_t a, size_t b) {
    if (points[a].x != points[b].x) return points[a].x > points[b].x;
    if (points[a].y != points[b].y) return points[a].y > points[b].y;
    return a < b;
  });

  // Sweep in decreasing x. A point is dominated iff some point with
  // strictly larger x has y >= its y, or an equal-x point has strictly
  // larger y. Within an equal-x group only the maximum-y members survive,
  // and only if they beat the best y seen at strictly larger x.
  std::vector<size_t> skyline;
  double best_y_strictly_before = -std::numeric_limits<double>::infinity();
  size_t g = 0;
  while (g < order.size()) {
    size_t h = g;
    double group_max_y = -std::numeric_limits<double>::infinity();
    while (h < order.size() && points[order[h]].x == points[order[g]].x) {
      group_max_y = std::max(group_max_y, points[order[h]].y);
      ++h;
    }
    if (group_max_y > best_y_strictly_before) {
      for (size_t k = g; k < h; ++k) {
        if (points[order[k]].y == group_max_y) skyline.push_back(order[k]);
      }
    }
    best_y_strictly_before = std::max(best_y_strictly_before, group_max_y);
    g = h;
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<int64_t> DominanceScores(const std::vector<BiPoint>& points,
                                     const std::vector<size_t>& candidates) {
  std::vector<int64_t> scores(candidates.size(), 0);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const BiPoint& a = points[candidates[c]];
    for (size_t p = 0; p < points.size(); ++p) {
      if (p != candidates[c] && DominatesPoint(a, points[p])) ++scores[c];
    }
  }
  return scores;
}

size_t TopDominating(const std::vector<BiPoint>& points) {
  if (points.empty()) return std::numeric_limits<size_t>::max();
  std::vector<size_t> skyline = SkylineIndices(points);
  std::vector<int64_t> scores = DominanceScores(points, skyline);
  size_t best = 0;
  for (size_t c = 1; c < skyline.size(); ++c) {
    const BiPoint& a = points[skyline[c]];
    const BiPoint& b = points[skyline[best]];
    bool better = scores[c] > scores[best];
    if (scores[c] == scores[best]) {
      better = a.y > b.y || (a.y == b.y && a.x > b.x);
    }
    if (better) best = c;
  }
  return skyline[best];
}

}  // namespace rdbsc::core
