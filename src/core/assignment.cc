#include "core/assignment.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <limits>

#include "core/kernels.h"
#include "util/math.h"

namespace rdbsc::core {

bool Dominates(const ObjectiveValue& a, const ObjectiveValue& b) {
  bool no_worse = a.min_reliability >= b.min_reliability &&
                  a.total_std >= b.total_std;
  bool strictly_better = a.min_reliability > b.min_reliability ||
                         a.total_std > b.total_std;
  return no_worse && strictly_better;
}

int Assignment::NumAssigned() const {
  int count = 0;
  for (TaskId t : worker_task_) {
    if (t != kNoTask) ++count;
  }
  return count;
}

std::vector<std::vector<WorkerId>> Assignment::TaskGroups(
    int num_tasks) const {
  std::vector<std::vector<WorkerId>> groups(num_tasks);
  for (WorkerId j = 0; j < num_workers(); ++j) {
    TaskId i = worker_task_[j];
    if (i != kNoTask) {
      assert(i >= 0 && i < num_tasks);
      groups[i].push_back(j);
    }
  }
  return groups;
}

AssignmentState::AssignmentState(const Instance& instance)
    : instance_(&instance),
      assignment_(instance.num_workers()),
      task_workers_(instance.num_tasks()),
      task_obs_(instance.num_tasks()),
      task_r_(instance.num_tasks(), 0.0),
      task_std_(instance.num_tasks(), 0.0),
      obs_rows_(instance.num_workers()),
      obs_row_ready_(instance.num_workers(), 0) {}

const std::vector<Observation>& AssignmentState::ObservationRowOf(
    WorkerId j) const {
  if (!obs_row_ready_[j]) {
    ObservationRow(instance_->worker(j), instance_->now(),
                   instance_->policy(), instance_->soa().task_block(),
                   &obs_rows_[j]);
    obs_row_ready_[j] = 1;
  }
  return obs_rows_[j];
}

Observation AssignmentState::ObservationFor(TaskId i, WorkerId j) const {
  if (obs_row_ready_[j]) return obs_rows_[j][static_cast<size_t>(i)];
  return MakeObservation(instance_->task(i), instance_->worker(j),
                         instance_->now(), instance_->policy());
}

void AssignmentState::Add(TaskId i, WorkerId j) {
  assert(assignment_.TaskOf(j) == kNoTask && "worker already assigned");
  assignment_.Assign(j, i);
  if (task_workers_[i].empty()) ++num_nonempty_;
  task_workers_[i].push_back(j);
  task_obs_[i].push_back(ObservationFor(i, j));
  task_r_[i] += util::ReliabilityWeight(instance_->worker(j).confidence);
  RecomputeTask(i);
}

void AssignmentState::Remove(WorkerId j) {
  TaskId i = assignment_.TaskOf(j);
  if (i == kNoTask) return;
  assignment_.Unassign(j);
  auto& workers = task_workers_[i];
  auto it = std::find(workers.begin(), workers.end(), j);
  assert(it != workers.end());
  size_t pos = static_cast<size_t>(it - workers.begin());
  workers.erase(it);
  task_obs_[i].erase(task_obs_[i].begin() + static_cast<ptrdiff_t>(pos));
  task_r_[i] -= util::ReliabilityWeight(instance_->worker(j).confidence);
  if (workers.empty()) {
    --num_nonempty_;
    task_r_[i] = 0.0;  // cancel accumulated rounding noise
  }
  RecomputeTask(i);
}

void AssignmentState::Reset(const Assignment& assignment) {
  assert(assignment.num_workers() == instance_->num_workers());
  assignment_ = Assignment(instance_->num_workers());
  for (auto& v : task_workers_) v.clear();
  for (auto& v : task_obs_) v.clear();
  std::fill(task_r_.begin(), task_r_.end(), 0.0);
  std::fill(task_std_.begin(), task_std_.end(), 0.0);
  total_std_ = 0.0;
  num_nonempty_ = 0;
  for (WorkerId j = 0; j < assignment.num_workers(); ++j) {
    TaskId i = assignment.TaskOf(j);
    if (i != kNoTask) Add(i, j);
  }
}

void AssignmentState::RecomputeTask(TaskId i) {
  double fresh = ExpectedStd(instance_->task(i), task_obs_[i]);
  total_std_ += fresh - task_std_[i];
  task_std_[i] = fresh;
}

double AssignmentState::MinReducedReliabilityAllTasks() const {
  double min_r = std::numeric_limits<double>::infinity();
  for (double r : task_r_) min_r = std::min(min_r, r);
  return task_r_.empty() ? 0.0 : min_r;
}

ObjectiveValue AssignmentState::Objectives() const {
  ObjectiveValue value;
  value.total_std = total_std_;
  if (num_nonempty_ == 0) {
    value.min_reliability = 0.0;
    return value;
  }
  double min_r = std::numeric_limits<double>::infinity();
  for (TaskId i = 0; i < instance_->num_tasks(); ++i) {
    if (!task_workers_[i].empty()) min_r = std::min(min_r, task_r_[i]);
  }
  value.min_reliability = util::ReducedToProbability(min_r);
  return value;
}

ObjectiveValue AssignmentState::PreviewAdd(TaskId i, WorkerId j) const {
  std::vector<Observation> obs = task_obs_[i];
  obs.push_back(ObservationRowOf(j)[static_cast<size_t>(i)]);
  double new_std = ExpectedStd(instance_->task(i), obs);
  double new_r =
      task_r_[i] + util::ReliabilityWeight(instance_->worker(j).confidence);

  ObjectiveValue value;
  value.total_std = total_std_ + new_std - task_std_[i];
  double min_r = new_r;
  for (TaskId k = 0; k < instance_->num_tasks(); ++k) {
    if (k == i) continue;
    if (!task_workers_[k].empty()) min_r = std::min(min_r, task_r_[k]);
  }
  value.min_reliability = util::ReducedToProbability(min_r);
  return value;
}

double AssignmentState::PreviewTaskStd(TaskId i, WorkerId j) const {
  std::vector<Observation> obs = task_obs_[i];
  obs.push_back(ObservationRowOf(j)[static_cast<size_t>(i)]);
  return ExpectedStd(instance_->task(i), obs);
}

DiversityBounds AssignmentState::PreviewTaskStdBounds(TaskId i,
                                                      WorkerId j) const {
  std::vector<Observation> obs = task_obs_[i];
  obs.push_back(ObservationRowOf(j)[static_cast<size_t>(i)]);
  return ExpectedStdBounds(instance_->task(i), obs);
}

DiversityBounds AssignmentState::TaskStdBounds(TaskId i) const {
  return ExpectedStdBounds(instance_->task(i), task_obs_[i]);
}

ObjectiveValue EvaluateAssignment(const Instance& instance,
                                  const Assignment& assignment) {
  AssignmentState state(instance);
  state.Reset(assignment);
  return state.Objectives();
}

}  // namespace rdbsc::core
