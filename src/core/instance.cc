#include "core/instance.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/kernels.h"
#include "util/arena.h"

namespace rdbsc::core {

util::Status Instance::Validate() const {
  for (const Task& t : tasks_) {
    if (!(t.Duration() > 0.0)) {
      return util::Status::InvalidArgument("task has non-positive duration");
    }
    if (t.beta < 0.0 || t.beta > 1.0) {
      return util::Status::InvalidArgument("task beta outside [0,1]");
    }
  }
  for (const Worker& w : workers_) {
    if (!(w.velocity > 0.0)) {
      return util::Status::InvalidArgument("worker velocity not positive");
    }
    if (w.confidence < 0.0 || w.confidence > 1.0) {
      return util::Status::InvalidArgument("worker confidence outside [0,1]");
    }
  }
  return util::Status::OK();
}

const InstanceSoA& Instance::soa() const {
  assert(soa_cache_ != nullptr && "soa() called on a moved-from instance");
  util::MutexLock lock(soa_cache_->mu);
  if (soa_cache_->value == nullptr) {
    soa_cache_->value =
        std::make_shared<const InstanceSoA>(InstanceSoA::Build(*this));
  }
  // The pointee is immutable and the pointer is only ever set once, so the
  // reference stays valid for the lifetime of the cache (shared by all
  // copies of the instance).
  return *soa_cache_->value;
}

CandidateGraph CandidateGraph::Build(const Instance& instance) {
  // Unlimited deadline: the sharded path cannot fail.
  return Build(instance, nullptr, util::Deadline()).value();
}

util::StatusOr<CandidateGraph> CandidateGraph::Build(
    const Instance& instance, util::Executor* executor,
    const util::Deadline& deadline) {
  const InstanceSoA& soa = instance.soa();
  const int num_workers = instance.num_workers();

  // Shards run the batched kernel row driver over disjoint worker ranges,
  // parking each row in a per-shard arena (no per-worker vector growth;
  // the assembly below does one bulk copy per row). The deadline is polled
  // inside the driver every kKernelRowsPerPoll rows.
  std::vector<EdgeRow> rows(static_cast<size_t>(num_workers));
  util::Executor& exec = util::OrSerial(executor);
  std::vector<util::Arena> arenas(static_cast<size_t>(exec.width()));
  std::atomic<bool> interrupted{false};
  exec.ShardedFor(num_workers, [&](int shard, int64_t begin, int64_t end) {
    const bool completed =
        ValidPairsRows(soa, begin, end, deadline, &arenas[shard], rows.data());
    if (!completed) interrupted.store(true, std::memory_order_relaxed);
  });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "graph build interrupted");
  }
  return FromRows(instance.num_tasks(), num_workers, rows.data());
}

CandidateGraph CandidateGraph::FromEdges(
    const Instance& instance, std::vector<std::vector<TaskId>> edges) {
  edges.resize(static_cast<size_t>(instance.num_workers()));
  std::vector<EdgeRow> rows(edges.size());
  for (size_t j = 0; j < edges.size(); ++j) {
    rows[j] = {edges[j].data(), static_cast<int32_t>(edges[j].size())};
  }
  return FromRows(instance.num_tasks(), instance.num_workers(), rows.data());
}

CandidateGraph CandidateGraph::FromRows(int num_tasks, int num_workers,
                                        const EdgeRow* rows) {
  CandidateGraph graph;
  graph.worker_offsets_.assign(static_cast<size_t>(num_workers) + 1, 0);
  for (int j = 0; j < num_workers; ++j) {
    graph.worker_offsets_[j + 1] = graph.worker_offsets_[j] + rows[j].count;
  }
  graph.num_edges_ = graph.worker_offsets_[num_workers];
  graph.worker_edges_.resize(static_cast<size_t>(graph.num_edges_));
  for (int j = 0; j < num_workers; ++j) {
    if (rows[j].count > 0) {
      std::memcpy(graph.worker_edges_.data() + graph.worker_offsets_[j],
                  rows[j].data,
                  static_cast<size_t>(rows[j].count) * sizeof(TaskId));
    }
  }

  // Transpose: counting sort by task id; scanning workers in ascending
  // order makes every WorkersOf row ascending.
  graph.task_offsets_.assign(static_cast<size_t>(num_tasks) + 1, 0);
  for (TaskId i : graph.worker_edges_) graph.task_offsets_[i + 1] += 1;
  for (int i = 0; i < num_tasks; ++i) {
    graph.task_offsets_[i + 1] += graph.task_offsets_[i];
  }
  graph.task_edges_.resize(static_cast<size_t>(graph.num_edges_));
  std::vector<int64_t> cursor(graph.task_offsets_.begin(),
                              graph.task_offsets_.end() - 1);
  for (int j = 0; j < num_workers; ++j) {
    for (int64_t e = graph.worker_offsets_[j]; e < graph.worker_offsets_[j + 1];
         ++e) {
      graph.task_edges_[cursor[graph.worker_edges_[e]]++] = j;
    }
  }
  return graph;
}

double CandidateGraph::LogPopulation() const {
  double log_n = 0.0;
  for (int j = 0; j < num_workers(); ++j) {
    const int deg = Degree(j);
    if (deg > 0) log_n += std::log(static_cast<double>(deg));
  }
  return log_n;
}

}  // namespace rdbsc::core
