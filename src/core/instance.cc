#include "core/instance.h"

#include <atomic>
#include <cmath>
#include <utility>

namespace rdbsc::core {

util::Status Instance::Validate() const {
  for (const Task& t : tasks_) {
    if (!(t.Duration() > 0.0)) {
      return util::Status::InvalidArgument("task has non-positive duration");
    }
    if (t.beta < 0.0 || t.beta > 1.0) {
      return util::Status::InvalidArgument("task beta outside [0,1]");
    }
  }
  for (const Worker& w : workers_) {
    if (!(w.velocity > 0.0)) {
      return util::Status::InvalidArgument("worker velocity not positive");
    }
    if (w.confidence < 0.0 || w.confidence > 1.0) {
      return util::Status::InvalidArgument("worker confidence outside [0,1]");
    }
  }
  return util::Status::OK();
}

CandidateGraph CandidateGraph::Build(const Instance& instance) {
  // Unlimited deadline: the sharded path cannot fail.
  return Build(instance, nullptr, util::Deadline()).value();
}

util::StatusOr<CandidateGraph> CandidateGraph::Build(
    const Instance& instance, util::Executor* executor,
    const util::Deadline& deadline) {
  // Poll the deadline every this many worker rows. Each row is O(m) pair
  // tests, so the check amortizes to nothing while still bounding overrun.
  constexpr int kRowsPerDeadlineCheck = 32;

  std::vector<std::vector<TaskId>> edges(instance.num_workers());
  std::atomic<bool> interrupted{false};
  util::OrSerial(executor).ShardedFor(
      instance.num_workers(),
      [&](int /*shard*/, int64_t begin, int64_t end) {
        for (int64_t j = begin; j < end; ++j) {
          if ((j - begin) % kRowsPerDeadlineCheck == 0 &&
              (interrupted.load(std::memory_order_relaxed) ||
               deadline.Exhausted())) {
            interrupted.store(true, std::memory_order_relaxed);
            return;
          }
          for (TaskId i = 0; i < instance.num_tasks(); ++i) {
            if (IsValidPair(instance.task(i),
                            instance.worker(static_cast<WorkerId>(j)),
                            instance.now(), instance.policy())) {
              edges[j].push_back(i);
            }
          }
        }
      });
  if (interrupted.load(std::memory_order_relaxed)) {
    return util::InterruptedStatus(deadline, "graph build interrupted");
  }
  return FromEdges(instance, std::move(edges));
}

CandidateGraph CandidateGraph::FromEdges(
    const Instance& instance, std::vector<std::vector<TaskId>> edges) {
  CandidateGraph graph;
  graph.worker_tasks_ = std::move(edges);
  graph.worker_tasks_.resize(instance.num_workers());
  graph.task_workers_.assign(instance.num_tasks(), {});
  for (WorkerId j = 0; j < graph.num_workers(); ++j) {
    for (TaskId i : graph.worker_tasks_[j]) {
      graph.task_workers_[i].push_back(j);
      ++graph.num_edges_;
    }
  }
  return graph;
}

double CandidateGraph::LogPopulation() const {
  double log_n = 0.0;
  for (const auto& tasks : worker_tasks_) {
    if (!tasks.empty()) log_n += std::log(static_cast<double>(tasks.size()));
  }
  return log_n;
}

}  // namespace rdbsc::core
