#include "core/instance.h"

#include <cmath>

namespace rdbsc::core {

util::Status Instance::Validate() const {
  for (const Task& t : tasks_) {
    if (!(t.Duration() > 0.0)) {
      return util::Status::InvalidArgument("task has non-positive duration");
    }
    if (t.beta < 0.0 || t.beta > 1.0) {
      return util::Status::InvalidArgument("task beta outside [0,1]");
    }
  }
  for (const Worker& w : workers_) {
    if (!(w.velocity > 0.0)) {
      return util::Status::InvalidArgument("worker velocity not positive");
    }
    if (w.confidence < 0.0 || w.confidence > 1.0) {
      return util::Status::InvalidArgument("worker confidence outside [0,1]");
    }
  }
  return util::Status::OK();
}

CandidateGraph CandidateGraph::Build(const Instance& instance) {
  std::vector<std::vector<TaskId>> edges(instance.num_workers());
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    for (TaskId i = 0; i < instance.num_tasks(); ++i) {
      if (IsValidPair(instance.task(i), instance.worker(j), instance.now(),
                      instance.policy())) {
        edges[j].push_back(i);
      }
    }
  }
  return FromEdges(instance, std::move(edges));
}

CandidateGraph CandidateGraph::FromEdges(
    const Instance& instance, std::vector<std::vector<TaskId>> edges) {
  CandidateGraph graph;
  graph.worker_tasks_ = std::move(edges);
  graph.worker_tasks_.resize(instance.num_workers());
  graph.task_workers_.assign(instance.num_tasks(), {});
  for (WorkerId j = 0; j < graph.num_workers(); ++j) {
    for (TaskId i : graph.worker_tasks_[j]) {
      graph.task_workers_[i].push_back(j);
      ++graph.num_edges_;
    }
  }
  return graph;
}

double CandidateGraph::LogPopulation() const {
  double log_n = 0.0;
  for (const auto& tasks : worker_tasks_) {
    if (!tasks.empty()) log_n += std::log(static_cast<double>(tasks.size()));
  }
  return log_n;
}

}  // namespace rdbsc::core
