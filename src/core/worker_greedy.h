#ifndef RDBSC_CORE_WORKER_GREEDY_H_
#define RDBSC_CORE_WORKER_GREEDY_H_

#include "core/solver.h"

namespace rdbsc::core {

/// The paper's experimental GREEDY (Section 8.1): "assigns each worker to a
/// 'best' task according to the current situation when processing the
/// worker, which is just a local optimal approach". Workers are processed
/// once, in id order; each picks the valid task whose increase pair
/// (Delta_min_R, Delta_STD) ranks best by skyline dominance.
///
/// This is the variant whose start-up herding the paper analyzes (workers
/// pile onto already-populated tasks, leaving diversity on the table);
/// the round-based Figure 3 algorithm with global pair selection is
/// implemented separately in GreedySolver.
class WorkerGreedySolver : public Solver {
 public:
  explicit WorkerGreedySolver(SolverOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "GREEDY"; }

 protected:
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats) override;

 private:
  SolverOptions options_;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_WORKER_GREEDY_H_
