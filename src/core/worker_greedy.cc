#include "core/worker_greedy.h"

#include "core/dominance.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <vector>

#include "core/registry.h"
#include "util/math.h"

namespace rdbsc::core {

util::StatusOr<SolveResult> WorkerGreedySolver::SolveImpl(
    const Instance& instance, const CandidateGraph& graph,
    const util::Deadline& deadline, util::Executor& /*executor*/,
    SolveStats* partial_stats) {
  auto t0 = std::chrono::steady_clock::now();
  SolveResult result;
  AssignmentState state(instance);

  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (deadline.Exhausted()) {
      result.stats.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      return BudgetError(deadline, result.stats, partial_stats);
    }
    const auto& tasks = graph.TasksOf(j);
    if (tasks.empty()) continue;

    // The two smallest task reliabilities, for O(1) Delta_min_R per task.
    double min1 = std::numeric_limits<double>::infinity();
    double min2 = std::numeric_limits<double>::infinity();
    TaskId arg1 = kNoTask;
    for (TaskId i = 0; i < instance.num_tasks(); ++i) {
      double r = state.TaskReducedReliability(i);
      if (r < min1) {
        min2 = min1;
        min1 = r;
        arg1 = i;
      } else if (r < min2) {
        min2 = r;
      }
    }
    double weight = util::ReliabilityWeight(instance.worker(j).confidence);

    // The worker's locally best task: skyline on (dmr, dstd), then the
    // member dominating the most candidates.
    std::vector<BiPoint> increase_pairs;
    increase_pairs.reserve(tasks.size());
    for (TaskId i : tasks) {
      double excl = (i == arg1) ? min2 : min1;
      double new_min = std::min(excl, state.TaskReducedReliability(i) +
                                          weight);
      double dmr = std::max(0.0, new_min - min1);
      double dstd;
      if (options_.greedy_increment ==
          SolverOptions::GreedyIncrement::kExact) {
        dstd = state.PreviewTaskStd(i, j) - state.TaskExpectedStd(i);
        ++result.stats.exact_std_evals;
      } else {
        // Section 4.3 estimate: optimistic increase from the bounds.
        dstd = std::max(0.0, state.PreviewTaskStdBounds(i, j).ub -
                                 state.TaskStdBounds(i).lb);
      }
      increase_pairs.push_back(BiPoint{dmr, dstd});
    }
    state.Add(tasks[TopDominating(increase_pairs)], j);
  }

  result.assignment = state.assignment();
  result.objectives = state.Objectives();
  result.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

namespace internal {

void RegisterWorkerGreedySolver(SolverRegistry& registry) {
  registry
      .Register("worker-greedy",
                [](const SolverOptions& options) {
                  return std::make_unique<WorkerGreedySolver>(options);
                })
      .ok();
}

}  // namespace internal

}  // namespace rdbsc::core
