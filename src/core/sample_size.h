#ifndef RDBSC_CORE_SAMPLE_SIZE_H_
#define RDBSC_CORE_SAMPLE_SIZE_H_

#include <cstdint>

namespace rdbsc::core {

/// Inputs of the Section 5.2 sample-size analysis. The population consists
/// of all N = prod_j deg(w_j) task-and-worker assignments; each sample picks
/// one edge per worker uniformly, so every assignment is drawn with
/// probability p = 1/N. N is astronomically large in practice, so the
/// calculator works with ln(N).
struct SampleSizeParams {
  /// Rank error: the best of K samples must rank above (1-epsilon)*N.
  double epsilon = 0.1;
  /// Required confidence of that rank guarantee.
  double delta = 0.9;
  /// ln(N) = sum_j ln(max(deg(w_j), 1)); see CandidateGraph::LogPopulation.
  double log_population = 0.0;
};

/// The closed-form lower bound of Eq. (15):
/// K > (p*M*e - 1 + p) / (1 - p + e*p) with M = (1-epsilon)*N, p = 1/N.
/// Note p*M = 1-epsilon exactly, so the bound stays O(1) even for huge N.
double SampleSizeLowerBound(const SampleSizeParams& params);

/// ln Pr{X <= M}: the probability that the best of K samples ranks at or
/// below M = (1-epsilon)*N (Eq. 18, evaluated in log space; for very large
/// N it switches to the asymptotic form ln Pr ~ -1 + K*ln(1-eps) - ln K!).
double LogProbRankAtMost(const SampleSizeParams& params, int64_t k);

/// K-hat: the smallest K in (lower bound, cap] with
/// Pr{X <= (1-epsilon)N} <= 1 - delta, found by binary search (the
/// probability decreases in K past the lower bound). Returns `cap` when
/// even the cap cannot reach the bound, and at least 1 always.
int64_t DetermineSampleSize(const SampleSizeParams& params, int64_t cap);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_SAMPLE_SIZE_H_
