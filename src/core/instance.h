#ifndef RDBSC_CORE_INSTANCE_H_
#define RDBSC_CORE_INSTANCE_H_

#include <vector>

#include "core/model.h"
#include "util/deadline.h"
#include "util/executor.h"
#include "util/status.h"

namespace rdbsc::core {

/// A snapshot of the crowdsourcing system: the current task set T, worker
/// set W, the wall-clock time `now`, and the arrival policy. Solvers operate
/// on instances; the dynamic platform (src/sim) produces a fresh instance at
/// every incremental update round.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Task> tasks, std::vector<Worker> workers,
           double now = 0.0, ArrivalPolicy policy = ArrivalPolicy::kStrict)
      : tasks_(std::move(tasks)),
        workers_(std::move(workers)),
        now_(now),
        policy_(policy) {}

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Worker>& workers() const { return workers_; }
  double now() const { return now_; }
  ArrivalPolicy policy() const { return policy_; }

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  const Task& task(TaskId id) const { return tasks_[id]; }
  const Worker& worker(WorkerId id) const { return workers_[id]; }

  /// Validates basic well-formedness (positive durations, confidences in
  /// [0,1], positive velocities). Solvers assume a valid instance.
  util::Status Validate() const;

 private:
  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  double now_ = 0.0;
  ArrivalPolicy policy_ = ArrivalPolicy::kStrict;
};

/// The bipartite validity graph of Figure 4: for every worker the list of
/// tasks it can validly serve and the transpose. Built once per solve; the
/// grid index (src/index) offers a faster construction path for large
/// instances, producing the same edges.
class CandidateGraph {
 public:
  /// Builds the graph by testing every (task, worker) pair; O(m*n).
  static CandidateGraph Build(const Instance& instance);

  /// Same construction with interruption points and optional sharding:
  /// worker rows are partitioned across `executor` (nullptr = serial) and
  /// `deadline` is polled between row blocks, so a wall-clock budget or
  /// cancellation cuts the O(m*n) scan short with kDeadlineExceeded /
  /// kCancelled. The edge set is identical to the serial Build for every
  /// executor width (rows are independent; merge is by worker id).
  static util::StatusOr<CandidateGraph> Build(const Instance& instance,
                                              util::Executor* executor,
                                              const util::Deadline& deadline);

  /// Builds the graph from precomputed edges (as retrieved from the grid
  /// index); `edges[j]` lists the valid tasks of worker j.
  static CandidateGraph FromEdges(const Instance& instance,
                                  std::vector<std::vector<TaskId>> edges);

  /// Valid tasks of worker `j` (the edges incident to the worker node).
  const std::vector<TaskId>& TasksOf(WorkerId j) const {
    return worker_tasks_[j];
  }
  /// Valid workers of task `i`.
  const std::vector<WorkerId>& WorkersOf(TaskId i) const {
    return task_workers_[i];
  }

  /// deg(w_j) in the paper's sampling analysis.
  int Degree(WorkerId j) const {
    return static_cast<int>(worker_tasks_[j].size());
  }

  /// Total number of valid task-worker pairs.
  int64_t NumEdges() const { return num_edges_; }

  /// ln of the population size N = prod_j max(deg(w_j), 1) (Section 5.2).
  /// Workers with no valid task contribute factor 1.
  double LogPopulation() const;

  int num_tasks() const { return static_cast<int>(task_workers_.size()); }
  int num_workers() const { return static_cast<int>(worker_tasks_.size()); }

 private:
  std::vector<std::vector<TaskId>> worker_tasks_;
  std::vector<std::vector<WorkerId>> task_workers_;
  int64_t num_edges_ = 0;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_INSTANCE_H_
