#ifndef RDBSC_CORE_INSTANCE_H_
#define RDBSC_CORE_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/model.h"
#include "util/deadline.h"
#include "util/executor.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rdbsc::core {

class InstanceSoA;  // core/kernels.h
struct EdgeRow;     // core/kernels.h

/// A snapshot of the crowdsourcing system: the current task set T, worker
/// set W, the wall-clock time `now`, and the arrival policy. Solvers operate
/// on instances; the dynamic platform (src/sim) produces a fresh instance at
/// every incremental update round.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Task> tasks, std::vector<Worker> workers,
           double now = 0.0, ArrivalPolicy policy = ArrivalPolicy::kStrict)
      : tasks_(std::move(tasks)),
        workers_(std::move(workers)),
        now_(now),
        policy_(policy) {}

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Worker>& workers() const { return workers_; }
  double now() const { return now_; }
  ArrivalPolicy policy() const { return policy_; }

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  const Task& task(TaskId id) const { return tasks_[id]; }
  const Worker& worker(WorkerId id) const { return workers_[id]; }

  /// The columnar companion (task columns + per-worker kernel geometry;
  /// see core/kernels.h), built on first use and cached for the lifetime
  /// of the instance. Thread-safe; the returned view is immutable, so
  /// solver shards share it freely. Copies of the instance share the
  /// cache (the underlying data cannot diverge -- instances are
  /// immutable after construction).
  const InstanceSoA& soa() const;

  /// Validates basic well-formedness (positive durations, confidences in
  /// [0,1], positive velocities). Solvers assume a valid instance.
  util::Status Validate() const;

 private:
  /// Lazily built SoA view, double-checked under its own mutex (same
  /// discipline as GridIndex::TCellCache). Heap-allocated and shared so
  /// the instance stays cheaply copyable.
  struct SoaCache {
    mutable util::Mutex mu;
    std::shared_ptr<const InstanceSoA> value GUARDED_BY(mu);
  };

  std::vector<Task> tasks_;
  std::vector<Worker> workers_;
  double now_ = 0.0;
  ArrivalPolicy policy_ = ArrivalPolicy::kStrict;
  std::shared_ptr<SoaCache> soa_cache_ = std::make_shared<SoaCache>();
};

/// The bipartite validity graph of Figure 4: for every worker the list of
/// tasks it can validly serve and the transpose. Built once per solve; the
/// grid index (src/index) offers a faster construction path for large
/// instances, producing the same edges.
///
/// Storage is CSR (one flat id array plus offsets per side): rows come out
/// of the build kernels as exact-size arena spans, so assembly is two flat
/// copies instead of per-worker vector growth, and row accessors return
/// std::span views into contiguous memory.
class CandidateGraph {
 public:
  /// Builds the graph by testing every (task, worker) pair; O(m*n).
  static CandidateGraph Build(const Instance& instance);

  /// Same construction with interruption points and optional sharding:
  /// worker rows are partitioned across `executor` (nullptr = serial) and
  /// `deadline` is polled between row blocks, so a wall-clock budget or
  /// cancellation cuts the O(m*n) scan short with kDeadlineExceeded /
  /// kCancelled. The edge set is identical to the serial Build for every
  /// executor width (rows are independent; merge is by worker id), and to
  /// a scalar IsValidPair scan (the batched kernel's exact-equality
  /// contract, core/kernels.h).
  static util::StatusOr<CandidateGraph> Build(const Instance& instance,
                                              util::Executor* executor,
                                              const util::Deadline& deadline);

  /// Builds the graph from precomputed edges (as retrieved from the grid
  /// index); `edges[j]` lists the valid tasks of worker j.
  static CandidateGraph FromEdges(const Instance& instance,
                                  std::vector<std::vector<TaskId>> edges);

  /// Valid tasks of worker `j` (the edges incident to the worker node),
  /// ascending.
  std::span<const TaskId> TasksOf(WorkerId j) const {
    const auto a = static_cast<size_t>(worker_offsets_[j]);
    const auto b = static_cast<size_t>(worker_offsets_[j + 1]);
    return {worker_edges_.data() + a, b - a};
  }
  /// Valid workers of task `i`, ascending.
  std::span<const WorkerId> WorkersOf(TaskId i) const {
    const auto a = static_cast<size_t>(task_offsets_[i]);
    const auto b = static_cast<size_t>(task_offsets_[i + 1]);
    return {task_edges_.data() + a, b - a};
  }

  /// deg(w_j) in the paper's sampling analysis.
  int Degree(WorkerId j) const {
    return static_cast<int>(worker_offsets_[j + 1] - worker_offsets_[j]);
  }

  /// Total number of valid task-worker pairs.
  int64_t NumEdges() const { return num_edges_; }

  /// ln of the population size N = prod_j max(deg(w_j), 1) (Section 5.2).
  /// Workers with no valid task contribute factor 1.
  double LogPopulation() const;

  int num_tasks() const {
    return task_offsets_.empty() ? 0
                                 : static_cast<int>(task_offsets_.size()) - 1;
  }
  int num_workers() const {
    return worker_offsets_.empty()
               ? 0
               : static_cast<int>(worker_offsets_.size()) - 1;
  }

 private:
  /// Flat assembly from per-worker rows (arena spans or vector views):
  /// prefix-sum offsets, one bulk copy per row, then the transpose in
  /// ascending worker order.
  static CandidateGraph FromRows(int num_tasks, int num_workers,
                                 const EdgeRow* rows);

  std::vector<int64_t> worker_offsets_;  // n + 1 entries (empty when n == 0)
  std::vector<TaskId> worker_edges_;
  std::vector<int64_t> task_offsets_;    // m + 1 entries (empty when m == 0)
  std::vector<WorkerId> task_edges_;
  int64_t num_edges_ = 0;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_INSTANCE_H_
