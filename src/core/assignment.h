#ifndef RDBSC_CORE_ASSIGNMENT_H_
#define RDBSC_CORE_ASSIGNMENT_H_

#include <vector>

#include "core/diversity.h"
#include "core/instance.h"
#include "core/model.h"

namespace rdbsc::core {

/// The two RDB-SC optimization goals for one assignment (Definition 4):
/// the minimum task reliability and the summed expected diversity.
struct ObjectiveValue {
  /// min_i rel(t_i, W_i), in probability form, taken over tasks with at
  /// least one assigned worker (the paper's reporting convention; an
  /// instance with no assignment at all scores 0).
  double min_reliability = 0.0;
  /// total_STD = sum_i E[STD(t_i)] (Eq. 7).
  double total_std = 0.0;
};

/// Skyline dominance between objective pairs (Section 4.2): a dominates b
/// when a is no worse in both goals and strictly better in at least one.
bool Dominates(const ObjectiveValue& a, const ObjectiveValue& b);

/// A task-and-worker assignment strategy S: each worker serves at most one
/// task. Plain data; objective bookkeeping lives in AssignmentState.
class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(int num_workers) : worker_task_(num_workers, kNoTask) {}

  /// Task of worker j, or kNoTask.
  TaskId TaskOf(WorkerId j) const { return worker_task_[j]; }

  /// Assigns worker j to task i (overwrites any previous assignment).
  void Assign(WorkerId j, TaskId i) { worker_task_[j] = i; }

  /// Clears worker j's assignment.
  void Unassign(WorkerId j) { worker_task_[j] = kNoTask; }

  int num_workers() const { return static_cast<int>(worker_task_.size()); }

  /// Number of workers with an assigned task.
  int NumAssigned() const;

  /// Inverse view: per-task lists of assigned workers.
  std::vector<std::vector<WorkerId>> TaskGroups(int num_tasks) const;

 private:
  std::vector<TaskId> worker_task_;
};

/// Incrementally maintained objective state for an assignment under
/// construction. Used by every solver: Add() assigns one worker and updates
/// the per-task reduced reliability R (Lemma 4.1) and expected diversity
/// E[STD], plus the global aggregates, in O(r^2) for the touched task only.
class AssignmentState {
 public:
  /// Starts from the empty assignment over `instance` (kept by reference;
  /// must outlive the state).
  explicit AssignmentState(const Instance& instance);

  /// Assigns unassigned worker j to task i.
  void Add(TaskId i, WorkerId j);

  /// Removes worker j from its task (no-op when unassigned).
  void Remove(WorkerId j);

  /// Replays a whole assignment (workers with kNoTask stay unassigned).
  void Reset(const Assignment& assignment);

  /// Reduced reliability R(t_i, W_i) = sum of -ln(1-p) (Eq. 8).
  double TaskReducedReliability(TaskId i) const { return task_r_[i]; }

  /// E[STD(t_i)] for the current worker set of task i.
  double TaskExpectedStd(TaskId i) const { return task_std_[i]; }

  /// Workers currently serving task i.
  const std::vector<WorkerId>& WorkersOf(TaskId i) const {
    return task_workers_[i];
  }

  TaskId TaskOf(WorkerId j) const { return assignment_.TaskOf(j); }

  /// Minimum reduced reliability over ALL tasks (empty tasks count as 0);
  /// this is the greedy algorithm's internal Delta_min_R reference point.
  double MinReducedReliabilityAllTasks() const;

  /// The reported objectives (min reliability over non-empty tasks, in
  /// probability form, and total expected diversity).
  ObjectiveValue Objectives() const;

  double TotalExpectedStd() const { return total_std_; }

  const Assignment& assignment() const { return assignment_; }
  const Instance& instance() const { return *instance_; }

  /// What the objectives would become if worker j were added to task i,
  /// without mutating the state. Cost: O(r_i^2 + m).
  ObjectiveValue PreviewAdd(TaskId i, WorkerId j) const;

  /// E[STD(t_i)] if worker j were added to task i, without mutating the
  /// state. Cost: O(r_i^2); used by the greedy exact-increment step.
  double PreviewTaskStd(TaskId i, WorkerId j) const;

  /// Lower/upper bounds of E[STD(t_i)] if worker j were added (O(r log r));
  /// feeds the Lemma 4.3 pruning.
  DiversityBounds PreviewTaskStdBounds(TaskId i, WorkerId j) const;

  /// Bounds of the current E[STD(t_i)].
  DiversityBounds TaskStdBounds(TaskId i) const;

 private:
  void RecomputeTask(TaskId i);

  /// The observation of (task i, worker j): served from the lazily built
  /// per-worker row when one exists, otherwise computed scalar. Rows are
  /// built (whole, through the batched core::ObservationRow kernel over
  /// the instance's SoA task block) by the Preview* entry points, which
  /// solvers call many times per worker and round; the one-shot Add path
  /// never forces a row, so replay-heavy users (Reset, sampling's
  /// EvaluateAssignment) keep their O(1)-observations-per-Add cost.
  /// Bit-identical either way: the row kernel is the scalar sequence.
  Observation ObservationFor(TaskId i, WorkerId j) const;
  const std::vector<Observation>& ObservationRowOf(WorkerId j) const;

  const Instance* instance_;
  Assignment assignment_;
  std::vector<std::vector<WorkerId>> task_workers_;
  std::vector<std::vector<Observation>> task_obs_;
  std::vector<double> task_r_;
  std::vector<double> task_std_;
  double total_std_ = 0.0;
  int num_nonempty_ = 0;

  /// Lazy per-worker observation rows (indexed by worker, then task).
  /// mutable + unsynchronized: AssignmentState is single-threaded by
  /// design -- every solver owns its states per shard (D&C leaves,
  /// sampling evaluations); nothing shares one across threads.
  mutable std::vector<std::vector<Observation>> obs_rows_;
  mutable std::vector<uint8_t> obs_row_ready_;
};

/// Evaluates an assignment's objectives from scratch (convenience wrapper
/// over AssignmentState for one-shot scoring, e.g. of sampling candidates).
ObjectiveValue EvaluateAssignment(const Instance& instance,
                                  const Assignment& assignment);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_ASSIGNMENT_H_
