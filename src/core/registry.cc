#include "core/registry.h"

#include <utility>

namespace rdbsc::core {

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    internal::RegisterGreedySolver(*r);
    internal::RegisterWorkerGreedySolver(*r);
    internal::RegisterSamplingSolver(*r);
    internal::RegisterDivideConquerSolvers(*r);
    internal::RegisterExactSolver(*r);
    return r;
  }();
  return *registry;
}

util::Status SolverRegistry::Register(std::string name, Factory factory) {
  if (name.empty() || factory == nullptr) {
    return util::Status::InvalidArgument(
        "solver registration needs a name and a factory");
  }
  auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    return util::Status::AlreadyExists("solver '" + it->first +
                                       "' is already registered");
  }
  return util::Status::OK();
}

util::StatusOr<std::unique_ptr<Solver>> SolverRegistry::Create(
    std::string_view name, const SolverOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "unknown solver '";
    message += name;
    message += "'; registered:";
    for (const std::string& known : Names()) {
      message += ' ';
      message += known;
    }
    return util::Status::NotFound(std::move(message));
  }
  std::unique_ptr<Solver> solver = it->second(options);
  if (solver == nullptr) {
    return util::Status::Internal("factory for solver '" + it->first +
                                  "' returned null");
  }
  return solver;
}

bool SolverRegistry::Contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

}  // namespace rdbsc::core
