#include "core/sample_size.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/math.h"

namespace rdbsc::core {
namespace {

// Natural-log threshold past which the exact Eq. (18) evaluation loses
// precision (lgamma(M) ~ M ln M overwhelms the K ln M sized differences we
// need) and the asymptotic forms take over. At e^25 ~ 7e10 the two regimes
// agree to ~1e-9.
constexpr double kLogHuge = 25.0;

}  // namespace

double SampleSizeLowerBound(const SampleSizeParams& params) {
  assert(params.epsilon > 0.0 && params.epsilon < 1.0);
  const double e = std::exp(1.0);
  // p*M = (1 - epsilon) holds exactly because p = 1/N and M = (1-eps)*N.
  double pm = 1.0 - params.epsilon;
  double p = params.log_population > kLogHuge
                 ? 0.0
                 : std::exp(-params.log_population);
  return (pm * e - 1.0 + p) / (1.0 - p + e * p);
}

double LogProbRankAtMost(const SampleSizeParams& params, int64_t k) {
  assert(k >= 1);
  const double log_n = params.log_population;
  const double kk = static_cast<double>(k);

  if (log_n > kLogHuge) {
    // Asymptotics for huge N (see DESIGN.md):
    //   N ln(1-p) -> -1,
    //   ln C(M,K) - K ln(1-p) + K ln p ~ K ln(pM) - ln K! = K ln(1-eps)-lnK!
    // with p M = 1 - eps held exactly; error terms are O(K^2/M).
    return -1.0 + kk * std::log(1.0 - params.epsilon) -
           util::LogGamma(kk + 1.0);
  }

  const double n = std::exp(log_n);
  const double p = 1.0 / n;
  const double m = std::floor((1.0 - params.epsilon) * n);
  if (kk > m) {
    // More samples than population slots below the rank threshold: the top
    // sample necessarily ranks above M, so Pr{X <= M} = 0.
    return -std::numeric_limits<double>::infinity();
  }
  // ln Pr{X <= M} = N ln(1-p) + K (ln p - ln(1-p)) + ln C(M, K)  (Eq. 18)
  double log1mp = std::log1p(-p);
  return n * log1mp + kk * (std::log(p) - log1mp) +
         util::LogBinomial(m, kk);
}

int64_t DetermineSampleSize(const SampleSizeParams& params, int64_t cap) {
  assert(cap >= 1);
  assert(params.delta > 0.0 && params.delta < 1.0);
  const double target = std::log1p(-params.delta);  // ln(1 - delta)

  // Population of one assignment (every worker has degree <= 1): a single
  // sample is the whole population.
  if (params.log_population <= 0.0) return 1;

  int64_t lo = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor(SampleSizeLowerBound(params))) + 1);
  lo = std::min(lo, cap);
  if (LogProbRankAtMost(params, cap) > target) return cap;
  // Pr{X <= M} decreases in K beyond the Eq. (15) bound; find the smallest
  // K meeting the confidence target.
  int64_t hi = cap;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    if (LogProbRankAtMost(params, mid) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return std::max<int64_t>(1, lo);
}

}  // namespace rdbsc::core
