#include "core/fingerprint.h"

namespace rdbsc::core {

void MixInstance(util::Hasher& hasher, const Instance& instance) {
  hasher.Mix(static_cast<uint64_t>(instance.num_tasks()));
  for (const Task& t : instance.tasks()) {
    hasher.Mix(t.location.x)
        .Mix(t.location.y)
        .Mix(t.start)
        .Mix(t.end)
        .Mix(t.beta);
  }
  hasher.Mix(static_cast<uint64_t>(instance.num_workers()));
  for (const Worker& w : instance.workers()) {
    hasher.Mix(w.location.x)
        .Mix(w.location.y)
        .Mix(w.velocity)
        .Mix(w.direction.lo())
        .Mix(w.direction.width())
        .Mix(w.confidence)
        .Mix(w.available_from);
  }
  hasher.Mix(instance.now());
  hasher.Mix(static_cast<uint64_t>(instance.policy()));
}

void MixSolverOptions(util::Hasher& hasher, const SolverOptions& options) {
  hasher.Mix(options.seed)
      .Mix(options.epsilon)
      .Mix(options.delta)
      .Mix(options.fixed_sample_size)
      .Mix(options.min_sample_size)
      .Mix(options.max_sample_size)
      .Mix(options.sample_multiplier)
      .Mix(options.use_pruning)
      .Mix(static_cast<uint64_t>(options.greedy_increment))
      .Mix(options.gamma)
      .Mix(options.leaf_use_greedy)
      .Mix(options.max_dcw_group);
}

util::Hash128 InstanceFingerprint(const Instance& instance) {
  util::Hasher hasher;
  MixInstance(hasher, instance);
  return hasher.Digest();
}

}  // namespace rdbsc::core
