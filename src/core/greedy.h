#ifndef RDBSC_CORE_GREEDY_H_
#define RDBSC_CORE_GREEDY_H_

#include "core/solver.h"

namespace rdbsc::core {

/// RDB-SC_Greedy (Figure 3): iteratively picks the valid task-worker pair
/// whose assignment yields the best (Delta_min_R, Delta_STD) increase pair,
/// using skyline dominance filtering and dominance-count ranking, with the
/// optional Lemma 4.3 lower/upper-bound pruning to avoid exact expected-
/// diversity evaluations for hopeless candidates.
class GreedySolver : public Solver {
 public:
  explicit GreedySolver(SolverOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "GREEDY"; }

 protected:
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats) override;

 private:
  SolverOptions options_;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_GREEDY_H_
