#include "core/kernels.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>

#include "core/instance.h"
#include "geo/angle.h"

namespace rdbsc::core {
namespace {

// Margin design. Every certain verdict must hold for the ORACLE's
// formulation (hypot + division + addition + atan2), not merely for the
// kernel's squared/cosine reformulation, so each margin is sized to
// dominate the combined rounding error of both on any ISA (including FMA
// contraction in the vector variant):
//
//   - kRelMargin pads the squared comparison d2 <> r^2: both sides carry
//     O(1e-16) relative error, so a 1e-9 relative band is ~1e7x headroom.
//   - kAbsTimeEps scales an ABSOLUTE guard on the slack (end - depart):
//     when |end| ~ |depart| >> slack, the subtraction cancels and a purely
//     relative band on the slack would shrink below one ulp of the
//     operands; the guard 1e-12 * (|bound| + |depart| + 1) stays ~1e4 ulps
//     wide at every magnitude.
//   - kAngleEps widens/narrows the cone half-angle by 1e-6 rad, dominating
//     AngularInterval::Contains' 1e-9 tolerance and the ~1e-8 rad
//     worst-case error of the cosine-space test near the cone axis.
//   - d2 outside (kD2Tiny, kHuge) -- coincident points, denormals,
//     overflow -- is never classified; those pairs go to the oracle.
constexpr double kRelMargin = 1e-9;
constexpr double kAbsTimeEps = 1e-12;
constexpr double kAngleEps = 1e-6;
constexpr double kD2Tiny = 2.2250738585072014e-308;  // DBL_MIN
constexpr double kHuge = 1e300;

// The classification loop, templated on the arrival policy and the
// full-circle fast path so the body is branch-free and auto-vectorizes.
// always_inline lets the runtime-dispatched wrappers below recompile the
// same body under a wider target ISA.
template <bool kWait, bool kFullCircle>
[[gnu::always_inline]] inline void ClassifyLoop(
    const WorkerGeom& g, size_t n, const double* __restrict tx,
    const double* __restrict ty, const double* __restrict ts,
    const double* __restrict te, uint8_t* __restrict cls) {
  const double wx = g.wx, wy = g.wy;
  const double depart = g.depart, v = g.velocity, ad1 = g.abs_depart1;
  const double ux = g.ux, uy = g.uy;
  const double cin = g.cin_ss, cout = g.cout_ss;
  for (size_t k = 0; k < n; ++k) {
    const double dx = tx[k] - wx;
    const double dy = ty[k] - wy;
    const double d2 = dx * dx + dy * dy;
    // Degenerate magnitudes are never classified; everything below may
    // assume d2 is a normal positive double, so no product involving it
    // runs into inf-vs-inf comparisons.
    const bool d2_ok = (d2 > kD2Tiny) & (d2 < kHuge);

    // Upper time bound, arrival <= end, as d2 <> ((end - depart) * v)^2.
    // Certain verdicts also require the threshold below kHuge: a threshold
    // that large (or inf, from slack overflow) says nothing about the
    // oracle's depart + dist/v, which may itself overflow.
    const double ge = kAbsTimeEps * (std::fabs(te[k]) + ad1);
    const double se = te[k] - depart;
    const double r_acc_e = (se - ge) * v;
    const double r_rej_e = (se + ge) * v;
    const double acc_e = r_acc_e * r_acc_e * (1.0 - kRelMargin);
    const double rej_e = r_rej_e * r_rej_e * (1.0 + kRelMargin);
    bool accept = (se > ge) & (d2 < acc_e) & (acc_e < kHuge);
    bool reject = (se < -ge) | (d2 > rej_e);

    // Lower time bound, arrival >= start. kAllowWait clamps the arrival up
    // to start, which turns the bound into `start <= end` -- exact, no
    // arithmetic, so no margin.
    if constexpr (kWait) {
      accept = accept & (ts[k] <= te[k]);
      reject = reject | (ts[k] > te[k]);
    } else {
      // depart >= start settles it alone: fl(depart + travel) >= depart
      // because travel >= 0 and rounding is monotone.
      const bool low_auto = depart >= ts[k];
      const double gs = kAbsTimeEps * (std::fabs(ts[k]) + ad1);
      const double ss = ts[k] - depart;
      const double r_acc_s = (ss + gs) * v;
      const double r_rej_s = (ss - gs) * v;
      const double acc_s = r_acc_s * r_acc_s * (1.0 + kRelMargin);
      const double rej_s = r_rej_s * r_rej_s * (1.0 - kRelMargin);
      accept = accept & (low_auto | (d2 > acc_s));
      reject = reject |
               ((!low_auto) & (ss > gs) & (d2 < rej_s) & (rej_s < kHuge));
    }

    // Direction: deviation phi from the cone axis tested in signed-square
    // cosine space, dot * |dot| <> c * |c| * d2 (equivalent to
    // cos(phi) <> c whenever d2 > 0, monotone across the whole circle).
    if constexpr (!kFullCircle) {
      const double dot = dx * ux + dy * uy;
      const double sd = dot * std::fabs(dot);
      accept = accept & (sd > cin * d2);
      reject = reject | (sd < cout * d2);
    }

    accept = accept & d2_ok;
    reject = reject & d2_ok;
    cls[k] = accept ? uint8_t{kPairAccept}
                    : (reject ? uint8_t{kPairReject} : uint8_t{kPairUncertain});
  }
}

using ClassifyFn = void (*)(const WorkerGeom&, size_t, const double*,
                            const double*, const double*, const double*,
                            uint8_t*);

template <bool kWait, bool kFullCircle>
void ClassifyDefault(const WorkerGeom& g, size_t n, const double* tx,
                     const double* ty, const double* ts, const double* te,
                     uint8_t* cls) {
  ClassifyLoop<kWait, kFullCircle>(g, n, tx, ty, ts, te, cls);
}

#if defined(__x86_64__) && defined(__GNUC__)
#define RDBSC_KERNELS_DYNAMIC_AVX2 1
// The identical loop recompiled for AVX2+FMA and picked at runtime via
// cpuid. The margins above make FMA contraction and vector-width
// differences output-invisible, so dispatch cannot perturb the edge set.
template <bool kWait, bool kFullCircle>
__attribute__((target("avx2,fma"))) void ClassifyAvx2(
    const WorkerGeom& g, size_t n, const double* tx, const double* ty,
    const double* ts, const double* te, uint8_t* cls) {
  ClassifyLoop<kWait, kFullCircle>(g, n, tx, ty, ts, te, cls);
}
#endif

// Dispatch table indexed [policy == kAllowWait][full_circle], resolved
// once per process from cpuid (no ambient time/rng involved).
struct ClassifyTable {
  ClassifyFn fn[2][2];
};

const ClassifyTable& GetClassifyTable() {
  static const ClassifyTable table = [] {
    ClassifyTable t;
    t.fn[0][0] = &ClassifyDefault<false, false>;
    t.fn[0][1] = &ClassifyDefault<false, true>;
    t.fn[1][0] = &ClassifyDefault<true, false>;
    t.fn[1][1] = &ClassifyDefault<true, true>;
#ifdef RDBSC_KERNELS_DYNAMIC_AVX2
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      t.fn[0][0] = &ClassifyAvx2<false, false>;
      t.fn[0][1] = &ClassifyAvx2<false, true>;
      t.fn[1][0] = &ClassifyAvx2<true, false>;
      t.fn[1][1] = &ClassifyAvx2<true, true>;
    }
#endif
    return t;
  }();
  return table;
}

}  // namespace

void TaskBlock::Reserve(size_t n) {
  x.reserve(n);
  y.reserve(n);
  start.reserve(n);
  end.reserve(n);
  id.reserve(n);
  oracle.reserve(n);
}

void TaskBlock::Add(TaskId task_id, const Task& t) {
  const int32_t k = static_cast<int32_t>(x.size());
  x.push_back(t.location.x);
  y.push_back(t.location.y);
  start.push_back(t.start);
  end.push_back(t.end);
  id.push_back(task_id);
  oracle.push_back(t);
  if (!(std::isfinite(t.location.x) && std::isfinite(t.location.y) &&
        std::isfinite(t.start) && std::isfinite(t.end))) {
    suspect.push_back(k);
  }
}

WorkerGeom PrecomputeWorker(const Worker& w, double now) {
  WorkerGeom g;
  g.wx = w.location.x;
  g.wy = w.location.y;
  g.depart = std::max(now, w.available_from);
  g.velocity = w.velocity;
  g.abs_depart1 = std::fabs(g.depart) + 1.0;
  // Non-positive or non-finite geometry falls back to the oracle wholesale
  // (e.g. velocity <= 0 pairs with end = +inf are oracle business).
  g.scalar_only = !(w.velocity > 0.0) || !std::isfinite(w.velocity) ||
                  !std::isfinite(g.wx) || !std::isfinite(g.wy) ||
                  !std::isfinite(g.depart);
  const double width = w.direction.width();
  g.full_circle = width >= geo::kTwoPi;
  if (!g.full_circle) {
    if (!std::isfinite(w.direction.lo()) || !std::isfinite(width)) {
      g.scalar_only = true;
      return g;
    }
    const double half = 0.5 * width;
    const double mid = w.direction.lo() + half;
    g.ux = std::cos(mid);
    g.uy = std::sin(mid);
    // Widened/narrowed half-angle thresholds as signed-square cosines.
    // When the narrowed angle clamps to 0 (or the widened one to pi) the
    // corresponding test could only fire from rounding noise, so it is
    // disabled with a sentinel no normal |cos|^2 <= 1 + eps can cross.
    const double th_in = half - kAngleEps;
    if (th_in > 0.0) {
      const double c = std::cos(th_in);
      g.cin_ss = c * std::fabs(c);
    } else {
      g.cin_ss = 2.0;  // never certain-inside
    }
    const double th_out = half + kAngleEps;
    if (th_out < std::numbers::pi) {
      const double c = std::cos(th_out);
      g.cout_ss = c * std::fabs(c);
    } else {
      g.cout_ss = -2.0;  // never certain-outside
    }
  }
  return g;
}

void ClassifyRow(const WorkerGeom& g, ArrivalPolicy policy,
                 const TaskBlock& block, uint8_t* cls) {
  assert(!g.scalar_only && "scalar-only workers are oracle business");
  const int wait = policy == ArrivalPolicy::kAllowWait ? 1 : 0;
  const int full = g.full_circle ? 1 : 0;
  GetClassifyTable().fn[wait][full](g, block.size(), block.x.data(),
                                    block.y.data(), block.start.data(),
                                    block.end.data(), cls);
  // Tasks with non-finite fields are never classified.
  for (int32_t idx : block.suspect) cls[idx] = kPairUncertain;
}

size_t ValidPairsRow(const WorkerGeom& g, const Worker& w, double now,
                     ArrivalPolicy policy, const TaskBlock& block,
                     uint8_t* cls_scratch, std::vector<TaskId>* out) {
  const size_t n = block.size();
  const size_t before = out->size();
  if (g.scalar_only) {
    for (size_t k = 0; k < n; ++k) {
      if (IsValidPair(block.oracle[k], w, now, policy)) {
        out->push_back(block.id[k]);
      }
    }
    return out->size() - before;
  }
  ClassifyRow(g, policy, block, cls_scratch);
  for (size_t k = 0; k < n; ++k) {
    const uint8_t c = cls_scratch[k];
    // Debug builds cross-check every certain verdict against the oracle,
    // so the unit/sanitizer suites exercise the margins on every pair.
    assert(c == kPairUncertain ||
           (c == kPairAccept) == IsValidPair(block.oracle[k], w, now, policy));
    if (c == kPairAccept ||
        (c == kPairUncertain &&
         IsValidPair(block.oracle[k], w, now, policy))) {
      out->push_back(block.id[k]);
    }
  }
  return out->size() - before;
}

InstanceSoA InstanceSoA::Build(const Instance& instance) {
  InstanceSoA soa;
  soa.now_ = instance.now();
  soa.policy_ = instance.policy();
  soa.tasks_.Reserve(static_cast<size_t>(instance.num_tasks()));
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    soa.tasks_.Add(i, instance.task(i));
  }
  soa.workers_ = instance.workers();
  soa.geoms_.reserve(soa.workers_.size());
  for (const Worker& w : soa.workers_) {
    soa.geoms_.push_back(PrecomputeWorker(w, soa.now_));
  }
  return soa;
}

namespace {

// Guard band of the stability windows: ~1e4 ulps at every magnitude, so a
// departure at least this far below a window boundary cannot cross it
// through rounding in either the window computation or the oracle's
// fl(depart + travel).
constexpr double kWindowEps = 1e-12;

double WindowGuard(double bound, double travel) {
  return kWindowEps * (std::fabs(bound) + travel + 1.0);
}

}  // namespace

PairWindow ClassifyPairWindow(const Task& t, const Worker& w, double now,
                              ArrivalPolicy policy) {
  constexpr double kForever = std::numeric_limits<double>::infinity();
  PairWindow out;
  out.valid = IsValidPair(t, w, now, policy);
  // Direction is time-independent: a rejected cone stays rejected.
  if (!(w.location == t.location) &&
      !w.direction.Contains(geo::Bearing(w.location, t.location))) {
    out.stable_until = kForever;
    return out;
  }
  const double travel = TravelTime(w, t.location);
  if (!std::isfinite(travel)) {
    // velocity <= 0 or non-finite geometry: arrival is +inf at every clock.
    out.stable_until = kForever;
    return out;
  }
  const double arrival = ArrivalTime(w, t, now, policy);
  double window;
  if (out.valid) {
    // Valid while depart <= (end - travel) - guard; until the clock passes
    // available_from the departure (hence the verdict) is frozen anyway.
    window = (t.end - travel) - WindowGuard(t.end, travel);
  } else if (arrival > t.end) {
    // Too late: arrival is monotone in now, so invalid forever.
    out.stable_until = kForever;
    return out;
  } else {
    // kStrict too-early: invalid while depart <= (start - travel) - guard,
    // possibly valid after (the activation edge a delta row must re-check).
    window = (t.start - travel) - WindowGuard(t.start, travel);
  }
  out.stable_until = std::max(w.available_from, window);
  // Inside the guard band: no forward guarantee beyond the current clock.
  if (out.stable_until < now) out.stable_until = now;
  return out;
}

void ObservationRow(const Worker& w, double now, ArrivalPolicy policy,
                    const TaskBlock& block, std::vector<Observation>* out) {
  out->clear();
  out->reserve(block.oracle.size());
  for (const Task& t : block.oracle) {
    out->push_back(MakeObservation(t, w, now, policy));
  }
}

bool ValidPairsRows(const InstanceSoA& soa, int64_t begin, int64_t end,
                    const util::Deadline& deadline, util::Arena* arena,
                    EdgeRow* rows) {
  const TaskBlock& block = soa.task_block();
  std::vector<uint8_t> cls(block.size());
  std::vector<TaskId> scratch;
  for (int64_t j = begin; j < end; ++j) {
    if ((j - begin) % kKernelRowsPerPoll == 0 && deadline.Exhausted()) {
      return false;
    }
    scratch.clear();
    ValidPairsRow(soa.worker_geoms()[static_cast<size_t>(j)],
                  soa.oracle_worker(static_cast<WorkerId>(j)), soa.now(),
                  soa.policy(), block, cls.data(), &scratch);
    TaskId* dst = arena->AllocateArray<TaskId>(scratch.size());
    if (!scratch.empty()) {
      std::memcpy(dst, scratch.data(), scratch.size() * sizeof(TaskId));
    }
    rows[j] = {dst, static_cast<int32_t>(scratch.size())};
  }
  return true;
}

}  // namespace rdbsc::core
