#include "core/model.h"

#include <algorithm>
#include <limits>

namespace rdbsc::core {

double TravelTime(const Worker& w, geo::Point location) {
  if (w.velocity <= 0.0) return std::numeric_limits<double>::infinity();
  return geo::Distance(w.location, location) / w.velocity;
}

double ArrivalTime(const Worker& w, const Task& t, double now,
                   ArrivalPolicy policy) {
  double depart = std::max(now, w.available_from);
  double arrival = depart + TravelTime(w, t.location);
  if (policy == ArrivalPolicy::kAllowWait && arrival < t.start) {
    arrival = t.start;
  }
  return arrival;
}

bool IsValidPair(const Task& t, const Worker& w, double now,
                 ArrivalPolicy policy) {
  // Direction constraint: walking towards the task must not deviate from
  // the worker's registered cone. A worker standing exactly on the task
  // trivially satisfies it.
  if (!(w.location == t.location) &&
      !w.direction.Contains(geo::Bearing(w.location, t.location))) {
    return false;
  }
  double arrival = ArrivalTime(w, t, now, policy);
  return arrival >= t.start && arrival <= t.end;
}

double ApproachAngle(const Task& t, const Worker& w) {
  return geo::Bearing(t.location, w.location);
}

}  // namespace rdbsc::core
