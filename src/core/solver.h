#ifndef RDBSC_CORE_SOLVER_H_
#define RDBSC_CORE_SOLVER_H_

#include <cstdint>
#include <string_view>

#include "core/assignment.h"
#include "core/instance.h"

namespace rdbsc::core {

/// Knobs shared by the RDB-SC solvers. Defaults follow the paper where it
/// states values and otherwise pick conservative laptop-scale settings.
struct SolverOptions {
  /// Seed for every random choice a solver makes.
  uint64_t seed = 42;

  // --- Sampling (Section 5) ---
  /// Rank-error tolerance of the (epsilon, delta)-bound.
  double epsilon = 0.1;
  /// Confidence of the (epsilon, delta)-bound.
  double delta = 0.9;
  /// When positive, overrides the computed sample size K-hat.
  int fixed_sample_size = 0;
  /// Floor/ceiling applied to the computed K-hat.
  int min_sample_size = 8;
  int max_sample_size = 512;
  /// Multiplies the sample size; the paper's G-TRUTH uses 10.
  int sample_multiplier = 1;

  // --- Greedy (Section 4) ---
  /// Enables the Lemma 4.3 bound-based candidate pruning.
  bool use_pruning = true;
  /// How the greedy ranks the diversity increase of candidate pairs.
  /// The paper's Section 4.3 replaces exact Delta-E[STD] computation by
  /// the lower/upper bound estimates ("instead of computing the exact
  /// diversity values for all task-and-worker pairs with high cost");
  /// ranking by the optimistic bound reproduces the published GREEDY
  /// curves, including its start-up herding onto non-empty tasks.
  /// kExact computes true increments instead (slower, stronger -- see the
  /// greedy-increments ablation bench).
  enum class GreedyIncrement { kBounds, kExact };
  GreedyIncrement greedy_increment = GreedyIncrement::kBounds;

  // --- Divide-and-conquer (Section 6) ---
  /// Leaf threshold: subproblems with at most `gamma` tasks are solved
  /// directly.
  int gamma = 24;
  /// When true the leaves use greedy instead of sampling.
  bool leaf_use_greedy = false;
  /// Largest DCW group enumerated exhaustively (2^k combinations); larger
  /// groups fall back to per-worker greedy resolution.
  int max_dcw_group = 12;
};

/// Counters and timings reported by a solve call.
struct SolveStats {
  double wall_seconds = 0.0;
  /// Number of exact E[STD] evaluations performed.
  int64_t exact_std_evals = 0;
  /// Candidate pairs eliminated by the Lemma 4.3 pruning (greedy only).
  int64_t pruned_pairs = 0;
  /// Sample size used (sampling only).
  int sample_size = 0;
};

/// Output of a solver: the strategy S plus its objectives and stats.
struct SolveResult {
  Assignment assignment;
  ObjectiveValue objectives;
  SolveStats stats;
};

/// Common interface of GREEDY, SAMPLING, D&C and G-TRUTH.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Display name used by benches and examples ("GREEDY", ...).
  virtual std::string_view name() const = 0;

  /// Computes an assignment for `instance` whose valid pairs are `graph`.
  /// Deterministic for a fixed options.seed.
  virtual SolveResult Solve(const Instance& instance,
                            const CandidateGraph& graph) = 0;
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_SOLVER_H_
