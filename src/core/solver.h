#ifndef RDBSC_CORE_SOLVER_H_
#define RDBSC_CORE_SOLVER_H_

#include <cstdint>
#include <string_view>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/deadline.h"
#include "util/executor.h"
#include "util/status.h"

namespace rdbsc::core {

/// Knobs shared by the RDB-SC solvers. Defaults follow the paper where it
/// states values and otherwise pick conservative laptop-scale settings.
struct SolverOptions {
  /// Seed for every random choice a solver makes.
  uint64_t seed = 42;

  // --- Sampling (Section 5) ---
  /// Rank-error tolerance of the (epsilon, delta)-bound.
  double epsilon = 0.1;
  /// Confidence of the (epsilon, delta)-bound.
  double delta = 0.9;
  /// When positive, overrides the computed sample size K-hat.
  int fixed_sample_size = 0;
  /// Floor/ceiling applied to the computed K-hat.
  int min_sample_size = 8;
  int max_sample_size = 512;
  /// Multiplies the sample size; the paper's G-TRUTH uses 10.
  int sample_multiplier = 1;

  // --- Greedy (Section 4) ---
  /// Enables the Lemma 4.3 bound-based candidate pruning.
  bool use_pruning = true;
  /// How the greedy ranks the diversity increase of candidate pairs.
  /// The paper's Section 4.3 replaces exact Delta-E[STD] computation by
  /// the lower/upper bound estimates ("instead of computing the exact
  /// diversity values for all task-and-worker pairs with high cost");
  /// ranking by the optimistic bound reproduces the published GREEDY
  /// curves, including its start-up herding onto non-empty tasks.
  /// kExact computes true increments instead (slower, stronger -- see the
  /// greedy-increments ablation bench).
  enum class GreedyIncrement { kBounds, kExact };
  GreedyIncrement greedy_increment = GreedyIncrement::kBounds;

  // --- Divide-and-conquer (Section 6) ---
  /// Leaf threshold: subproblems with at most `gamma` tasks are solved
  /// directly.
  int gamma = 24;
  /// When true the leaves use greedy instead of sampling.
  bool leaf_use_greedy = false;
  /// Largest DCW group enumerated exhaustively (2^k combinations); larger
  /// groups fall back to per-worker greedy resolution.
  int max_dcw_group = 12;
};

/// Counters and timings reported by a solve call.
struct SolveStats {
  double wall_seconds = 0.0;
  /// Number of exact E[STD] evaluations performed.
  int64_t exact_std_evals = 0;
  /// Candidate pairs eliminated by the Lemma 4.3 pruning (greedy only).
  int64_t pruned_pairs = 0;
  /// Sample size used (sampling only).
  int sample_size = 0;
  /// True when the solve was cut short by its wall-clock budget or
  /// cancellation token (set on the partial stats of a failed solve).
  bool budget_exhausted = false;
};

/// Output of a solver: the strategy S plus its objectives and stats.
struct SolveResult {
  Assignment assignment;
  ObjectiveValue objectives;
  SolveStats stats;
};

/// One solve call: the instance, its candidate graph, and the admission
/// controls. Solvers poll the budget/token cooperatively and fail with
/// kDeadlineExceeded / kCancelled instead of overrunning.
struct SolveRequest {
  const Instance* instance = nullptr;
  const CandidateGraph* graph = nullptr;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double budget_seconds = 0.0;
  /// Optional cooperative cancellation token (unowned).
  const util::CancelToken* cancel = nullptr;
  /// Advanced: share a caller-owned deadline instead of deriving one from
  /// `budget_seconds`/`cancel` (used by solvers that delegate to embedded
  /// sub-solvers). When set it overrides both fields above.
  const util::Deadline* deadline = nullptr;
  /// When non-null, receives the counters accumulated up to the point a
  /// solve failed (budget_exhausted set on kDeadlineExceeded/kCancelled).
  SolveStats* partial_stats = nullptr;
  /// Optional executor (unowned) the solver may shard independent work
  /// over (D&C leaves, sampling batches); nullptr = serial. Solvers that
  /// use it are bit-identical to their serial runs for a fixed seed.
  util::Executor* executor = nullptr;
};

/// Common interface of GREEDY, SAMPLING, D&C, G-TRUTH and EXACT.
///
/// Construct solvers through core::SolverRegistry (or the rdbsc::Engine
/// facade) rather than naming concrete types; only a solver's own unit
/// test should instantiate it directly.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Display name used by benches and examples ("GREEDY", ...).
  virtual std::string_view name() const = 0;

  /// Computes an assignment for the request's instance, whose valid pairs
  /// are the request's graph. Deterministic for a fixed options.seed.
  /// Fails with kInvalidArgument on a malformed request (or, for EXACT, an
  /// over-cap population) and kDeadlineExceeded/kCancelled when the budget
  /// or token trips mid-solve (partial stats via request.partial_stats).
  util::StatusOr<SolveResult> Solve(const SolveRequest& request);

  /// Convenience overload: no budget, no cancellation.
  util::StatusOr<SolveResult> Solve(const Instance& instance,
                                    const CandidateGraph& graph);

 protected:
  /// Implementation hook. `deadline` is prebuilt from the request;
  /// implementations poll it at their natural iteration granularity and
  /// bail out via BudgetError() once it is exhausted. `executor` resolves
  /// the request's executor (SerialExec() when none was supplied);
  /// implementations without parallel structure simply ignore it.
  virtual util::StatusOr<SolveResult> SolveImpl(
      const Instance& instance, const CandidateGraph& graph,
      const util::Deadline& deadline, util::Executor& executor,
      SolveStats* partial_stats) = 0;

  /// Standard failure path for an exhausted deadline: flags and publishes
  /// the partial `stats` (when the caller asked for them) and returns the
  /// deadline's non-OK status.
  static util::Status BudgetError(const util::Deadline& deadline,
                                  SolveStats stats,
                                  SolveStats* partial_stats);
};

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_SOLVER_H_
