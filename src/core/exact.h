#ifndef RDBSC_CORE_EXACT_H_
#define RDBSC_CORE_EXACT_H_

#include <cstdint>
#include <vector>

#include "core/solver.h"
#include "util/status.h"

namespace rdbsc::core {

/// Exhaustive enumeration over the assignment population of Section 5.1
/// (every worker with candidates picks one of its valid tasks; N = prod
/// deg(w_j) assignments). RDB-SC is NP-hard, so this is only usable on
/// tiny instances -- it exists as the *true* optimum oracle the paper
/// approximates with G-TRUTH, and as the reference for approximation-
/// quality tests.
class ExactSolver : public Solver {
 public:
  /// `max_enumeration` caps the population size this solver will walk.
  explicit ExactSolver(SolverOptions options = {},
                       int64_t max_enumeration = 2'000'000)
      : options_(options), max_enumeration_(max_enumeration) {}

  std::string_view name() const override { return "EXACT"; }

  /// Population size, or -1 when it exceeds the cap.
  static int64_t Population(const CandidateGraph& graph, int64_t cap);

 protected:
  /// Returns the assignment selected by the paper's dominance-score rule
  /// over the ENTIRE population. A population above the enumeration cap is
  /// reported as kInvalidArgument (never walked), so over-cap requests are
  /// a recoverable admission error rather than undefined behavior.
  util::StatusOr<SolveResult> SolveImpl(const Instance& instance,
                                        const CandidateGraph& graph,
                                        const util::Deadline& deadline,
                                        util::Executor& executor,
                                        SolveStats* partial_stats) override;

 private:
  SolverOptions options_;
  int64_t max_enumeration_;
};

/// All Pareto-optimal assignments (no enumerated assignment dominates
/// them), deduplicated by objective value. Fails with kFailedPrecondition
/// when the population exceeds `max_enumeration`.
util::StatusOr<std::vector<Assignment>> EnumerateParetoFront(
    const Instance& instance, const CandidateGraph& graph,
    int64_t max_enumeration = 2'000'000);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_EXACT_H_
