#ifndef RDBSC_CORE_KERNELS_H_
#define RDBSC_CORE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/diversity.h"
#include "core/model.h"
#include "util/arena.h"
#include "util/deadline.h"

namespace rdbsc::core {

class Instance;

/// Batched geometry kernels for the O(m*n) pair-validation hot path
/// (CandidateGraph::Build and GridIndex retrieval; Figs. 16/17).
///
/// Exact-equality contract: every entry point in this header produces the
/// SAME edge set as looping the scalar IsValidPair oracle over the same
/// pairs, bit for bit, on every ISA and at every thread count. The
/// vectorized classification never decides a pair on its own terms: it
/// partitions each worker row into certain-accept / certain-reject /
/// uncertain using margin-padded predicates whose margins provably
/// dominate the floating-point error of both formulations, and hands the
/// (empirically ~0%) uncertain remainder to IsValidPair. The scalar path
/// therefore remains the reference implementation and test oracle.
///
/// The margins (see kernels.cc):
///   - distance-vs-slack: squared comparison d2 <> (slack*v)^2 with a
///     1e-9 relative band plus an absolute guard scaled to the operand
///     magnitudes, so the band survives cancellation when |end| ~ |depart|
///     dwarfs the slack;
///   - direction: the cone half-angle is widened/narrowed by 1e-6 rad
///     (three orders above Contains' 1e-9 tolerance and seven above the
///     cos-space rounding error), turned into signed-square cosine
///     thresholds so the test is a dot product, not atan2;
///   - degenerate operands (coincident points, non-finite fields,
///     non-positive velocity, huge coordinates) are never classified --
///     they fall through to the oracle wholesale.

/// Struct-of-arrays view of a task set: the four columns the validity
/// predicates read, plus index-aligned copies of the original tasks so the
/// uncertain band can be rechecked exactly.
struct TaskBlock {
  std::vector<double> x, y, start, end;
  std::vector<TaskId> id;       ///< external ids, block order
  std::vector<Task> oracle;     ///< aligned originals for the exact recheck
  std::vector<int32_t> suspect; ///< block indices with non-finite fields

  void Reserve(size_t n);
  void Add(TaskId task_id, const Task& t);
  size_t size() const { return x.size(); }
};

/// Per-worker constants of the branch-free predicates, precomputed once
/// per (worker, retrieval pass): departure time, and the cone encoded as a
/// unit mid-direction plus signed-square cosine thresholds of the widened
/// (reject) and narrowed (accept) half-angles.
struct WorkerGeom {
  double wx = 0.0, wy = 0.0;
  double depart = 0.0;       ///< max(now, available_from)
  double velocity = 0.0;
  double abs_depart1 = 1.0;  ///< |depart| + 1, scales the time guards
  double ux = 1.0, uy = 0.0; ///< unit vector of the cone mid direction
  double cin_ss = 1.0;       ///< cos(half - eps) * |cos(half - eps)|
  double cout_ss = -1.0;     ///< cos(half + eps) * |cos(half + eps)|
  bool full_circle = true;
  bool scalar_only = false;  ///< degenerate worker: whole row to the oracle
};

/// Precomputes the kernel constants for one worker at clock `now`.
WorkerGeom PrecomputeWorker(const Worker& w, double now);

/// Per-pair verdict of the classification pass.
enum PairClass : uint8_t {
  kPairReject = 0,
  kPairAccept = 1,
  kPairUncertain = 2,
};

/// Classifies every task of `block` against one (non-scalar_only) worker,
/// writing one PairClass per task to `cls` (length block.size()). Every
/// kPairAccept/kPairReject verdict agrees with IsValidPair; kPairUncertain
/// makes no claim. Exposed for the property tests; ValidPairsRow is the
/// end-to-end entry point.
void ClassifyRow(const WorkerGeom& g, ArrivalPolicy policy,
                 const TaskBlock& block, uint8_t* cls);

/// Appends to `out` the ids (block order) of the tasks of `block` forming
/// a valid pair with `w` -- exactly the ids a scalar IsValidPair loop
/// would emit. `cls_scratch` must hold block.size() bytes. Returns the
/// number of ids appended.
size_t ValidPairsRow(const WorkerGeom& g, const Worker& w, double now,
                     ArrivalPolicy policy, const TaskBlock& block,
                     uint8_t* cls_scratch, std::vector<TaskId>* out);

/// Columnar companion of an Instance: the task block plus per-worker
/// geometry and oracle copies. Built once per instance and cached on it
/// (Instance::soa()); immutable afterwards, so solver shards share it
/// freely.
class InstanceSoA {
 public:
  static InstanceSoA Build(const Instance& instance);

  const TaskBlock& task_block() const { return tasks_; }
  const std::vector<WorkerGeom>& worker_geoms() const { return geoms_; }
  const Worker& oracle_worker(WorkerId j) const {
    return workers_[static_cast<size_t>(j)];
  }
  double now() const { return now_; }
  ArrivalPolicy policy() const { return policy_; }
  int num_workers() const { return static_cast<int>(geoms_.size()); }

 private:
  TaskBlock tasks_;
  std::vector<WorkerGeom> geoms_;
  std::vector<Worker> workers_;
  double now_ = 0.0;
  ArrivalPolicy policy_ = ArrivalPolicy::kStrict;
};

/// One assembled edge row: a pointer into an Arena plus its length.
struct EdgeRow {
  const TaskId* data = nullptr;
  int32_t count = 0;
};

/// Row driver used by the CandidateGraph::Build shards: computes the valid
/// task ids of workers [begin, end) of `soa`, parking each row in `arena`
/// as an exact-size span recorded in rows[j]. `deadline` is polled between
/// row blocks (every kKernelRowsPerPoll rows); returns false when it
/// trips, leaving the remaining rows untouched.
bool ValidPairsRows(const InstanceSoA& soa, int64_t begin, int64_t end,
                    const util::Deadline& deadline, util::Arena* arena,
                    EdgeRow* rows);

/// Rows between deadline polls in ValidPairsRows; each row is O(m).
inline constexpr int kKernelRowsPerPoll = 32;

/// Verdict of one (task, worker) pair at clock `now` plus a conservative
/// stability horizon: the verdict is guaranteed unchanged for every later
/// clock now' with max(now', w.available_from) <= stable_until. Clocks are
/// non-decreasing everywhere in the library (GridIndex::set_now asserts
/// it), which makes the horizon sound:
///   - the oracle's arrival fl(max(now, af) + travel) is monotone
///     non-decreasing in now (fl is monotone), so a too-late pair stays
///     invalid forever (stable_until = +inf), as does a direction-rejected
///     or unreachable (velocity <= 0 / non-finite travel) pair;
///   - a currently-valid pair stays valid while the departure time is at
///     least a guard band below end - travel;
///   - a kStrict too-early pair stays invalid while the departure is a
///     guard band below start - travel (it may become valid after).
/// The guard band kWindowEps * (|bound| + travel + 1) dominates the
/// rounding of both the window computation and the oracle's own sum, so a
/// pair inside the guard band simply reports stable_until = now (recompute
/// next round) -- conservative, never wrong. The delta-maintained rows of
/// index::DeltaGraph recompute with the scalar IsValidPair oracle whenever
/// the horizon expires, so the maintained edge set is bit-identical to a
/// rebuild regardless of how tight the windows are.
struct PairWindow {
  bool valid = false;
  double stable_until = 0.0;
};

/// Classifies the pair and derives its stability horizon (see PairWindow).
/// `valid` agrees exactly with IsValidPair(t, w, now, policy).
PairWindow ClassifyPairWindow(const Task& t, const Worker& w, double now,
                              ArrivalPolicy policy);

/// Batched observation row: appends MakeObservation(block.oracle[k], w,
/// now, policy) for every task of `block`, in block order -- bit-identical
/// elementwise to the scalar calls (the loop IS the scalar sequence; no
/// reassociation, so FP contraction cannot diverge). AssignmentState
/// caches these rows so solvers stop recomputing arrival times and
/// approach angles per Preview/Add call.
void ObservationRow(const Worker& w, double now, ArrivalPolicy policy,
                    const TaskBlock& block, std::vector<Observation>* out);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_KERNELS_H_
