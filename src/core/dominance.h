#ifndef RDBSC_CORE_DOMINANCE_H_
#define RDBSC_CORE_DOMINANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdbsc::core {

/// A point in the bi-objective plane the RDB-SC algorithms rank in:
/// x = reliability-type gain, y = diversity-type gain. Larger is better on
/// both axes.
struct BiPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Skyline dominance (the operator of Borzsonyi et al., reference [13] of
/// the paper): `a` dominates `b` when it is no worse on both axes and
/// strictly better on at least one.
inline bool DominatesPoint(const BiPoint& a, const BiPoint& b) {
  return a.x >= b.x && a.y >= b.y && (a.x > b.x || a.y > b.y);
}

/// Indices of the non-dominated points (the skyline), in input order.
/// O(n log n): sweep after sorting by (x desc, y desc). Ties on both axes
/// are all kept (none dominates another).
std::vector<std::size_t> SkylineIndices(const std::vector<BiPoint>& points);

/// Dominance score of selected points: for each index in `candidates`,
/// the number of `points` it dominates (the top-k dominating ranking of
/// Yiu & Mamoulis, reference [22]). O(|candidates| * |points|).
std::vector<int64_t> DominanceScores(const std::vector<BiPoint>& points,
                                     const std::vector<std::size_t>& candidates);

/// The paper's selection rule used by GREEDY (Fig 3 lines 6-8), SAMPLING
/// (Fig 5 lines 8-9) and SA_Merge: take the skyline, rank its members by
/// how many points they dominate, and return the index of the winner.
/// Ties break towards larger y, then larger x, then the smaller index,
/// so the choice is deterministic. Returns SIZE_MAX for empty input.
std::size_t TopDominating(const std::vector<BiPoint>& points);

}  // namespace rdbsc::core

#endif  // RDBSC_CORE_DOMINANCE_H_
