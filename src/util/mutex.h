#ifndef RDBSC_UTIL_MUTEX_H_
#define RDBSC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace rdbsc::util {

/// Annotatable exclusive mutex: a thin wrapper over std::mutex that
/// carries the Clang thread-safety CAPABILITY attribute, so members can
/// be declared GUARDED_BY(mu_) and helpers REQUIRES(mu_). Use MutexLock
/// for scoped critical sections; Lock/Unlock exist for the rare flow a
/// scope cannot express.
///
/// Every mutex member in this codebase is a util::Mutex (never a naked
/// std::mutex -- libstdc++'s mutex carries no annotations, so the
/// analysis cannot see through it); enforced by tools/lint_invariants.py.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped critical section over a Mutex (RAII, like std::lock_guard but
/// visible to the analysis). CondVar::Wait* take it by reference so a
/// wait can release and reacquire the underlying mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotatable reader/writer mutex over std::shared_mutex.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive section over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (read-only) section over a SharedMutex. GUARDED_BY
/// members may be read but not written while one is live.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex/MutexLock. Waits are written as
/// explicit loops in the caller --
///
///   util::MutexLock lock(mu_);
///   while (!predicate_over_guarded_state) cv_.Wait(lock);
///
/// -- never with a predicate lambda: the loop condition is then evaluated
/// in a scope where the analysis knows the capability is held, whereas a
/// lambda body is a separate function it cannot see into.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; the mutex is held
  /// again when Wait returns (spurious wakeups possible -- loop).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Wait bounded by an absolute steady-clock time; false on timeout.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_MUTEX_H_
