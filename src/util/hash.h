#ifndef RDBSC_UTIL_HASH_H_
#define RDBSC_UTIL_HASH_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace rdbsc::util {

/// A 128-bit content hash. Used as the identity of cacheable work
/// (instances, graphs, solve results): equal inputs hash equal by
/// construction, and at 128 bits accidental collisions are treated as
/// impossible (no entry verification on lookup).
struct Hash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }

  /// 32 lowercase hex digits, hi half first.
  std::string ToHex() const;
};

/// Functor for unordered containers keyed by Hash128. The key is already
/// uniformly distributed, so folding the halves is enough.
struct Hash128Hasher {
  size_t operator()(const Hash128& h) const {
    return static_cast<size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ull));
  }
};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer that is
/// fully specified (no platform dependence), so hashes are stable across
/// machines and builds.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Folds `value` into `seed` (boost-style, with the SplitMix64 mixer).
/// The single combining primitive every fingerprint in the library is
/// built from; order-sensitive by design.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (SplitMix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) +
                 (seed >> 2));
}

/// Streaming 128-bit hasher: two independent HashCombine lanes fed the
/// same value stream with different tweaks. Mix in every field that can
/// influence the result being fingerprinted, in a fixed documented order;
/// doubles are hashed by bit pattern so -0.0 / 0.0 and NaN payloads are
/// distinct (bit-identity is the contract, not numeric equality).
class Hasher {
 public:
  Hasher& Mix(uint64_t value) {
    a_ = HashCombine(a_, value);
    b_ = HashCombine(b_, ~value);
    return *this;
  }
  Hasher& Mix(int64_t value) { return Mix(static_cast<uint64_t>(value)); }
  Hasher& Mix(int value) {
    return Mix(static_cast<uint64_t>(static_cast<int64_t>(value)));
  }
  Hasher& Mix(bool value) { return Mix(static_cast<uint64_t>(value)); }
  Hasher& Mix(double value) { return Mix(std::bit_cast<uint64_t>(value)); }
  Hasher& Mix(std::string_view value) {
    Mix(static_cast<uint64_t>(value.size()));
    size_t i = 0;
    for (; i + 8 <= value.size(); i += 8) {
      uint64_t chunk = 0;
      std::memcpy(&chunk, value.data() + i, 8);
      Mix(chunk);
    }
    if (i < value.size()) {
      uint64_t tail = 0;
      std::memcpy(&tail, value.data() + i, value.size() - i);
      Mix(tail);
    }
    return *this;
  }

  Hash128 Digest() const {
    // Cross the lanes so each output half depends on the whole stream.
    return Hash128{HashCombine(a_, b_), HashCombine(b_, a_)};
  }

 private:
  // Arbitrary distinct non-zero lane seeds (binary digits of pi).
  uint64_t a_ = 0x243f6a8885a308d3ull;
  uint64_t b_ = 0x13198a2e03707344ull;
};

inline std::string Hash128::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_HASH_H_
