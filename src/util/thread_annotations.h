#ifndef RDBSC_UTIL_THREAD_ANNOTATIONS_H_
#define RDBSC_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis annotations (Abseil-style macro names).
///
/// These macros attach compile-time lock-discipline contracts to mutexes,
/// the data they protect, and the functions that acquire/release them.
/// Under `clang++ -Wthread-safety` every violation -- reading a
/// GUARDED_BY member without its mutex, returning with a lock held,
/// double-locking -- is a compiler warning (an error in the CI
/// static-analysis job, which builds with -Werror). On compilers without
/// the attribute (GCC, MSVC) every macro expands to nothing, so the
/// annotations are zero-cost documentation there.
///
/// Conventions in this codebase (see README "Static analysis"):
///   - mutex-protected members are declared with GUARDED_BY(mu_) and the
///     mutex is a util::Mutex (util/mutex.h), never a naked std::mutex
///     (enforced by tools/lint_invariants.py rule `unguarded-mutex`);
///   - private helpers that expect the caller to hold a lock are named
///     `...Locked` and annotated REQUIRES(mu_);
///   - condition waits are written as explicit `while (!pred) cv.Wait(..)`
///     loops so the predicate is evaluated in a scope the analysis can
///     see the capability in.

#if defined(__clang__) && (!defined(SWIG))
#define RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define CAPABILITY(x) RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated member may only be accessed while holding capability `x`.
#define GUARDED_BY(x) RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data *pointed to* by the annotated pointer is guarded by `x`.
#define PT_GUARDED_BY(x) RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Capability `a` must be acquired before capability `b` (deadlock order).
#define ACQUIRED_BEFORE(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the listed capabilities
/// exclusively (REQUIRES) or at least shared (REQUIRES_SHARED).
#define REQUIRES(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release them.
#define ACQUIRE(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define RELEASE(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// The function tries to acquire the capability; the first argument is the
/// return value that means success.
#define TRY_ACQUIRE(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...)                   \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(            \
      try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (it acquires them itself; calling with them held would deadlock).
#define EXCLUDES(...) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define ASSERT_CAPABILITY(x) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// The function returns a reference to the capability named by its body.
#define RETURN_CAPABILITY(x) \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the flow is correct but inexpressible.
#define NO_THREAD_SAFETY_ANALYSIS \
  RDBSC_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RDBSC_UTIL_THREAD_ANNOTATIONS_H_
