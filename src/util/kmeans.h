#ifndef RDBSC_UTIL_KMEANS_H_
#define RDBSC_UTIL_KMEANS_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace rdbsc::util {

/// One 2-D point for clustering. Kept separate from geo::Point so the util
/// layer stays dependency-free.
struct KmPoint {
  double x = 0.0;
  double y = 0.0;
};

/// Result of a 2-means run: per-point cluster labels (0 or 1) and the two
/// centroids.
struct TwoMeansResult {
  std::vector<int> label;
  KmPoint centroid[2];
};

/// Lloyd's algorithm with k = 2, used by BG_Partition (Fig. 7 of the paper)
/// to split the task set "into two almost even subsets based on their
/// locations".
///
/// Deterministic given `rng`; runs at most `max_iters` Lloyd iterations.
/// With fewer than two points, all labels are 0.
TwoMeansResult TwoMeans(const std::vector<KmPoint>& points, Rng& rng,
                        int max_iters = 50);

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_KMEANS_H_
