#ifndef RDBSC_UTIL_DEADLINE_H_
#define RDBSC_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>

#include "util/status.h"

namespace rdbsc::util {

/// Seconds elapsed since `t0` on the steady clock — the one wall-clock
/// measurement every timing field in the library (plan build times,
/// server latencies) is derived from.
inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// Cooperative cancellation flag shared between a caller and a running
/// solve. The caller sets it (possibly from another thread); the running
/// operation polls it at its natural iteration granularity.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A wall-clock budget plus an optional cancellation token. Cheap to copy
/// and to poll; long-running operations call Exhausted() (or Check()) at
/// loop granularity and bail out with the returned status.
class Deadline {
 public:
  /// Unlimited: never exhausted.
  Deadline() = default;

  /// Expires `budget_seconds` of wall-clock time from now; a budget <= 0
  /// means unlimited. `cancel` and `cancel2` (optional, unowned) each trip
  /// the deadline the moment they are cancelled, whatever the remaining
  /// budget -- two slots so a caller can combine an operation-wide token
  /// with a per-request one (engine::Server: server shutdown + per-ticket
  /// cancellation) without allocating a combined token.
  explicit Deadline(double budget_seconds,
                    const CancelToken* cancel = nullptr,
                    const CancelToken* cancel2 = nullptr)
      : cancel_(cancel), cancel2_(cancel2) {
    if (budget_seconds > 0.0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(budget_seconds));
    }
  }

  /// True when there is neither a time budget nor a token to poll.
  bool unlimited() const {
    return !has_deadline_ && cancel_ == nullptr && cancel2_ == nullptr;
  }

  /// True once the budget has elapsed or a token was cancelled.
  bool Exhausted() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    if (cancel2_ != nullptr && cancel2_->cancelled()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// OK while running is allowed; kCancelled / kDeadlineExceeded once not.
  Status Check() const {
    if ((cancel_ != nullptr && cancel_->cancelled()) ||
        (cancel2_ != nullptr && cancel2_->cancelled())) {
      return Status::Cancelled("solve cancelled by caller");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("wall-clock budget exhausted");
    }
    return Status::OK();
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* cancel_ = nullptr;
  const CancelToken* cancel2_ = nullptr;
};

/// Maps an interruption observed by a sharded loop back to the deadline's
/// status: kCancelled / kDeadlineExceeded from the deadline itself, or a
/// kDeadlineExceeded carrying `what` should a racy re-read come back OK
/// (time is monotone and tokens never un-cancel, but the shard's poll and
/// this read are distinct).
inline Status InterruptedStatus(const Deadline& deadline, const char* what) {
  Status status = deadline.Check();
  return status.ok() ? Status::DeadlineExceeded(what) : status;
}

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_DEADLINE_H_
