#ifndef RDBSC_UTIL_RNG_H_
#define RDBSC_UTIL_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>

namespace rdbsc::util {

/// Deterministic pseudo-random source used everywhere in the library so that
/// every experiment is reproducible from a single seed.
///
/// Wraps std::mt19937_64 with the distributions the RDB-SC workloads need.
class Rng {
 public:
  /// Seeds the generator. The same seed yields the same stream on every
  /// platform we target (mt19937_64 is fully specified by the standard).
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Gaussian clamped (by re-drawing, then clamping as a last resort) to
  /// [lo, hi]; used by the paper's confidence model "Gaussian within
  /// [p_min, p_max]".
  double TruncatedGaussian(double mean, double stddev, double lo, double hi) {
    assert(lo <= hi);
    for (int attempt = 0; attempt < 16; ++attempt) {
      double x = Gaussian(mean, stddev);
      if (x >= lo && x <= hi) return x;
    }
    double x = Gaussian(mean, stddev);
    return x < lo ? lo : (x > hi ? hi : x);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child stream; used to give each subsystem its
  /// own generator without correlated draws.
  Rng Fork() { return Rng(engine_()); }

  /// Access to the raw engine for std::shuffle and friends.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_RNG_H_
