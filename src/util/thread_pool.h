#ifndef RDBSC_UTIL_THREAD_POOL_H_
#define RDBSC_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/executor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdbsc::util {

/// A fixed-size worker pool. Two entry points:
///
///   - Submit(f): enqueue an arbitrary callable, get a std::future for its
///     result (used by Engine::RunBatch to schedule whole instances).
///   - ShardedFor / ParallelFor (the Executor interface): fork-join over an
///     index range (used by graph construction and the solvers).
///
/// ShardedFor lets the calling thread claim shards too, so a pool of N
/// threads reaches N+1-way parallelism at full load and -- crucially --
/// never deadlocks when a pooled task itself calls ShardedFor: even with
/// every worker busy, the caller drains its own shards to completion.
class ThreadPool final : public Executor {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Blocks: already-queued tasks run to completion, then workers join.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Executor::width: ShardedFor shard count. One shard per worker plus
  /// one for the participating caller.
  int width() const override { return num_threads() + 1; }

  /// Enqueues `f` for execution on some worker and returns a future for
  /// its result.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  void ShardedFor(int64_t n, const ShardBody& body) override;

 private:
  void Enqueue(std::function<void()> task) EXCLUDES(mu_);
  void WorkerLoop() EXCLUDES(mu_);

  /// Workers are started in the constructor and joined in the destructor;
  /// the vector itself is never touched in between, so it needs no guard.
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar cv_;  ///< signalled on enqueue and on stop
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_THREAD_POOL_H_
