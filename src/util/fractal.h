#ifndef RDBSC_UTIL_FRACTAL_H_
#define RDBSC_UTIL_FRACTAL_H_

#include <vector>

#include "util/kmeans.h"

namespace rdbsc::util {

/// Estimates the correlation fractal dimension D2 of a 2-D point set by
/// box counting, following the power-law model of Belussi & Faloutsos
/// (reference [12] of the paper) used by the grid cost model (Appendix I).
///
/// The estimator computes S2(eta) = sum over occupied boxes of (count/N)^2
/// at a geometric ladder of box sides and fits the slope of
/// log S2 vs log eta by least squares. For uniform data the slope is ~2,
/// for a point mass it approaches 0.
///
/// Points are expected to lie (mostly) inside [0,1]^2; outliers are clamped.
/// Returns 2.0 for degenerate inputs (fewer than 8 points), clamped to
/// [0.5, 2.0] which is the meaningful range for the cost model.
double EstimateCorrelationDimension(const std::vector<KmPoint>& points);

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_FRACTAL_H_
