#include "util/fractal.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace rdbsc::util {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Sum of squared occupancy fractions for boxes of side 1/grid.
double SumSquaredOccupancy(const std::vector<KmPoint>& points, int grid) {
  std::unordered_map<int64_t, int64_t> counts;
  counts.reserve(points.size());
  for (const KmPoint& p : points) {
    int64_t cx = static_cast<int64_t>(Clamp01(p.x) * grid);
    int64_t cy = static_cast<int64_t>(Clamp01(p.y) * grid);
    cx = std::min<int64_t>(cx, grid - 1);
    cy = std::min<int64_t>(cy, grid - 1);
    ++counts[cx * grid + cy];
  }
  const double n = static_cast<double>(points.size());
  double s2 = 0.0;
  for (const auto& [cell, c] : counts) {
    double frac = static_cast<double>(c) / n;
    s2 += frac * frac;
  }
  return s2;
}

}  // namespace

double EstimateCorrelationDimension(const std::vector<KmPoint>& points) {
  if (points.size() < 8) return 2.0;

  // Geometric ladder of grid resolutions: eta = 1/2, 1/4, ..., 1/64.
  std::vector<double> log_eta;
  std::vector<double> log_s2;
  for (int grid = 2; grid <= 64; grid *= 2) {
    double s2 = SumSquaredOccupancy(points, grid);
    if (s2 <= 0.0) break;
    log_eta.push_back(std::log(1.0 / grid));
    log_s2.push_back(std::log(s2));
  }
  if (log_eta.size() < 2) return 2.0;

  // Least-squares slope of log S2 against log eta; S2(eta) ~ eta^D2.
  double n = static_cast<double>(log_eta.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < log_eta.size(); ++i) {
    sx += log_eta[i];
    sy += log_s2[i];
    sxx += log_eta[i] * log_eta[i];
    sxy += log_eta[i] * log_s2[i];
  }
  double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return 2.0;
  double slope = (n * sxy - sx * sy) / denom;
  return std::min(2.0, std::max(0.5, slope));
}

}  // namespace rdbsc::util
