#ifndef RDBSC_UTIL_CONFIG_H_
#define RDBSC_UTIL_CONFIG_H_

// rdbsc is C++20 code: std::numbers (geo/angle.h, gen/workload.h,
// sim/platform.cc, index/cost_model.cc), designated initializers, etc.
// Compiling with an older -std= otherwise dies in a page of template
// errors far from the cause; fail here with the actual reason instead.
#if !defined(_MSC_VER) && __cplusplus < 202002L
#error "rdbsc requires C++20 (std::numbers); compile with -std=c++20 or newer"
#elif defined(_MSC_VER) && (!defined(_MSVC_LANG) || _MSVC_LANG < 202002L)
#error "rdbsc requires C++20 (std::numbers); compile with /std:c++20 or newer"
#endif

#endif  // RDBSC_UTIL_CONFIG_H_
