#include "util/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdbsc::util {
namespace {

double Sq(double v) { return v * v; }

double Dist2(const KmPoint& a, const KmPoint& b) {
  return Sq(a.x - b.x) + Sq(a.y - b.y);
}

}  // namespace

TwoMeansResult TwoMeans(const std::vector<KmPoint>& points, Rng& rng,
                        int max_iters) {
  TwoMeansResult result;
  result.label.assign(points.size(), 0);
  if (points.empty()) return result;
  if (points.size() == 1) {
    result.centroid[0] = result.centroid[1] = points[0];
    return result;
  }

  // Seed centroid 0 uniformly; seed centroid 1 with the point farthest from
  // it (a deterministic k-means++-style spread that avoids empty clusters).
  size_t first = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1));
  result.centroid[0] = points[first];
  size_t second = first;
  double best = -1.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double d = Dist2(points[i], result.centroid[0]);
    if (d > best) {
      best = d;
      second = i;
    }
  }
  result.centroid[1] = points[second];

  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      int nearest =
          Dist2(points[i], result.centroid[0]) <= Dist2(points[i],
                                                        result.centroid[1])
              ? 0
              : 1;
      if (nearest != result.label[i]) {
        result.label[i] = nearest;
        changed = true;
      }
    }
    KmPoint sum[2] = {{0, 0}, {0, 0}};
    size_t count[2] = {0, 0};
    for (size_t i = 0; i < points.size(); ++i) {
      sum[result.label[i]].x += points[i].x;
      sum[result.label[i]].y += points[i].y;
      ++count[result.label[i]];
    }
    for (int c = 0; c < 2; ++c) {
      if (count[c] > 0) {
        result.centroid[c].x = sum[c].x / static_cast<double>(count[c]);
        result.centroid[c].y = sum[c].y / static_cast<double>(count[c]);
      }
    }
    // An empty cluster can only happen with duplicate points; reseed it with
    // the point farthest from the non-empty centroid.
    for (int c = 0; c < 2; ++c) {
      if (count[c] == 0) {
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          double d = Dist2(points[i], result.centroid[1 - c]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroid[c] = points[far];
        changed = true;
      }
    }
    if (!changed) break;
  }
  return result;
}

}  // namespace rdbsc::util
