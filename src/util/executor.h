#ifndef RDBSC_UTIL_EXECUTOR_H_
#define RDBSC_UTIL_EXECUTOR_H_

#include <cstdint>
#include <functional>

namespace rdbsc::util {

/// The seam between algorithms that can shard work over index ranges and
/// the machinery that runs the shards. Algorithms are written against this
/// interface; callers pass a ThreadPool to parallelize or nothing at all
/// to stay on the zero-thread serial default.
///
/// Determinism contract: ShardedFor partitions [0, n) into contiguous
/// shards whose count and boundaries depend only on `n` and width() --
/// never on timing -- so per-shard outputs can be merged in shard order
/// and reproduce the serial result bit for bit. Shard *bodies* may run
/// concurrently and in any order; they must not share mutable state other
/// than what the caller explicitly partitions by shard or index.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Maximum number of shards ShardedFor will create (>= 1).
  virtual int width() const = 0;

  /// Invoked once per shard with (shard, begin, end); [begin, end) ranges
  /// partition [0, n).
  using ShardBody = std::function<void(int shard, int64_t begin, int64_t end)>;

  /// Runs `body` over a partition of [0, n) into min(n, width()) shards
  /// and blocks until every shard has finished. Safe to call from inside
  /// a shard body (implementations must not deadlock under nesting).
  virtual void ShardedFor(int64_t n, const ShardBody& body) = 0;

  /// Per-index convenience over ShardedFor: fn(i) for every i in [0, n).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
    ShardedFor(n, [&fn](int, int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
};

/// The zero-thread default: one shard, run inline on the calling thread.
class SerialExecutor final : public Executor {
 public:
  int width() const override { return 1; }

  void ShardedFor(int64_t n, const ShardBody& body) override {
    if (n > 0) body(0, 0, n);
  }
};

/// A process-wide stateless serial executor, for resolving "no executor".
inline Executor& SerialExec() {
  static SerialExecutor serial;
  return serial;
}

/// Null-tolerant resolution used at API boundaries where the executor is
/// an optional pointer: nullptr means the serial default.
inline Executor& OrSerial(Executor* executor) {
  return executor == nullptr ? SerialExec() : *executor;
}

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_EXECUTOR_H_
