#ifndef RDBSC_UTIL_STATUS_H_
#define RDBSC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace rdbsc::util {

/// Error categories for fallible operations. The library does not use C++
/// exceptions; functions that can fail return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// A lightweight success-or-error value, in the style of RocksDB's Status.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// Human-readable error message; empty when ok().
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>" for logging.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: holds T on success, a non-OK Status on failure.
/// Accessing value() on a failed StatusOr is a programming error (asserts).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_STATUS_H_
