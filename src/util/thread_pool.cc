#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/mutex.h"

namespace rdbsc::util {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ShardedFor(int64_t n, const ShardBody& body) {
  if (n <= 0) return;
  const int shards = static_cast<int>(std::min<int64_t>(n, width()));
  if (shards == 1) {
    body(0, 0, n);
    return;
  }

  // Shared claim state. Helpers and the caller race to claim shard
  // indices; whoever claims one runs it. The state outlives this call via
  // shared_ptr because a helper may wake up after every shard is done --
  // it then claims an out-of-range index and exits without touching
  // `body` (which is only guaranteed alive while done < shards).
  struct State {
    const ShardBody* body;
    int64_t n;
    int shards;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    // Pure completion rendezvous: the counters above are atomic and the
    // mutex only serializes the final notify against the caller's wait.
    // LINT-ALLOW(unguarded-mutex): cv rendezvous only; no guarded state
    Mutex mu;
    CondVar cv;
  };
  auto state = std::make_shared<State>();
  state->body = &body;
  state->n = n;
  state->shards = shards;

  auto drain = [state] {
    for (;;) {
      const int s = state->next.fetch_add(1, std::memory_order_relaxed);
      if (s >= state->shards) return;
      const int64_t begin = state->n * s / state->shards;
      const int64_t end = state->n * (s + 1) / state->shards;
      (*state->body)(s, begin, end);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->shards) {
        MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
  };

  // One helper per shard the caller will not necessarily reach itself. If
  // the pool is saturated (e.g. nested ShardedFor from a pooled task) the
  // helpers never run in time and the caller simply drains every shard.
  for (int h = 0; h < shards - 1; ++h) Enqueue(drain);
  drain();

  MutexLock lock(state->mu);
  while (state->done.load(std::memory_order_acquire) != state->shards) {
    state->cv.Wait(lock);
  }
}

}  // namespace rdbsc::util
