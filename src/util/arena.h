#ifndef RDBSC_UTIL_ARENA_H_
#define RDBSC_UTIL_ARENA_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace rdbsc::util {

/// A monotonic chunk allocator for build-scoped scratch storage:
/// allocations are bump-pointer cheap, never individually freed, and all
/// die together with the arena. The candidate-graph assembly uses one
/// arena per shard to park exact-size edge rows, replacing the growth
/// churn of per-worker std::vector<TaskId> (repeated reallocation plus
/// copy of every partially grown row).
///
/// Not thread-safe: use one arena per shard and join before reading.
class Arena {
 public:
  explicit Arena(size_t min_chunk_bytes = size_t{1} << 16)
      : min_chunk_bytes_(min_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Uninitialized storage for `n` objects of T, aligned for T. The arena
  /// never runs destructors, so T must be trivially destructible. Returns
  /// nullptr for n == 0.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without running destructors");
    if (n == 0) return nullptr;
    const size_t bytes = n * sizeof(T);
    size_t offset = 0;
    if (!chunks_.empty()) {
      offset = (chunks_.back().used + alignof(T) - 1) & ~(alignof(T) - 1);
    }
    if (chunks_.empty() || offset + bytes > chunks_.back().size) {
      NewChunk(bytes);
      offset = 0;  // operator new storage is max_align-aligned
    }
    Chunk& chunk = chunks_.back();
    chunk.used = offset + bytes;
    return reinterpret_cast<T*>(chunk.data.get() + offset);
  }

  /// Total bytes reserved across all chunks (capacity, for stats).
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void NewChunk(size_t at_least) {
    // Geometric growth keeps the chunk count logarithmic in total bytes.
    size_t size = std::max(min_chunk_bytes_, at_least);
    if (!chunks_.empty()) size = std::max(size, chunks_.back().size * 2);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
  }

  size_t min_chunk_bytes_;
  std::vector<Chunk> chunks_;
};

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_ARENA_H_
