#ifndef RDBSC_UTIL_MATH_H_
#define RDBSC_UTIL_MATH_H_

#include <cassert>
#include <cmath>

namespace rdbsc::util {

/// Smallest probability gap kept between a worker confidence and 1.0 so that
/// -ln(1 - p) stays finite (Eq. 8 of the paper diverges at p = 1).
inline constexpr double kMaxConfidence = 1.0 - 1e-12;

/// Clamps a worker confidence into [0, kMaxConfidence].
inline double ClampConfidence(double p) {
  if (p < 0.0) return 0.0;
  if (p > kMaxConfidence) return kMaxConfidence;
  return p;
}

/// The entropy term -x * ln(x) with the standard continuous extension
/// -0*ln(0) = 0. `x` must lie in [0, 1] up to rounding error.
inline double EntropyTerm(double x) {
  assert(x >= -1e-12 && x <= 1.0 + 1e-9);
  if (x <= 0.0) return 0.0;
  return -x * std::log(x);
}

/// Thread-safe ln|Gamma(x)|. std::lgamma writes the process-global
/// `signgam`, which races once solvers shard across threads (every D&C
/// leaf computes a sample-size bound); prefer the reentrant lgamma_r
/// where the platform has it.
inline double LogGamma(double x) {
#if defined(__unix__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// ln C(n, k) via log-gamma; valid for real n >= k >= 0. Used by the
/// sampling-size bound (Section 5.2) where n can exceed any integer type.
inline double LogBinomial(double n, double k) {
  assert(n >= 0.0 && k >= 0.0 && k <= n);
  return LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0);
}

/// The reduced reliability weight of one worker, -ln(1 - p) (Eq. 8).
inline double ReliabilityWeight(double p) {
  return -std::log1p(-ClampConfidence(p));
}

/// Converts the reduced (summed-weight) reliability R back to the
/// probability form rel = 1 - exp(-R) (inverse of Eq. 8).
inline double ReducedToProbability(double reduced) {
  assert(reduced >= 0.0);
  return -std::expm1(-reduced);
}

/// True when |a - b| <= tol, for cheap float comparisons in invariants.
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

}  // namespace rdbsc::util

#endif  // RDBSC_UTIL_MATH_H_
