#include "geo/angle.h"

#include <algorithm>
#include <cmath>

namespace rdbsc::geo {
namespace {

constexpr double kAngleTolerance = 1e-9;

}  // namespace

double NormalizeAngle(double radians) {
  double a = std::fmod(radians, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod can return exactly kTwoPi after the correction when radians is a
  // tiny negative number; fold that back to 0.
  if (a >= kTwoPi) a -= kTwoPi;
  return a;
}

double CcwDelta(double from, double to) {
  return NormalizeAngle(to - from);
}

AngularInterval::AngularInterval(double lo, double hi) {
  lo_ = NormalizeAngle(lo);
  width_ = CcwDelta(lo, hi);
}

AngularInterval AngularInterval::FullCircle() {
  return AngularInterval(0.0, kTwoPi, /*tag=*/0);
}

double AngularInterval::hi() const { return NormalizeAngle(lo_ + width_); }

bool AngularInterval::Contains(double angle) const {
  if (width_ >= kTwoPi) return true;
  double delta = CcwDelta(lo_, angle);
  return delta <= width_ + kAngleTolerance ||
         delta >= kTwoPi - kAngleTolerance;
}

bool AngularInterval::Intersects(const AngularInterval& other) const {
  if (width_ >= kTwoPi || other.width_ >= kTwoPi) return true;
  return Contains(other.lo_) || Contains(other.hi()) || other.Contains(lo_) ||
         other.Contains(hi());
}

AngularInterval AngularInterval::FromWidth(double lo, double width) {
  if (width >= kTwoPi) return FullCircle();
  return AngularInterval(NormalizeAngle(lo), width, /*tag=*/0);
}

AngularInterval CoverUnion(const AngularInterval& a,
                           const AngularInterval& b) {
  if (a.width() >= kTwoPi || b.width() >= kTwoPi) {
    return AngularInterval::FullCircle();
  }
  // Either cover starts where `a` does and sweeps past `b`, or vice versa;
  // the minimal single-interval cover is the narrower of the two.
  double width_from_a =
      std::max(a.width(), CcwDelta(a.lo(), b.lo()) + b.width());
  double width_from_b =
      std::max(b.width(), CcwDelta(b.lo(), a.lo()) + a.width());
  if (width_from_a <= width_from_b) {
    return AngularInterval::FromWidth(a.lo(), width_from_a);
  }
  return AngularInterval::FromWidth(b.lo(), width_from_b);
}

}  // namespace rdbsc::geo
