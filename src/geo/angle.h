#ifndef RDBSC_GEO_ANGLE_H_
#define RDBSC_GEO_ANGLE_H_

#include <numbers>

#include "util/config.h"

namespace rdbsc::geo {

/// Full turn in radians.
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalizes any angle into [0, 2*pi).
double NormalizeAngle(double radians);

/// Counter-clockwise angular distance from `from` to `to`, in [0, 2*pi).
double CcwDelta(double from, double to);

/// A directed angular interval [lo, hi] on the circle, stored as a start
/// angle and a CCW width so that intervals crossing the 0/2*pi seam (for
/// example a worker cone [7*pi/4, pi/4]) behave uniformly.
///
/// Workers register their moving-direction cone [alpha-, alpha+] as one of
/// these (Definition 2 of the paper); width 2*pi means "free to move".
class AngularInterval {
 public:
  /// Builds the interval that sweeps CCW from `lo` to `hi`. If `lo == hi`
  /// the interval is the single direction `lo` (width 0); to express a full
  /// circle use FullCircle().
  AngularInterval(double lo, double hi);

  /// The whole circle: every direction is contained.
  static AngularInterval FullCircle();

  /// Start of the interval in [0, 2*pi).
  double lo() const { return lo_; }
  /// CCW extent in [0, 2*pi].
  double width() const { return width_; }
  /// End of the interval, normalized to [0, 2*pi).
  double hi() const;

  /// True when the direction `angle` lies inside the interval (inclusive,
  /// with a small tolerance for float noise at the boundaries).
  bool Contains(double angle) const;

  /// True when this interval and `other` share at least one direction.
  bool Intersects(const AngularInterval& other) const;

  /// Internal factory used by cover computations: an interval with an
  /// explicit width (which may be the full 2*pi).
  static AngularInterval FromWidth(double lo, double width);

 private:
  AngularInterval(double lo, double width, int /*tag*/)
      : lo_(lo), width_(width) {}

  double lo_;
  double width_;
};

/// The smallest single interval containing both `a` and `b` (their union
/// may be disconnected; the cover is a conservative superset). Used by grid
/// cells to summarize the moving-direction cones of their workers.
AngularInterval CoverUnion(const AngularInterval& a, const AngularInterval& b);

}  // namespace rdbsc::geo

#endif  // RDBSC_GEO_ANGLE_H_
