#include "geo/box.h"

#include <algorithm>
#include <cmath>

namespace rdbsc::geo {

double MinDistance(const Box& a, const Box& b) {
  // Separation per axis between the two intervals; 0 on overlap.
  double dx = std::max(0.0, std::max(a.min.x - b.max.x, b.min.x - a.max.x));
  double dy = std::max(0.0, std::max(a.min.y - b.max.y, b.min.y - a.max.y));
  return std::hypot(dx, dy);
}

double MaxDistance(const Box& a, const Box& b) {
  double dx = std::max(std::fabs(a.max.x - b.min.x),
                       std::fabs(b.max.x - a.min.x));
  double dy = std::max(std::fabs(a.max.y - b.min.y),
                       std::fabs(b.max.y - a.min.y));
  return std::hypot(dx, dy);
}

AngularInterval BearingInterval(const Box& from, const Box& to) {
  // The set of displacement vectors {q - p : p in from, q in to} is the
  // Minkowski difference, itself an axis-aligned box.
  Box diff{to.min - from.max, to.max - from.min};
  if (diff.min.x <= 0.0 && diff.max.x >= 0.0 && diff.min.y <= 0.0 &&
      diff.max.y >= 0.0) {
    // The origin is reachable: some pair of points coincide (or the boxes
    // overlap), so every bearing is possible.
    return AngularInterval::FullCircle();
  }
  // The difference box is convex and excludes the origin, so its direction
  // set is the minimal angular interval spanned by its four corners.
  const Point corners[4] = {{diff.min.x, diff.min.y},
                            {diff.min.x, diff.max.y},
                            {diff.max.x, diff.min.y},
                            {diff.max.x, diff.max.y}};
  double angles[4];
  for (int i = 0; i < 4; ++i) {
    angles[i] = Bearing({0.0, 0.0}, corners[i]);
  }
  // Choose the corner angle whose CCW sweep covers the rest most tightly.
  double best_lo = angles[0];
  double best_width = kTwoPi;
  for (int i = 0; i < 4; ++i) {
    double width = 0.0;
    for (int j = 0; j < 4; ++j) {
      width = std::max(width, CcwDelta(angles[i], angles[j]));
    }
    if (width < best_width) {
      best_width = width;
      best_lo = angles[i];
    }
  }
  return AngularInterval(best_lo, NormalizeAngle(best_lo + best_width));
}

}  // namespace rdbsc::geo
