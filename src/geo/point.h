#ifndef RDBSC_GEO_POINT_H_
#define RDBSC_GEO_POINT_H_

#include <cmath>

namespace rdbsc::geo {

/// A point (or displacement) in the normalized 2-D data space. The paper's
/// experiments use [0,1]^2 but nothing here assumes that.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

/// Euclidean distance between two points.
inline double Distance(Point a, Point b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared Euclidean distance (avoids the sqrt on hot paths).
inline double Distance2(Point a, Point b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Bearing of `to` as seen from `from`, in radians normalized to [0, 2*pi).
/// Undefined (returns 0) when the points coincide.
double Bearing(Point from, Point to);

}  // namespace rdbsc::geo

#endif  // RDBSC_GEO_POINT_H_
