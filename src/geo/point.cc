#include "geo/point.h"

#include "geo/angle.h"

namespace rdbsc::geo {

double Bearing(Point from, Point to) {
  if (from == to) return 0.0;
  return NormalizeAngle(std::atan2(to.y - from.y, to.x - from.x));
}

}  // namespace rdbsc::geo
