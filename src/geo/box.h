#ifndef RDBSC_GEO_BOX_H_
#define RDBSC_GEO_BOX_H_

#include "geo/angle.h"
#include "geo/point.h"

namespace rdbsc::geo {

/// An axis-aligned rectangle, used for grid cells in the RDB-SC-Grid index.
struct Box {
  Point min;
  Point max;

  /// True when `p` lies inside (boundaries inclusive).
  bool Contains(Point p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  Point Center() const {
    return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5};
  }
};

/// Minimum distance between any pair of points drawn from the two boxes
/// (0 when they overlap). Used by the cell-level pruning rule of Section 7.1.
double MinDistance(const Box& a, const Box& b);

/// Maximum distance between any pair of points drawn from the two boxes.
double MaxDistance(const Box& a, const Box& b);

/// The smallest angular interval guaranteed to contain the bearing from any
/// point of `from` to any point of `to`. When the boxes overlap the answer is
/// the full circle. Used to prune grid cells against a cell's direction
/// bounds without examining individual workers.
AngularInterval BearingInterval(const Box& from, const Box& to);

}  // namespace rdbsc::geo

#endif  // RDBSC_GEO_BOX_H_
