#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace rdbsc::obs {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_.push_back(',');
    }
  }
}

void JsonWriter::AppendEscaped(std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  if (!first_.empty()) first_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  if (!first_.empty()) first_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_.push_back(',');
    }
  }
  out_.push_back('"');
  AppendEscaped(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void AppendMetric(JsonWriter& writer, const MetricSnapshot& metric) {
  writer.BeginObject();
  writer.Key("name");
  writer.String(metric.name);
  writer.Key("labels");
  writer.BeginObject();
  for (const auto& [key, value] : metric.labels) {
    writer.Key(key);
    writer.String(value);
  }
  writer.EndObject();
  writer.Key("kind");
  switch (metric.kind) {
    case MetricSnapshot::Kind::kCounter:
      writer.String("counter");
      writer.Key("value");
      writer.Int(metric.counter_value);
      break;
    case MetricSnapshot::Kind::kGauge:
      writer.String("gauge");
      writer.Key("value");
      writer.Double(metric.gauge_value);
      break;
    case MetricSnapshot::Kind::kHistogram: {
      writer.String("histogram");
      const HistogramSnapshot& h = metric.histogram;
      writer.Key("count");
      writer.Int(h.count());
      writer.Key("avg");
      writer.Double(h.avg());
      writer.Key("min");
      writer.Double(h.min());
      writer.Key("max");
      writer.Double(h.max());
      writer.Key("stddev");
      writer.Double(h.stddev());
      writer.Key("p50");
      writer.Double(h.p50());
      writer.Key("p90");
      writer.Double(h.p90());
      writer.Key("p95");
      writer.Double(h.p95());
      writer.Key("p99");
      writer.Double(h.p99());
      writer.Key("p999");
      writer.Double(h.p999());
      break;
    }
  }
  writer.EndObject();
}

std::string MetricsJson(const RegistrySnapshot& snapshot) {
  std::string out;
  JsonWriter writer(out);
  writer.BeginArray();
  for (const MetricSnapshot& metric : snapshot.metrics) {
    AppendMetric(writer, metric);
  }
  writer.EndArray();
  return out;
}

}  // namespace rdbsc::obs
