#ifndef RDBSC_OBS_HISTOGRAM_H_
#define RDBSC_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdbsc::obs {

/// Fixed-footprint log-bucketed (HDR-style) histogram.
///
/// Values are recorded as non-negative 64-bit integer "units"; a
/// configurable `resolution` maps units back to caller values (e.g. a
/// latency histogram uses resolution = 1e-9 so one unit is a nanosecond
/// and Observe() takes seconds). The bucket layout is log-linear:
///
///   units 0..31            one bucket per value (exact)
///   units >= 32            32 log2 sub-buckets per octave -- the bucket
///                          containing u has width u/16 at most, so any
///                          recorded value is reproduced by its bucket
///                          midpoint within a relative error of 1/32
///                          (~3.2%), at every magnitude up to 2^62
///
/// The footprint is a fixed 960 buckets (~7.5 KB of counters) regardless
/// of the value range, so histograms can be embedded per metric without
/// memory planning.
///
/// Concurrency: Record/Observe are lock-free (relaxed atomic adds and
/// CAS min/max) and safe from any number of threads. All internal state
/// is integral, so concurrent recording is order-insensitive: the final
/// counters are identical for every interleaving. Snapshot() taken while
/// recorders are active is a consistent-enough view (each counter is read
/// atomically, but the set of counters is not read at one instant);
/// quiesce recorders for exact totals.
///
/// Determinism: HistogramSnapshot::Merge adds integer state only, so
/// merging N snapshots is bit-identical under every merge order, and all
/// derived statistics (percentiles, mean, stddev) are pure functions of
/// that integer state (tests/obs_test.cc asserts both).
class Histogram;

/// Plain (non-atomic, copyable) capture of a Histogram's state, with the
/// derived-statistic queries. Also the unit of deterministic merging.
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;

  /// Number of recorded samples.
  int64_t count() const { return count_; }
  /// Exact sum of the recorded samples (integer-accumulated, scaled).
  double sum() const;
  /// Exact mean (sum / count); 0 when empty.
  double avg() const;
  /// Exact smallest / largest recorded sample; 0 when empty.
  double min() const;
  double max() const;
  /// Population standard deviation, computed from bucket midpoints (each
  /// sample is off by at most its bucket's half-width, so the error is
  /// bounded by the ~3.2% bucket resolution); 0 when empty.
  double stddev() const;

  /// Nearest-rank percentile, q in [0, 1]: the bucket midpoint of the
  /// sample at rank ceil(q * count), clamped into [min, max] (so
  /// ValueAtPercentile(1.0) == max exactly). 0 when empty. The result is
  /// within 1/32 relative error (plus one unit) of the true sample.
  double ValueAtPercentile(double q) const;
  double p50() const { return ValueAtPercentile(0.50); }
  double p90() const { return ValueAtPercentile(0.90); }
  double p95() const { return ValueAtPercentile(0.95); }
  double p99() const { return ValueAtPercentile(0.99); }
  double p999() const { return ValueAtPercentile(0.999); }

  /// Value of one unit (see Histogram).
  double resolution() const { return resolution_; }

  /// Folds `other` into this snapshot: counts, sums and min/max combine
  /// as integers, so any merge order yields bit-identical state. The two
  /// snapshots must share a resolution.
  void Merge(const HistogramSnapshot& other);

 private:
  friend class Histogram;

  double resolution_ = 1.0;
  int64_t count_ = 0;
  int64_t sum_units_ = 0;
  int64_t min_units_ = 0;  ///< meaningful only when count_ > 0
  int64_t max_units_ = 0;
  std::vector<uint64_t> buckets_;  ///< kNumBuckets counters (empty == all 0)
};

class Histogram {
 public:
  /// Log2 of the sub-buckets per octave; 32 sub-buckets bound the bucket
  /// relative width by 1/16 and the midpoint error by 1/32.
  static constexpr int kSubBucketBits = 5;
  static constexpr int64_t kSubBuckets = int64_t{1} << kSubBucketBits;
  /// Largest recordable unit value; Record clamps above (and below 0).
  static constexpr int64_t kMaxValue = int64_t{1} << 62;
  static constexpr int kNumBuckets = 960;

  /// `resolution` is the caller-value of one recorded unit (> 0);
  /// latency histograms use 1e-9 (nanosecond units, values in seconds).
  explicit Histogram(double resolution = 1.0) : resolution_(resolution) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample of `units` (clamped into [0, kMaxValue]).
  /// Lock-free; safe from any number of threads.
  void Record(int64_t units);

  /// Records a caller-value sample: Record(round(value / resolution)).
  void Observe(double value);

  /// Point-in-time copy of the counters (see class comment for the
  /// concurrent-snapshot caveat).
  HistogramSnapshot Snapshot() const;

  /// Resets every counter to the empty state. Not atomic with respect to
  /// concurrent recorders: their samples land in either the old or the
  /// new state. Callers that need exact windows serialize Reset against
  /// recording (WindowedRecorder documents its policy).
  void Reset();

  double resolution() const { return resolution_; }

  /// Recorded samples so far (relaxed read).
  int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  // --- Bucket geometry, exposed for tests and the JSON writer ---
  /// Index of the bucket containing `units` (pre-clamped to valid range).
  static int BucketIndex(int64_t units);
  /// Smallest / largest unit value mapping to bucket `index`.
  static int64_t BucketLow(int index);
  static int64_t BucketHigh(int index);
  /// The representative (midpoint) unit value reported for bucket `index`.
  static int64_t BucketMid(int index);

 private:
  const double resolution_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_units_{0};
  std::atomic<int64_t> min_units_{kMaxValue};
  std::atomic<int64_t> max_units_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// A rotating per-window histogram plus a cumulative total (the ydb
/// workload-command reporting shape): every sample lands in both; Rotate
/// closes the current window, returns its snapshot, and opens a fresh
/// one, so a periodic reporter prints one line per window while the total
/// keeps the whole-run distribution.
///
/// Concurrency: Observe is lock-free. Rotate is serialized by an internal
/// mutex. A sample racing a rotation lands in either the closing or the
/// fresh window (never both, never lost from the total); single-threaded
/// use is exact.
class WindowedRecorder {
 public:
  explicit WindowedRecorder(double resolution = 1.0)
      : total_(resolution), windows_{Histogram(resolution),
                                     Histogram(resolution)} {}

  WindowedRecorder(const WindowedRecorder&) = delete;
  WindowedRecorder& operator=(const WindowedRecorder&) = delete;

  /// Records into the cumulative total and the active window.
  void Observe(double value);

  /// Closes the active window and returns its snapshot; subsequent
  /// samples land in a fresh window.
  HistogramSnapshot Rotate();

  /// Snapshot of the whole-run distribution.
  HistogramSnapshot Total() const { return total_.Snapshot(); }

  /// Snapshot of the in-progress (not yet rotated) window.
  HistogramSnapshot Window() const;

  /// Completed rotations so far.
  int64_t rotations() const;

 private:
  Histogram total_;
  /// Double-buffered windows; `active_ & 1` picks the recording one and
  /// Rotate flips it, drains the retiring buffer, and resets it for the
  /// rotation after next.
  Histogram windows_[2];
  std::atomic<uint64_t> active_{0};
  mutable util::Mutex mu_;
  int64_t rotations_ GUARDED_BY(mu_) = 0;
};

}  // namespace rdbsc::obs

#endif  // RDBSC_OBS_HISTOGRAM_H_
