#ifndef RDBSC_OBS_REGISTRY_H_
#define RDBSC_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdbsc::obs {

/// Hierarchical metric labels: sorted (key, value) pairs. The registry
/// sorts on registration, so {"stage","solve"},{"solver","dc"} and the
/// reverse order name the same metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Lock-free; safe from any number of threads.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value. Lock-free.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// One metric captured by Registry::Snapshot.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  int64_t counter_value = 0;   ///< kCounter only
  double gauge_value = 0.0;    ///< kGauge only
  HistogramSnapshot histogram; ///< kHistogram only
};

/// Deterministically ordered (name, then labels, counters before gauges
/// before histograms on a full tie) capture of a registry.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
};

/// Named counters / gauges / histograms with hierarchical labels -- the
/// sink the engine pipeline, the admission server, the simulator, and the
/// bench harness all report into.
///
/// Usage pattern: resolve each metric once (registration takes the
/// registry mutex) and record through the returned reference (lock-free):
///
///   obs::Histogram& solve = registry.GetHistogram(
///       "engine.stage_seconds",
///       {{"solver", "dc"}, {"stage", "solve"}}, 1e-9);
///   ...
///   solve.Observe(elapsed_seconds);
///
/// Returned references are stable for the registry's lifetime. Get* with
/// the same (name, labels) returns the same object, so independent
/// components aggregate into shared metrics by construction. A
/// histogram's resolution is fixed by its first registration.
///
/// Snapshot() may run concurrently with recording; it sees each counter
/// atomically (see Histogram::Snapshot for the per-histogram caveat).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name, Labels labels = {})
      EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name, Labels labels = {}) EXCLUDES(mu_);
  /// `resolution` is the caller-value of one histogram unit (duration
  /// histograms pass 1e-9: nanosecond units, seconds in/out).
  Histogram& GetHistogram(std::string_view name, Labels labels = {},
                          double resolution = 1.0) EXCLUDES(mu_);

  RegistrySnapshot Snapshot() const EXCLUDES(mu_);

 private:
  struct MetricId {
    std::string name;
    Labels labels;
    bool operator<(const MetricId& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  static MetricId MakeId(std::string_view name, Labels labels);

  mutable util::Mutex mu_;
  /// std::map (ordered) so snapshots serialize deterministically.
  std::map<MetricId, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<MetricId, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<MetricId, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace rdbsc::obs

#endif  // RDBSC_OBS_REGISTRY_H_
