#include "obs/registry.h"

#include <algorithm>

namespace rdbsc::obs {

Registry::MetricId Registry::MakeId(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return MetricId{std::string(name), std::move(labels)};
}

Counter& Registry::GetCounter(std::string_view name, Labels labels) {
  MetricId id = MakeId(name, std::move(labels));
  util::MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[std::move(id)];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Gauge& Registry::GetGauge(std::string_view name, Labels labels) {
  MetricId id = MakeId(name, std::move(labels));
  util::MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[std::move(id)];
  if (slot == nullptr) slot.reset(new Gauge());
  return *slot;
}

Histogram& Registry::GetHistogram(std::string_view name, Labels labels,
                                  double resolution) {
  MetricId id = MakeId(name, std::move(labels));
  util::MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[std::move(id)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(resolution);
  return *slot;
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  util::MutexLock lock(mu_);
  snap.metrics.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [id, counter] : counters_) {
    MetricSnapshot m;
    m.name = id.name;
    m.labels = id.labels;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.counter_value = counter->value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [id, gauge] : gauges_) {
    MetricSnapshot m;
    m.name = id.name;
    m.labels = id.labels;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.gauge_value = gauge->value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [id, histogram] : histograms_) {
    MetricSnapshot m;
    m.name = id.name;
    m.labels = id.labels;
    m.kind = MetricSnapshot::Kind::kHistogram;
    m.histogram = histogram->Snapshot();
    snap.metrics.push_back(std::move(m));
  }
  // Each source map is already (name, labels)-ordered; interleave the
  // three kinds into one deterministic (name, labels, kind) order.
  std::stable_sort(snap.metrics.begin(), snap.metrics.end(),
                   [](const MetricSnapshot& a, const MetricSnapshot& b) {
                     if (a.name != b.name) return a.name < b.name;
                     return a.labels < b.labels;
                   });
  return snap;
}

}  // namespace rdbsc::obs
