#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rdbsc::obs {
namespace {

/// Relaxed CAS-min/max: integer, order-insensitive, so concurrent
/// recording stays deterministic in aggregate.
void AtomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Bucket geometry -------------------------------------------------------

int Histogram::BucketIndex(int64_t units) {
  if (units < kSubBuckets) return static_cast<int>(units);
  // The octave of `units` is its bit width; keeping the top kSubBucketBits
  // bits as the sub-bucket makes every octave 16 buckets wide (the lower
  // half of the sub-bucket range belongs to the previous octave).
  const int width = std::bit_width(static_cast<uint64_t>(units));
  const int exponent = width - kSubBucketBits;         // >= 1
  const int64_t sub = units >> exponent;               // in [16, 32)
  return static_cast<int>(sub + kSubBuckets / 2 * exponent);
}

int64_t Histogram::BucketLow(int index) {
  if (index < kSubBuckets) return index;
  const int exponent = index / (kSubBuckets / 2) - 1;
  const int64_t sub = index - kSubBuckets / 2 * exponent;
  return sub << exponent;
}

int64_t Histogram::BucketHigh(int index) {
  if (index < kSubBuckets) return index;
  const int exponent = index / (kSubBuckets / 2) - 1;
  return BucketLow(index) + (int64_t{1} << exponent) - 1;
}

int64_t Histogram::BucketMid(int index) {
  if (index < kSubBuckets) return index;
  const int exponent = index / (kSubBuckets / 2) - 1;
  return BucketLow(index) + (int64_t{1} << (exponent - 1));
}

// --- Recording -------------------------------------------------------------

void Histogram::Record(int64_t units) {
  units = std::clamp<int64_t>(units, 0, kMaxValue);
  buckets_[BucketIndex(units)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_units_.fetch_add(units, std::memory_order_relaxed);
  AtomicMin(min_units_, units);
  AtomicMax(max_units_, units);
}

void Histogram::Observe(double value) {
  if (!(value > 0.0)) {  // negatives and NaN clamp to zero
    Record(0);
    return;
  }
  const double units = value / resolution_;
  if (units >= static_cast<double>(kMaxValue)) {
    Record(kMaxValue);
    return;
  }
  Record(std::llround(units));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.resolution_ = resolution_;
  snap.count_ = count_.load(std::memory_order_relaxed);
  snap.sum_units_ = sum_units_.load(std::memory_order_relaxed);
  // The min slot's empty sentinel is kMaxValue, which is also a recordable
  // value -- distinguish by count, not by the sentinel.
  const int64_t min_units = min_units_.load(std::memory_order_relaxed);
  snap.min_units_ = snap.count_ == 0 ? 0 : min_units;
  snap.max_units_ = max_units_.load(std::memory_order_relaxed);
  snap.buckets_.resize(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    snap.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_units_.store(0, std::memory_order_relaxed);
  min_units_.store(kMaxValue, std::memory_order_relaxed);
  max_units_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

// --- Snapshot queries ------------------------------------------------------

double HistogramSnapshot::sum() const {
  return static_cast<double>(sum_units_) * resolution_;
}

double HistogramSnapshot::avg() const {
  if (count_ == 0) return 0.0;
  return sum() / static_cast<double>(count_);
}

double HistogramSnapshot::min() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(min_units_) * resolution_;
}

double HistogramSnapshot::max() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(max_units_) * resolution_;
}

double HistogramSnapshot::stddev() const {
  if (count_ == 0 || buckets_.empty()) return 0.0;
  // Both moments from bucket midpoints (not the exact sum), so the
  // deviations are measured around the same approximated mean and the
  // variance cannot go negative.
  double mid_sum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    mid_sum += static_cast<double>(buckets_[i]) *
               static_cast<double>(Histogram::BucketMid(static_cast<int>(i)));
  }
  const double mean = mid_sum / static_cast<double>(count_);
  double var_sum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double d =
        static_cast<double>(Histogram::BucketMid(static_cast<int>(i))) - mean;
    var_sum += static_cast<double>(buckets_[i]) * d * d;
  }
  return std::sqrt(var_sum / static_cast<double>(count_)) * resolution_;
}

double HistogramSnapshot::ValueAtPercentile(double q) const {
  if (count_ == 0 || buckets_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t rank = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))), 1,
      count_);
  // The extreme ranks are the tracked min/max samples: report them
  // exactly instead of a bucket midpoint (this is what makes p0 == min
  // and p100 == max precise, not just within bucket resolution).
  if (rank == 1) return static_cast<double>(min_units_) * resolution_;
  if (rank == count_) return static_cast<double>(max_units_) * resolution_;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += static_cast<int64_t>(buckets_[i]);
    if (seen >= rank) {
      const int64_t mid = std::clamp(
          Histogram::BucketMid(static_cast<int>(i)), min_units_, max_units_);
      return static_cast<double>(mid) * resolution_;
    }
  }
  return static_cast<double>(max_units_) * resolution_;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_units_ = other.min_units_;
    max_units_ = other.max_units_;
    resolution_ = other.resolution_;
  } else {
    min_units_ = std::min(min_units_, other.min_units_);
    max_units_ = std::max(max_units_, other.max_units_);
  }
  count_ += other.count_;
  sum_units_ += other.sum_units_;
  if (buckets_.empty()) buckets_.resize(Histogram::kNumBuckets);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

// --- WindowedRecorder ------------------------------------------------------

void WindowedRecorder::Observe(double value) {
  total_.Observe(value);
  windows_[active_.load(std::memory_order_acquire) & 1].Observe(value);
}

HistogramSnapshot WindowedRecorder::Rotate() {
  util::MutexLock lock(mu_);
  const uint64_t retiring = active_.fetch_add(1, std::memory_order_acq_rel);
  Histogram& closed = windows_[retiring & 1];
  HistogramSnapshot snap = closed.Snapshot();
  // Samples recorded between the index flip and this reset land in the
  // snapshot or the reset state; either way they survive in total_.
  closed.Reset();
  ++rotations_;
  return snap;
}

HistogramSnapshot WindowedRecorder::Window() const {
  return windows_[active_.load(std::memory_order_acquire) & 1].Snapshot();
}

int64_t WindowedRecorder::rotations() const {
  util::MutexLock lock(mu_);
  return rotations_;
}

}  // namespace rdbsc::obs
