#ifndef RDBSC_OBS_JSON_H_
#define RDBSC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace rdbsc::obs {

/// Identity of the structured results documents this library emits (the
/// BENCH_*.json convention). tools/check_bench_json.py validates it; bump
/// the version when a field changes meaning, never in place.
inline constexpr std::string_view kResultsSchemaName = "rdbsc-bench-results";
inline constexpr int kResultsSchemaVersion = 1;

/// Minimal streaming JSON writer: appends well-formed JSON to a caller-
/// owned string. No dependencies, deterministic output (stable double
/// formatting via %.17g; non-finite doubles serialize as null).
///
///   std::string out;
///   obs::JsonWriter w(out);
///   w.BeginObject();
///   w.Key("schema"); w.String(obs::kResultsSchemaName);
///   w.Key("points"); w.BeginArray(); w.Int(1); w.Int(2); w.EndArray();
///   w.EndObject();
///
/// The writer tracks separators itself; callers never emit commas. It
/// does not validate call order beyond separator placement -- emitting a
/// syntactically sensible sequence is the caller's job.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key (escaped); the next value call is its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

 private:
  void BeforeValue();
  void AppendEscaped(std::string_view text);

  std::string& out_;
  /// One entry per open container: true until its first element is
  /// written (no separator needed yet).
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Appends one metric as a JSON object:
///   {"name": ..., "labels": {...}, "kind": "counter", "value": N}
///   {"name": ..., "labels": {...}, "kind": "gauge", "value": X}
///   {"name": ..., "labels": {...}, "kind": "histogram", "count": N,
///    "avg": ..., "min": ..., "max": ..., "stddev": ...,
///    "p50": ..., "p90": ..., "p95": ..., "p99": ..., "p999": ...}
void AppendMetric(JsonWriter& writer, const MetricSnapshot& metric);

/// The full snapshot as a JSON array of metric objects, in the snapshot's
/// deterministic order. This is the "metrics" section of a results
/// document (and the golden-test surface).
std::string MetricsJson(const RegistrySnapshot& snapshot);

}  // namespace rdbsc::obs

#endif  // RDBSC_OBS_JSON_H_
