#ifndef RDBSC_SIM_EVENTS_H_
#define RDBSC_SIM_EVENTS_H_

#include <algorithm>
#include <vector>

#include "core/model.h"
#include "geo/point.h"

namespace rdbsc::sim {

/// The typed event vocabulary of the streaming delta engine: everything
/// that can change the RDB-SC world between two assignment rounds. Events
/// are applied as batched deltas (IncrementalAssigner::ApplyEvents) that
/// repair only the affected grid cells and candidate rows, instead of
/// rebuilding index and graph from scratch.

/// An available worker changed position (e.g. drifted while idle).
struct WorkerMoved {
  core::WorkerId id = 0;
  geo::Point to;
};

/// A new task entered the system under a caller-chosen stable id.
struct TaskArrived {
  core::TaskId id = 0;
  core::Task task;
};

/// A task left the system before completion (deadline passed or it was
/// withdrawn); pending commitments to it are voided.
struct TaskExpired {
  core::TaskId id = 0;
};

/// A committed worker finished (answered or gave up) and is assignable
/// again from `position`.
struct WorkerCompleted {
  core::WorkerId id = 0;
  geo::Point position;
};

/// One round's worth of world changes, grouped by type. Application order
/// is canonical and type-major -- expirations, then completions, then
/// arrivals, then moves, each group in ascending id order -- so any two
/// producers that collect the same logical events yield bit-identical
/// index and graph states regardless of the order they appended them in.
/// (Expire-before-arrive also lets a batch retire and re-register the
/// same task id in one round.)
struct EventBatch {
  /// The clock the batch is applied at (must be >= the previous round's).
  double now = 0.0;

  std::vector<TaskExpired> expired;
  std::vector<WorkerCompleted> completed;
  std::vector<TaskArrived> arrived;
  std::vector<WorkerMoved> moved;

  bool empty() const {
    return expired.empty() && completed.empty() && arrived.empty() &&
           moved.empty();
  }

  /// Sorts every group by id, establishing the canonical order. Ids must
  /// be unique within each group.
  void Canonicalize() {
    auto by_id = [](const auto& a, const auto& b) { return a.id < b.id; };
    std::sort(expired.begin(), expired.end(), by_id);
    std::sort(completed.begin(), completed.end(), by_id);
    std::sort(arrived.begin(), arrived.end(), by_id);
    std::sort(moved.begin(), moved.end(), by_id);
  }
};

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_EVENTS_H_
