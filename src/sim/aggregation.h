#ifndef RDBSC_SIM_AGGREGATION_H_
#define RDBSC_SIM_AGGREGATION_H_

#include <vector>

#include "core/model.h"
#include "sim/platform.h"

namespace rdbsc::sim {

/// Controls the answer aggregation of Section 2.3 ("Answer Aggregation for
/// a Spatial Task"): answers are grouped by similar shooting angle and
/// capture time, and one representative per group is kept.
struct AggregationConfig {
  int angle_buckets = 8;
  int time_buckets = 4;
};

/// Groups `answers` (all belonging to `task`) into angle x time buckets and
/// returns the highest-quality representative of each occupied bucket,
/// ordered by (angle bucket, time bucket).
std::vector<Answer> AggregateAnswers(const core::Task& task,
                                     const std::vector<Answer>& answers,
                                     const AggregationConfig& config = {});

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_AGGREGATION_H_
