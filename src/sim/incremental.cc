#include "sim/incremental.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "core/diversity.h"
#include "core/fingerprint.h"
#include "util/math.h"

namespace rdbsc::sim {

IncrementalAssigner::IncrementalAssigner(core::Solver* solver, double eta,
                                         core::ArrivalPolicy policy)
    : solver_(solver),
      policy_(policy),
      eta_(eta),
      index_(eta, /*now=*/0.0, policy) {}

util::Status IncrementalAssigner::AddTask(core::TaskId id,
                                          const core::Task& task) {
  if (tasks_.contains(id)) {
    return util::Status::AlreadyExists("task id already registered");
  }
  util::Status status = index_.InsertTask(id, task);
  if (!status.ok()) return status;
  tasks_.emplace(id, task);
  ledger_.emplace(id, LedgerEntry{task, {}});
  if (mode_ == MaintenanceMode::kDelta) {
    delta_.OnTaskArrived(index_, id, task);
  }
  return util::Status::OK();
}

util::Status IncrementalAssigner::RemoveTask(core::TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return util::Status::NotFound("task id not registered");
  }
  index_.RemoveTask(id).ok();
  if (mode_ == MaintenanceMode::kDelta) delta_.OnTaskRemoved(id);
  tasks_.erase(it);
  // Pending commitments to the vanished task are voided: the workers
  // become available again and their provisional contributions disappear.
  // Sorted so the grid index sees the re-inserts in a reproducible order.
  std::vector<core::WorkerId> voided;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [wid, record] : workers_) {
    if (record.committed == id && record.busy) voided.push_back(wid);
  }
  std::sort(voided.begin(), voided.end());
  for (core::WorkerId wid : voided) {
    WorkerRecord& record = workers_.at(wid);
    record.committed = core::kNoTask;
    record.busy = false;
    index_.InsertWorker(wid, record.worker).ok();
    if (mode_ == MaintenanceMode::kDelta) delta_.AddRow(wid).ok();
    auto& contributions = ledger_.at(id).contributions;
    std::erase_if(contributions, [wid](const auto& entry) {
      return entry.first == wid;
    });
  }
  return util::Status::OK();
}

util::Status IncrementalAssigner::AddWorker(core::WorkerId id,
                                            const core::Worker& worker) {
  if (workers_.contains(id)) {
    return util::Status::AlreadyExists("worker id already registered");
  }
  util::Status status = index_.InsertWorker(id, worker);
  if (!status.ok()) return status;
  if (mode_ == MaintenanceMode::kDelta) delta_.AddRow(id).ok();
  WorkerRecord record;
  record.worker = worker;
  workers_.emplace(id, record);
  return util::Status::OK();
}

util::Status IncrementalAssigner::RemoveWorker(core::WorkerId id) {
  auto it = workers_.find(id);
  if (it == workers_.end()) {
    return util::Status::NotFound("worker id not registered");
  }
  if (!it->second.busy) {
    index_.RemoveWorker(id).ok();
    if (mode_ == MaintenanceMode::kDelta) delta_.RemoveRow(id).ok();
  }
  if (it->second.committed != core::kNoTask && it->second.busy) {
    // The worker left mid-route: void the provisional contribution.
    auto ledger_it = ledger_.find(it->second.committed);
    if (ledger_it != ledger_.end()) {
      std::erase_if(ledger_it->second.contributions,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }
  workers_.erase(it);
  return util::Status::OK();
}

util::Status IncrementalAssigner::CompleteWorker(core::WorkerId id,
                                                 geo::Point position) {
  auto it = workers_.find(id);
  if (it == workers_.end()) {
    return util::Status::NotFound("worker id not registered");
  }
  if (!it->second.busy) {
    return util::Status::FailedPrecondition("worker has no pending task");
  }
  it->second.busy = false;
  it->second.committed = core::kNoTask;
  it->second.worker.location = position;
  util::Status status = index_.InsertWorker(id, it->second.worker);
  if (status.ok() && mode_ == MaintenanceMode::kDelta) {
    delta_.AddRow(id).ok();
  }
  return status;
}

util::Status IncrementalAssigner::MoveWorker(core::WorkerId id,
                                             geo::Point to) {
  auto it = workers_.find(id);
  if (it == workers_.end()) {
    return util::Status::NotFound("worker id not registered");
  }
  if (it->second.busy) {
    return util::Status::FailedPrecondition(
        "committed worker cannot be moved");
  }
  util::Status status = index_.MoveWorker(id, to);
  if (!status.ok()) return status;
  it->second.worker.location = to;
  // Only this worker's candidate row changed; everything else keeps its
  // stability horizon.
  if (mode_ == MaintenanceMode::kDelta) delta_.MarkRowDirty(id).ok();
  return util::Status::OK();
}

util::Status IncrementalAssigner::ApplyEvents(const EventBatch& batch) {
  index_.set_now(std::max(batch.now, index_.now()));
  EventBatch events = batch;
  events.Canonicalize();
  for (const TaskExpired& event : events.expired) {
    if (util::Status s = RemoveTask(event.id); !s.ok()) return s;
  }
  for (const WorkerCompleted& event : events.completed) {
    if (util::Status s = CompleteWorker(event.id, event.position); !s.ok()) {
      return s;
    }
  }
  for (const TaskArrived& event : events.arrived) {
    if (util::Status s = AddTask(event.id, event.task); !s.ok()) return s;
  }
  for (const WorkerMoved& event : events.moved) {
    if (util::Status s = MoveWorker(event.id, event.to); !s.ok()) return s;
  }
  return util::Status::OK();
}

void IncrementalAssigner::set_maintenance_mode(MaintenanceMode mode) {
  if (mode == mode_) return;
  mode_ = mode;
  if (mode_ == MaintenanceMode::kDelta) {
    ResyncDelta();
  } else {
    delta_.Reset();
  }
}

void IncrementalAssigner::set_metrics(obs::Registry* metrics) {
  metrics_ = metrics;
  // Start the per-round diffs from here: work done before the sink was
  // attached is not retroactively reported.
  reported_delta_ = delta_.stats();
}

void IncrementalAssigner::ResyncDelta() {
  delta_.Reset();
  std::vector<core::WorkerId> available;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [wid, record] : workers_) {
    if (!record.busy) available.push_back(wid);
  }
  std::sort(available.begin(), available.end());
  // Rows are born dirty: the next Update recomputes them all, after
  // which delta maintenance is exact again.
  for (core::WorkerId wid : available) delta_.AddRow(wid).ok();
}

void IncrementalAssigner::ReportDeltaMetrics() {
  if (metrics_ == nullptr) return;
  const index::DeltaStats diff = delta_.stats() - reported_delta_;
  reported_delta_ = delta_.stats();
  metrics_->GetCounter("sim.delta.cells_touched")
      .Increment(diff.cells_touched);
  metrics_->GetCounter("sim.delta.edges_repaired")
      .Increment(diff.edges_repaired);
  metrics_->GetCounter("sim.delta.rows_recomputed")
      .Increment(diff.rows_recomputed);
  metrics_->GetCounter("sim.delta.rows_reused").Increment(diff.rows_reused);
  metrics_->GetCounter("sim.delta.compactions").Increment(diff.compactions);
  metrics_->GetCounter("sim.delta.bulk_refills").Increment(diff.bulk_refills);
}

util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
IncrementalAssigner::Update(double now) {
  index_.set_now(std::max(now, index_.now()));

  // Drop expired tasks (Figure 10 keeps only the opening ones). Removal
  // order is observable through the index's patch counters, so sort.
  std::vector<core::TaskId> expired;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, task] : tasks_) {
    if (task.end < now) expired.push_back(tid);
  }
  std::sort(expired.begin(), expired.end());
  for (core::TaskId tid : expired) RemoveTask(tid).ok();

  // Compact snapshot for the solver.
  std::vector<core::TaskId> task_ids;
  std::unordered_map<core::TaskId, core::TaskId> task_local;
  std::vector<core::Task> snapshot_tasks;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, task] : tasks_) task_ids.push_back(tid);
  std::sort(task_ids.begin(), task_ids.end());
  for (core::TaskId tid : task_ids) {
    task_local[tid] = static_cast<core::TaskId>(snapshot_tasks.size());
    snapshot_tasks.push_back(tasks_.at(tid));
  }
  std::vector<core::WorkerId> worker_ids;
  std::unordered_map<core::WorkerId, core::WorkerId> worker_local;
  std::vector<core::Worker> snapshot_workers;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [wid, record] : workers_) {
    if (!record.busy) worker_ids.push_back(wid);
  }
  std::sort(worker_ids.begin(), worker_ids.end());
  for (core::WorkerId wid : worker_ids) {
    worker_local[wid] = static_cast<core::WorkerId>(snapshot_workers.size());
    snapshot_workers.push_back(workers_.at(wid).worker);
  }

  std::vector<std::pair<core::TaskId, core::WorkerId>> committed;
  if (snapshot_tasks.empty() || snapshot_workers.empty()) {
    ReportDeltaMetrics();
    return committed;
  }

  const size_t num_snapshot_workers = snapshot_workers.size();
  core::Instance snapshot(std::move(snapshot_tasks),
                          std::move(snapshot_workers), now, policy_);

  // Round reuse: the snapshot's content fingerprint (tasks, workers, now,
  // policy) fully determines the candidate edge set the index would
  // retrieve, so a round identical to the previous one replays the memoed
  // graph instead of paying RetrievePairs + FromEdges again.
  const util::Hash128 fingerprint = core::InstanceFingerprint(snapshot);
  ++round_stats_.rounds;
  std::shared_ptr<const core::CandidateGraph> graph;
  if (has_graph_memo_ && fingerprint == graph_memo_key_) {
    ++round_stats_.graph_reuses;
    graph = graph_memo_;
  } else {
    // Valid pairs among available workers and open tasks. kDelta repairs
    // only dirty / horizon-expired rows and materializes the maintained
    // edit structure; kRebuild pays the full index retrieval. Unlimited
    // deadline and serial retrieval either way: never fails.
    std::vector<std::pair<core::WorkerId, core::TaskId>> pairs;
    if (mode_ == MaintenanceMode::kDelta) {
      delta_.RepairRows(index_).ok();
      pairs = delta_.Pairs();
#ifndef NDEBUG
      // The tentpole contract, checked on every Debug round: the
      // delta-maintained edge set is bit-identical to a full rebuild.
      assert(pairs == index_.RetrievePairs().value() &&
             "delta-maintained pairs diverged from index rebuild");
#endif
    } else {
      pairs = index_.RetrievePairs().value();
    }
    std::vector<std::vector<core::TaskId>> edges(num_snapshot_workers);
    for (const auto& [wid, tid] : pairs) {
      auto w_it = worker_local.find(wid);
      auto t_it = task_local.find(tid);
      if (w_it != worker_local.end() && t_it != task_local.end()) {
        edges[w_it->second].push_back(t_it->second);
      }
    }
    graph = std::make_shared<const core::CandidateGraph>(
        core::CandidateGraph::FromEdges(snapshot, std::move(edges)));
    graph_memo_key_ = fingerprint;
    graph_memo_ = graph;
    has_graph_memo_ = true;
  }

  util::StatusOr<core::SolveResult> solved =
      solver_->Solve(snapshot, *graph);
  if (!solved.ok()) return solved.status();
  const core::SolveResult& solve = solved.value();

  for (size_t local = 0; local < worker_ids.size(); ++local) {
    core::TaskId local_task =
        solve.assignment.TaskOf(static_cast<core::WorkerId>(local));
    if (local_task == core::kNoTask) continue;
    core::WorkerId wid = worker_ids[local];
    core::TaskId tid = task_ids[local_task];
    WorkerRecord& record = workers_.at(wid);
    record.committed = tid;
    record.busy = true;
    record.observation = core::MakeObservation(
        tasks_.at(tid), record.worker, now, policy_);
    ledger_.at(tid).contributions.emplace_back(wid, record.observation);
    index_.RemoveWorker(wid).ok();
    if (mode_ == MaintenanceMode::kDelta) delta_.RemoveRow(wid).ok();
    committed.emplace_back(tid, wid);
  }
  ReportDeltaMetrics();
  return committed;
}

core::TaskId IncrementalAssigner::CommittedTask(core::WorkerId id) const {
  auto it = workers_.find(id);
  return it == workers_.end() ? core::kNoTask : it->second.committed;
}

core::ObjectiveValue IncrementalAssigner::Objectives() const {
  core::ObjectiveValue value;
  double min_r = std::numeric_limits<double>::infinity();
  bool any = false;
  // Float addition is non-associative, so accumulating total_std in the
  // hash map's bucket order would make the objective depend on insertion
  // history. Walk the ledger in sorted task-id order instead: the sum is
  // bit-identical for equal ledger contents however they were built.
  std::vector<core::TaskId> tids;
  tids.reserve(ledger_.size());
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, entry] : ledger_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  for (core::TaskId tid : tids) {
    const LedgerEntry& entry = ledger_.at(tid);
    if (entry.contributions.empty()) continue;
    any = true;
    double r = 0.0;
    std::vector<core::Observation> observations;
    observations.reserve(entry.contributions.size());
    for (const auto& [wid, obs] : entry.contributions) {
      r += util::ReliabilityWeight(obs.confidence);
      observations.push_back(obs);
    }
    min_r = std::min(min_r, r);
    value.total_std += core::ExpectedStd(entry.task, observations);
  }
  value.min_reliability = any ? util::ReducedToProbability(min_r) : 0.0;
  return value;
}

}  // namespace rdbsc::sim
