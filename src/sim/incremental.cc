#include "sim/incremental.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/diversity.h"
#include "core/fingerprint.h"
#include "util/math.h"

namespace rdbsc::sim {

IncrementalAssigner::IncrementalAssigner(core::Solver* solver, double eta,
                                         core::ArrivalPolicy policy)
    : solver_(solver),
      policy_(policy),
      eta_(eta),
      index_(eta, /*now=*/0.0, policy) {}

util::Status IncrementalAssigner::AddTask(core::TaskId id,
                                          const core::Task& task) {
  if (tasks_.contains(id)) {
    return util::Status::AlreadyExists("task id already registered");
  }
  util::Status status = index_.InsertTask(id, task);
  if (!status.ok()) return status;
  tasks_.emplace(id, task);
  ledger_.emplace(id, LedgerEntry{task, {}});
  return util::Status::OK();
}

util::Status IncrementalAssigner::RemoveTask(core::TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return util::Status::NotFound("task id not registered");
  }
  index_.RemoveTask(id).ok();
  tasks_.erase(it);
  // Pending commitments to the vanished task are voided: the workers
  // become available again and their provisional contributions disappear.
  // Sorted so the grid index sees the re-inserts in a reproducible order.
  std::vector<core::WorkerId> voided;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [wid, record] : workers_) {
    if (record.committed == id && record.busy) voided.push_back(wid);
  }
  std::sort(voided.begin(), voided.end());
  for (core::WorkerId wid : voided) {
    WorkerRecord& record = workers_.at(wid);
    record.committed = core::kNoTask;
    record.busy = false;
    index_.InsertWorker(wid, record.worker).ok();
    auto& contributions = ledger_.at(id).contributions;
    std::erase_if(contributions, [wid](const auto& entry) {
      return entry.first == wid;
    });
  }
  return util::Status::OK();
}

util::Status IncrementalAssigner::AddWorker(core::WorkerId id,
                                            const core::Worker& worker) {
  if (workers_.contains(id)) {
    return util::Status::AlreadyExists("worker id already registered");
  }
  util::Status status = index_.InsertWorker(id, worker);
  if (!status.ok()) return status;
  WorkerRecord record;
  record.worker = worker;
  workers_.emplace(id, record);
  return util::Status::OK();
}

util::Status IncrementalAssigner::RemoveWorker(core::WorkerId id) {
  auto it = workers_.find(id);
  if (it == workers_.end()) {
    return util::Status::NotFound("worker id not registered");
  }
  if (!it->second.busy) index_.RemoveWorker(id).ok();
  if (it->second.committed != core::kNoTask && it->second.busy) {
    // The worker left mid-route: void the provisional contribution.
    auto ledger_it = ledger_.find(it->second.committed);
    if (ledger_it != ledger_.end()) {
      std::erase_if(ledger_it->second.contributions,
                    [id](const auto& entry) { return entry.first == id; });
    }
  }
  workers_.erase(it);
  return util::Status::OK();
}

util::Status IncrementalAssigner::CompleteWorker(core::WorkerId id,
                                                 geo::Point position) {
  auto it = workers_.find(id);
  if (it == workers_.end()) {
    return util::Status::NotFound("worker id not registered");
  }
  if (!it->second.busy) {
    return util::Status::FailedPrecondition("worker has no pending task");
  }
  it->second.busy = false;
  it->second.committed = core::kNoTask;
  it->second.worker.location = position;
  return index_.InsertWorker(id, it->second.worker);
}

util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
IncrementalAssigner::Update(double now) {
  index_.set_now(std::max(now, index_.now()));

  // Drop expired tasks (Figure 10 keeps only the opening ones). Removal
  // order is observable through the index's patch counters, so sort.
  std::vector<core::TaskId> expired;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, task] : tasks_) {
    if (task.end < now) expired.push_back(tid);
  }
  std::sort(expired.begin(), expired.end());
  for (core::TaskId tid : expired) RemoveTask(tid).ok();

  // Compact snapshot for the solver.
  std::vector<core::TaskId> task_ids;
  std::unordered_map<core::TaskId, core::TaskId> task_local;
  std::vector<core::Task> snapshot_tasks;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, task] : tasks_) task_ids.push_back(tid);
  std::sort(task_ids.begin(), task_ids.end());
  for (core::TaskId tid : task_ids) {
    task_local[tid] = static_cast<core::TaskId>(snapshot_tasks.size());
    snapshot_tasks.push_back(tasks_.at(tid));
  }
  std::vector<core::WorkerId> worker_ids;
  std::unordered_map<core::WorkerId, core::WorkerId> worker_local;
  std::vector<core::Worker> snapshot_workers;
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [wid, record] : workers_) {
    if (!record.busy) worker_ids.push_back(wid);
  }
  std::sort(worker_ids.begin(), worker_ids.end());
  for (core::WorkerId wid : worker_ids) {
    worker_local[wid] = static_cast<core::WorkerId>(snapshot_workers.size());
    snapshot_workers.push_back(workers_.at(wid).worker);
  }

  std::vector<std::pair<core::TaskId, core::WorkerId>> committed;
  if (snapshot_tasks.empty() || snapshot_workers.empty()) return committed;

  const size_t num_snapshot_workers = snapshot_workers.size();
  core::Instance snapshot(std::move(snapshot_tasks),
                          std::move(snapshot_workers), now, policy_);

  // Round reuse: the snapshot's content fingerprint (tasks, workers, now,
  // policy) fully determines the candidate edge set the index would
  // retrieve, so a round identical to the previous one replays the memoed
  // graph instead of paying RetrievePairs + FromEdges again.
  const util::Hash128 fingerprint = core::InstanceFingerprint(snapshot);
  ++round_stats_.rounds;
  std::shared_ptr<const core::CandidateGraph> graph;
  if (has_graph_memo_ && fingerprint == graph_memo_key_) {
    ++round_stats_.graph_reuses;
    graph = graph_memo_;
  } else {
    // Valid pairs among available workers and open tasks, via the index.
    // Unlimited deadline and serial retrieval: never fails.
    std::vector<std::pair<core::WorkerId, core::TaskId>> pairs =
        index_.RetrievePairs().value();
    std::vector<std::vector<core::TaskId>> edges(num_snapshot_workers);
    for (const auto& [wid, tid] : pairs) {
      auto w_it = worker_local.find(wid);
      auto t_it = task_local.find(tid);
      if (w_it != worker_local.end() && t_it != task_local.end()) {
        edges[w_it->second].push_back(t_it->second);
      }
    }
    graph = std::make_shared<const core::CandidateGraph>(
        core::CandidateGraph::FromEdges(snapshot, std::move(edges)));
    graph_memo_key_ = fingerprint;
    graph_memo_ = graph;
    has_graph_memo_ = true;
  }

  util::StatusOr<core::SolveResult> solved =
      solver_->Solve(snapshot, *graph);
  if (!solved.ok()) return solved.status();
  const core::SolveResult& solve = solved.value();

  for (size_t local = 0; local < worker_ids.size(); ++local) {
    core::TaskId local_task =
        solve.assignment.TaskOf(static_cast<core::WorkerId>(local));
    if (local_task == core::kNoTask) continue;
    core::WorkerId wid = worker_ids[local];
    core::TaskId tid = task_ids[local_task];
    WorkerRecord& record = workers_.at(wid);
    record.committed = tid;
    record.busy = true;
    record.observation = core::MakeObservation(
        tasks_.at(tid), record.worker, now, policy_);
    ledger_.at(tid).contributions.emplace_back(wid, record.observation);
    index_.RemoveWorker(wid).ok();
    committed.emplace_back(tid, wid);
  }
  return committed;
}

core::TaskId IncrementalAssigner::CommittedTask(core::WorkerId id) const {
  auto it = workers_.find(id);
  return it == workers_.end() ? core::kNoTask : it->second.committed;
}

core::ObjectiveValue IncrementalAssigner::Objectives() const {
  core::ObjectiveValue value;
  double min_r = std::numeric_limits<double>::infinity();
  bool any = false;
  // Float addition is non-associative, so accumulating total_std in the
  // hash map's bucket order would make the objective depend on insertion
  // history. Walk the ledger in sorted task-id order instead: the sum is
  // bit-identical for equal ledger contents however they were built.
  std::vector<core::TaskId> tids;
  tids.reserve(ledger_.size());
  // LINT-ALLOW(unordered-iter): key collection only; sorted below
  for (const auto& [tid, entry] : ledger_) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  for (core::TaskId tid : tids) {
    const LedgerEntry& entry = ledger_.at(tid);
    if (entry.contributions.empty()) continue;
    any = true;
    double r = 0.0;
    std::vector<core::Observation> observations;
    observations.reserve(entry.contributions.size());
    for (const auto& [wid, obs] : entry.contributions) {
      r += util::ReliabilityWeight(obs.confidence);
      observations.push_back(obs);
    }
    min_r = std::min(min_r, r);
    value.total_std += core::ExpectedStd(entry.task, observations);
  }
  value.min_reliability = any ? util::ReducedToProbability(min_r) : 0.0;
  return value;
}

}  // namespace rdbsc::sim
