#ifndef RDBSC_SIM_PLATFORM_H_
#define RDBSC_SIM_PLATFORM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/solver.h"
#include "engine/engine.h"
#include "obs/registry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdbsc::sim {

/// Configuration of the gMission-substitute platform experiment
/// (Section 8.4): a handful of nearby task sites, a small pool of mobile
/// users, and a periodic incremental assignment loop with period
/// `t_interval`. Times are hours to match the rest of the library
/// (the paper's 1-4 minute intervals are 1/60 .. 4/60).
struct PlatformConfig {
  int num_sites = 5;
  int num_workers = 10;
  /// Every site's task opens at time 0 and stays open this long (the
  /// paper's "15 minutes opening time").
  double task_open_time = 0.25;
  /// Total simulated time.
  double horizon = 0.25;
  /// Incremental update period (Figure 10 / Figure 18 x-axis).
  double t_interval = 1.0 / 60.0;
  /// Sites are scattered within this radius around the campus center, so
  /// "a user can walk from one site to another one within 2 minutes".
  double site_spread = 0.003;
  double worker_speed_min = 0.08;
  double worker_speed_max = 0.15;
  /// Peer-rating reliabilities of the users.
  double p_min = 0.8;
  double p_max = 1.0;
  double beta_min = 0.4;
  double beta_max = 0.6;
  uint64_t seed = 23;
  /// Registry name of the solver re-invoked every round, plus its options
  /// (resolved through core::SolverRegistry; the platform owns the solver).
  std::string solver_name = "dc";
  core::SolverOptions solver_options;
  /// Worker threads of a platform-owned util::ThreadPool that every tick's
  /// candidate-graph build and solve run through; <= 1 stays serial. The
  /// simulated trajectory is bit-identical at every thread count.
  int num_threads = 0;
  /// When > 0, each tick's snapshot is submitted through an
  /// engine::Server with this many dispatch workers (the async admission
  /// layer) instead of being solved inline -- exercising the same
  /// code path a serving deployment would. The trajectory stays
  /// bit-identical to the inline path at every worker count.
  int server_workers = 0;
  /// Cache policy of the server-mode ticks (ignored inline): repeated
  /// round snapshots -- retried ticks, simulation replays -- are answered
  /// from the server's content-addressed SolveCache. A hit is
  /// bit-identical to a cold solve, so the trajectory is unchanged by the
  /// mode; only tick latency varies. kDefault keeps the server's own
  /// default (off).
  engine::CacheMode cache_mode = engine::CacheMode::kDefault;
  /// Event-driven maintenance mode: the platform owns a grid index plus
  /// an index::DeltaGraph across the whole run and feeds each tick's
  /// world changes to them as deltas (task expirations, workers leaving
  /// on assignment and returning on arrival) instead of rebuilding the
  /// candidate graph from the snapshot every round. Inline-only
  /// (server_workers must be 0). The simulated trajectory -- every
  /// assignment, answer, and objective -- is bit-identical to the
  /// rebuild path; Debug builds assert graph equality every tick.
  bool streaming = false;
  /// Optional metrics sink (unowned; must outlive Run()). Records the
  /// counters sim.rounds / sim.assignments / sim.answers and the
  /// per-round histograms sim.round_solve_seconds and (inline path)
  /// sim.round_build_seconds -- the graph-maintenance phase, i.e. full
  /// CandidateGraph::Build per tick vs. the streaming delta repair (all
  /// labeled {solver}); in server mode the registry is also attached to the
  /// server's engine, so the engine.stage_seconds breakdown lands next
  /// to the sim metrics. Purely observational: the simulated trajectory
  /// is bit-identical with or without it.
  obs::Registry* metrics = nullptr;
};

/// One answer produced by a worker reaching a task site.
struct Answer {
  core::TaskId task = core::kNoTask;
  core::WorkerId worker = core::kNoWorker;
  double angle = 0.0;    ///< achieved shooting direction at the site
  double time = 0.0;     ///< timestamp of the answer
  double quality = 0.0;  ///< photo quality proxy in [0, 1]
};

/// Snapshot of the platform objectives after one update round.
struct RoundRecord {
  double time = 0.0;
  int newly_assigned = 0;
  core::ObjectiveValue objectives;
};

/// Outcome of a full platform run.
struct PlatformResult {
  core::ObjectiveValue final_objectives;
  std::vector<RoundRecord> rounds;
  std::vector<Answer> answers;
  int assignments_made = 0;
  int answers_received = 0;
  /// Mean of the paper's answer accuracy measure
  /// beta*dtheta/pi + (1-beta)*dt/(e-s); lower is better.
  double mean_accuracy_error = 0.0;
};

/// Discrete-time platform simulator implementing the incremental updating
/// strategy of Figure 10: every `t_interval` the available workers are
/// re-assigned to the open tasks by the supplied solver, workers travel to
/// their sites, and answers materialize with the workers' confidences.
class Platform {
 public:
  /// Resolves `config.solver_name` through the global SolverRegistry and
  /// owns the resulting solver. An unknown name is not fatal here -- it
  /// surfaces from Run() as kNotFound.
  explicit Platform(PlatformConfig config);

  /// Runs the full horizon and reports the final objectives, computed from
  /// received answers plus still-pending assignments (Section 8.1's
  /// "considering A and S_c"). Propagates solver-construction and
  /// per-round solve failures.
  util::StatusOr<PlatformResult> Run();

 private:
  PlatformConfig config_;
  util::Status init_status_;
  std::unique_ptr<core::Solver> solver_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_PLATFORM_H_
