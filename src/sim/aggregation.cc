#include "sim/aggregation.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "geo/angle.h"

namespace rdbsc::sim {

std::vector<Answer> AggregateAnswers(const core::Task& task,
                                     const std::vector<Answer>& answers,
                                     const AggregationConfig& config) {
  assert(config.angle_buckets > 0 && config.time_buckets > 0);
  const double duration = task.Duration();

  // (angle bucket, time bucket) -> best answer seen so far.
  std::map<std::pair<int, int>, Answer> best;
  for (const Answer& answer : answers) {
    double angle = geo::NormalizeAngle(answer.angle);
    int ab = std::min(config.angle_buckets - 1,
                      static_cast<int>(angle / geo::kTwoPi *
                                       config.angle_buckets));
    double frac =
        std::clamp((answer.time - task.start) / duration, 0.0, 1.0);
    int tb = std::min(config.time_buckets - 1,
                      static_cast<int>(frac * config.time_buckets));
    auto key = std::make_pair(ab, tb);
    auto it = best.find(key);
    if (it == best.end() || answer.quality > it->second.quality) {
      best[key] = answer;
    }
  }

  std::vector<Answer> representatives;
  representatives.reserve(best.size());
  for (const auto& [key, answer] : best) representatives.push_back(answer);
  return representatives;
}

}  // namespace rdbsc::sim
