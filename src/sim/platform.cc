#include "sim/platform.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <numbers>
#include <utility>
#include <vector>

#include "core/diversity.h"
#include "core/registry.h"
#include "engine/server.h"
#include "index/delta_graph.h"
#include "index/grid_index.h"
#include "util/config.h"
#include "util/deadline.h"
#include "geo/angle.h"
#include "util/math.h"
#include "util/rng.h"

namespace rdbsc::sim {
namespace {

// Mutable worker state tracked across rounds.
struct MobileWorker {
  core::Worker profile;  ///< profile.location tracks the current position
  bool traveling = false;
  double arrival_time = 0.0;
  core::TaskId target = core::kNoTask;
};

// Mutable task state: the site, its requirements, and its contributions.
struct Site {
  core::Task task;
  double required_angle = 0.0;  ///< desired shooting direction
  std::vector<core::Observation> contributions;
  int pending = 0;  ///< workers en route
};

/// Grid granularity of the streaming-mode index. The campus is a few
/// thousandths of the unit square, so one ~0.05 cell typically holds the
/// whole scene -- the streaming win here is row reuse across ticks, not
/// spatial pruning (that is fig17's subject).
constexpr double kStreamingEta = 0.05;

core::ObjectiveValue ComputeObjectives(const std::vector<Site>& sites) {
  core::ObjectiveValue value;
  double min_r = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const Site& site : sites) {
    if (site.contributions.empty()) continue;
    any = true;
    double r = 0.0;
    for (const core::Observation& obs : site.contributions) {
      r += util::ReliabilityWeight(obs.confidence);
    }
    min_r = std::min(min_r, r);
    value.total_std += core::ExpectedStd(site.task, site.contributions);
  }
  value.min_reliability = any ? util::ReducedToProbability(min_r) : 0.0;
  return value;
}

}  // namespace

Platform::Platform(PlatformConfig config) : config_(std::move(config)) {
  util::StatusOr<std::unique_ptr<core::Solver>> created =
      core::SolverRegistry::Global().Create(config_.solver_name,
                                            config_.solver_options);
  if (created.ok()) {
    solver_ = std::move(created).value();
  } else {
    init_status_ = created.status();
    return;  // Run() only reports init_status_; don't spawn idle threads
  }
  // In server mode every tick solves through the engine::Server, which
  // owns its own dispatch threads -- the platform pool would sit idle.
  if (config_.num_threads > 1 && config_.server_workers <= 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

util::StatusOr<PlatformResult> Platform::Run() {
  if (!init_status_.ok()) return init_status_;
  if (config_.streaming && config_.server_workers > 0) {
    return util::Status::InvalidArgument(
        "streaming platform mode is inline-only (server_workers must be 0)");
  }
  util::Rng rng(config_.seed);
  PlatformResult result;

  // Optional observability: resolve the handles once, record per round.
  obs::Counter* m_rounds = nullptr;
  obs::Counter* m_assignments = nullptr;
  obs::Counter* m_answers = nullptr;
  obs::Histogram* m_round_solve = nullptr;
  obs::Histogram* m_round_build = nullptr;
  if (config_.metrics != nullptr) {
    const obs::Labels labels = {{"solver", config_.solver_name}};
    m_rounds = &config_.metrics->GetCounter("sim.rounds", labels);
    m_assignments =
        &config_.metrics->GetCounter("sim.assignments", labels);
    m_answers = &config_.metrics->GetCounter("sim.answers", labels);
    m_round_solve = &config_.metrics->GetHistogram(
        "sim.round_solve_seconds", labels, 1e-9);
    m_round_build = &config_.metrics->GetHistogram(
        "sim.round_build_seconds", labels, 1e-9);
  }

  // Optional async admission path: ticks submit through an engine::Server
  // instead of solving inline. Brute-force graph construction keeps the
  // candidate graph identical to the inline CandidateGraph::Build below,
  // and the per-ticket fresh solver reproduces the reused solver_ bit for
  // bit (every solver reseeds from its options per solve).
  std::unique_ptr<rdbsc::engine::Server> server;
  if (config_.server_workers > 0) {
    rdbsc::engine::ServerConfig server_config;
    server_config.engine.solver_name = config_.solver_name;
    server_config.engine.solver_options = config_.solver_options;
    server_config.engine.graph_strategy = GraphStrategy::kBruteForce;
    server_config.engine.validate_instances = false;
    server_config.num_workers = config_.server_workers;
    server_config.cache_mode = config_.cache_mode;
    server_config.engine.metrics = config_.metrics;
    util::StatusOr<std::unique_ptr<rdbsc::engine::Server>> created =
        rdbsc::engine::Server::Create(std::move(server_config));
    if (!created.ok()) return created.status();
    server = std::move(created).value();
  }

  // --- Set up the campus: sites clustered around the center. ---
  const geo::Point center{0.5, 0.5};
  std::vector<Site> sites;
  sites.reserve(config_.num_sites);
  for (int s = 0; s < config_.num_sites; ++s) {
    Site site;
    double angle = rng.Uniform(0.0, geo::kTwoPi);
    double radius = rng.Uniform(0.2, 1.0) * config_.site_spread;
    site.task.location = {center.x + radius * std::cos(angle),
                          center.y + radius * std::sin(angle)};
    site.task.start = 0.0;
    site.task.end = config_.task_open_time;
    site.task.beta = rng.Uniform(config_.beta_min, config_.beta_max);
    site.required_angle = rng.Uniform(0.0, geo::kTwoPi);
    sites.push_back(site);
  }

  // --- The user pool: free-roaming workers near campus. ---
  std::vector<MobileWorker> workers(config_.num_workers);
  for (MobileWorker& mw : workers) {
    double angle = rng.Uniform(0.0, geo::kTwoPi);
    double radius = rng.Uniform(0.5, 3.0) * config_.site_spread;
    mw.profile.location = {center.x + radius * std::cos(angle),
                           center.y + radius * std::sin(angle)};
    mw.profile.velocity =
        rng.Uniform(config_.worker_speed_min, config_.worker_speed_max);
    mw.profile.direction = geo::AngularInterval::FullCircle();
    mw.profile.confidence = rng.TruncatedGaussian(
        (config_.p_min + config_.p_max) / 2.0, 0.05, config_.p_min,
        config_.p_max);
  }

  // --- Streaming mode: a run-lifetime index + delta graph, maintained
  // event-by-event (arrivals, expirations, completions) instead of being
  // rebuilt from the snapshot every tick. ---
  std::unique_ptr<index::GridIndex> sindex;
  std::unique_ptr<index::DeltaGraph> sdelta;
  std::vector<char> task_indexed;
  if (config_.streaming) {
    sindex = std::make_unique<index::GridIndex>(
        kStreamingEta, /*now=*/0.0, core::ArrivalPolicy::kStrict);
    sdelta = std::make_unique<index::DeltaGraph>();
    task_indexed.assign(static_cast<size_t>(config_.num_sites), 1);
    for (core::TaskId i = 0; i < config_.num_sites; ++i) {
      sindex->InsertTask(i, sites[i].task).ok();
    }
    for (core::WorkerId j = 0; j < config_.num_workers; ++j) {
      sindex->InsertWorker(j, workers[j].profile).ok();
      sdelta->AddRow(j).ok();
    }
  }

  double accuracy_error_sum = 0.0;

  auto deliver_arrivals = [&](double until) {
    for (core::WorkerId j = 0; j < config_.num_workers; ++j) {
      MobileWorker& mw = workers[j];
      if (!mw.traveling || mw.arrival_time > until) continue;
      Site& site = sites[mw.target];
      const geo::Point approach_from = mw.profile.location;
      mw.traveling = false;
      mw.profile.location = site.task.location;
      --site.pending;
      // The worker succeeds with its confidence; otherwise the task request
      // was rejected / answered wrongly and yields nothing.
      if (rng.Bernoulli(mw.profile.confidence)) {
        Answer answer;
        answer.task = mw.target;
        answer.worker = j;
        // Achieved angle: the approach direction with a little aiming noise.
        answer.angle = geo::NormalizeAngle(
            geo::Bearing(site.task.location, approach_from) +
            rng.Gaussian(0.0, 0.1));
        answer.time = std::clamp(mw.arrival_time, site.task.start,
                                 site.task.end);
        answer.quality = rng.Uniform(0.5, 1.0) * mw.profile.confidence;
        result.answers.push_back(answer);
        ++result.answers_received;

        // Received answers are certain contributions.
        site.contributions.push_back(core::Observation{
            .angle = answer.angle,
            .arrival = answer.time,
            .confidence = 1.0});

        // The paper's per-answer accuracy (Section 8.1):
        // beta * dtheta / pi + (1 - beta) * dt / (e - s).
        double dtheta = std::min(
            geo::CcwDelta(site.required_angle, answer.angle),
            geo::CcwDelta(answer.angle, site.required_angle));
        double required_time = 0.5 * (site.task.start + site.task.end);
        double dt = std::fabs(answer.time - required_time);
        accuracy_error_sum +=
            site.task.beta * dtheta / std::numbers::pi +
            (1.0 - site.task.beta) * dt / site.task.Duration();
      }
      mw.target = core::kNoTask;
      // Completion event: the worker is assignable again from the site.
      if (sindex != nullptr) {
        sindex->InsertWorker(j, mw.profile).ok();
        sdelta->AddRow(j).ok();
      }
    }
  };

  // --- Incremental updating loop (Figure 10). ---
  for (double t = 0.0; t < config_.horizon; t += config_.t_interval) {
    deliver_arrivals(t);

    // Streaming maintenance: expire closed tasks as delta events, then
    // advance the shared clock (validity windows only ever shrink).
    if (sindex != nullptr) {
      for (core::TaskId i = 0; i < config_.num_sites; ++i) {
        if (task_indexed[static_cast<size_t>(i)] != 0 &&
            sites[i].task.end < t) {
          sindex->RemoveTask(i).ok();
          sdelta->OnTaskRemoved(i);
          task_indexed[static_cast<size_t>(i)] = 0;
        }
      }
      sindex->set_now(t);
    }

    // Snapshot the open tasks and available workers.
    std::vector<core::Task> open_tasks;
    std::vector<core::TaskId> open_ids;
    for (core::TaskId i = 0; i < config_.num_sites; ++i) {
      if (sites[i].task.end >= t) {
        open_tasks.push_back(sites[i].task);
        open_ids.push_back(i);
      }
    }
    std::vector<core::Worker> free_workers;
    std::vector<core::WorkerId> free_ids;
    for (core::WorkerId j = 0; j < config_.num_workers; ++j) {
      if (!workers[j].traveling) {
        free_workers.push_back(workers[j].profile);
        free_ids.push_back(j);
      }
    }
    if (open_tasks.empty() || free_workers.empty()) continue;

    core::Instance snapshot(std::move(open_tasks), std::move(free_workers),
                            /*now=*/t, core::ArrivalPolicy::kStrict);
    core::SolveResult solve;
    const auto solve_start = std::chrono::steady_clock::now();
    if (server != nullptr) {
      // Async admission path: the tick is one server request (priority 0,
      // unlimited budget -- the simulator has no per-tick budget).
      util::StatusOr<rdbsc::engine::Ticket> ticket =
          server->Submit(snapshot);
      if (!ticket.ok()) return ticket.status();
      const util::StatusOr<EngineResult>& run = ticket.value().Wait();
      if (!run.ok()) return run.status();
      solve = run.value().solve;
    } else {
      // Inline path: graph build and solve run through the platform pool.
      // Streaming mode repairs the delta-maintained rows and remaps them
      // into the snapshot's local id space instead of paying the O(m*n)
      // build; the edge set is identical by the DeltaGraph contract.
      const auto build_start = std::chrono::steady_clock::now();
      core::CandidateGraph graph = [&] {
        if (sindex == nullptr) {
          return core::CandidateGraph::Build(snapshot, pool_.get(),
                                             util::Deadline())
              .value();
        }
        sdelta->RepairRows(*sindex).ok();
        std::vector<core::TaskId> task_local(
            static_cast<size_t>(config_.num_sites), core::kNoTask);
        for (size_t k = 0; k < open_ids.size(); ++k) {
          task_local[static_cast<size_t>(open_ids[k])] =
              static_cast<core::TaskId>(k);
        }
        std::vector<core::WorkerId> worker_local(
            static_cast<size_t>(config_.num_workers), core::kNoWorker);
        for (size_t k = 0; k < free_ids.size(); ++k) {
          worker_local[static_cast<size_t>(free_ids[k])] =
              static_cast<core::WorkerId>(k);
        }
        // Global ids map to locals monotonically (both id lists are
        // ascending), so each remapped row stays sorted as FromEdges
        // expects.
        const auto flat = sdelta->Pairs();
        std::vector<std::vector<core::TaskId>> edges(
            static_cast<size_t>(snapshot.num_workers()));
        // The flat list is worker-grouped: remap one run at a time so
        // each local row is reserved once instead of grown per edge.
        for (size_t a = 0; a < flat.size();) {
          size_t b = a;
          while (b < flat.size() && flat[b].first == flat[a].first) ++b;
          const core::WorkerId lj =
              worker_local[static_cast<size_t>(flat[a].first)];
          if (lj != core::kNoWorker) {
            std::vector<core::TaskId>& row = edges[static_cast<size_t>(lj)];
            row.reserve(b - a);
            for (size_t k = a; k < b; ++k) {
              const core::TaskId li =
                  task_local[static_cast<size_t>(flat[k].second)];
              if (li != core::kNoTask) row.push_back(li);
            }
          }
          a = b;
        }
        return core::CandidateGraph::FromEdges(snapshot, std::move(edges));
      }();
      if (m_round_build != nullptr) {
        m_round_build->Observe(util::SecondsSince(build_start));
      }
#ifndef NDEBUG
      if (sindex != nullptr) {
        // Streaming contract: the delta-maintained graph is bit-identical
        // to the per-tick rebuild, every tick.
        const core::CandidateGraph oracle =
            core::CandidateGraph::Build(snapshot, pool_.get(),
                                        util::Deadline())
                .value();
        for (core::WorkerId lj = 0; lj < snapshot.num_workers(); ++lj) {
          const auto mine = graph.TasksOf(lj);
          const auto want = oracle.TasksOf(lj);
          assert(std::equal(mine.begin(), mine.end(), want.begin(),
                            want.end()) &&
                 "streaming graph diverged from per-tick rebuild");
        }
      }
#endif
      core::SolveRequest request;
      request.instance = &snapshot;
      request.graph = &graph;
      request.executor = pool_.get();
      util::StatusOr<core::SolveResult> solved = solver_->Solve(request);
      if (!solved.ok()) return solved.status();
      solve = std::move(solved).value();
    }

    if (m_round_solve != nullptr) {
      m_round_solve->Observe(util::SecondsSince(solve_start));
      m_rounds->Increment();
    }

    RoundRecord record;
    record.time = t;
    for (core::WorkerId lj = 0; lj < snapshot.num_workers(); ++lj) {
      core::TaskId li = solve.assignment.TaskOf(lj);
      if (li == core::kNoTask) continue;
      MobileWorker& mw = workers[free_ids[lj]];
      Site& site = sites[open_ids[li]];
      mw.traveling = true;
      mw.target = open_ids[li];
      // Departure event: the worker leaves the assignable pool.
      if (sindex != nullptr) {
        sindex->RemoveWorker(free_ids[lj]).ok();
        sdelta->RemoveRow(free_ids[lj]).ok();
      }
      mw.arrival_time =
          core::ArrivalTime(mw.profile, site.task, t,
                            core::ArrivalPolicy::kStrict);
      ++site.pending;
      ++record.newly_assigned;
      ++result.assignments_made;
      if (m_assignments != nullptr) m_assignments->Increment();

      // Pending assignments contribute with the worker's confidence
      // (removed again if the answer never materializes -- modeled by
      // keeping only realized answers in `contributions`; the round
      // objectives add pending observations on the fly below).
    }

    // Round objectives: realized answers plus en-route workers.
    std::vector<Site> preview = sites;
    for (core::WorkerId j = 0; j < config_.num_workers; ++j) {
      const MobileWorker& mw = workers[j];
      if (!mw.traveling) continue;
      Site& site = preview[mw.target];
      site.contributions.push_back(core::Observation{
          .angle = geo::Bearing(site.task.location, mw.profile.location),
          .arrival = std::clamp(mw.arrival_time, site.task.start,
                                site.task.end),
          .confidence = mw.profile.confidence});
    }
    record.objectives = ComputeObjectives(preview);
    result.rounds.push_back(record);
  }

  deliver_arrivals(config_.horizon + 10.0);  // flush everyone still en route
  if (m_answers != nullptr) m_answers->Increment(result.answers_received);
  result.final_objectives = ComputeObjectives(sites);
  result.mean_accuracy_error =
      result.answers_received > 0
          ? accuracy_error_sum / result.answers_received
          : 0.0;
  return result;
}

}  // namespace rdbsc::sim
