#include "sim/streaming.h"

#include <memory>
#include <utility>

#include "core/registry.h"

namespace rdbsc::sim {
namespace {

/// Fallback grid granularity when the config leaves eta unset: sized for
/// the small-extent scenes streaming sessions start from (cf. the
/// platform's campus). Callers with known geometry pass config.eta.
constexpr double kDefaultStreamingEta = 0.05;

}  // namespace

util::StatusOr<std::unique_ptr<StreamingSession>> StreamingSession::Create(
    const rdbsc::EngineConfig& config, MaintenanceMode mode,
    core::ArrivalPolicy policy) {
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config.solver_name,
                                            config.solver_options);
  if (!solver.ok()) return solver.status();
  const double eta = config.eta > 0.0 ? config.eta : kDefaultStreamingEta;
  return std::unique_ptr<StreamingSession>(
      new StreamingSession(std::move(solver).value(), eta, mode, policy,
                           config.metrics));
}

StreamingSession::StreamingSession(std::unique_ptr<core::Solver> solver,
                                   double eta, MaintenanceMode mode,
                                   core::ArrivalPolicy policy,
                                   obs::Registry* metrics)
    : solver_(std::move(solver)),
      assigner_(std::make_unique<IncrementalAssigner>(solver_.get(), eta,
                                                      policy)) {
  assigner_->set_maintenance_mode(mode);
  if (metrics != nullptr) assigner_->set_metrics(metrics);
}

util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
StreamingSession::Round(const EventBatch& batch) {
  if (util::Status applied = assigner_->ApplyEvents(batch); !applied.ok()) {
    return applied;
  }
  return assigner_->Update(batch.now);
}

}  // namespace rdbsc::sim
