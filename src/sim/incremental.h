#ifndef RDBSC_SIM_INCREMENTAL_H_
#define RDBSC_SIM_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/assignment.h"
#include "core/diversity.h"
#include "core/model.h"
#include "core/solver.h"
#include "index/delta_graph.h"
#include "index/grid_index.h"
#include "obs/registry.h"
#include "sim/events.h"
#include "util/hash.h"
#include "util/status.h"

namespace rdbsc::sim {

/// Round-reuse counters of an IncrementalAssigner (see Update): how many
/// rounds ran and how many of them replayed the previous round's candidate
/// graph instead of retrieving pairs from the index again.
struct RoundCacheStats {
  int64_t rounds = 0;
  int64_t graph_reuses = 0;
};

/// How an IncrementalAssigner keeps its candidate edge set current.
enum class MaintenanceMode {
  /// Event-driven deltas (index::DeltaGraph): mutations patch only the
  /// affected rows and Update repairs just the horizon-expired ones.
  /// Bit-identical to kRebuild by contract (Debug builds cross-check
  /// every round; tests/delta_index_test.cc proves it property-style).
  kDelta,
  /// Full RetrievePairs scan every non-memoized round -- the paper's
  /// baseline, kept as the reference oracle and benchmark counterpart.
  kRebuild,
};

/// The incremental updating strategy of Figure 10, decoupled from the toy
/// platform: tasks and workers arrive and leave dynamically, the
/// RDB-SC-Grid index maintains them, and each Update(now) round assigns the
/// currently available workers to the currently open tasks with the
/// supplied solver, *keeping* earlier commitments (line 7, S = S u S_c).
///
/// External ids are caller-chosen and stable; internally each round builds
/// a compact snapshot instance for the solver.
///
/// Thread safety: single-threaded by design -- one owner drives the
/// AddTask/AddWorker/Update/Complete lifecycle (parallelism lives inside
/// the solver/index, behind this facade). The unordered registries below
/// are therefore unguarded; what *is* enforced (tools/lint_invariants.py)
/// is that no result-feeding path iterates them in hash order --
/// Update/Objectives walk sorted id vectors so every outcome is
/// bit-identical however the registries were populated.
class IncrementalAssigner {
 public:
  /// `solver` must outlive the assigner. `eta` sizes the grid index (use
  /// index::OptimalEta); `policy` is applied to every validity test.
  IncrementalAssigner(core::Solver* solver, double eta,
                      core::ArrivalPolicy policy =
                          core::ArrivalPolicy::kAllowWait);

  /// Registers a new open task; fails on duplicate id.
  util::Status AddTask(core::TaskId id, const core::Task& task);
  /// Removes a task (completed or expired); its workers become available.
  util::Status RemoveTask(core::TaskId id);
  /// Registers an available worker; fails on duplicate id.
  util::Status AddWorker(core::WorkerId id, const core::Worker& worker);
  /// Deregisters a worker (left the system); any commitment is dropped.
  util::Status RemoveWorker(core::WorkerId id);

  /// Marks a committed worker as done with its task (answer received or
  /// rejected): the commitment is kept for objective accounting but the
  /// worker becomes assignable again from `position`.
  util::Status CompleteWorker(core::WorkerId id, geo::Point position);

  /// Moves an *available* worker to `to`. A same-cell move touches no
  /// index summaries at all; a cross-cell move repairs exactly two cells.
  /// Either way only the worker's own candidate row is invalidated.
  /// Fails with kNotFound for unknown ids, kFailedPrecondition for busy
  /// (committed, un-indexed) workers.
  util::Status MoveWorker(core::WorkerId id, geo::Point to);

  /// Applies one round's event batch in the canonical type-major order
  /// (expired, completed, arrived, moved; ascending id within each group
  /// -- the batch is canonicalized internally) after advancing the clock
  /// to `batch.now`. Stops at the first failing event; already-applied
  /// events stay applied. The usual streaming round is
  /// `ApplyEvents(batch)` then `Update(batch.now)`.
  util::Status ApplyEvents(const EventBatch& batch);

  /// Switches maintenance strategy. Entering kDelta resynchronizes the
  /// delta graph from the index (every row reborn dirty), so the switch
  /// is allowed at any point of the lifecycle.
  void set_maintenance_mode(MaintenanceMode mode);
  MaintenanceMode maintenance_mode() const { return mode_; }

  /// Optional metrics sink (unowned; must outlive the assigner). Each
  /// Update reports that round's maintenance work as sim.delta.* counter
  /// increments (cells_touched, edges_repaired, rows_recomputed,
  /// rows_reused, compactions, bulk_refills).
  void set_metrics(obs::Registry* metrics);

  /// Cumulative delta-maintenance cost counters (all zero in kRebuild).
  const index::DeltaStats& delta_stats() const { return delta_.stats(); }

  /// The maintained grid index (inspection / tests).
  const index::GridIndex& index() const { return index_; }

  /// One round of Figure 10: assigns available workers to open tasks that
  /// are still live at `now` (expired tasks are dropped first). Returns
  /// the pairs newly committed this round, or the solver's failure (no
  /// commitments are made on a failed round).
  ///
  /// Rounds are content-fingerprinted (core::InstanceFingerprint over the
  /// compact snapshot, which includes `now`): when a round's snapshot is
  /// bit-identical to the previous one -- common in event-driven callers
  /// that re-Update after no-op events, and whenever the last round
  /// committed nothing -- the index retrieval and graph construction are
  /// skipped and the cached candidate graph is replayed. The solver still
  /// runs (it is a pure function of snapshot + graph), so commitments are
  /// identical with and without the reuse.
  util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
  Update(double now);

  /// Graph-reuse counters accumulated across Update calls.
  const RoundCacheStats& round_cache_stats() const { return round_stats_; }

  /// Current task of a worker, or kNoTask.
  core::TaskId CommittedTask(core::WorkerId id) const;

  /// Objectives of the cumulative commitments (per-task contributions of
  /// all committed workers, pending and completed).
  core::ObjectiveValue Objectives() const;

  int num_open_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct WorkerRecord {
    core::Worker worker;
    core::TaskId committed = core::kNoTask;
    bool busy = false;
    /// Observation captured at commit time (for objective accounting).
    core::Observation observation;
  };

  /// A task's lifetime record: the task itself plus every committed
  /// contribution (kept after the task closes, for objective accounting).
  struct LedgerEntry {
    core::Task task;
    std::vector<std::pair<core::WorkerId, core::Observation>> contributions;
  };

  /// Rebuilds the delta graph's row set from the current index contents
  /// (used when entering kDelta mid-lifecycle).
  void ResyncDelta();
  /// Sends the per-round diff of delta_.stats() to the metrics sink.
  void ReportDeltaMetrics();

  core::Solver* solver_;
  core::ArrivalPolicy policy_;
  double eta_;
  index::GridIndex index_;
  MaintenanceMode mode_ = MaintenanceMode::kDelta;
  index::DeltaGraph delta_;
  /// stats() watermark of the last ReportDeltaMetrics call.
  index::DeltaStats reported_delta_;
  obs::Registry* metrics_ = nullptr;
  std::unordered_map<core::TaskId, core::Task> tasks_;
  std::unordered_map<core::WorkerId, WorkerRecord> workers_;
  std::unordered_map<core::TaskId, LedgerEntry> ledger_;

  /// One-round graph memo: the previous snapshot's fingerprint and the
  /// candidate graph built for it. Content-addressed, so it never needs
  /// explicit invalidation -- any membership / position / time change
  /// produces a different fingerprint and falls through to a fresh build.
  bool has_graph_memo_ = false;
  util::Hash128 graph_memo_key_{};
  std::shared_ptr<const core::CandidateGraph> graph_memo_;
  RoundCacheStats round_stats_;
};

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_INCREMENTAL_H_
