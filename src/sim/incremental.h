#ifndef RDBSC_SIM_INCREMENTAL_H_
#define RDBSC_SIM_INCREMENTAL_H_

#include <unordered_map>
#include <vector>

#include "core/assignment.h"
#include "core/diversity.h"
#include "core/model.h"
#include "core/solver.h"
#include "index/grid_index.h"
#include "util/status.h"

namespace rdbsc::sim {

/// The incremental updating strategy of Figure 10, decoupled from the toy
/// platform: tasks and workers arrive and leave dynamically, the
/// RDB-SC-Grid index maintains them, and each Update(now) round assigns the
/// currently available workers to the currently open tasks with the
/// supplied solver, *keeping* earlier commitments (line 7, S = S u S_c).
///
/// External ids are caller-chosen and stable; internally each round builds
/// a compact snapshot instance for the solver.
class IncrementalAssigner {
 public:
  /// `solver` must outlive the assigner. `eta` sizes the grid index (use
  /// index::OptimalEta); `policy` is applied to every validity test.
  IncrementalAssigner(core::Solver* solver, double eta,
                      core::ArrivalPolicy policy =
                          core::ArrivalPolicy::kAllowWait);

  /// Registers a new open task; fails on duplicate id.
  util::Status AddTask(core::TaskId id, const core::Task& task);
  /// Removes a task (completed or expired); its workers become available.
  util::Status RemoveTask(core::TaskId id);
  /// Registers an available worker; fails on duplicate id.
  util::Status AddWorker(core::WorkerId id, const core::Worker& worker);
  /// Deregisters a worker (left the system); any commitment is dropped.
  util::Status RemoveWorker(core::WorkerId id);

  /// Marks a committed worker as done with its task (answer received or
  /// rejected): the commitment is kept for objective accounting but the
  /// worker becomes assignable again from `position`.
  util::Status CompleteWorker(core::WorkerId id, geo::Point position);

  /// One round of Figure 10: assigns available workers to open tasks that
  /// are still live at `now` (expired tasks are dropped first). Returns
  /// the pairs newly committed this round, or the solver's failure (no
  /// commitments are made on a failed round).
  util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
  Update(double now);

  /// Current task of a worker, or kNoTask.
  core::TaskId CommittedTask(core::WorkerId id) const;

  /// Objectives of the cumulative commitments (per-task contributions of
  /// all committed workers, pending and completed).
  core::ObjectiveValue Objectives() const;

  int num_open_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct WorkerRecord {
    core::Worker worker;
    core::TaskId committed = core::kNoTask;
    bool busy = false;
    /// Observation captured at commit time (for objective accounting).
    core::Observation observation;
  };

  /// A task's lifetime record: the task itself plus every committed
  /// contribution (kept after the task closes, for objective accounting).
  struct LedgerEntry {
    core::Task task;
    std::vector<std::pair<core::WorkerId, core::Observation>> contributions;
  };

  core::Solver* solver_;
  core::ArrivalPolicy policy_;
  double eta_;
  index::GridIndex index_;
  std::unordered_map<core::TaskId, core::Task> tasks_;
  std::unordered_map<core::WorkerId, WorkerRecord> workers_;
  std::unordered_map<core::TaskId, LedgerEntry> ledger_;
};

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_INCREMENTAL_H_
