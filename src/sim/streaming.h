#ifndef RDBSC_SIM_STREAMING_H_
#define RDBSC_SIM_STREAMING_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/model.h"
#include "core/solver.h"
#include "engine/engine.h"
#include "sim/events.h"
#include "sim/incremental.h"
#include "util/status.h"

namespace rdbsc::sim {

/// The engine-layer streaming entry point: a long-lived session that
/// consumes typed event batches and runs one assignment round per batch
/// (`ApplyEvents -> Solve`), with the index and candidate graph maintained
/// as deltas between rounds instead of being rebuilt.
///
/// Configured like a one-shot engine (solver name/options, eta, metrics
/// all come from engine::EngineConfig) so callers can switch an existing
/// engine::Engine::Run loop to streaming without a second config type.
/// The round trajectory is bit-identical to MaintenanceMode::kRebuild --
/// and to feeding the same world states through one-shot engine runs with
/// the same solver -- by the DeltaGraph contract.
class StreamingSession {
 public:
  /// Resolves the solver through the global registry; fails with its
  /// kNotFound on unknown names. `config.eta` sizes the grid index
  /// (<= 0 falls back to a small-campus default); `config.metrics`, when
  /// set, receives the per-round sim.delta.* maintenance counters.
  static util::StatusOr<std::unique_ptr<StreamingSession>> Create(
      const rdbsc::EngineConfig& config,
      MaintenanceMode mode = MaintenanceMode::kDelta,
      core::ArrivalPolicy policy = core::ArrivalPolicy::kAllowWait);

  /// One streaming round: applies `batch` (canonical type-major order,
  /// clock advanced to batch.now) and assigns the now-available workers
  /// to the now-open tasks. Returns the newly committed pairs.
  util::StatusOr<std::vector<std::pair<core::TaskId, core::WorkerId>>>
  Round(const EventBatch& batch);

  /// The underlying assigner, for direct AddTask/AddWorker bootstrap,
  /// objectives, and stats inspection.
  IncrementalAssigner& assigner() { return *assigner_; }
  const IncrementalAssigner& assigner() const { return *assigner_; }

 private:
  StreamingSession(std::unique_ptr<core::Solver> solver, double eta,
                   MaintenanceMode mode, core::ArrivalPolicy policy,
                   obs::Registry* metrics);

  std::unique_ptr<core::Solver> solver_;
  std::unique_ptr<IncrementalAssigner> assigner_;
};

}  // namespace rdbsc::sim

#endif  // RDBSC_SIM_STREAMING_H_
