#include "engine/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "engine/fingerprint.h"

namespace rdbsc::engine {
namespace {

using util::SecondsSince;

// Elapsed seconds between two steady_clock points.
double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const util::StatusOr<EngineResult>& Ticket::Wait() const {
  util::MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(lock);
  return state_->result;
}

const util::StatusOr<EngineResult>* Ticket::TryGet() const {
  util::MutexLock lock(state_->mu);
  return state_->done ? &state_->result : nullptr;
}

void Ticket::Cancel() { state_->cancel.Cancel(); }

bool Ticket::WaitFor(double seconds) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  util::MutexLock lock(state_->mu);
  while (!state_->done) {
    if (!state_->cv.WaitUntil(lock, deadline)) return state_->done;
  }
  return true;
}

util::StatusOr<std::unique_ptr<Server>> Server::Create(ServerConfig config) {
  config.num_workers = std::max(config.num_workers, 1);
  config.max_queue_depth = std::max(config.max_queue_depth, 1);
  // Concurrency comes from dispatching `num_workers` requests at once;
  // inside a request the pipeline runs serially on a fresh solver so the
  // result never depends on the worker count (determinism contract).
  config.engine.num_threads = 0;
  // kDefault is a SubmitControls sentinel; as a server default it means
  // "no default", i.e. off.
  if (config.cache_mode == CacheMode::kDefault) {
    config.cache_mode = CacheMode::kOff;
  }

  std::unique_ptr<Server> server(new Server());
  server->config_ = std::move(config);
  // Engine stage metrics default into the server-owned registry so one
  // snapshot shows the whole request path; an explicit external registry
  // in the config wins.
  if (server->config_.engine.metrics == nullptr) {
    server->config_.engine.metrics = &server->metrics_;
  }
  util::StatusOr<Engine> engine = Engine::Create(server->config_.engine);
  if (!engine.ok()) return engine.status();
  server->engine_ = std::move(engine).value();

  // Resolve the server.* metric handles once; the serving paths record
  // through plain pointers (see the member comment in server.h for the
  // under-mu_ counter discipline).
  obs::Registry& registry = server->metrics_;
  server->c_submitted_ = &registry.GetCounter("server.submitted");
  server->c_admitted_ = &registry.GetCounter("server.admitted");
  server->c_rejected_ = &registry.GetCounter("server.rejected");
  server->c_collapsed_ = &registry.GetCounter("server.collapsed");
  auto finished = [&registry](const char* outcome) {
    return &registry.GetCounter("server.finished", {{"outcome", outcome}});
  };
  server->c_finished_ok_ = finished("ok");
  server->c_finished_deadline_ = finished("deadline");
  server->c_finished_cancelled_ = finished("cancelled");
  server->c_finished_shed_ = finished("shed");
  server->c_finished_failed_ = finished("failed");
  server->c_cache_hits_ =
      &registry.GetCounter("server.cache", {{"outcome", "hit"}});
  server->c_cache_misses_ =
      &registry.GetCounter("server.cache", {{"outcome", "miss"}});
  auto latency = [&registry](const char* phase) {
    return &registry.GetHistogram("server.latency_seconds",
                                  {{"phase", phase}}, 1e-9);
  };
  server->lat_queue_ = latency("queue");
  server->lat_run_ = latency("run");
  server->lat_total_ = latency("total");

  server->budget_limited_ = server->config_.total_budget_seconds > 0.0;
  server->budget_remaining_ = server->config_.total_budget_seconds;
  if (server->config_.cache_result_entries > 0 ||
      server->config_.cache_graph_entries > 0) {
    // Capacities pass through verbatim: a zero tier stays disabled inside
    // the SolveCache (lookups miss, inserts dropped), so e.g.
    // {cache_result_entries = 4096, cache_graph_entries = 0} caches
    // results without ever pinning a heavy CandidateGraph.
    SolveCacheConfig cache_config;
    cache_config.result_capacity = server->config_.cache_result_entries;
    cache_config.graph_capacity = server->config_.cache_graph_entries;
    cache_config.num_shards =
        std::max(server->config_.num_workers, 4);
    server->cache_ = std::make_unique<SolveCache>(cache_config);
  }
  server->pool_ =
      std::make_unique<util::ThreadPool>(server->config_.num_workers);
  return server;
}

Server::~Server() { Shutdown(ShutdownMode::kCancel); }

void Server::Complete(const std::shared_ptr<internal::TicketState>& state,
                      util::StatusOr<EngineResult> result) {
  {
    util::MutexLock lock(state->mu);
    state->result = std::move(result);
    state->done = true;
  }
  state->cv.NotifyAll();
}

void Server::RecordFinishLocked(const internal::TicketState& state,
                                const util::Status& status) {
  const double total = SecondsSince(state.submit_time);
  lat_total_->Observe(total);
  latency_window_.Observe(total);
  if (state.dispatched) {
    // Only tickets that actually ran have a queue/run split; shed,
    // shutdown-cancelled, and collapsed-follower tickets spent their
    // whole life queued and appear in phase=total alone.
    lat_queue_->Observe(
        SecondsBetween(state.submit_time, state.dispatch_time));
    lat_run_->Observe(SecondsSince(state.dispatch_time));
  }
  switch (status.code()) {
    case util::StatusCode::kOk:
      c_finished_ok_->Increment();
      break;
    case util::StatusCode::kDeadlineExceeded:
      c_finished_deadline_->Increment();
      break;
    case util::StatusCode::kCancelled:
      c_finished_cancelled_->Increment();
      break;
    case util::StatusCode::kResourceExhausted:
      c_finished_shed_->Increment();
      break;
    default:
      c_finished_failed_->Increment();
      break;
  }
}

void Server::AbortTicketLocked(
    const std::shared_ptr<internal::TicketState>& state,
    const util::Status& status,
    std::vector<std::shared_ptr<internal::TicketState>>& out) {
  if (state->single_flight) {
    inflight_.erase(state->fingerprint);
    state->single_flight = false;
  }
  // The request never ran; drop its instance copy right away.
  state->instance = core::Instance();
  RecordFinishLocked(*state, status);
  out.push_back(state);
  // Collapsed duplicates share their leader's fate -- the leader is the
  // only copy of the work, so there is nothing left to run them against.
  for (std::shared_ptr<internal::TicketState>& follower : state->followers) {
    RecordFinishLocked(*follower, status);
    out.push_back(std::move(follower));
  }
  state->followers.clear();
}

util::StatusOr<Ticket> Server::Submit(core::Instance instance,
                                      const SubmitControls& controls) {
  // Resolve the cache policy and single-flight identity before taking
  // mu_: fingerprinting is O(instance) and must not serialize submitters.
  CacheMode mode = controls.cache == CacheMode::kDefault
                       ? config_.cache_mode
                       : controls.cache;
  if (cache_ == nullptr) mode = CacheMode::kOff;
  const double requested_budget = controls.budget_seconds >= 0.0
                                      ? controls.budget_seconds
                                      : config_.default_budget_seconds;
  // Single-flight needs outcome equivalence between "ran myself" and
  // "shared the leader's result"; a finite budget breaks that (the leader
  // may time out where this request would not), so only unlimited-budget
  // requests participate. A pool-limited server caps every budget, which
  // makes them finite too.
  // A request cancelled at dispatch must neither lead a group (followers
  // would inherit its kCancelled outcome) nor ride one (it would receive
  // the leader's OK result instead of cancelling).
  const bool single_flight_eligible =
      mode != CacheMode::kOff && requested_budget <= 0.0 &&
      !budget_limited_ && !controls.cancel_at_dispatch;
  // Only computed when this request could lead or ride a single-flight
  // group: RunIsolated derives its own cache key at dispatch, so hashing
  // here for ineligible requests would be pure admission-path overhead.
  util::Hash128 fingerprint{};
  if (single_flight_eligible) {
    fingerprint = engine_.ResultCacheKey(instance);
  }

  std::vector<std::shared_ptr<internal::TicketState>> aborted;
  Ticket ticket;
  {
    util::MutexLock lock(mu_);
    c_submitted_->Increment();
    if (closed_) {
      c_rejected_->Increment();
      return util::Status::FailedPrecondition("server is shut down");
    }

    // Single-flight collapse: an identical request is already queued or
    // in flight -- ride it instead of occupying a queue slot and a solve.
    // The follower consumes no pool budget (it runs nothing) and skips
    // overload handling entirely.
    if (single_flight_eligible && CacheModeReads(mode)) {
      if (auto it = inflight_.find(fingerprint); it != inflight_.end()) {
        const std::shared_ptr<internal::TicketState>& leader = it->second;
        // No priority inversion through the collapse: a follower more
        // urgent than its still-queued leader promotes the leader to its
        // own priority (keeping the leader's sequence number, so FIFO
        // order within the new priority band is preserved). An in-flight
        // leader is already past scheduling -- nothing to promote.
        if (controls.priority > leader->priority) {
          auto queued =
              queue_.find(QueueKey{leader->priority, leader->id});
          if (queued != queue_.end()) {
            queue_.erase(queued);
            leader->priority = controls.priority;
            queue_.emplace(QueueKey{leader->priority, leader->id}, leader);
          }
        }
        auto state = std::make_shared<internal::TicketState>();
        state->id = next_seq_++;
        state->priority = controls.priority;
        state->submit_time = std::chrono::steady_clock::now();
        state->cache_mode = mode;
        leader->followers.push_back(state);
        c_admitted_->Increment();
        c_collapsed_->Increment();
        return Ticket(std::move(state));
      }
    }

    // Pool-exhaustion is checked before overload handling: a request that
    // cannot be funded must not block for queue space, and above all must
    // not shed an already-admitted (and already-funded) victim only to be
    // rejected itself a few lines later.
    if (budget_limited_ && budget_remaining_ <= 0.0) {
      c_rejected_->Increment();
      return util::Status::ResourceExhausted("server budget pool exhausted");
    }

    // Overload handling at the queue bound.
    while (static_cast<int>(queue_.size()) >= config_.max_queue_depth) {
      switch (config_.overload_policy) {
        case OverloadPolicy::kReject:
          c_rejected_->Increment();
          return util::Status::ResourceExhausted(
              "admission queue full (kReject)");
        case OverloadPolicy::kBlock:
          while (!closed_ &&
                 static_cast<int>(queue_.size()) >= config_.max_queue_depth) {
            space_cv_.Wait(lock);
          }
          if (closed_) {
            c_rejected_->Increment();
            return util::Status::FailedPrecondition("server is shut down");
          }
          continue;
        case OverloadPolicy::kShedOldest: {
          // The oldest queued request (smallest sequence number across all
          // priorities) is dropped to make room.
          auto oldest = queue_.begin();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->first.seq < oldest->first.seq) oldest = it;
          }
          std::shared_ptr<internal::TicketState> victim = oldest->second;
          queue_.erase(oldest);
          // The victim never ran: return its budget to the pool and drop
          // its instance copy (AbortTicketLocked also releases any
          // collapsed duplicates riding it).
          if (budget_limited_) {
            budget_remaining_ += victim->budget_seconds;
          }
          AbortTicketLocked(
              victim, util::Status::ResourceExhausted("shed by queue overflow"),
              aborted);
          continue;
        }
      }
    }

    // Per-request budget, deducted from the server-wide pool. The pool is
    // re-checked here because a kBlock wait releases mu_: a competing
    // submitter may have drained the remainder while this one slept.
    double budget = requested_budget;
    if (budget_limited_) {
      if (budget_remaining_ <= 0.0) {
        c_rejected_->Increment();
        // This submitter may have consumed a queue-pop notification on
        // its way here (kBlock); pass the baton so the next blocked
        // submitter wakes up to claim the slot -- or to be rejected like
        // this one -- instead of hanging forever.
        space_cv_.NotifyOne();
        return util::Status::ResourceExhausted(
            "server budget pool exhausted");
      }
      if (budget <= 0.0 || budget > budget_remaining_) {
        budget = budget_remaining_;
      }
      budget_remaining_ -= budget;
    }

    auto state = std::make_shared<internal::TicketState>();
    state->id = next_seq_++;
    state->priority = controls.priority;
    state->submit_time = std::chrono::steady_clock::now();
    state->instance = std::move(instance);
    state->budget_seconds = budget;
    state->cache_mode = mode;
    state->cancel_at_dispatch = controls.cancel_at_dispatch;
    if (single_flight_eligible) {
      // A leader may have registered this fingerprint while mu_ was
      // released (a kBlock wait above), and write-only duplicates skip
      // the collapse check entirely -- so registration must be
      // conditional on actually inserting. Marking single_flight without
      // owning the entry would make this ticket's completion erase a
      // still-live leader's registration.
      if (auto [it, inserted] = inflight_.emplace(fingerprint, state);
          inserted) {
        state->fingerprint = fingerprint;
        state->single_flight = true;
      }
    }
    queue_.emplace(QueueKey{controls.priority, state->id}, state);
    c_admitted_->Increment();
    ++pending_pool_tasks_;
    ticket = Ticket(state);
    // One generic drain task per admission: each pool task pops whatever
    // is the best queued request at run time, so priorities hold even
    // though the pool's own queue is FIFO. A task finding the queue empty
    // (its request was shed or cancelled first) simply retires. Enqueued
    // under mu_ so Shutdown cannot observe the incremented task count and
    // join the pool before the task exists.
    pool_->Submit([this] { RunNext(); });
  }

  for (const auto& state : aborted) {
    Complete(state,
             util::Status::ResourceExhausted("shed by queue overflow"));
  }
  return ticket;
}

void Server::RunNext() {
  std::shared_ptr<internal::TicketState> state;
  bool is_leader = false;
  std::vector<std::shared_ptr<internal::TicketState>> aborted;
  {
    util::MutexLock lock(mu_);
    if (queue_.empty()) {
      if (--pending_pool_tasks_ == 0) idle_cv_.NotifyAll();
      return;
    }
    auto it = queue_.begin();
    state = it->second;
    queue_.erase(it);
    // Per-ticket cancellation that landed before dispatch: retire the
    // request without solving. cancel_at_dispatch admissions always take
    // this path (the deterministic scripted-cancel contract); a racing
    // Ticket::Cancel takes it only when it beat the pop. AbortTicketLocked
    // also releases any followers a Ticket::Cancel'd leader carried
    // (cancel_at_dispatch requests never register as leaders).
    if (state->cancel_at_dispatch || state->cancel.cancelled()) {
      // The request never ran: its budget goes back to the pool.
      if (budget_limited_) budget_remaining_ += state->budget_seconds;
      AbortTicketLocked(state,
                        util::Status::Cancelled("request cancelled"),
                        aborted);
      if (--pending_pool_tasks_ == 0) idle_cv_.NotifyAll();
    } else {
      is_leader = state->single_flight;
      state->dispatched = true;
      state->dispatch_time = std::chrono::steady_clock::now();
      ++in_flight_;
    }
  }
  // A queue slot freed; wake one kBlock submitter.
  space_cv_.NotifyOne();
  if (!aborted.empty()) {
    for (const auto& cancelled : aborted) {
      Complete(cancelled, util::Status::Cancelled("request cancelled"));
    }
    return;
  }

  // A single-flight leader's fingerprint was already computed at
  // admission; reuse it so dispatch does not hash the instance again.
  // The deadline carries both the server-wide shutdown token and the
  // ticket's own, so Ticket::Cancel reaches an in-flight solve too.
  util::Deadline deadline(state->budget_seconds, &cancel_, &state->cancel);
  util::StatusOr<EngineResult> result = engine_.RunIsolated(
      state->instance, deadline, cache_.get(), state->cache_mode,
      is_leader ? &state->fingerprint : nullptr);
  // Nothing reads the instance after dispatch; release the copy now so
  // tickets held long after completion don't pin task/worker vectors.
  state->instance = core::Instance();

  std::vector<std::shared_ptr<internal::TicketState>> followers;
  {
    util::MutexLock lock(mu_);
    --in_flight_;
    // Retire the single-flight registration before the completion below:
    // once the entry is gone, a racing Submit starts a fresh leader (and
    // likely hits the cache the just-finished run populated).
    if (state->single_flight) {
      inflight_.erase(state->fingerprint);
      state->single_flight = false;
    }
    followers = std::move(state->followers);
    state->followers.clear();
    const util::Status status =
        result.ok() ? util::Status::OK() : result.status();
    RecordFinishLocked(*state, status);
    for (const auto& follower : followers) {
      RecordFinishLocked(*follower, status);
    }
    if (CacheModeReads(state->cache_mode)) {
      if (result.ok() && result.value().from_cache) {
        c_cache_hits_->Increment();
      } else {
        c_cache_misses_->Increment();
      }
    }
    if (--pending_pool_tasks_ == 0) idle_cv_.NotifyAll();
  }
  // Every collapsed duplicate receives a copy of the leader's outcome --
  // the single-flight contract: one solve, N identical answers.
  for (const auto& follower : followers) {
    Complete(follower, result);
  }
  Complete(state, std::move(result));
}

void Server::Shutdown(ShutdownMode mode) {
  std::vector<std::shared_ptr<internal::TicketState>> cancelled;
  {
    util::MutexLock lock(mu_);
    // The first call wins and its mode sticks: a Shutdown(kCancel)
    // racing (or following) an in-progress Shutdown(kDrain) must not
    // cancel the queued work the drain promised to complete -- later
    // calls just wait for the wind-down below.
    const bool first = !closed_;
    closed_ = true;
    if (first && mode == ShutdownMode::kCancel) {
      cancel_.Cancel();
      cancelled.reserve(queue_.size());
      for (auto& [key, state] : queue_) {
        AbortTicketLocked(state, util::Status::Cancelled("server shutdown"),
                          cancelled);
      }
      queue_.clear();
    }
  }
  space_cv_.NotifyAll();
  for (const auto& state : cancelled) {
    Complete(state, util::Status::Cancelled("server shutdown"));
  }

  bool join_here = false;
  {
    util::MutexLock lock(mu_);
    while (pending_pool_tasks_ != 0) idle_cv_.Wait(lock);
    if (!joining_) {
      joining_ = true;
      join_here = true;
    }
  }
  if (join_here) {
    pool_.reset();  // joins the dispatch threads
    {
      util::MutexLock lock(mu_);
      wound_down_ = true;
    }
    idle_cv_.NotifyAll();
  } else {
    util::MutexLock lock(mu_);
    while (!wound_down_) idle_cv_.Wait(lock);
  }
}

ServerStats Server::Stats() const {
  ServerStats stats;
  obs::HistogramSnapshot latency;
  {
    // Counters only move under mu_, so one locked pass reads a mutually
    // consistent snapshot: the partition invariants hold exactly even
    // while requests are in flight.
    util::MutexLock lock(mu_);
    stats.submitted = c_submitted_->value();
    stats.admitted = c_admitted_->value();
    stats.rejected = c_rejected_->value();
    stats.collapsed = c_collapsed_->value();
    stats.completed = c_finished_ok_->value();
    stats.deadline_exceeded = c_finished_deadline_->value();
    stats.cancelled = c_finished_cancelled_->value();
    stats.shed = c_finished_shed_->value();
    stats.failed = c_finished_failed_->value();
    stats.cache_hits = c_cache_hits_->value();
    stats.cache_misses = c_cache_misses_->value();
    stats.queue_depth = static_cast<int>(queue_.size());
    stats.in_flight = in_flight_;
    stats.budget_remaining_seconds =
        budget_limited_ ? std::max(budget_remaining_, 0.0) : -1.0;
    latency = lat_total_->Snapshot();
  }
  if (cache_ != nullptr) {
    CacheStats cache_stats = cache_->Stats();
    stats.cache_evictions =
        cache_stats.result_evictions + cache_stats.graph_evictions;
  }
  stats.latency_p50_seconds = latency.p50();
  stats.latency_p95_seconds = latency.p95();
  stats.latency_p99_seconds = latency.p99();
  stats.latency_max_seconds = latency.max();
  return stats;
}

obs::HistogramSnapshot Server::RotateLatencyWindow() {
  return latency_window_.Rotate();
}

CacheStats Server::GetCacheStats() const {
  return cache_ == nullptr ? CacheStats{} : cache_->Stats();
}

}  // namespace rdbsc::engine
