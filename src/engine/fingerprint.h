#ifndef RDBSC_ENGINE_FINGERPRINT_H_
#define RDBSC_ENGINE_FINGERPRINT_H_

#include <string>

#include "core/instance.h"
#include "engine/engine.h"
#include "util/hash.h"
#include "util/status.h"

namespace rdbsc::engine {

/// Key of the plan/graph cache tier: the instance content plus the
/// *resolved* build decision (grid-or-brute and the cell side the grid
/// path would use). Keying on the resolved decision rather than the raw
/// GraphStrategy lets kAuto and an explicit matching strategy share one
/// entry -- the graphs are identical by the equivalence contract.
util::Hash128 GraphCacheKey(const core::Instance& instance, bool use_grid,
                            double eta);

/// Key of the full-result cache tier: the instance content plus the
/// solver identity (registry name + every SolverOptions knob) and the
/// graph configuration (strategy, eta, d2). Deliberately excludes
/// budgets, thread counts, and validation flags -- none of them change a
/// successful result (the determinism contract), so keying on them would
/// only fragment the cache. Field order: instance (core::MixInstance),
/// solver name, options (core::MixSolverOptions), strategy, eta, d2.
util::Hash128 ResultCacheKey(const core::Instance& instance,
                             const EngineConfig& config);

/// Canonical string encoding of one run outcome: status code, then (on
/// success) the full assignment, the objective bit patterns, and the
/// graph plan. Timing fields and cache-provenance flags are deliberately
/// excluded -- they are the only parts of a result allowed to vary
/// between runs, so two fingerprints compare equal iff the results are
/// bit-identical where it counts. This is the stress harness's replay
/// fingerprint (tests/stress_util.h) and the cache tests' hit-vs-cold
/// identity check.
std::string ResultFingerprint(const util::StatusOr<EngineResult>& result);

}  // namespace rdbsc::engine

#endif  // RDBSC_ENGINE_FINGERPRINT_H_
