#ifndef RDBSC_ENGINE_ENGINE_H_
#define RDBSC_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "core/registry.h"
#include "core/solver.h"
#include "obs/registry.h"
#include "util/deadline.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdbsc {

namespace engine {
class SolveCache;

/// Resolved metric handles of one engine (see EngineConfig::metrics).
/// All-null when no registry is attached; plain pointers so the stage
/// hot path is a single branch. The pointees live in the registry and
/// are internally synchronized -- recording takes no lock.
struct StageMetrics {
  obs::Histogram* validate_seconds = nullptr;
  obs::Histogram* plan_seconds = nullptr;
  obs::Histogram* build_seconds = nullptr;
  obs::Histogram* solve_seconds = nullptr;
  obs::Counter* cache_hits = nullptr;
  obs::Counter* cache_misses = nullptr;
};

/// Per-run cache policy. The cache itself (engine::SolveCache) is owned by
/// whoever serves repeated traffic (engine::Server, a bench, an example);
/// the mode says what one run may do with it.
enum class CacheMode {
  /// Fall back to the owner's configured default (SubmitControls only; a
  /// RunControls/RunIsolated kDefault with a cache attached means
  /// kReadWrite).
  kDefault,
  /// Bypass the cache entirely: solve cold, store nothing.
  kOff,
  /// Serve hits but never insert (probing traffic must not evict).
  kReadOnly,
  /// Always solve cold but insert/refresh the entry (cache warming).
  kWriteOnly,
  /// Serve hits and insert misses (the normal serving mode).
  kReadWrite,
};

/// The two CacheMode capabilities, defined once next to the enum so the
/// engine pipeline and the server's accounting can never drift apart.
inline bool CacheModeReads(CacheMode mode) {
  return mode == CacheMode::kReadOnly || mode == CacheMode::kReadWrite;
}
inline bool CacheModeWrites(CacheMode mode) {
  return mode == CacheMode::kWriteOnly || mode == CacheMode::kReadWrite;
}
}  // namespace engine

/// How Engine builds the candidate graph of an instance.
enum class GraphStrategy {
  /// Cost-model arbitration (Appendix I) between the two paths below.
  kAuto,
  /// CandidateGraph::Build: O(m*n) pair validity tests.
  kBruteForce,
  /// RDB-SC-Grid retrieval with cell-level pruning (src/index).
  kGridIndex,
};

/// Configuration of an Engine: which solver to run (by registry name),
/// its options, how to build candidate graphs, and the default admission
/// budget applied to every solve.
struct EngineConfig {
  std::string solver_name = "dc";
  core::SolverOptions solver_options;

  GraphStrategy graph_strategy = GraphStrategy::kAuto;
  /// Grid cell side eta; <= 0 derives the Appendix I optimum from the
  /// instance (index::OptimalEta with the observed worker reach).
  double eta = 0.0;
  /// Correlation fractal dimension fed to the cost model (2 = uniform).
  double d2 = 2.0;

  /// Default wall-clock budget in seconds; <= 0 unlimited. The scope
  /// depends on the entry point: Run and SolveOn derive one deadline per
  /// call from it, but RunBatch derives ONE deadline for the whole batch
  /// (a shared pool, not a per-instance allowance -- instances late in
  /// the batch only get what their predecessors left). RunIsolated (and
  /// therefore engine::Server, whose budgets come from ServerConfig's
  /// default_budget_seconds / total_budget_seconds pool) ignores this
  /// field entirely: the caller owns the deadline there.
  double budget_seconds = 0.0;
  /// Run Instance::Validate before solving (admission control).
  bool validate_instances = true;

  /// Worker threads of the engine-owned util::ThreadPool; <= 1 keeps the
  /// zero-thread serial default. The pool shards graph construction and
  /// the D&C/sampling solvers inside Run/SolveOn, and schedules whole
  /// instances in RunBatch. Results are bit-identical to serial for a
  /// fixed solver seed at every thread count.
  int num_threads = 0;

  /// Optional metrics sink (unowned; must outlive the engine). When set,
  /// every run records per-stage wall time into the histograms
  /// engine.stage_seconds{solver, stage=validate|plan|build|solve} and
  /// cache-read outcomes into the counters
  /// engine.cache{solver, outcome=hit|miss}. The histogram/counter
  /// handles are resolved once in Engine::Create, so the per-stage cost
  /// is two clock reads plus a few relaxed atomic adds; nullptr (the
  /// default) reduces it to one branch per stage. Purely observational:
  /// results are bit-identical with or without a registry attached.
  obs::Registry* metrics = nullptr;
};

/// Per-run admission overrides.
struct RunControls {
  /// < 0: use the engine's configured default budget. 0: unlimited.
  double budget_seconds = -1.0;
  /// Optional cooperative cancellation token (unowned).
  const util::CancelToken* cancel = nullptr;
  /// When non-null, receives the partial stats of a failed solve.
  core::SolveStats* partial_stats = nullptr;
  /// Optional result/graph cache (unowned; must be thread-safe -- it is).
  /// nullptr keeps every run cold. RunBatch shares one cache across all
  /// slots. SolveOn ignores both cache fields: its graph is caller-
  /// provided, so the content fingerprints (which describe the graph the
  /// engine's own configuration would build) cannot vouch for the result.
  engine::SolveCache* cache = nullptr;
  /// What the run may do with `cache`; kDefault means kReadWrite when a
  /// cache is attached.
  engine::CacheMode cache_mode = engine::CacheMode::kDefault;
};

/// How one run built its candidate graph (reported back to the caller).
struct GraphPlan {
  bool used_grid_index = false;
  /// Grid cell side (grid path only).
  double eta = 0.0;
  int64_t edges = 0;
  double build_seconds = 0.0;
  /// The graph came from the cache's plan/graph tier instead of a fresh
  /// build (build_seconds is then the fetch time). Provenance only --
  /// never part of a result fingerprint.
  bool from_cache = false;
};

struct EngineResult {
  core::SolveResult solve;
  GraphPlan plan;
  /// The whole result came from the cache's full-result tier. Provenance
  /// only -- a hit is bit-identical to the cold solve it replays (the
  /// assignment, objective bit patterns, and plan.edges all match; only
  /// timing fields may differ).
  bool from_cache = false;
};

namespace engine {

/// The typed state one request threads through the staged pipeline
/// Validate -> Plan -> BuildGraph -> Solve. Each stage consumes the
/// products of the previous ones and records its own, so callers can run
/// stages independently, skip a stage by pre-filling its product (e.g.
/// SolveOn sets `graph` and skips the build), or replay a stage on a
/// fresh context. Inputs are set up by the caller; everything below the
/// marker is stage output.
struct ExecutionContext {
  // --- inputs ---
  const core::Instance* instance = nullptr;
  util::Deadline deadline;
  /// Optional executor the build/solve stages shard over (nullptr =
  /// serial; results are bit-identical either way).
  util::Executor* executor = nullptr;
  /// When non-null, receives the partial stats of a failed solve.
  core::SolveStats* partial_stats = nullptr;
  /// Optional cache consulted by BuildGraph (plan/graph tier) and by the
  /// full pipeline (result tier), per `cache_mode`.
  SolveCache* cache = nullptr;
  CacheMode cache_mode = CacheMode::kOff;
  /// Optional precomputed result-tier key (unowned; must equal what
  /// Engine::ResultCacheKey(*instance) would return). Callers that
  /// already fingerprinted the instance -- engine::Server hashes it at
  /// admission for single-flight -- pass it here so RunPipeline does not
  /// hash the instance a second time.
  const util::Hash128* result_key = nullptr;

  // --- stage products ---
  /// StageValidate passed (or validation is disabled).
  bool validated = false;
  /// StagePlan decided the build path below.
  bool planned = false;
  /// Cell side the grid path would use (resolved by StagePlan even when
  /// the brute-force path wins, so cache keys are stable).
  double resolved_eta = 0.0;
  /// used_grid_index/eta after StagePlan; edges/build_seconds/from_cache
  /// after StageBuildGraph.
  GraphPlan plan;
  /// StageBuildGraph product. Shared so the cache and any number of
  /// concurrent readers can hold the same immutable graph.
  std::shared_ptr<const core::CandidateGraph> graph;
  /// StageSolve product.
  core::SolveResult solve;
  /// Result-tier hit: `solve`/`plan` were replayed from the cache and the
  /// Plan/BuildGraph/Solve stages were skipped entirely.
  bool result_from_cache = false;
};

}  // namespace engine

/// The facade over the whole solving pipeline, now an explicit staged one:
///
///   Validate -> Plan -> BuildGraph -> Solve
///
/// Each stage is a public method over an engine::ExecutionContext, so a
/// stage can be run, skipped (pre-fill its product), or replayed
/// independently; Run/RunIsolated/RunBatch/SolveOn are compositions of
/// the stages. An optional engine::SolveCache short-circuits the pipeline
/// at two seams: the full-result tier skips everything after Validate,
/// and the plan/graph tier skips the candidate-graph build.
///
///   auto engine = rdbsc::Engine::Create({.solver_name = "greedy"});
///   auto result = engine.value().Run(instance);
class Engine {
 public:
  /// An inert engine: Run/SolveOn fail with kFailedPrecondition.
  /// Use Create() for a working one.
  Engine() = default;

  /// Resolves `config.solver_name` through the global registry;
  /// kNotFound (listing the registered names) for unknown solvers.
  static util::StatusOr<Engine> Create(EngineConfig config);

  /// Convenience: default config with just the solver name set.
  static util::StatusOr<Engine> Create(std::string solver_name);

  /// Full pipeline: validate -> plan -> build graph -> solve. The
  /// admission budget spans the whole run including graph construction:
  /// every phase polls the deadline/token cooperatively -- the candidate-
  /// graph build checks it between worker-row / cell blocks, so a budget
  /// can cut an in-flight build short with kDeadlineExceeded instead of
  /// running the O(m*n) scan to completion.
  util::StatusOr<EngineResult> Run(const core::Instance& instance,
                                   const RunControls& controls = {});

  /// Batch admission: schedules whole instances across the engine's
  /// thread pool (serially when num_threads <= 1) under ONE shared
  /// wall-clock budget and cancellation token. Each instance runs the
  /// full Run pipeline on its own registry-created solver, so per-
  /// instance results are identical to individual Run calls; instances
  /// that miss the shared budget fail with kDeadlineExceeded/kCancelled
  /// individually. `controls.partial_stats` is ignored (there is no
  /// single solve to attribute it to); `controls.cache` is shared by
  /// every slot, so duplicate instances in one batch hit after the first
  /// solve completes.
  std::vector<util::StatusOr<EngineResult>> RunBatch(
      std::span<const core::Instance> instances,
      const RunControls& controls = {});

  /// Graph half of the facade, for callers that reuse one graph across
  /// several solves (e.g. the bench sweeps running 4 approaches). Sharded
  /// over the engine pool; fails with kDeadlineExceeded / kCancelled once
  /// `deadline` trips mid-build.
  util::StatusOr<core::CandidateGraph> BuildGraph(
      const core::Instance& instance, GraphPlan* plan = nullptr,
      const util::Deadline& deadline = util::Deadline()) const;

  /// Solve half, on a prebuilt graph. `controls.cache`/`cache_mode` are
  /// deliberately ignored here: the cache keys fingerprint the graph this
  /// engine's configuration would build, and a caller-provided graph may
  /// be anything -- serving or storing such results would poison the
  /// cache with entries the key cannot vouch for.
  util::StatusOr<core::SolveResult> SolveOn(
      const core::Instance& instance, const core::CandidateGraph& graph,
      const RunControls& controls = {});

  /// The RunBatch per-slot path, exposed for async admission layers
  /// (engine::Server): runs the full pipeline on a fresh registry-created
  /// solver under a caller-owned deadline (EngineConfig::budget_seconds
  /// is ignored here). Thread-safe -- concurrent calls share no mutable
  /// state -- and serial inside the call (no executor), so the result is
  /// bit-identical no matter which thread runs it. `cache`/`mode` follow
  /// the RunControls semantics (kDefault with a cache means kReadWrite);
  /// a cache hit is bit-identical to the cold solve, so the determinism
  /// contract holds with or without one. `result_key`, when non-null, is
  /// the caller's precomputed ResultCacheKey(instance) (saves re-hashing
  /// the instance on the dispatch hot path).
  util::StatusOr<EngineResult> RunIsolated(
      const core::Instance& instance,
      const util::Deadline& deadline = util::Deadline(),
      engine::SolveCache* cache = nullptr,
      engine::CacheMode mode = engine::CacheMode::kDefault,
      const util::Hash128* result_key = nullptr) const;

  // --- The pipeline stages (see engine::ExecutionContext) ---

  /// Validate: admission control. Fails with the instance's validation
  /// error; a no-op (still marking `validated`) when the engine is
  /// configured with validate_instances = false.
  util::Status StageValidate(engine::ExecutionContext& ctx) const;

  /// Plan: consults the Appendix I cost model to pick brute-force or
  /// grid-index construction and resolves the grid cell side. Pure
  /// decision -- no graph is built.
  util::Status StagePlan(engine::ExecutionContext& ctx) const;

  /// BuildGraph: executes the planned construction (running StagePlan
  /// first if the caller skipped it). Consults the cache's plan/graph
  /// tier per ctx.cache_mode; fills ctx.graph and the plan's
  /// edges/build_seconds.
  util::Status StageBuildGraph(engine::ExecutionContext& ctx) const;

  /// Solve: runs `solver` on ctx.graph under ctx.deadline.
  util::Status StageSolve(engine::ExecutionContext& ctx,
                          core::Solver& solver) const;

  /// Runs the remaining stages of `ctx` in order, consulting the cache's
  /// full-result tier between Validate and Plan, and returns the
  /// composed EngineResult. Stages whose product is already present
  /// (validated / planned / graph) are skipped.
  util::StatusOr<EngineResult> RunPipeline(engine::ExecutionContext& ctx,
                                           core::Solver& solver) const;

  /// The full-result cache key / single-flight identity of `instance`
  /// under this engine's configuration: a content hash over the instance,
  /// the solver name + options, and the graph strategy (engine/
  /// fingerprint.h documents the exact field order).
  util::Hash128 ResultCacheKey(const core::Instance& instance) const;

  const EngineConfig& config() const { return config_; }
  /// Registry key, e.g. "dc".
  const std::string& solver_name() const { return config_.solver_name; }
  /// The solver's display name, e.g. "D&C" (empty on an inert engine).
  std::string_view solver_display_name() const;

  /// The engine-owned pool, or nullptr when num_threads <= 1 (serial).
  util::Executor* executor() const { return pool_.get(); }

 private:
  util::Status CheckInitialized() const;
  util::Deadline MakeDeadline(const RunControls& controls) const;
  /// The planned construction itself (grid or brute), shared by
  /// StageBuildGraph and the legacy BuildGraph entry point.
  util::StatusOr<core::CandidateGraph> ExecutePlannedBuild(
      const core::Instance& instance, bool use_grid, double eta,
      GraphPlan* plan, const util::Deadline& deadline,
      util::Executor* executor) const;

  EngineConfig config_;
  std::unique_ptr<core::Solver> solver_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Resolved once in Create from config_.metrics (all-null otherwise).
  engine::StageMetrics stage_metrics_;
};

}  // namespace rdbsc

#endif  // RDBSC_ENGINE_ENGINE_H_
