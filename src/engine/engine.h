#ifndef RDBSC_ENGINE_ENGINE_H_
#define RDBSC_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "core/registry.h"
#include "core/solver.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdbsc {

/// How Engine builds the candidate graph of an instance.
enum class GraphStrategy {
  /// Cost-model arbitration (Appendix I) between the two paths below.
  kAuto,
  /// CandidateGraph::Build: O(m*n) pair validity tests.
  kBruteForce,
  /// RDB-SC-Grid retrieval with cell-level pruning (src/index).
  kGridIndex,
};

/// Configuration of an Engine: which solver to run (by registry name),
/// its options, how to build candidate graphs, and the default admission
/// budget applied to every solve.
struct EngineConfig {
  std::string solver_name = "dc";
  core::SolverOptions solver_options;

  GraphStrategy graph_strategy = GraphStrategy::kAuto;
  /// Grid cell side eta; <= 0 derives the Appendix I optimum from the
  /// instance (index::OptimalEta with the observed worker reach).
  double eta = 0.0;
  /// Correlation fractal dimension fed to the cost model (2 = uniform).
  double d2 = 2.0;

  /// Default wall-clock budget per Run/SolveOn in seconds; <= 0 unlimited.
  double budget_seconds = 0.0;
  /// Run Instance::Validate before solving (admission control).
  bool validate_instances = true;

  /// Worker threads of the engine-owned util::ThreadPool; <= 1 keeps the
  /// zero-thread serial default. The pool shards graph construction and
  /// the D&C/sampling solvers inside Run/SolveOn, and schedules whole
  /// instances in RunBatch. Results are bit-identical to serial for a
  /// fixed solver seed at every thread count.
  int num_threads = 0;
};

/// Per-run admission overrides.
struct RunControls {
  /// < 0: use the engine's configured default budget. 0: unlimited.
  double budget_seconds = -1.0;
  /// Optional cooperative cancellation token (unowned).
  const util::CancelToken* cancel = nullptr;
  /// When non-null, receives the partial stats of a failed solve.
  core::SolveStats* partial_stats = nullptr;
};

/// How one run built its candidate graph (reported back to the caller).
struct GraphPlan {
  bool used_grid_index = false;
  /// Grid cell side (grid path only).
  double eta = 0.0;
  int64_t edges = 0;
  double build_seconds = 0.0;
};

struct EngineResult {
  core::SolveResult solve;
  GraphPlan plan;
};

/// The facade over the whole solving pipeline: validates the instance,
/// consults the Appendix I cost model to pick brute-force or grid-index
/// candidate-graph construction, creates the configured solver through
/// core::SolverRegistry, and runs it under the configured budget. One
/// admission point instead of N copies of wiring code.
///
///   auto engine = rdbsc::Engine::Create({.solver_name = "greedy"});
///   auto result = engine.value().Run(instance);
class Engine {
 public:
  /// An inert engine: Run/SolveOn fail with kFailedPrecondition.
  /// Use Create() for a working one.
  Engine() = default;

  /// Resolves `config.solver_name` through the global registry;
  /// kNotFound (listing the registered names) for unknown solvers.
  static util::StatusOr<Engine> Create(EngineConfig config);

  /// Convenience: default config with just the solver name set.
  static util::StatusOr<Engine> Create(std::string solver_name);

  /// Full pipeline: validate -> build graph -> solve. The admission
  /// budget spans the whole run including graph construction: every phase
  /// polls the deadline/token cooperatively -- the candidate-graph build
  /// checks it between worker-row / cell blocks, so a budget can now cut
  /// an in-flight build short with kDeadlineExceeded instead of running
  /// the O(m*n) scan to completion.
  util::StatusOr<EngineResult> Run(const core::Instance& instance,
                                   const RunControls& controls = {});

  /// Batch admission: schedules whole instances across the engine's
  /// thread pool (serially when num_threads <= 1) under ONE shared
  /// wall-clock budget and cancellation token. Each instance runs the
  /// full Run pipeline on its own registry-created solver, so per-
  /// instance results are identical to individual Run calls; instances
  /// that miss the shared budget fail with kDeadlineExceeded/kCancelled
  /// individually. `controls.partial_stats` is ignored (there is no
  /// single solve to attribute it to).
  std::vector<util::StatusOr<EngineResult>> RunBatch(
      std::span<const core::Instance> instances,
      const RunControls& controls = {});

  /// Graph half of the facade, for callers that reuse one graph across
  /// several solves (e.g. the bench sweeps running 4 approaches). Sharded
  /// over the engine pool; fails with kDeadlineExceeded / kCancelled once
  /// `deadline` trips mid-build.
  util::StatusOr<core::CandidateGraph> BuildGraph(
      const core::Instance& instance, GraphPlan* plan = nullptr,
      const util::Deadline& deadline = util::Deadline()) const;

  /// Solve half, on a prebuilt graph.
  util::StatusOr<core::SolveResult> SolveOn(
      const core::Instance& instance, const core::CandidateGraph& graph,
      const RunControls& controls = {});

  /// The RunBatch per-slot path, exposed for async admission layers
  /// (engine::Server): runs the full pipeline on a fresh registry-created
  /// solver under a caller-owned deadline. Thread-safe -- concurrent calls
  /// share no mutable state -- and serial inside the call (no executor),
  /// so the result is bit-identical no matter which thread runs it.
  util::StatusOr<EngineResult> RunIsolated(
      const core::Instance& instance,
      const util::Deadline& deadline = util::Deadline()) const;

  const EngineConfig& config() const { return config_; }
  /// Registry key, e.g. "dc".
  const std::string& solver_name() const { return config_.solver_name; }
  /// The solver's display name, e.g. "D&C" (empty on an inert engine).
  std::string_view solver_display_name() const;

  /// The engine-owned pool, or nullptr when num_threads <= 1 (serial).
  util::Executor* executor() const { return pool_.get(); }

 private:
  util::Status CheckReady(const core::Instance& instance) const;
  util::Deadline MakeDeadline(const RunControls& controls) const;
  util::StatusOr<core::CandidateGraph> BuildGraphOn(
      const core::Instance& instance, GraphPlan* plan,
      const util::Deadline& deadline, util::Executor* executor) const;
  static util::StatusOr<core::SolveResult> DoSolve(
      const core::Instance& instance, const core::CandidateGraph& graph,
      core::Solver& solver, const util::Deadline& deadline,
      util::Executor* executor, core::SolveStats* partial_stats);
  util::StatusOr<EngineResult> RunOn(const core::Instance& instance,
                                     core::Solver& solver,
                                     const util::Deadline& deadline,
                                     util::Executor* executor,
                                     core::SolveStats* partial_stats) const;

  EngineConfig config_;
  std::unique_ptr<core::Solver> solver_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace rdbsc

#endif  // RDBSC_ENGINE_ENGINE_H_
