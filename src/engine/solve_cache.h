#ifndef RDBSC_ENGINE_SOLVE_CACHE_H_
#define RDBSC_ENGINE_SOLVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "engine/engine.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdbsc::engine {

/// Sizing of a SolveCache. Capacities are entry counts per tier (split
/// evenly across shards, each non-disabled shard holding at least one
/// entry). A capacity of 0 disables that tier entirely: lookups miss and
/// inserts are dropped, so e.g. {result_capacity = 4096,
/// graph_capacity = 0} caches results without ever pinning a heavy
/// CandidateGraph.
struct SolveCacheConfig {
  /// Full-result tier: one EngineResult per (instance, solver, graph
  /// config) fingerprint. 0 disables the tier.
  size_t result_capacity = 4096;
  /// Plan/graph tier: one CandidateGraph + GraphPlan per (instance,
  /// resolved build decision) fingerprint. Graphs are the heavy entries;
  /// keep this tier smaller. 0 disables the tier.
  size_t graph_capacity = 1024;
  /// Mutex shards per tier. Lookups/inserts lock one shard only, so
  /// concurrent server workers rarely contend.
  int num_shards = 8;
};

/// Counter snapshot returned by SolveCache::Stats (totals across shards).
struct CacheStats {
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  int64_t result_insertions = 0;
  int64_t result_evictions = 0;
  int64_t graph_hits = 0;
  int64_t graph_misses = 0;
  int64_t graph_insertions = 0;
  int64_t graph_evictions = 0;
  int64_t result_entries = 0;
  int64_t graph_entries = 0;
};

/// Content-addressed cache over the staged Engine pipeline, with two
/// tiers keyed by 128-bit fingerprints (engine/fingerprint.h):
///
///   - the *full-result* tier short-circuits the whole pipeline after
///     Validate (key: instance + solver identity + graph config);
///   - the *plan/graph* tier short-circuits BuildGraph only (key:
///     instance + resolved build decision), so different solvers over the
///     same instance share one candidate graph.
///
/// Both tiers are bounded LRU maps sharded by key across `num_shards`
/// mutexes. Values are immutable and shared (shared_ptr), so a hit hands
/// back the exact bytes the original run produced -- combined with
/// deterministic solvers this is what makes a hit bit-identical to a
/// cold solve at any concurrency (enforced by tests/cache_stress_test.cc
/// at 1/2/8 server workers). Eviction is per shard, strictly LRU.
///
/// All methods are thread-safe.
class SolveCache {
 public:
  explicit SolveCache(SolveCacheConfig config = {});

  /// Result-tier lookup; nullptr on miss. The returned result has
  /// from_cache flags as stored (false) -- callers stamp provenance.
  std::shared_ptr<const EngineResult> LookupResult(const util::Hash128& key);

  /// Inserts (or refreshes) a result-tier entry. Provenance flags are
  /// cleared on the stored copy so hits describe the original cold run.
  void InsertResult(const util::Hash128& key, EngineResult result);

  /// Graph-tier lookup; nullptr on miss. On a hit `*plan` (when non-null)
  /// receives the stored plan of the original build (edges, eta,
  /// used_grid_index; build_seconds as built).
  std::shared_ptr<const core::CandidateGraph> LookupGraph(
      const util::Hash128& key, GraphPlan* plan);

  /// Inserts (or refreshes) a graph-tier entry.
  void InsertGraph(const util::Hash128& key,
                   std::shared_ptr<const core::CandidateGraph> graph,
                   const GraphPlan& plan);

  CacheStats Stats() const;

  /// Drops every entry (counters keep accumulating).
  void Clear();

 private:
  struct ResultEntry {
    std::shared_ptr<const EngineResult> result;
  };
  struct GraphEntry {
    std::shared_ptr<const core::CandidateGraph> graph;
    GraphPlan plan;
  };

  /// One LRU shard: list front = most recently used; the map points into
  /// the list. All state is guarded by `mu`.
  template <typename Value>
  struct Shard {
    using Entry = std::pair<util::Hash128, Value>;
    mutable util::Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<util::Hash128, typename std::list<Entry>::iterator,
                       util::Hash128Hasher>
        index GUARDED_BY(mu);
    int64_t hits GUARDED_BY(mu) = 0;
    int64_t misses GUARDED_BY(mu) = 0;
    int64_t insertions GUARDED_BY(mu) = 0;
    int64_t evictions GUARDED_BY(mu) = 0;
  };

  template <typename Value>
  static Value* LookupIn(Shard<Value>& shard, const util::Hash128& key)
      REQUIRES(shard.mu) {
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return &it->second->second;
  }

  template <typename Value>
  static void InsertIn(Shard<Value>& shard, size_t capacity,
                       const util::Hash128& key, Value value)
      REQUIRES(shard.mu) {
    ++shard.insertions;
    if (auto it = shard.index.find(key); it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    while (shard.lru.size() > capacity) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  int ShardOf(const util::Hash128& key) const {
    return static_cast<int>(key.lo % static_cast<uint64_t>(num_shards_));
  }

  int num_shards_ = 1;
  size_t result_capacity_per_shard_ = 1;
  size_t graph_capacity_per_shard_ = 1;
  std::vector<Shard<ResultEntry>> result_shards_;
  std::vector<Shard<GraphEntry>> graph_shards_;
};

}  // namespace rdbsc::engine

#endif  // RDBSC_ENGINE_SOLVE_CACHE_H_
