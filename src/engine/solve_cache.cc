#include "engine/solve_cache.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace rdbsc::engine {

namespace {

// Per-shard capacities round up so the configured totals are a floor,
// and every enabled shard holds at least one entry. A configured total
// of 0 stays 0: the tier is disabled (inserts dropped), never "rounded
// up" into a surprise num_shards-entry cache.
size_t PerShardCapacity(size_t total, int num_shards) {
  if (total == 0) return 0;
  return std::max<size_t>(
      (total + static_cast<size_t>(num_shards) - 1) /
          static_cast<size_t>(num_shards),
      1);
}

}  // namespace

SolveCache::SolveCache(SolveCacheConfig config) {
  num_shards_ = std::max(config.num_shards, 1);
  result_capacity_per_shard_ =
      PerShardCapacity(config.result_capacity, num_shards_);
  graph_capacity_per_shard_ =
      PerShardCapacity(config.graph_capacity, num_shards_);
  result_shards_ = std::vector<Shard<ResultEntry>>(num_shards_);
  graph_shards_ = std::vector<Shard<GraphEntry>>(num_shards_);
}

std::shared_ptr<const EngineResult> SolveCache::LookupResult(
    const util::Hash128& key) {
  Shard<ResultEntry>& shard = result_shards_[ShardOf(key)];
  util::MutexLock lock(shard.mu);
  ResultEntry* entry = LookupIn(shard, key);
  return entry == nullptr ? nullptr : entry->result;
}

void SolveCache::InsertResult(const util::Hash128& key, EngineResult result) {
  if (result_capacity_per_shard_ == 0) return;  // tier disabled
  // Stored entries describe the original cold run; hits re-stamp
  // provenance on their own copies.
  result.from_cache = false;
  result.plan.from_cache = false;
  Shard<ResultEntry>& shard = result_shards_[ShardOf(key)];
  ResultEntry entry{std::make_shared<const EngineResult>(std::move(result))};
  util::MutexLock lock(shard.mu);
  InsertIn(shard, result_capacity_per_shard_, key, std::move(entry));
}

std::shared_ptr<const core::CandidateGraph> SolveCache::LookupGraph(
    const util::Hash128& key, GraphPlan* plan) {
  Shard<GraphEntry>& shard = graph_shards_[ShardOf(key)];
  util::MutexLock lock(shard.mu);
  GraphEntry* entry = LookupIn(shard, key);
  if (entry == nullptr) return nullptr;
  if (plan != nullptr) *plan = entry->plan;
  return entry->graph;
}

void SolveCache::InsertGraph(const util::Hash128& key,
                             std::shared_ptr<const core::CandidateGraph> graph,
                             const GraphPlan& plan) {
  if (graph_capacity_per_shard_ == 0) return;  // tier disabled
  GraphEntry entry{std::move(graph), plan};
  entry.plan.from_cache = false;
  Shard<GraphEntry>& shard = graph_shards_[ShardOf(key)];
  util::MutexLock lock(shard.mu);
  InsertIn(shard, graph_capacity_per_shard_, key, std::move(entry));
}

CacheStats SolveCache::Stats() const {
  CacheStats stats;
  for (const Shard<ResultEntry>& shard : result_shards_) {
    util::MutexLock lock(shard.mu);
    stats.result_hits += shard.hits;
    stats.result_misses += shard.misses;
    stats.result_insertions += shard.insertions;
    stats.result_evictions += shard.evictions;
    stats.result_entries += static_cast<int64_t>(shard.lru.size());
  }
  for (const Shard<GraphEntry>& shard : graph_shards_) {
    util::MutexLock lock(shard.mu);
    stats.graph_hits += shard.hits;
    stats.graph_misses += shard.misses;
    stats.graph_insertions += shard.insertions;
    stats.graph_evictions += shard.evictions;
    stats.graph_entries += static_cast<int64_t>(shard.lru.size());
  }
  return stats;
}

void SolveCache::Clear() {
  for (Shard<ResultEntry>& shard : result_shards_) {
    util::MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
  for (Shard<GraphEntry>& shard : graph_shards_) {
    util::MutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace rdbsc::engine
