#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "index/cost_model.h"
#include "index/grid_index.h"

namespace rdbsc {
namespace {

// Cost-model inputs observed from the instance: L_max is the farthest any
// worker can still travel inside the longest remaining task window.
index::CostModelParams ParamsFor(const core::Instance& instance,
                                 double d2) {
  double v_max = 0.0;
  for (const core::Worker& w : instance.workers()) {
    v_max = std::max(v_max, w.velocity);
  }
  double latest_end = instance.now();
  for (const core::Task& t : instance.tasks()) {
    latest_end = std::max(latest_end, t.end);
  }
  index::CostModelParams params;
  params.l_max =
      std::clamp(v_max * (latest_end - instance.now()), 0.01, 1.0);
  params.d2 = d2;
  params.num_points = std::max(instance.num_tasks(), 1);
  return params;
}

}  // namespace

util::StatusOr<Engine> Engine::Create(std::string solver_name) {
  EngineConfig config;
  config.solver_name = std::move(solver_name);
  return Create(std::move(config));
}

util::StatusOr<Engine> Engine::Create(EngineConfig config) {
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config.solver_name,
                                            config.solver_options);
  if (!solver.ok()) return solver.status();
  Engine engine;
  engine.config_ = std::move(config);
  engine.solver_ = std::move(solver).value();
  return engine;
}

std::string_view Engine::solver_display_name() const {
  return solver_ == nullptr ? std::string_view{} : solver_->name();
}

core::CandidateGraph Engine::BuildGraph(const core::Instance& instance,
                                        GraphPlan* plan) const {
  auto t0 = std::chrono::steady_clock::now();
  GraphPlan local;

  bool use_grid = config_.graph_strategy == GraphStrategy::kGridIndex;
  double eta = config_.eta;
  if (config_.graph_strategy != GraphStrategy::kBruteForce &&
      instance.num_tasks() > 0 && instance.num_workers() > 0) {
    index::CostModelParams params = ParamsFor(instance, config_.d2);
    if (eta <= 0.0) eta = index::OptimalEta(params);
    if (config_.graph_strategy == GraphStrategy::kAuto) {
      // Appendix I arbitration: the grid pays one insert per object plus
      // the modeled per-worker retrieval cost; brute force tests every
      // (task, worker) pair. Pick whichever the model prices cheaper.
      double grid_cost =
          instance.num_tasks() + instance.num_workers() +
          instance.num_workers() * index::EstimateUpdateCost(eta, params);
      double brute_cost = static_cast<double>(instance.num_tasks()) *
                          static_cast<double>(instance.num_workers());
      use_grid = grid_cost < brute_cost;
    }
  }

  core::CandidateGraph graph;
  if (use_grid) {
    index::GridIndex grid = index::GridIndex::Build(instance, eta);
    graph = core::CandidateGraph::FromEdges(
        instance, grid.RetrieveEdges(instance.num_workers()));
    local.used_grid_index = true;
    local.eta = grid.eta();
  } else {
    graph = core::CandidateGraph::Build(instance);
  }
  local.edges = graph.NumEdges();
  local.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (plan != nullptr) *plan = local;
  return graph;
}

util::Status Engine::CheckReady(const core::Instance& instance) const {
  if (solver_ == nullptr) {
    return util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
  }
  if (config_.validate_instances) {
    return instance.Validate();
  }
  return util::Status::OK();
}

util::Deadline Engine::MakeDeadline(const RunControls& controls) const {
  double budget = controls.budget_seconds < 0.0 ? config_.budget_seconds
                                                : controls.budget_seconds;
  return util::Deadline(budget, controls.cancel);
}

util::StatusOr<core::SolveResult> Engine::DoSolve(
    const core::Instance& instance, const core::CandidateGraph& graph,
    const util::Deadline& deadline, core::SolveStats* partial_stats) {
  core::SolveRequest request;
  request.instance = &instance;
  request.graph = &graph;
  request.deadline = &deadline;
  request.partial_stats = partial_stats;
  return solver_->Solve(request);
}

util::StatusOr<core::SolveResult> Engine::SolveOn(
    const core::Instance& instance, const core::CandidateGraph& graph,
    const RunControls& controls) {
  if (util::Status ready = CheckReady(instance); !ready.ok()) return ready;
  util::Deadline deadline = MakeDeadline(controls);
  return DoSolve(instance, graph, deadline, controls.partial_stats);
}

util::StatusOr<EngineResult> Engine::Run(const core::Instance& instance,
                                         const RunControls& controls) {
  if (util::Status ready = CheckReady(instance); !ready.ok()) return ready;
  // The admission budget covers the whole run, so the clock starts before
  // graph construction: a solve after an expensive build only gets the
  // remaining budget (and fails immediately if the build consumed it all).
  // The build itself has no interruption points, so refuse an already
  // tripped deadline/token here rather than after minutes of O(m*n) work.
  util::Deadline deadline = MakeDeadline(controls);
  if (util::Status admitted = deadline.Check(); !admitted.ok()) {
    if (controls.partial_stats != nullptr) {
      *controls.partial_stats = core::SolveStats{};
      controls.partial_stats->budget_exhausted = true;
    }
    return admitted;
  }
  EngineResult result;
  core::CandidateGraph graph = BuildGraph(instance, &result.plan);

  util::StatusOr<core::SolveResult> solve =
      DoSolve(instance, graph, deadline, controls.partial_stats);
  if (!solve.ok()) return solve.status();
  result.solve = std::move(solve).value();
  return result;
}

}  // namespace rdbsc
