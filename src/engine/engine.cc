#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "index/cost_model.h"
#include "index/grid_index.h"

namespace rdbsc {
namespace {

// Cost-model inputs observed from the instance: L_max is the farthest any
// worker can still travel inside the longest remaining task window.
index::CostModelParams ParamsFor(const core::Instance& instance,
                                 double d2) {
  double v_max = 0.0;
  for (const core::Worker& w : instance.workers()) {
    v_max = std::max(v_max, w.velocity);
  }
  double latest_end = instance.now();
  for (const core::Task& t : instance.tasks()) {
    latest_end = std::max(latest_end, t.end);
  }
  index::CostModelParams params;
  params.l_max =
      std::clamp(v_max * (latest_end - instance.now()), 0.01, 1.0);
  params.d2 = d2;
  params.num_points = std::max(instance.num_tasks(), 1);
  return params;
}

}  // namespace

util::StatusOr<Engine> Engine::Create(std::string solver_name) {
  EngineConfig config;
  config.solver_name = std::move(solver_name);
  return Create(std::move(config));
}

util::StatusOr<Engine> Engine::Create(EngineConfig config) {
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config.solver_name,
                                            config.solver_options);
  if (!solver.ok()) return solver.status();
  Engine engine;
  engine.config_ = std::move(config);
  engine.solver_ = std::move(solver).value();
  if (engine.config_.num_threads > 1) {
    engine.pool_ =
        std::make_unique<util::ThreadPool>(engine.config_.num_threads);
  }
  return engine;
}

std::string_view Engine::solver_display_name() const {
  return solver_ == nullptr ? std::string_view{} : solver_->name();
}

util::StatusOr<core::CandidateGraph> Engine::BuildGraph(
    const core::Instance& instance, GraphPlan* plan,
    const util::Deadline& deadline) const {
  return BuildGraphOn(instance, plan, deadline, pool_.get());
}

util::StatusOr<core::CandidateGraph> Engine::BuildGraphOn(
    const core::Instance& instance, GraphPlan* plan,
    const util::Deadline& deadline, util::Executor* executor) const {
  auto t0 = std::chrono::steady_clock::now();
  GraphPlan local;

  bool use_grid = config_.graph_strategy == GraphStrategy::kGridIndex;
  double eta = config_.eta;
  if (config_.graph_strategy != GraphStrategy::kBruteForce &&
      instance.num_tasks() > 0 && instance.num_workers() > 0) {
    index::CostModelParams params = ParamsFor(instance, config_.d2);
    if (eta <= 0.0) eta = index::OptimalEta(params);
    if (config_.graph_strategy == GraphStrategy::kAuto) {
      // Appendix I arbitration: the grid pays one insert per object plus
      // the modeled per-worker retrieval cost; brute force tests every
      // (task, worker) pair. Pick whichever the model prices cheaper.
      double grid_cost =
          instance.num_tasks() + instance.num_workers() +
          instance.num_workers() * index::EstimateUpdateCost(eta, params);
      double brute_cost = static_cast<double>(instance.num_tasks()) *
                          static_cast<double>(instance.num_workers());
      use_grid = grid_cost < brute_cost;
    }
  }

  core::CandidateGraph graph;
  if (use_grid) {
    util::StatusOr<index::GridIndex> grid =
        index::GridIndex::Build(instance, eta, deadline);
    if (!grid.ok()) return grid.status();
    util::StatusOr<std::vector<std::vector<core::TaskId>>> edges =
        grid.value().RetrieveEdges(instance.num_workers(), nullptr, executor,
                                   deadline);
    if (!edges.ok()) return edges.status();
    graph =
        core::CandidateGraph::FromEdges(instance, std::move(edges).value());
    local.used_grid_index = true;
    local.eta = grid.value().eta();
  } else {
    util::StatusOr<core::CandidateGraph> built =
        core::CandidateGraph::Build(instance, executor, deadline);
    if (!built.ok()) return built.status();
    graph = std::move(built).value();
  }
  local.edges = graph.NumEdges();
  local.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (plan != nullptr) *plan = local;
  return graph;
}

util::Status Engine::CheckReady(const core::Instance& instance) const {
  if (solver_ == nullptr) {
    return util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
  }
  if (config_.validate_instances) {
    return instance.Validate();
  }
  return util::Status::OK();
}

util::Deadline Engine::MakeDeadline(const RunControls& controls) const {
  double budget = controls.budget_seconds < 0.0 ? config_.budget_seconds
                                                : controls.budget_seconds;
  return util::Deadline(budget, controls.cancel);
}

util::StatusOr<core::SolveResult> Engine::DoSolve(
    const core::Instance& instance, const core::CandidateGraph& graph,
    core::Solver& solver, const util::Deadline& deadline,
    util::Executor* executor, core::SolveStats* partial_stats) {
  core::SolveRequest request;
  request.instance = &instance;
  request.graph = &graph;
  request.deadline = &deadline;
  request.partial_stats = partial_stats;
  request.executor = executor;
  return solver.Solve(request);
}

util::StatusOr<core::SolveResult> Engine::SolveOn(
    const core::Instance& instance, const core::CandidateGraph& graph,
    const RunControls& controls) {
  if (util::Status ready = CheckReady(instance); !ready.ok()) return ready;
  util::Deadline deadline = MakeDeadline(controls);
  return DoSolve(instance, graph, *solver_, deadline, pool_.get(),
                 controls.partial_stats);
}

util::StatusOr<EngineResult> Engine::RunOn(
    const core::Instance& instance, core::Solver& solver,
    const util::Deadline& deadline, util::Executor* executor,
    core::SolveStats* partial_stats) const {
  if (util::Status ready = CheckReady(instance); !ready.ok()) return ready;
  // The admission budget covers the whole run, so the clock starts before
  // graph construction: a solve after an expensive build only gets the
  // remaining budget (and fails immediately if the build consumed it all).
  EngineResult result;
  util::StatusOr<core::CandidateGraph> graph =
      BuildGraphOn(instance, &result.plan, deadline, executor);
  if (!graph.ok()) {
    // The build tripped the budget mid-scan; report it the same way a
    // budget-exceeded solve would.
    if (partial_stats != nullptr) {
      *partial_stats = core::SolveStats{};
      partial_stats->budget_exhausted = true;
    }
    return graph.status();
  }

  util::StatusOr<core::SolveResult> solve = DoSolve(
      instance, graph.value(), solver, deadline, executor, partial_stats);
  if (!solve.ok()) return solve.status();
  result.solve = std::move(solve).value();
  return result;
}

util::StatusOr<EngineResult> Engine::Run(const core::Instance& instance,
                                         const RunControls& controls) {
  if (solver_ == nullptr) {
    return util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
  }
  return RunOn(instance, *solver_, MakeDeadline(controls), pool_.get(),
               controls.partial_stats);
}

util::StatusOr<EngineResult> Engine::RunIsolated(
    const core::Instance& instance, const util::Deadline& deadline) const {
  if (solver_ == nullptr) {
    return util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
  }
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config_.solver_name,
                                            config_.solver_options);
  if (!solver.ok()) return solver.status();
  return RunOn(instance, *solver.value(), deadline,
               /*executor=*/nullptr, /*partial_stats=*/nullptr);
}

std::vector<util::StatusOr<EngineResult>> Engine::RunBatch(
    std::span<const core::Instance> instances,
    const RunControls& controls) {
  const int n = static_cast<int>(instances.size());
  std::vector<util::StatusOr<EngineResult>> results(
      n, util::StatusOr<EngineResult>(
             util::Status::Internal("batch slot never ran")));
  if (n == 0) return results;
  if (solver_ == nullptr) {
    util::Status inert = util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
    for (auto& slot : results) slot = inert;
    return results;
  }

  // One deadline for the whole batch: the budget is an admission control
  // on the batch, not a per-instance allowance. Every task gets its own
  // registry-created solver (identical options), so per-instance results
  // match individual Run calls and no solver is shared across threads.
  // Instances run serially inside their task: the fan-out is per
  // instance, and one queued task per instance (instead of static
  // sharding) keeps the pool busy on heterogeneous batches.
  util::Deadline deadline = MakeDeadline(controls);
  auto run_one = [&](int64_t i) {
    results[i] = RunIsolated(instances[i], deadline);
  };
  if (pool_ == nullptr) {
    for (int64_t i = 0; i < n; ++i) run_one(i);
  } else {
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      pending.push_back(pool_->Submit([&run_one, i] { run_one(i); }));
    }
    for (std::future<void>& task : pending) task.get();
  }
  return results;
}

}  // namespace rdbsc
