#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#include "engine/fingerprint.h"
#include "engine/solve_cache.h"
#include "index/cost_model.h"
#include "index/grid_index.h"

namespace rdbsc {
namespace {

// Cost-model inputs observed from the instance: L_max is the farthest any
// worker can still travel inside the longest remaining task window.
index::CostModelParams ParamsFor(const core::Instance& instance,
                                 double d2) {
  double v_max = 0.0;
  for (const core::Worker& w : instance.workers()) {
    v_max = std::max(v_max, w.velocity);
  }
  double latest_end = instance.now();
  for (const core::Task& t : instance.tasks()) {
    latest_end = std::max(latest_end, t.end);
  }
  index::CostModelParams params;
  params.l_max =
      std::clamp(v_max * (latest_end - instance.now()), 0.01, 1.0);
  params.d2 = d2;
  params.num_points = std::max(instance.num_tasks(), 1);
  return params;
}

// Resolves the RunControls/RunIsolated cache convention: no cache means
// kOff, and kDefault with a cache attached means kReadWrite.
engine::CacheMode ResolveCacheMode(const engine::SolveCache* cache,
                                   engine::CacheMode mode) {
  if (cache == nullptr) return engine::CacheMode::kOff;
  if (mode == engine::CacheMode::kDefault) {
    return engine::CacheMode::kReadWrite;
  }
  return mode;
}

using engine::CacheModeReads;
using engine::CacheModeWrites;
using util::SecondsSince;

// Scope timer recording into an optional stage histogram on destruction.
// A null histogram (no registry attached) costs one branch and skips the
// clock reads entirely, keeping the unobserved hot path unchanged.
class StageTimer {
 public:
  explicit StageTimer(obs::Histogram* hist)
      : hist_(hist), t0_(hist == nullptr
                             ? std::chrono::steady_clock::time_point{}
                             : std::chrono::steady_clock::now()) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    if (hist_ != nullptr) hist_->Observe(SecondsSince(t0_));
  }

 private:
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

util::StatusOr<Engine> Engine::Create(std::string solver_name) {
  EngineConfig config;
  config.solver_name = std::move(solver_name);
  return Create(std::move(config));
}

util::StatusOr<Engine> Engine::Create(EngineConfig config) {
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config.solver_name,
                                            config.solver_options);
  if (!solver.ok()) return solver.status();
  Engine engine;
  engine.config_ = std::move(config);
  engine.solver_ = std::move(solver).value();
  if (engine.config_.num_threads > 1) {
    engine.pool_ =
        std::make_unique<util::ThreadPool>(engine.config_.num_threads);
  }
  if (engine.config_.metrics != nullptr) {
    // Resolve the metric handles once here; the stages then record
    // through plain pointers without ever touching the registry lock.
    obs::Registry& registry = *engine.config_.metrics;
    const std::string& solver_name = engine.config_.solver_name;
    auto stage_hist = [&](const char* stage) {
      return &registry.GetHistogram(
          "engine.stage_seconds",
          {{"solver", solver_name}, {"stage", stage}}, 1e-9);
    };
    engine.stage_metrics_.validate_seconds = stage_hist("validate");
    engine.stage_metrics_.plan_seconds = stage_hist("plan");
    engine.stage_metrics_.build_seconds = stage_hist("build");
    engine.stage_metrics_.solve_seconds = stage_hist("solve");
    engine.stage_metrics_.cache_hits = &registry.GetCounter(
        "engine.cache", {{"solver", solver_name}, {"outcome", "hit"}});
    engine.stage_metrics_.cache_misses = &registry.GetCounter(
        "engine.cache", {{"solver", solver_name}, {"outcome", "miss"}});
  }
  return engine;
}

std::string_view Engine::solver_display_name() const {
  return solver_ == nullptr ? std::string_view{} : solver_->name();
}

util::Hash128 Engine::ResultCacheKey(const core::Instance& instance) const {
  return engine::ResultCacheKey(instance, config_);
}

// --- Stages --------------------------------------------------------------

util::Status Engine::StageValidate(engine::ExecutionContext& ctx) const {
  StageTimer timer(stage_metrics_.validate_seconds);
  if (config_.validate_instances) {
    if (util::Status status = ctx.instance->Validate(); !status.ok()) {
      return status;
    }
  }
  ctx.validated = true;
  return util::Status::OK();
}

util::Status Engine::StagePlan(engine::ExecutionContext& ctx) const {
  StageTimer timer(stage_metrics_.plan_seconds);
  const core::Instance& instance = *ctx.instance;
  bool use_grid = config_.graph_strategy == GraphStrategy::kGridIndex;
  double eta = config_.eta;
  if (config_.graph_strategy != GraphStrategy::kBruteForce &&
      instance.num_tasks() > 0 && instance.num_workers() > 0) {
    index::CostModelParams params = ParamsFor(instance, config_.d2);
    if (eta <= 0.0) eta = index::OptimalEta(params);
    if (config_.graph_strategy == GraphStrategy::kAuto) {
      // Appendix I arbitration: the grid pays one insert per object plus
      // the modeled per-worker retrieval cost; brute force tests every
      // (task, worker) pair. Pick whichever the model prices cheaper.
      double grid_cost =
          instance.num_tasks() + instance.num_workers() +
          instance.num_workers() * index::EstimateUpdateCost(eta, params);
      double brute_cost = static_cast<double>(instance.num_tasks()) *
                          static_cast<double>(instance.num_workers());
      use_grid = grid_cost < brute_cost;
    }
  }
  ctx.plan.used_grid_index = use_grid;
  ctx.resolved_eta = eta;
  ctx.planned = true;
  return util::Status::OK();
}

util::StatusOr<core::CandidateGraph> Engine::ExecutePlannedBuild(
    const core::Instance& instance, bool use_grid, double eta,
    GraphPlan* plan, const util::Deadline& deadline,
    util::Executor* executor) const {
  auto t0 = std::chrono::steady_clock::now();
  GraphPlan local;
  local.used_grid_index = use_grid;

  core::CandidateGraph graph;
  if (use_grid) {
    util::StatusOr<index::GridIndex> grid =
        index::GridIndex::Build(instance, eta, deadline);
    if (!grid.ok()) return grid.status();
    util::StatusOr<std::vector<std::vector<core::TaskId>>> edges =
        grid.value().RetrieveEdges(instance.num_workers(), nullptr, executor,
                                   deadline);
    if (!edges.ok()) return edges.status();
    graph =
        core::CandidateGraph::FromEdges(instance, std::move(edges).value());
    local.eta = grid.value().eta();
  } else {
    util::StatusOr<core::CandidateGraph> built =
        core::CandidateGraph::Build(instance, executor, deadline);
    if (!built.ok()) return built.status();
    graph = std::move(built).value();
  }
  local.edges = graph.NumEdges();
  local.build_seconds = SecondsSince(t0);
  if (plan != nullptr) *plan = local;
  return graph;
}

util::Status Engine::StageBuildGraph(engine::ExecutionContext& ctx) const {
  if (!ctx.planned) {
    if (util::Status status = StagePlan(ctx); !status.ok()) return status;
  }
  // Timer starts after the implicit plan so stage histograms stay
  // disjoint: plan time lands in "plan" even when triggered from here.
  StageTimer timer(stage_metrics_.build_seconds);
  const engine::CacheMode mode = ResolveCacheMode(ctx.cache, ctx.cache_mode);
  util::Hash128 key{};
  if (CacheModeReads(mode) || CacheModeWrites(mode)) {
    key = engine::GraphCacheKey(*ctx.instance, ctx.plan.used_grid_index,
                                ctx.resolved_eta);
  }
  if (CacheModeReads(mode)) {
    auto t0 = std::chrono::steady_clock::now();
    GraphPlan cached_plan;
    if (std::shared_ptr<const core::CandidateGraph> hit =
            ctx.cache->LookupGraph(key, &cached_plan)) {
      ctx.graph = std::move(hit);
      ctx.plan = cached_plan;
      ctx.plan.build_seconds = SecondsSince(t0);
      ctx.plan.from_cache = true;
      return util::Status::OK();
    }
  }

  util::StatusOr<core::CandidateGraph> built = ExecutePlannedBuild(
      *ctx.instance, ctx.plan.used_grid_index, ctx.resolved_eta, &ctx.plan,
      ctx.deadline, ctx.executor);
  if (!built.ok()) return built.status();
  auto shared = std::make_shared<const core::CandidateGraph>(
      std::move(built).value());
  if (CacheModeWrites(mode)) {
    ctx.cache->InsertGraph(key, shared, ctx.plan);
  }
  ctx.graph = std::move(shared);
  return util::Status::OK();
}

util::Status Engine::StageSolve(engine::ExecutionContext& ctx,
                                core::Solver& solver) const {
  StageTimer timer(stage_metrics_.solve_seconds);
  core::SolveRequest request;
  request.instance = ctx.instance;
  request.graph = ctx.graph.get();
  request.deadline = &ctx.deadline;
  request.partial_stats = ctx.partial_stats;
  request.executor = ctx.executor;
  util::StatusOr<core::SolveResult> solved = solver.Solve(request);
  if (!solved.ok()) return solved.status();
  ctx.solve = std::move(solved).value();
  return util::Status::OK();
}

util::StatusOr<EngineResult> Engine::RunPipeline(
    engine::ExecutionContext& ctx, core::Solver& solver) const {
  if (!ctx.validated) {
    if (util::Status status = StageValidate(ctx); !status.ok()) {
      return status;
    }
  }

  const engine::CacheMode mode = ResolveCacheMode(ctx.cache, ctx.cache_mode);
  util::Hash128 result_key{};
  if (CacheModeReads(mode) || CacheModeWrites(mode)) {
    result_key = ctx.result_key != nullptr
                     ? *ctx.result_key
                     : engine::ResultCacheKey(*ctx.instance, config_);
  }
  if (CacheModeReads(mode)) {
    if (std::shared_ptr<const EngineResult> hit =
            ctx.cache->LookupResult(result_key)) {
      // Bit-identical replay of the cold run that produced the entry
      // (values are immutable and shared); only the provenance flag and
      // -- implicitly -- wall-clock differ.
      if (stage_metrics_.cache_hits != nullptr) {
        stage_metrics_.cache_hits->Increment();
      }
      EngineResult result = *hit;
      result.from_cache = true;
      ctx.plan = result.plan;
      ctx.solve = result.solve;
      ctx.result_from_cache = true;
      return result;
    }
    if (stage_metrics_.cache_misses != nullptr) {
      stage_metrics_.cache_misses->Increment();
    }
  }

  if (ctx.graph == nullptr) {
    if (util::Status status = StageBuildGraph(ctx); !status.ok()) {
      // The build tripped the budget mid-scan; report it the same way a
      // budget-exceeded solve would.
      if (ctx.partial_stats != nullptr &&
          (status.code() == util::StatusCode::kDeadlineExceeded ||
           status.code() == util::StatusCode::kCancelled)) {
        *ctx.partial_stats = core::SolveStats{};
        ctx.partial_stats->budget_exhausted = true;
      }
      return status;
    }
  }

  if (util::Status status = StageSolve(ctx, solver); !status.ok()) {
    return status;
  }

  EngineResult result;
  result.solve = ctx.solve;
  result.plan = ctx.plan;
  if (CacheModeWrites(mode)) {
    ctx.cache->InsertResult(result_key, result);
  }
  return result;
}

// --- Entry points (stage compositions) -----------------------------------

util::Status Engine::CheckInitialized() const {
  if (solver_ == nullptr) {
    return util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
  }
  return util::Status::OK();
}

util::Deadline Engine::MakeDeadline(const RunControls& controls) const {
  double budget = controls.budget_seconds < 0.0 ? config_.budget_seconds
                                                : controls.budget_seconds;
  return util::Deadline(budget, controls.cancel);
}

util::StatusOr<core::CandidateGraph> Engine::BuildGraph(
    const core::Instance& instance, GraphPlan* plan,
    const util::Deadline& deadline) const {
  engine::ExecutionContext ctx;
  ctx.instance = &instance;
  if (util::Status status = StagePlan(ctx); !status.ok()) return status;
  // Record into the build-stage histogram here too, so SolveOn-style
  // callers (the benches share one graph across approaches) still get a
  // full per-stage breakdown.
  StageTimer timer(stage_metrics_.build_seconds);
  util::StatusOr<core::CandidateGraph> built = ExecutePlannedBuild(
      instance, ctx.plan.used_grid_index, ctx.resolved_eta, &ctx.plan,
      deadline, pool_.get());
  if (built.ok() && plan != nullptr) *plan = ctx.plan;
  return built;
}

util::StatusOr<core::SolveResult> Engine::SolveOn(
    const core::Instance& instance, const core::CandidateGraph& graph,
    const RunControls& controls) {
  if (util::Status status = CheckInitialized(); !status.ok()) return status;
  engine::ExecutionContext ctx;
  ctx.instance = &instance;
  ctx.deadline = MakeDeadline(controls);
  ctx.executor = pool_.get();
  ctx.partial_stats = controls.partial_stats;
  if (util::Status status = StageValidate(ctx); !status.ok()) return status;
  // The graph is caller-owned and outlives the call; alias it into the
  // context's shared slot without taking ownership.
  ctx.graph = std::shared_ptr<const core::CandidateGraph>(
      std::shared_ptr<const core::CandidateGraph>(), &graph);
  ctx.planned = true;
  if (util::Status status = StageSolve(ctx, *solver_); !status.ok()) {
    return status;
  }
  return std::move(ctx.solve);
}

util::StatusOr<EngineResult> Engine::Run(const core::Instance& instance,
                                         const RunControls& controls) {
  if (util::Status status = CheckInitialized(); !status.ok()) return status;
  engine::ExecutionContext ctx;
  ctx.instance = &instance;
  ctx.deadline = MakeDeadline(controls);
  ctx.executor = pool_.get();
  ctx.partial_stats = controls.partial_stats;
  ctx.cache = controls.cache;
  ctx.cache_mode = controls.cache_mode;
  return RunPipeline(ctx, *solver_);
}

util::StatusOr<EngineResult> Engine::RunIsolated(
    const core::Instance& instance, const util::Deadline& deadline,
    engine::SolveCache* cache, engine::CacheMode mode,
    const util::Hash128* result_key) const {
  if (util::Status status = CheckInitialized(); !status.ok()) return status;
  util::StatusOr<std::unique_ptr<core::Solver>> solver =
      core::SolverRegistry::Global().Create(config_.solver_name,
                                            config_.solver_options);
  if (!solver.ok()) return solver.status();
  engine::ExecutionContext ctx;
  ctx.instance = &instance;
  ctx.deadline = deadline;
  ctx.cache = cache;
  ctx.cache_mode = mode;
  ctx.result_key = result_key;
  return RunPipeline(ctx, *solver.value());
}

std::vector<util::StatusOr<EngineResult>> Engine::RunBatch(
    std::span<const core::Instance> instances,
    const RunControls& controls) {
  const int n = static_cast<int>(instances.size());
  std::vector<util::StatusOr<EngineResult>> results(
      n, util::StatusOr<EngineResult>(
             util::Status::Internal("batch slot never ran")));
  if (n == 0) return results;
  if (solver_ == nullptr) {
    util::Status inert = util::Status::FailedPrecondition(
        "engine not initialized; construct it with Engine::Create");
    for (auto& slot : results) slot = inert;
    return results;
  }

  // One deadline for the whole batch: the budget is an admission control
  // on the batch, not a per-instance allowance. Every task gets its own
  // registry-created solver (identical options), so per-instance results
  // match individual Run calls and no solver is shared across threads.
  // Instances run serially inside their task: the fan-out is per
  // instance, and one queued task per instance (instead of static
  // sharding) keeps the pool busy on heterogeneous batches.
  util::Deadline deadline = MakeDeadline(controls);
  auto run_one = [&](int64_t i) {
    results[i] = RunIsolated(instances[i], deadline, controls.cache,
                             controls.cache_mode);
  };
  if (pool_ == nullptr) {
    for (int64_t i = 0; i < n; ++i) run_one(i);
  } else {
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      pending.push_back(pool_->Submit([&run_one, i] { run_one(i); }));
    }
    for (std::future<void>& task : pending) task.get();
  }
  return results;
}

}  // namespace rdbsc
