#include "engine/fingerprint.h"

#include <bit>
#include <cstdio>

#include "core/fingerprint.h"

namespace rdbsc::engine {
namespace {

// Hex bit-pattern of a double: bit-identical results produce identical
// strings, and nothing is lost to decimal formatting.
std::string HexBits(double value) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(value)));
  return buffer;
}

}  // namespace

util::Hash128 GraphCacheKey(const core::Instance& instance, bool use_grid,
                            double eta) {
  util::Hasher hasher;
  core::MixInstance(hasher, instance);
  hasher.Mix(use_grid).Mix(eta);
  return hasher.Digest();
}

util::Hash128 ResultCacheKey(const core::Instance& instance,
                             const EngineConfig& config) {
  util::Hasher hasher;
  core::MixInstance(hasher, instance);
  hasher.Mix(std::string_view(config.solver_name));
  core::MixSolverOptions(hasher, config.solver_options);
  hasher.Mix(static_cast<uint64_t>(config.graph_strategy))
      .Mix(config.eta)
      .Mix(config.d2);
  return hasher.Digest();
}

std::string ResultFingerprint(const util::StatusOr<EngineResult>& result) {
  std::string out =
      "code=" + std::to_string(static_cast<int>(result.status().code()));
  if (!result.ok()) return out;
  const EngineResult& r = result.value();
  out += ";assign=";
  for (core::WorkerId j = 0; j < r.solve.assignment.num_workers(); ++j) {
    out += std::to_string(r.solve.assignment.TaskOf(j));
    out += ',';
  }
  out += ";std=" + HexBits(r.solve.objectives.total_std);
  out += ";rel=" + HexBits(r.solve.objectives.min_reliability);
  out += ";edges=" + std::to_string(r.plan.edges);
  out += ";grid=" + std::to_string(r.plan.used_grid_index ? 1 : 0);
  return out;
}

}  // namespace rdbsc::engine
