#ifndef RDBSC_ENGINE_SERVER_H_
#define RDBSC_ENGINE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/instance.h"
#include "engine/engine.h"
#include "engine/solve_cache.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "util/deadline.h"
#include "util/hash.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rdbsc::engine {

/// What Submit does once the admission queue is at max_queue_depth.
enum class OverloadPolicy {
  /// Block the submitter until a slot frees up (or the server shuts down).
  kBlock,
  /// Fail the new request immediately with kResourceExhausted.
  kReject,
  /// Drop the oldest queued request (it completes with kResourceExhausted)
  /// to make room for the new one. Age alone decides the victim --
  /// deliberately ignoring priority, so a stale high-priority request
  /// cannot pin the queue; pair high priorities with kBlock/kReject if
  /// they must never be shed.
  kShedOldest,
};

/// How Shutdown winds the server down.
enum class ShutdownMode {
  /// Stop admitting, run every queued request to completion, then stop.
  kDrain,
  /// Stop admitting, fail queued requests with kCancelled, and trip the
  /// server CancelToken so in-flight solves return kCancelled at their
  /// next deadline poll.
  kCancel,
};

/// Configuration of an admission server.
struct ServerConfig {
  /// Solver / graph-strategy / validation settings of the underlying
  /// pipeline. `engine.num_threads` is ignored: each admitted request runs
  /// serially on a fresh registry-created solver (the determinism
  /// contract), and concurrency comes from `num_workers` requests in
  /// flight at once. `engine.budget_seconds` is also ignored -- request
  /// budgets come from `default_budget_seconds` / SubmitControls and the
  /// `total_budget_seconds` pool below. `engine.metrics`, when left
  /// null, is pointed at the server-owned registry so per-stage timings
  /// land next to the server.* metrics (Server::metrics()).
  EngineConfig engine;

  /// Dispatch threads, i.e. requests solved concurrently (clamped to 1).
  int num_workers = 1;
  /// Queued-but-not-yet-running requests admitted before `overload_policy`
  /// kicks in (clamped to 1).
  int max_queue_depth = 256;
  OverloadPolicy overload_policy = OverloadPolicy::kReject;

  /// Per-request wall-clock budget applied when SubmitControls does not
  /// override it; <= 0 means unlimited.
  double default_budget_seconds = 0.0;
  /// Server-wide budget pool in seconds; <= 0 means unlimited. Every
  /// admission deducts the request's effective budget from the pool:
  /// an unlimited request is capped at the remaining pool, and once the
  /// pool hits zero further submissions fail with kResourceExhausted.
  double total_budget_seconds = 0.0;

  /// Default cache policy applied when SubmitControls::cache is kDefault.
  /// kOff keeps every request cold unless a submission opts in.
  CacheMode cache_mode = CacheMode::kOff;
  /// Tier capacities of the server-owned SolveCache (entries). Setting
  /// one to 0 disables that tier only (e.g. graph_entries = 0 caches
  /// results without pinning heavy CandidateGraphs); setting both to 0
  /// disables the cache entirely: every request solves cold and
  /// single-flight collapsing is off, whatever the cache modes say.
  size_t cache_result_entries = 4096;
  size_t cache_graph_entries = 1024;
};

/// Per-submission overrides.
struct SubmitControls {
  /// Higher-priority requests dispatch first; ties in submission order.
  int priority = 0;
  /// < 0: use the server's default budget. 0: unlimited (still capped by
  /// the server-wide pool when that is finite). The clock starts at
  /// *dispatch*, not Submit: the budget bounds the solve itself, so a
  /// result stays independent of how long the ticket sat queued (time in
  /// queue is governed by the overload policy and queue depth instead).
  double budget_seconds = -1.0;
  /// What this request may do with the server's SolveCache; kDefault
  /// falls back to ServerConfig::cache_mode. A read-enabled, unlimited-
  /// budget request is also eligible for single-flight collapsing onto an
  /// identical queued/in-flight request; a collapse never inverts
  /// priority -- a follower more urgent than its still-queued leader
  /// promotes the leader to its own priority.
  CacheMode cache = CacheMode::kDefault;
  /// When true the request is admitted and queued normally but completes
  /// with kCancelled at dispatch instead of solving. Cancellation is
  /// decided at admission, so -- unlike Ticket::Cancel, which races the
  /// dispatcher -- the outcome is the same on every replay whatever the
  /// worker count: scripted load harnesses (src/wl) compile their cancel
  /// ops to this. Such a request never participates in single-flight
  /// collapsing (its kCancelled outcome must not be shared).
  bool cancel_at_dispatch = false;
};

/// Counter snapshot returned by Server::Stats. Latency percentiles are
/// measured submit -> completion over every finished request (including
/// shed / cancelled ones), read from the server's cumulative
/// server.latency_seconds{phase=total} histogram -- exact count/min/max,
/// percentiles within the histogram's ~3.2% bucket resolution. Use
/// Server::RotateLatencyWindow for recent-traffic (windowed) latency.
struct ServerStats {
  int64_t submitted = 0;   ///< Submit calls, including rejected ones.
  int64_t admitted = 0;    ///< entered the queue (collapsed ones included)
  int64_t rejected = 0;    ///< refused at admission (full / closed / pool)
  int64_t shed = 0;        ///< dropped from the queue by kShedOldest
  int64_t completed = 0;   ///< finished with an OK result
  int64_t deadline_exceeded = 0;  ///< finished with kDeadlineExceeded
  int64_t cancelled = 0;   ///< finished with kCancelled (Shutdown(kCancel))
  int64_t failed = 0;      ///< finished with any other error

  int64_t cache_hits = 0;    ///< dispatched requests answered from the
                             ///< full-result cache tier
  int64_t cache_misses = 0;  ///< cache-read-enabled requests that solved cold
  int64_t cache_evictions = 0;  ///< entries evicted from either cache tier
  int64_t collapsed = 0;     ///< submissions collapsed onto an identical
                             ///< queued/in-flight request (single-flight)

  int queue_depth = 0;     ///< waiting right now
  int in_flight = 0;       ///< solving right now
  /// Remaining server-wide budget pool; < 0 when the pool is unlimited.
  double budget_remaining_seconds = -1.0;

  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  double latency_max_seconds = 0.0;
};

namespace internal {
/// Shared completion slot of one admitted request. Submitters hold it
/// through Ticket; the server fills it exactly once (solve result, shed,
/// or shutdown-cancel) and notifies.
///
/// Ownership discipline (not expressible as GUARDED_BY, because the
/// guard is the *server's* mutex, an object this struct cannot name):
/// `id`..`followers` are written only while the server holds its mu_ --
/// id/submit_time/instance/budget_seconds/cache_mode once at admission,
/// dispatch_time/dispatched once by RunNext at pop,
/// priority/fingerprint/single_flight/followers only by Submit /
/// AbortTicketLocked / RunNext under mu_. Once RunNext pops the ticket
/// off the queue it is the only dispatcher, so its unlocked reads of
/// instance/budget_seconds/cache_mode/fingerprint are exclusive
/// (publication ordered by the mu_ handoff). Only the completion slot
/// below has a local guard.
struct TicketState {
  uint64_t id = 0;
  int priority = 0;
  std::chrono::steady_clock::time_point submit_time;
  /// Set (with `dispatched`) by RunNext under the server's mu_ when the
  /// ticket is popped for solving; splits the submit->finish latency into
  /// the queue and run phases. Never set for tickets that never run
  /// (shed, shutdown-cancelled, collapsed followers).
  std::chrono::steady_clock::time_point dispatch_time;
  bool dispatched = false;
  core::Instance instance;
  double budget_seconds = 0.0;  ///< effective per-request budget; 0 = none

  /// Resolved cache policy of this request.
  CacheMode cache_mode = CacheMode::kOff;
  /// Result-tier fingerprint; the single-flight identity. Only meaningful
  /// when `single_flight` is set.
  util::Hash128 fingerprint{};
  /// Registered in the server's in-flight fingerprint map as a collapse
  /// leader (erased on completion / shed / cancel).
  bool single_flight = false;
  /// Duplicate submissions collapsed onto this leader; completed with a
  /// copy of the leader's outcome, never dispatched themselves.
  std::vector<std::shared_ptr<TicketState>> followers;

  /// Per-request cancellation. `cancel_at_dispatch` is written once at
  /// admission under the server's mu_ (see the discipline note above);
  /// `cancel` is an atomic flag tripped by Ticket::Cancel at any time and
  /// polled by the dispatch path (before solving) and, through the request
  /// Deadline, by the running solver.
  util::CancelToken cancel;
  bool cancel_at_dispatch = false;

  mutable util::Mutex mu;
  mutable util::CondVar cv;
  bool done GUARDED_BY(mu) = false;
  util::StatusOr<EngineResult> result GUARDED_BY(mu){
      util::Status::Internal("ticket still pending")};
};
}  // namespace internal

/// Future-style handle to one admitted request. Cheap to copy; outlives
/// the server (the result slot is shared), so Wait/TryGet stay valid after
/// Shutdown. Every admitted ticket is eventually completed -- with its
/// solve result, kResourceExhausted when shed, or kCancelled on
/// Shutdown(kCancel) -- so Wait never hangs past shutdown.
class Ticket {
 public:
  /// An empty ticket: valid() is false, Wait/TryGet must not be called.
  Ticket() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const { return state_ == nullptr ? 0 : state_->id; }

  /// Blocks until the request finished and returns its result.
  const util::StatusOr<EngineResult>& Wait() const;
  /// Non-blocking: the result once finished, nullptr while pending.
  const util::StatusOr<EngineResult>* TryGet() const;
  /// Blocks up to `seconds`; true once the request finished.
  bool WaitFor(double seconds) const;
  /// Best-effort cancellation: a still-queued request completes with
  /// kCancelled at dispatch without solving, an in-flight one aborts with
  /// kCancelled at its next deadline poll, and a finished one is
  /// unaffected. Which of the three applies races the dispatcher -- for a
  /// replay-deterministic cancel, decide at admission instead
  /// (SubmitControls::cancel_at_dispatch). Cancelling a single-flight
  /// leader cancels the followers riding it (they share the leader's
  /// outcome by the collapse contract).
  void Cancel();

 private:
  friend class Server;
  explicit Ticket(std::shared_ptr<internal::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::TicketState> state_;
};

/// Asynchronous admission layer over the Engine pipeline: Submit copies an
/// instance into a bounded priority queue and returns a Ticket; a pool of
/// `num_workers` dispatch threads pops the best queued request (highest
/// priority, then FIFO) and runs Engine::RunIsolated on it -- a fresh
/// registry-created solver, serial inside the request -- so per-ticket
/// results are bit-identical across worker counts and reruns (the PR-3
/// determinism contract, extended to the async layer and enforced by
/// tests/server_stress_test.cc).
///
/// Repeated traffic is served through a content-addressed SolveCache:
/// each request resolves a CacheMode (SubmitControls::cache, falling back
/// to ServerConfig::cache_mode) and, when read-enabled with an unlimited
/// budget, duplicate submissions of an identical instance are collapsed
/// single-flight onto the queued/in-flight leader -- one solve, N tickets,
/// all completed with the same (bit-identical) outcome. Cache hits are
/// bit-identical to cold solves, so enabling the cache never changes an
/// answer, only its latency (tests/cache_stress_test.cc).
///
///   auto server = engine::Server::Create({.engine = {.solver_name = "dc"}});
///   engine::Ticket t = server.value()->Submit(instance).value();
///   const util::StatusOr<EngineResult>& result = t.Wait();
///
/// All methods are thread-safe.
class Server {
 public:
  /// Resolves the engine config through the registry; kNotFound for an
  /// unknown solver name. The returned server is running.
  static util::StatusOr<std::unique_ptr<Server>> Create(ServerConfig config);

  /// Shutdown(kCancel) when the server is still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits `instance` (copied; the server owns it until completion) and
  /// returns its ticket. Fails with kResourceExhausted when the queue is
  /// full under kReject or the budget pool is spent, and with
  /// kFailedPrecondition after Shutdown.
  util::StatusOr<Ticket> Submit(core::Instance instance,
                                const SubmitControls& controls = {})
      EXCLUDES(mu_);

  /// Stops admissions and winds down per `mode`; blocks until every
  /// queued/in-flight request completed and the dispatch threads joined.
  /// Idempotent, first call wins: later calls (and calls racing the
  /// first) ignore their own `mode` -- a kCancel arriving during a drain
  /// does not cancel the work the drain promised to run -- and simply
  /// wait for the wind-down to finish.
  void Shutdown(ShutdownMode mode) EXCLUDES(mu_);

  ServerStats Stats() const EXCLUDES(mu_);

  /// Detailed per-tier counters of the server-owned cache (all zeros when
  /// the cache is disabled).
  CacheStats GetCacheStats() const;

  /// The server-owned metrics registry. Always populated with the
  /// server.* metrics (counters server.submitted/admitted/rejected/
  /// collapsed, server.finished{outcome=ok|deadline|cancelled|shed|
  /// failed}, server.cache{outcome=hit|miss}; histograms
  /// server.latency_seconds{phase=queue|run|total}); additionally holds
  /// the engine.* stage metrics unless ServerConfig::engine.metrics
  /// pointed them at an external registry. Snapshot() is safe at any
  /// time, including while the server is serving.
  const obs::Registry& metrics() const { return metrics_; }
  obs::Registry& metrics() { return metrics_; }

  /// Closes the current latency window and returns its snapshot
  /// (submit -> completion seconds of the requests that finished since
  /// the previous rotation); the cumulative distribution is unaffected.
  /// Drives `run_workload --server --stats-window=N` style live
  /// reporting. Thread-safe.
  obs::HistogramSnapshot RotateLatencyWindow();

  const ServerConfig& config() const { return config_; }

 private:
  // Dispatch order: highest priority first, then submission order.
  struct QueueKey {
    int priority = 0;
    uint64_t seq = 0;
    bool operator<(const QueueKey& other) const {
      if (priority != other.priority) return priority > other.priority;
      return seq < other.seq;
    }
  };

  Server() = default;

  /// Body of one queued pool task: pop the best ticket, solve, complete.
  void RunNext() EXCLUDES(mu_);
  /// Fills a ticket's result slot and wakes its waiters.
  static void Complete(const std::shared_ptr<internal::TicketState>& state,
                       util::StatusOr<EngineResult> result);
  /// Accounts one finished request (counters + latency) under mu_.
  void RecordFinishLocked(const internal::TicketState& state,
                          const util::Status& status) REQUIRES(mu_);
  /// Drops `state` from the single-flight map (if registered), accounts
  /// it and its followers as finished with `status`, and appends every
  /// ticket to complete to `out`. Requires mu_; used by shed and cancel.
  void AbortTicketLocked(
      const std::shared_ptr<internal::TicketState>& state,
      const util::Status& status,
      std::vector<std::shared_ptr<internal::TicketState>>& out)
      REQUIRES(mu_);

  // --- Immutable after Create (no guard): configuration and the solving
  // machinery. `pool_` is additionally reset by exactly one Shutdown
  // call, strictly after closed_ blocked new Submits and the idle wait
  // saw pending_pool_tasks_ == 0, so no dispatch or submit path can
  // still reach it.
  ServerConfig config_;
  Engine engine_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<SolveCache> cache_;
  util::CancelToken cancel_;
  bool budget_limited_ = false;

  /// Server-owned metrics (see metrics()). Declared before the resolved
  /// handles below, which point into it. The registry and its metrics are
  /// internally synchronized; the counter/histogram *handles* are set
  /// once in Create. Counter increments nevertheless happen only while
  /// holding mu_, so a Stats() snapshot (also under mu_) always observes
  /// the partition invariants (submitted == admitted + rejected;
  /// admitted == finished + queued + in flight) exactly -- lock-free
  /// recording is reserved for the latency histograms' internals.
  obs::Registry metrics_;
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_collapsed_ = nullptr;
  obs::Counter* c_finished_ok_ = nullptr;
  obs::Counter* c_finished_deadline_ = nullptr;
  obs::Counter* c_finished_cancelled_ = nullptr;
  obs::Counter* c_finished_shed_ = nullptr;
  obs::Counter* c_finished_failed_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Histogram* lat_queue_ = nullptr;
  obs::Histogram* lat_run_ = nullptr;
  obs::Histogram* lat_total_ = nullptr;
  /// Rotating window over submit->completion latency (the phase=total
  /// stream), feeding RotateLatencyWindow.
  obs::WindowedRecorder latency_window_{1e-9};

  mutable util::Mutex mu_;
  util::CondVar space_cv_;  ///< kBlock submitters wait here
  util::CondVar idle_cv_;   ///< Shutdown waits here
  bool closed_ GUARDED_BY(mu_) = false;      ///< no further admissions
  bool joining_ GUARDED_BY(mu_) = false;     ///< one Shutdown owns the join
  bool wound_down_ GUARDED_BY(mu_) = false;  ///< dispatch threads joined
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::map<QueueKey, std::shared_ptr<internal::TicketState>> queue_
      GUARDED_BY(mu_);
  /// Single-flight registry: result fingerprint -> queued/in-flight
  /// leader. Entries are erased when their leader completes, is shed, or
  /// is cancelled, so the map never outgrows queue depth + workers.
  std::unordered_map<util::Hash128, std::shared_ptr<internal::TicketState>,
                     util::Hash128Hasher>
      inflight_ GUARDED_BY(mu_);
  int in_flight_ GUARDED_BY(mu_) = 0;
  /// Queued-but-unfinished pool tasks; every admission enqueues exactly
  /// one, so 0 here means queue_ is empty and nothing is in flight.
  int pending_pool_tasks_ GUARDED_BY(mu_) = 0;
  double budget_remaining_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace rdbsc::engine

#endif  // RDBSC_ENGINE_SERVER_H_
