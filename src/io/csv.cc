#include "io/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "geo/angle.h"

namespace rdbsc::io {
namespace {

// Splits a CSV line on commas (no quoting; the formats are numeric-only).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // A trailing comma means an empty final field.
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

util::Status ParseDouble(const std::string& text, int line_number,
                         double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(begin, &end);
  if (end == begin || errno == ERANGE) {
    return util::Status::InvalidArgument("line " +
                                         std::to_string(line_number) +
                                         ": bad number '" + text + "'");
  }
  while (*end == ' ' || *end == '\r') ++end;
  if (*end != '\0') {
    return util::Status::InvalidArgument("line " +
                                         std::to_string(line_number) +
                                         ": trailing junk in '" + text + "'");
  }
  *out = value;
  return util::Status::OK();
}

util::StatusOr<std::vector<std::vector<double>>> ReadNumericCsv(
    const std::string& path, size_t columns) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::NotFound("cannot open '" + path + "'");
  }
  std::vector<std::vector<double>> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line_number == 1) continue;  // header
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != columns) {
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(columns) + " columns, got " +
          std::to_string(fields.size()));
    }
    std::vector<double> row(columns);
    for (size_t c = 0; c < columns; ++c) {
      util::Status status = ParseDouble(fields[c], line_number, &row[c]);
      if (!status.ok()) return status;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

util::Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) {
    return util::Status::Internal("cannot write '" + path + "'");
  }
  out->precision(17);
  return util::Status::OK();
}

}  // namespace

util::Status WriteTasksCsv(const std::string& path,
                           const std::vector<core::Task>& tasks) {
  std::ofstream out;
  util::Status status = OpenForWrite(path, &out);
  if (!status.ok()) return status;
  out << "x,y,start,end,beta\n";
  for (const core::Task& t : tasks) {
    out << t.location.x << ',' << t.location.y << ',' << t.start << ','
        << t.end << ',' << t.beta << '\n';
  }
  return util::Status::OK();
}

util::StatusOr<std::vector<core::Task>> ReadTasksCsv(
    const std::string& path) {
  auto rows = ReadNumericCsv(path, 5);
  if (!rows.ok()) return rows.status();
  std::vector<core::Task> tasks;
  tasks.reserve(rows.value().size());
  for (const auto& row : rows.value()) {
    core::Task t;
    t.location = {row[0], row[1]};
    t.start = row[2];
    t.end = row[3];
    t.beta = row[4];
    tasks.push_back(t);
  }
  return tasks;
}

util::Status WriteWorkersCsv(const std::string& path,
                             const std::vector<core::Worker>& workers) {
  std::ofstream out;
  util::Status status = OpenForWrite(path, &out);
  if (!status.ok()) return status;
  out << "x,y,velocity,dir_lo,dir_hi,confidence,available_from\n";
  for (const core::Worker& w : workers) {
    double lo = w.direction.lo();
    double hi = w.direction.hi();
    if (w.direction.width() >= geo::kTwoPi) {
      lo = 0.0;
      hi = geo::kTwoPi;  // sentinel understood by the reader
    }
    out << w.location.x << ',' << w.location.y << ',' << w.velocity << ','
        << lo << ',' << hi << ',' << w.confidence << ','
        << w.available_from << '\n';
  }
  return util::Status::OK();
}

util::StatusOr<std::vector<core::Worker>> ReadWorkersCsv(
    const std::string& path) {
  auto rows = ReadNumericCsv(path, 7);
  if (!rows.ok()) return rows.status();
  std::vector<core::Worker> workers;
  workers.reserve(rows.value().size());
  for (const auto& row : rows.value()) {
    core::Worker w;
    w.location = {row[0], row[1]};
    w.velocity = row[2];
    if (row[3] == 0.0 && row[4] >= geo::kTwoPi) {
      w.direction = geo::AngularInterval::FullCircle();
    } else {
      w.direction = geo::AngularInterval(row[3], row[4]);
    }
    w.confidence = row[5];
    w.available_from = row[6];
    workers.push_back(w);
  }
  return workers;
}

util::Status WriteAssignmentCsv(const std::string& path,
                                const core::Assignment& assignment) {
  std::ofstream out;
  util::Status status = OpenForWrite(path, &out);
  if (!status.ok()) return status;
  out << "worker,task\n";
  for (core::WorkerId j = 0; j < assignment.num_workers(); ++j) {
    out << j << ',' << assignment.TaskOf(j) << '\n';
  }
  return util::Status::OK();
}

util::StatusOr<core::Assignment> ReadAssignmentCsv(const std::string& path) {
  auto rows = ReadNumericCsv(path, 2);
  if (!rows.ok()) return rows.status();
  core::Assignment assignment(static_cast<int>(rows.value().size()));
  for (const auto& row : rows.value()) {
    int worker = static_cast<int>(row[0]);
    int task = static_cast<int>(row[1]);
    if (worker < 0 || worker >= assignment.num_workers()) {
      return util::Status::InvalidArgument("worker id out of range");
    }
    if (task != core::kNoTask) assignment.Assign(worker, task);
  }
  return assignment;
}

util::StatusOr<core::Instance> ReadInstanceCsv(const std::string& tasks_path,
                                               const std::string& workers_path,
                                               double now,
                                               core::ArrivalPolicy policy) {
  auto tasks = ReadTasksCsv(tasks_path);
  if (!tasks.ok()) return tasks.status();
  auto workers = ReadWorkersCsv(workers_path);
  if (!workers.ok()) return workers.status();
  core::Instance instance(std::move(tasks).value(),
                          std::move(workers).value(), now, policy);
  util::Status valid = instance.Validate();
  if (!valid.ok()) return valid;
  return instance;
}

}  // namespace rdbsc::io
