#ifndef RDBSC_IO_CSV_H_
#define RDBSC_IO_CSV_H_

#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "util/status.h"

namespace rdbsc::io {

/// CSV persistence so instances and assignments can round-trip to disk
/// (and users can bring their own task/worker data, e.g. real check-in
/// datasets, instead of the built-in generators).
///
/// Formats (one header line, then one row per record):
///   tasks.csv    x,y,start,end,beta
///   workers.csv  x,y,velocity,dir_lo,dir_hi,confidence,available_from
///                (dir_lo == dir_hi encodes a single direction; the pair
///                 (0, 2*pi) round-trips a full circle)
///   pairs.csv    worker,task          (task -1 = unassigned)
/// All parsing is strict: wrong column counts or unparsable numbers fail
/// with InvalidArgument naming the line.

util::Status WriteTasksCsv(const std::string& path,
                           const std::vector<core::Task>& tasks);
util::StatusOr<std::vector<core::Task>> ReadTasksCsv(const std::string& path);

util::Status WriteWorkersCsv(const std::string& path,
                             const std::vector<core::Worker>& workers);
util::StatusOr<std::vector<core::Worker>> ReadWorkersCsv(
    const std::string& path);

util::Status WriteAssignmentCsv(const std::string& path,
                                const core::Assignment& assignment);
util::StatusOr<core::Assignment> ReadAssignmentCsv(const std::string& path);

/// Convenience: loads tasks + workers into an Instance.
util::StatusOr<core::Instance> ReadInstanceCsv(
    const std::string& tasks_path, const std::string& workers_path,
    double now = 0.0,
    core::ArrivalPolicy policy = core::ArrivalPolicy::kStrict);

}  // namespace rdbsc::io

#endif  // RDBSC_IO_CSV_H_
