// Cache effectiveness under repeated traffic: sweeps the schedule's
// repeat rate x the server's dispatch workers, replaying the exact same
// pre-generated submission schedule once with the SolveCache off and once
// in kReadWrite mode, and reports the observed hit ratio plus the p50
// submit-to-completion latency of both runs. Per-ticket results are
// bit-identical between the two runs (the cache-hit determinism
// contract), so the tables measure reuse, never answer drift. The
// acceptance row is repeat=0.9: its cached p50 must undercut the cold
// p50 on the same schedule.
//
// Flags (see bench/harness.h): --base scales the per-ticket instance
// size, --threads caps the worker-count axis, plus
//   --tickets=N     schedule length per cell (default 24)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/server.h"
#include "gen/workload.h"
#include "util/rng.h"

using namespace rdbsc;

namespace {

core::Instance MakeInstance(const bench::BenchOptions& options,
                            uint64_t seed) {
  gen::WorkloadConfig config;
  config.num_tasks = bench::Scaled(options, 500);
  config.num_workers = bench::Scaled(options, 500);
  config.start_max = 4.0;
  config.seed = seed;
  return gen::GenerateInstance(config);
}

// A deterministic schedule of instance indices: slot i repeats an
// already-seen instance with probability `repeat_rate`, otherwise it
// introduces the next fresh one. The same (rate, length, seed) always
// yields the same schedule, so the cached and cold runs replay identical
// work.
std::vector<int> MakeSchedule(int length, double repeat_rate,
                              uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> schedule;
  schedule.reserve(length);
  int distinct = 0;
  for (int i = 0; i < length; ++i) {
    if (distinct > 0 && rng.Bernoulli(repeat_rate)) {
      schedule.push_back(
          static_cast<int>(rng.UniformInt(0, distinct - 1)));
    } else {
      schedule.push_back(distinct++);
    }
  }
  return schedule;
}

struct ModeResult {
  double p50 = 0.0;       ///< submit -> completion, seconds
  double hit_ratio = 0.0; ///< full-result hits / admitted
};

ModeResult RunMode(const std::vector<core::Instance>& pool,
                   const std::vector<int>& schedule, int num_workers,
                   engine::CacheMode mode) {
  engine::ServerConfig config;
  config.engine.solver_name = "dc";
  config.engine.solver_options.seed = 1;
  config.engine.validate_instances = false;
  config.num_workers = num_workers;
  config.max_queue_depth = static_cast<int>(schedule.size()) + 1;
  config.overload_policy = engine::OverloadPolicy::kBlock;
  config.cache_mode = mode;
  if (mode == engine::CacheMode::kOff) {
    config.cache_result_entries = 0;  // fully disable, incl. single-flight
    config.cache_graph_entries = 0;
  }
  std::unique_ptr<engine::Server> server =
      std::move(engine::Server::Create(std::move(config)).value());

  std::vector<engine::Ticket> tickets;
  tickets.reserve(schedule.size());
  for (int index : schedule) {
    tickets.push_back(server->Submit(pool[index]).value());
  }
  for (engine::Ticket& ticket : tickets) ticket.Wait();
  engine::ServerStats stats = server->Stats();
  server->Shutdown(engine::ShutdownMode::kDrain);

  ModeResult result;
  result.p50 = stats.latency_p50_seconds;
  result.hit_ratio =
      stats.admitted > 0
          ? static_cast<double>(stats.cache_hits + stats.collapsed) /
                static_cast<double>(stats.admitted)
          : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::BenchReport report("cache_hit", options);
  int tickets = 24;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--tickets=", 10) == 0) {
      tickets = std::max(2, std::atoi(argv[a] + 10));
    }
  }

  std::vector<int> worker_counts = {1, 2, 4};
  if (int cap = options.num_threads; cap > 0) {
    std::erase_if(worker_counts, [cap](int w) { return w > cap; });
    if (worker_counts.empty()) worker_counts.push_back(cap);
  }
  const std::vector<double> repeat_rates = {0.0, 0.5, 0.9};

  std::printf("== SolveCache hit benefit (repeat rate x workers) ==\n");
  std::printf(
      "scale: base=%d, %d tickets/schedule, instance %d x %d, solver dc\n",
      options.base, tickets, bench::Scaled(options, 500),
      bench::Scaled(options, 500));

  std::vector<std::string> row_labels, column_labels;
  for (double rate : repeat_rates) {
    char label[32];
    std::snprintf(label, sizeof(label), "repeat=%.1f", rate);
    row_labels.push_back(label);
  }
  for (int w : worker_counts) {
    column_labels.push_back(std::to_string(w) + " worker");
  }

  std::vector<std::vector<double>> hit_ratio(repeat_rates.size());
  std::vector<std::vector<double>> p50_cached(repeat_rates.size());
  std::vector<std::vector<double>> p50_cold(repeat_rates.size());
  for (size_t r = 0; r < repeat_rates.size(); ++r) {
    std::vector<int> schedule =
        MakeSchedule(tickets, repeat_rates[r], options.seed0 + r);
    int distinct = 0;
    for (int index : schedule) distinct = std::max(distinct, index + 1);
    std::vector<core::Instance> pool;
    pool.reserve(distinct);
    for (int i = 0; i < distinct; ++i) {
      pool.push_back(MakeInstance(options, options.seed0 + 100 + i));
    }
    for (int workers : worker_counts) {
      ModeResult cold =
          RunMode(pool, schedule, workers, engine::CacheMode::kOff);
      ModeResult cached =
          RunMode(pool, schedule, workers, engine::CacheMode::kReadWrite);
      hit_ratio[r].push_back(cached.hit_ratio);
      p50_cached[r].push_back(cached.p50);
      p50_cold[r].push_back(cold.p50);
    }
  }

  bench::PrintTable("Hit+collapse ratio (kReadWrite)", "schedule",
                    row_labels, column_labels, hit_ratio, 2);
  bench::PrintTable("p50 latency, cache on (s)", "schedule", row_labels,
                    column_labels, p50_cached, 6);
  bench::PrintTable("p50 latency, cache off (s)", "schedule", row_labels,
                    column_labels, p50_cold, 6);
  report.AddTable("Hit+collapse ratio (kReadWrite)", "schedule", row_labels,
                  column_labels, hit_ratio);
  report.AddTable("p50 latency, cache on (s)", "schedule", row_labels,
                  column_labels, p50_cached);
  report.AddTable("p50 latency, cache off (s)", "schedule", row_labels,
                  column_labels, p50_cold);

  // The acceptance line: at repeat=0.9 the cached p50 should beat the
  // cold p50 on every worker count (same schedule, bit-identical
  // answers). The exit code only fails on a clear regression -- cached
  // p50 more than 2x cold plus scheduler-noise slack -- so a CI smoke
  // run at tiny scale (microsecond solves, few samples) cannot go red on
  // one scheduling hiccup, while "hits became slower than cold solves"
  // still fails the step.
  constexpr double kNoiseSlackSeconds = 1e-4;
  const size_t hot = repeat_rates.size() - 1;
  bool improved = true;
  bool regressed = false;
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    if (p50_cached[hot][w] >= p50_cold[hot][w]) improved = false;
    if (p50_cached[hot][w] > 2.0 * p50_cold[hot][w] + kNoiseSlackSeconds) {
      regressed = true;
    }
  }
  std::printf("repeat=0.9 p50: cache %s cold on all worker counts\n\n",
              improved ? "beats" : "does NOT beat");
  report.Write();
  return regressed ? 1 : 0;
}
