#ifndef RDBSC_BENCH_PARAMS_H_
#define RDBSC_BENCH_PARAMS_H_

#include <numbers>

#include "bench/harness.h"
#include "gen/trajectory.h"
#include "gen/workload.h"

namespace rdbsc::bench {

/// Table 2 of the paper, bold defaults, mapped onto the bench scale:
/// m = n = 10K, rt in [1,2], [p_min,p_max] = (0.9,1), [v-,v+] = [0.2,0.3],
/// angle range (0, pi/6], beta in (0.4, 0.6].
/// Day horizon for task starts and worker check-ins. The paper draws
/// st in [0, 24]; at laptop scale that leaves almost no valid pairs per
/// worker, so non---paper-scale runs compress the horizon to 4 h, which
/// restores the paper's candidate-graph density (see DESIGN.md).
inline double Horizon(const BenchOptions& options) {
  return options.paper_scale ? 24.0 : 4.0;
}

inline gen::WorkloadConfig DefaultSynthetic(const BenchOptions& options,
                                            uint64_t seed) {
  gen::WorkloadConfig config;
  config.num_tasks = Scaled(options, 10'000);
  config.num_workers = Scaled(options, 10'000);
  config.start_max = Horizon(options);
  config.rt_min = 1.0;
  config.rt_max = 2.0;
  config.p_min = 0.9;
  config.p_max = 1.0;
  config.v_min = 0.2;
  config.v_max = 0.3;
  config.angle_range = std::numbers::pi / 6.0;
  config.beta_min = 0.4;
  config.beta_max = 0.6;
  config.seed = seed;
  return config;
}

/// The real-data substitute at Section 8.2 proportions (10,000 POI tasks,
/// 9,748 taxi-derived workers), scaled like the synthetic workloads.
inline gen::RealWorkloadConfig DefaultReal(const BenchOptions& options,
                                           uint64_t seed) {
  gen::RealWorkloadConfig config;
  config.num_tasks = Scaled(options, 10'000);
  config.trajectory.num_taxis = Scaled(options, 9'748);
  config.poi.num_pois = Scaled(options, 74'013);
  config.start_max = Horizon(options);
  config.rt_min = 1.0;
  config.rt_max = 2.0;
  config.p_min = 0.9;
  config.p_max = 1.0;
  config.beta_min = 0.4;
  config.beta_max = 0.6;
  config.seed = seed;
  config.poi.seed = seed + 1;
  config.trajectory.seed = seed + 2;
  return config;
}

}  // namespace rdbsc::bench

#endif  // RDBSC_BENCH_PARAMS_H_
