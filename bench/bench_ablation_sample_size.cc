// Ablation: the Section 5.2 (epsilon, delta)-bounded sample size K-hat.
// Sweeps epsilon and delta, reporting the chosen K, the resulting quality,
// and the cost -- versus naive fixed sample sizes.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "core/registry.h"
#include "core/sample_size.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("ablation_sample_size", options);
  std::printf("== Ablation: sample size K-hat vs fixed K ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  gen::WorkloadConfig config = DefaultSynthetic(options, options.seed0);
  core::Instance instance = gen::GenerateInstance(config);
  core::CandidateGraph graph = core::CandidateGraph::Build(instance);
  std::printf("log-population ln(N) = %.1f\n", graph.LogPopulation());

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;

  struct EpsDelta {
    const char* label;
    double eps, delta;
  };
  const EpsDelta grid[] = {{"eps=0.2 d=0.8", 0.2, 0.8},
                           {"eps=0.1 d=0.9", 0.1, 0.9},
                           {"eps=0.05 d=0.95", 0.05, 0.95},
                           {"eps=0.01 d=0.99", 0.01, 0.99}};
  for (const EpsDelta& e : grid) {
    core::SolverOptions so;
    so.epsilon = e.eps;
    so.delta = e.delta;
    so.min_sample_size = 1;  // expose the raw K-hat
    so.max_sample_size = 4'096;
    double total_std = 0.0, rel = 0.0, secs = 0.0;
    int k = 0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      so.seed = options.seed0 + seed_index;
      auto seeded =
          core::SolverRegistry::Global().Create("sampling", so).value();
      core::SolveResult result = seeded->Solve(instance, graph).value();
      k = result.stats.sample_size;  // the chosen K-hat (seed-invariant)
      total_std += result.objectives.total_std;
      rel += result.objectives.min_reliability;
      secs += result.stats.wall_seconds;
    }
    rows.push_back(e.label);
    cells.push_back({static_cast<double>(k), rel / options.num_seeds,
                     total_std / options.num_seeds,
                     secs / options.num_seeds});
  }
  for (int fixed : {1, 4, 64}) {
    core::SolverOptions so;
    so.fixed_sample_size = fixed;
    so.min_sample_size = 1;
    double total_std = 0.0, rel = 0.0, secs = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      so.seed = options.seed0 + seed_index;
      auto seeded =
          core::SolverRegistry::Global().Create("sampling", so).value();
      core::SolveResult result = seeded->Solve(instance, graph).value();
      total_std += result.objectives.total_std;
      rel += result.objectives.min_reliability;
      secs += result.stats.wall_seconds;
    }
    rows.push_back("fixed K=" + std::to_string(fixed));
    cells.push_back({static_cast<double>(fixed), rel / options.num_seeds,
                     total_std / options.num_seeds,
                     secs / options.num_seeds});
  }
  PrintTable("sampling budget ablation", "setting", rows,
             {"K", "min rel", "total_STD", "time (s)"}, cells, 3);
  report.AddTable("sampling budget ablation", "setting", rows,
                  {"K", "min rel", "total_STD", "time (s)"}, cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
