// Figure 23: Effect of the Number of Tasks m (SKEWED)
// Paper shape: same trends as Figure 13 on skewed data.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig23_tasks_skewed", options);
  RunQualitySweep(
      "Figure 23: Effect of the Number of Tasks m (SKEWED)",
      "m", TaskCountSweep(options, rdbsc::gen::SpatialDistribution::kSkewed), options, &report);
  report.Write();
  return 0;
}
