#ifndef RDBSC_BENCH_SWEEPS_H_
#define RDBSC_BENCH_SWEEPS_H_

#include <numbers>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"

namespace rdbsc::bench {

/// Shared sweep builders for the synthetic-data figures (13-15 and 23-27).
/// Each figure varies one Table 2 knob with the others at their defaults;
/// the UNIFORM and SKEWED variants differ only in the spatial distribution.

inline gen::WorkloadConfig SyntheticWith(const BenchOptions& options,
                                         uint64_t seed,
                                         gen::SpatialDistribution dist) {
  gen::WorkloadConfig config = DefaultSynthetic(options, seed);
  config.task_distribution = dist;
  config.worker_distribution = dist;
  return config;
}

/// Figures 13/23: number of tasks m in {5K, 8K, 10K, 50K, 100K}.
inline std::vector<SweepPoint> TaskCountSweep(const BenchOptions& options,
                                              gen::SpatialDistribution dist) {
  std::vector<SweepPoint> points;
  for (int paper_m : {5'000, 8'000, 10'000, 50'000, 100'000}) {
    std::string label = std::to_string(paper_m / 1'000) + "K";
    points.push_back({label, [=](uint64_t seed) {
                        gen::WorkloadConfig config =
                            SyntheticWith(options, seed, dist);
                        config.num_tasks = Scaled(options, paper_m);
                        return gen::GenerateInstance(config);
                      }});
  }
  return points;
}

/// Figures 14/24: number of workers n in {5K, 8K, 10K, 15K, 20K}.
inline std::vector<SweepPoint> WorkerCountSweep(
    const BenchOptions& options, gen::SpatialDistribution dist) {
  std::vector<SweepPoint> points;
  for (int paper_n : {5'000, 8'000, 10'000, 15'000, 20'000}) {
    std::string label = std::to_string(paper_n / 1'000) + "K";
    points.push_back({label, [=](uint64_t seed) {
                        gen::WorkloadConfig config =
                            SyntheticWith(options, seed, dist);
                        config.num_workers = Scaled(options, paper_n);
                        return gen::GenerateInstance(config);
                      }});
  }
  return points;
}

/// Figures 15/27: moving-angle range (0, pi/8] .. (0, pi/4].
inline std::vector<SweepPoint> AngleRangeSweep(
    const BenchOptions& options, gen::SpatialDistribution dist) {
  struct Entry {
    const char* label;
    int denominator;
  };
  const Entry entries[] = {{"(0,pi/8]", 8},
                           {"(0,pi/7]", 7},
                           {"(0,pi/6]", 6},
                           {"(0,pi/5]", 5},
                           {"(0,pi/4]", 4}};
  std::vector<SweepPoint> points;
  for (const Entry& e : entries) {
    points.push_back({e.label, [=](uint64_t seed) {
                        gen::WorkloadConfig config =
                            SyntheticWith(options, seed, dist);
                        config.angle_range =
                            std::numbers::pi / e.denominator;
                        return gen::GenerateInstance(config);
                      }});
  }
  return points;
}

/// Figures 25/26: velocity range [0.1,0.2] .. [0.4,0.5].
inline std::vector<SweepPoint> VelocitySweep(const BenchOptions& options,
                                             gen::SpatialDistribution dist) {
  struct Entry {
    const char* label;
    double lo, hi;
  };
  const Entry entries[] = {{"[0.1,0.2]", 0.1, 0.2},
                           {"[0.2,0.3]", 0.2, 0.3},
                           {"[0.3,0.4]", 0.3, 0.4},
                           {"[0.4,0.5]", 0.4, 0.5}};
  std::vector<SweepPoint> points;
  for (const Entry& e : entries) {
    points.push_back({e.label, [=](uint64_t seed) {
                        gen::WorkloadConfig config =
                            SyntheticWith(options, seed, dist);
                        config.v_min = e.lo;
                        config.v_max = e.hi;
                        return gen::GenerateInstance(config);
                      }});
  }
  return points;
}

}  // namespace rdbsc::bench

#endif  // RDBSC_BENCH_SWEEPS_H_
