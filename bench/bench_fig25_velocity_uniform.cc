// Figure 25: Effect of the Range of Velocities [v-,v+] (UNIFORM)
// Paper shape: reliability ~0.9 throughout; total_STD decreases as workers get faster.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig25_velocity_uniform", options);
  RunQualitySweep(
      "Figure 25: Effect of the Range of Velocities [v-,v+] (UNIFORM)",
      "[v-,v+]", VelocitySweep(options, rdbsc::gen::SpatialDistribution::kUniform), options, &report);
  report.Write();
  return 0;
}
