// Ablation: the Section 3.2 diversity-matrix reduction vs exhaustive
// possible-worlds enumeration (Eq. 6). The matrix method is polynomial
// (O(r^2) here with prefix products); enumeration is O(2^r) and becomes
// infeasible past ~20 workers -- exactly the paper's motivation.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/diversity.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

std::vector<Observation> RandomObservations(int r, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Observation> obs;
  obs.reserve(r);
  for (int i = 0; i < r; ++i) {
    obs.push_back(Observation{.angle = rng.Uniform(0.0, 6.28),
                              .arrival = rng.Uniform(0.0, 1.0),
                              .confidence = rng.Uniform(0.5, 1.0)});
  }
  return obs;
}

Task BenchTask() {
  Task t;
  t.location = {0.5, 0.5};
  t.start = 0.0;
  t.end = 1.0;
  t.beta = 0.5;
  return t;
}

void BM_ExpectedStdMatrix(benchmark::State& state) {
  Task task = BenchTask();
  std::vector<Observation> obs =
      RandomObservations(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedStd(task, obs));
  }
}
BENCHMARK(BM_ExpectedStdMatrix)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Arg(50)->Arg(100)->Arg(200);

void BM_ExpectedStdPossibleWorlds(benchmark::State& state) {
  Task task = BenchTask();
  std::vector<Observation> obs =
      RandomObservations(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedStdBruteForce(task, obs));
  }
}
BENCHMARK(BM_ExpectedStdPossibleWorlds)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Arg(20);

void BM_ExpectedStdBoundsOnly(benchmark::State& state) {
  Task task = BenchTask();
  std::vector<Observation> obs =
      RandomObservations(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedStdBounds(task, obs));
  }
}
BENCHMARK(BM_ExpectedStdBoundsOnly)->Arg(8)->Arg(20)->Arg(50)->Arg(200);

}  // namespace
}  // namespace rdbsc::core

BENCHMARK_MAIN();
