// Figure 26: Effect of the Range of Velocities [v-,v+] (SKEWED)
// Paper shape: same trends as Figure 25 on skewed data.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig26_velocity_skewed", options);
  RunQualitySweep(
      "Figure 26: Effect of the Range of Velocities [v-,v+] (SKEWED)",
      "[v-,v+]", VelocitySweep(options, rdbsc::gen::SpatialDistribution::kSkewed), options, &report);
  report.Write();
  return 0;
}
