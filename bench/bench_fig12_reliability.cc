// Figure 12: effect of the workers' reliability range [p_min, p_max] over
// the real-data substitute. Paper shape: minimum reliability rises with
// p_min; total_STD increases slightly.

#include "bench/harness.h"
#include "bench/params.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig12_reliability", options);
  struct Range {
    const char* label;
    double lo;
  };
  const Range ranges[] = {{"(0.8,1)", 0.8},
                          {"(0.85,1)", 0.85},
                          {"(0.9,1)", 0.9},
                          {"(0.95,1)", 0.95}};
  std::vector<SweepPoint> points;
  for (const Range& r : ranges) {
    points.push_back({r.label, [=](uint64_t seed) {
                        gen::RealWorkloadConfig config =
                            DefaultReal(options, seed);
                        config.p_min = r.lo;
                        config.p_max = 1.0;
                        return gen::GenerateRealInstance(config);
                      }});
  }
  RunQualitySweep(
      "Figure 12: Effect of Workers' Reliability [p_min, p_max] (real data)",
      "[p_min,p_max]", points, options, &report);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
