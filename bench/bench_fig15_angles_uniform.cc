// Figure 15: Effect of the Range of Moving Angles (UNIFORM)
// Paper shape: reliability stable; GREEDY total_STD drops as the angle range widens.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig15_angles_uniform", options);
  RunQualitySweep(
      "Figure 15: Effect of the Range of Moving Angles (UNIFORM)",
      "(a+-a-)", AngleRangeSweep(options, rdbsc::gen::SpatialDistribution::kUniform), options, &report);
  report.Write();
  return 0;
}
