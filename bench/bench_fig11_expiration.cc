// Figure 11: effect of the range of tasks' expiration times rt on the
// minimum reliability and total_STD, over the real-data substitute.
// Paper shape: reliability stable, total_STD grows with rt; SAMPLING and
// D&C above GREEDY, close to G-TRUTH.

#include <cstdio>

#include "bench/harness.h"
#include "bench/params.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig11_expiration", options);
  struct Range {
    const char* label;
    double lo, hi;
  };
  const Range ranges[] = {{"[0.25,0.5]", 0.25, 0.5},
                          {"[0.5,1]", 0.5, 1.0},
                          {"[1,2]", 1.0, 2.0},
                          {"[2,3]", 2.0, 3.0}};
  std::vector<SweepPoint> points;
  for (const Range& r : ranges) {
    points.push_back({r.label, [=](uint64_t seed) {
                        gen::RealWorkloadConfig config =
                            DefaultReal(options, seed);
                        config.rt_min = r.lo;
                        config.rt_max = r.hi;
                        return gen::GenerateRealInstance(config);
                      }});
  }
  RunQualitySweep(
      "Figure 11: Effect of Tasks' Expiration Time Range rt (real data)",
      "rt", points, options, &report);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
