#ifndef RDBSC_BENCH_HARNESS_H_
#define RDBSC_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "engine/engine.h"
#include "obs/registry.h"

namespace rdbsc::bench {

/// Command-line options shared by every figure bench.
///
///   --paper-scale   run the paper's full sizes (m = n = 10K defaults);
///                   hours per figure on one core -- the default is a
///                   laptop-scale reduction that preserves the trends
///   --base=N        the scaled stand-in for the paper's 10K (default 300)
///   --seeds=K       number of random seeds averaged per point (default 3)
///   --threads=N     engine thread-pool size (default 0 = serial); results
///                   are bit-identical at every setting, only time changes.
///                   Negative or non-numeric values are rejected with a
///                   warning and fall back to serial; the effective count
///                   is reported in the result header.
///   --out=PATH      additionally write the run's structured results as a
///                   schema-versioned JSON document (the BENCH_*.json
///                   convention; see BenchReport). An unwritable path
///                   warns on stderr, it never fails the bench.
struct BenchOptions {
  int base = 300;
  int num_seeds = 3;
  bool paper_scale = false;
  uint64_t seed0 = 1'000;
  int num_threads = 0;
  std::string out_path;
};

/// Parses the options above; unknown flags are ignored so binaries can add
/// their own.
BenchOptions ParseOptions(int argc, char** argv);

/// Maps a paper-sized count (e.g. 5'000 tasks) to the bench scale:
/// count * base / 10'000, at least 10. With --paper-scale it is identity.
int Scaled(const BenchOptions& options, int paper_count);

/// The pool width `--threads` will actually produce: N for N > 1, else 0
/// (Engine and ThreadPool treat 0 and 1 both as the serial path). Benches
/// report this effective count rather than the raw flag value.
int EffectiveThreads(const BenchOptions& options);

/// Registry keys of the four approaches of Section 8.1, in display order:
/// GREEDY, SAMPLING, D&C, G-TRUTH.
const std::vector<std::string>& ApproachNames();

/// One engine per Section 8.1 approach, wired through the solver registry
/// with `seed`. Engines also build candidate graphs (Engine::BuildGraph),
/// so benches never touch graph construction directly. `num_threads > 1`
/// gives every engine its own pool of that size. `metrics`, when
/// non-null, is attached to every engine (EngineConfig::metrics), so the
/// run's engine.stage_seconds breakdown accumulates there per solver.
std::vector<Engine> MakeEngines(uint64_t seed, int num_threads = 0,
                                obs::Registry* metrics = nullptr);

/// One x-axis point of a figure sweep: a label plus an instance factory.
struct SweepPoint {
  std::string label;
  std::function<core::Instance(uint64_t seed)> make;
};

/// Per-solver aggregate of one sweep point.
struct PointResult {
  std::string solver;
  double min_reliability = 0.0;
  double total_std = 0.0;
  double wall_seconds = 0.0;
};

/// Accumulates one bench run's structured results and writes the
/// schema-versioned BENCH_<name>.json document (obs::kResultsSchemaName /
/// kResultsSchemaVersion; validated by tools/check_bench_json.py):
///
///   {"schema": ..., "schema_version": 1, "bench": "...",
///    "options": {...}, "tables": [...], "metrics": [...]}
///
/// The report owns an obs::Registry that benches attach to their engines
/// (MakeEngines's `metrics` parameter), so per-stage engine timings land
/// in the document's "metrics" section without per-bench plumbing;
/// AddMetrics imports external registries (e.g. a per-cell
/// engine::Server's) with distinguishing extra labels.
class BenchReport {
 public:
  /// `bench_name` is the document's "bench" field; the output path (and
  /// the printed options block) come from `options`.
  BenchReport(std::string bench_name, BenchOptions options);

  /// The report-owned registry (attach via MakeEngines / EngineConfig).
  obs::Registry& metrics() { return registry_; }

  /// Records one printed table into the document's "tables" section
  /// (same shape as PrintTable's arguments).
  void AddTable(std::string metric, std::string x_label,
                std::vector<std::string> row_labels,
                std::vector<std::string> column_labels,
                std::vector<std::vector<double>> cells);

  /// Imports a snapshot of an external registry; `extra_labels` are
  /// appended to every imported metric's labels (e.g. {{"workers","4"}}
  /// to tell per-cell server metrics apart).
  void AddMetrics(const obs::RegistrySnapshot& snapshot,
                  const obs::Labels& extra_labels = {});

  /// The full results document (deterministic field order).
  std::string Json() const;

  /// Writes Json() to options.out_path. A no-op without --out; an
  /// unwritable path warns on stderr and leaves the bench's exit status
  /// untouched -- the printed tables remain the primary artifact.
  void Write() const;

 private:
  struct Table {
    std::string metric;
    std::string x_label;
    std::vector<std::string> rows;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> cells;
  };

  std::string name_;
  BenchOptions options_;
  obs::Registry registry_;
  std::vector<Table> tables_;
  std::vector<obs::MetricSnapshot> imported_;
};

/// Runs the standard quality sweep of the paper's figures: for every point
/// and seed, builds the instance, runs all four approaches, and prints the
/// figure's two series (minimum reliability and total_STD) plus CPU time,
/// one row per x value and one column per approach.
/// Returns the per-point results (outer index = point) for callers that
/// assert on trends. `report`, when non-null, receives the three printed
/// tables and has its registry attached to every engine of the sweep
/// (per-solver engine.stage_seconds in the JSON document).
std::vector<std::vector<PointResult>> RunQualitySweep(
    const std::string& figure_title, const std::string& x_label,
    const std::vector<SweepPoint>& points, const BenchOptions& options,
    BenchReport* report = nullptr);

/// Prints one aligned metric table (used by RunQualitySweep and the
/// irregular benches like Fig. 16-18).
void PrintTable(const std::string& metric, const std::string& x_label,
                const std::vector<std::string>& row_labels,
                const std::vector<std::string>& column_labels,
                const std::vector<std::vector<double>>& cells,
                int precision = 4);

}  // namespace rdbsc::bench

#endif  // RDBSC_BENCH_HARNESS_H_
