// Figure 18: effect of the incremental-update interval t_interval on the
// platform simulator (the gMission substitute; 10 users, 5 sites, 15-minute
// task opening time, exactly the Section 8.4 configuration).
// Paper shape: larger t_interval lowers total_STD for every approach and
// makes GREEDY's minimum reliability unstable.
//
// --streaming routes every platform tick through the event-driven delta
// engine (PlatformConfig::streaming) instead of rebuilding the candidate
// graph per tick. The simulated trajectory is bit-identical, so the
// quality tables are unchanged; the scaled-up "platform wall time"
// section is where the flag shows. The checked-in
// BENCH_fig18_incremental.{before,after}.json pair is two --streaming
// captures of this full-churn campus, before vs after DeltaGraph's
// hybrid bulk refill (per-row scalar recomputes vs one vectorized bulk
// retrieval per tick), trend-gated in CI; the rebuild-vs-delta mode
// comparison lives in the BENCH_ablation_index_dynamic pair.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "obs/registry.h"
#include "sim/platform.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool streaming = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--streaming") == 0) streaming = true;
  }
  BenchReport report("fig18_incremental", options);
  std::printf(
      "== Figure 18: Effect of the Updating Time Interval t_interval ==\n");
  std::printf("platform: 10 users, 5 sites, 15 min opening; seeds=%d, "
              "maintenance=%s\n",
              options.num_seeds, streaming ? "streaming" : "rebuild");

  std::vector<std::string> solver_names;
  for (const Engine& engine : MakeEngines(0)) {
    solver_names.emplace_back(engine.solver_display_name());
  }

  std::vector<std::string> rows;
  std::vector<std::vector<double>> rel_cells, std_cells;
  for (int minutes = 1; minutes <= 4; ++minutes) {
    rows.push_back(std::to_string(minutes) + " min");
    std::vector<double> rel_row(solver_names.size(), 0.0);
    std::vector<double> std_row(solver_names.size(), 0.0);
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      uint64_t seed = options.seed0 + 13 * seed_index;
      for (size_t s = 0; s < ApproachNames().size(); ++s) {
        sim::PlatformConfig config;
        config.t_interval = minutes / 60.0;
        config.seed = seed;
        config.streaming = streaming;
        config.solver_name = ApproachNames()[s];
        config.solver_options.seed = seed;
        sim::Platform platform(config);
        sim::PlatformResult result = platform.Run().value();
        rel_row[s] += result.final_objectives.min_reliability;
        std_row[s] += result.final_objectives.total_std;
      }
    }
    for (double& v : rel_row) v /= options.num_seeds;
    for (double& v : std_row) v /= options.num_seeds;
    rel_cells.push_back(rel_row);
    std_cells.push_back(std_row);
  }
  PrintTable("Minimum Reliability", "t_interval", rows, solver_names,
             rel_cells, 4);
  PrintTable("total_STD", "t_interval", rows, solver_names, std_cells, 2);
  report.AddTable("Minimum Reliability", "t_interval", rows, solver_names,
                  rel_cells);
  report.AddTable("total_STD", "t_interval", rows, solver_names, std_cells);
  std::printf("\n");

  // --- Streaming wall time at a scaled-up campus, where the per-tick
  // candidate-graph work actually matters. Trajectories are identical
  // with and without --streaming; only this table moves. "graph (s)" is
  // the per-run total of the sim.round_build_seconds histogram -- the
  // graph-maintenance phase the delta engine replaces (full
  // CandidateGraph::Build per tick vs. repairing dirty rows); "run (s)"
  // includes the (mode-independent) solver, so it moves only as much as
  // the maintenance share of the tick.
  const int wall_sites = std::max(40, options.base);
  const int wall_workers = 2 * wall_sites;
  std::vector<std::string> wall_rows;
  std::vector<std::vector<double>> wall_cells;
  for (int minutes = 1; minutes <= 4; ++minutes) {
    wall_rows.push_back(std::to_string(minutes) + " min");
    double wall = 0.0;
    double graph_s = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      obs::Registry registry;
      sim::PlatformConfig config;
      config.num_sites = wall_sites;
      config.num_workers = wall_workers;
      config.t_interval = minutes / 60.0;
      config.seed = options.seed0 + 13 * seed_index;
      config.streaming = streaming;
      config.solver_name = "greedy";
      config.solver_options.seed = config.seed;
      config.metrics = &registry;
      const auto t0 = std::chrono::steady_clock::now();
      sim::Platform(config).Run().value();
      wall += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
      graph_s += registry
                     .GetHistogram("sim.round_build_seconds",
                                   {{"solver", "greedy"}}, 1e-9)
                     .Snapshot()
                     .sum();
    }
    wall_cells.push_back(
        {wall / options.num_seeds, graph_s / options.num_seeds});
  }
  PrintTable("platform wall time", "t_interval", wall_rows,
             {"run (s)", "graph (s)"}, wall_cells, 4);
  report.AddTable("platform wall time", "t_interval", wall_rows,
                  {"run (s)", "graph (s)"}, wall_cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
