// Figure 18: effect of the incremental-update interval t_interval on the
// platform simulator (the gMission substitute; 10 users, 5 sites, 15-minute
// task opening time, exactly the Section 8.4 configuration).
// Paper shape: larger t_interval lowers total_STD for every approach and
// makes GREEDY's minimum reliability unstable.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "sim/platform.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig18_incremental", options);
  std::printf(
      "== Figure 18: Effect of the Updating Time Interval t_interval ==\n");
  std::printf("platform: 10 users, 5 sites, 15 min opening; seeds=%d\n",
              options.num_seeds);

  std::vector<std::string> solver_names;
  for (const Engine& engine : MakeEngines(0)) {
    solver_names.emplace_back(engine.solver_display_name());
  }

  std::vector<std::string> rows;
  std::vector<std::vector<double>> rel_cells, std_cells;
  for (int minutes = 1; minutes <= 4; ++minutes) {
    rows.push_back(std::to_string(minutes) + " min");
    std::vector<double> rel_row(solver_names.size(), 0.0);
    std::vector<double> std_row(solver_names.size(), 0.0);
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      uint64_t seed = options.seed0 + 13 * seed_index;
      for (size_t s = 0; s < ApproachNames().size(); ++s) {
        sim::PlatformConfig config;
        config.t_interval = minutes / 60.0;
        config.seed = seed;
        config.solver_name = ApproachNames()[s];
        config.solver_options.seed = seed;
        sim::Platform platform(config);
        sim::PlatformResult result = platform.Run().value();
        rel_row[s] += result.final_objectives.min_reliability;
        std_row[s] += result.final_objectives.total_std;
      }
    }
    for (double& v : rel_row) v /= options.num_seeds;
    for (double& v : std_row) v /= options.num_seeds;
    rel_cells.push_back(rel_row);
    std_cells.push_back(std_row);
  }
  PrintTable("Minimum Reliability", "t_interval", rows, solver_names,
             rel_cells, 4);
  PrintTable("total_STD", "t_interval", rows, solver_names, std_cells, 2);
  report.AddTable("Minimum Reliability", "t_interval", rows, solver_names,
                  rel_cells);
  report.AddTable("total_STD", "t_interval", rows, solver_names, std_cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
