// Parallel-speedup sweep over the Figure 16 runtime workload (UNIFORM,
// paper defaults scaled by --base): graph construction (brute force and
// grid index) plus the two parallelizable solvers (SAMPLING, D&C), timed
// at 1..hardware_concurrency threads. Results are bit-identical at every
// thread count (verified by tests/parallel_determinism_test.cc); this
// bench reports the wall-clock side of that contract as speedups over the
// 1-thread run.
//
//   $ ./bench/bench_parallel_speedup --base=600 --seeds=3
//
// Extra flag: --max-threads=N caps the sweep (default: hardware
// concurrency).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "core/divide_conquer.h"
#include "core/sampling.h"
#include "core/solver.h"
#include "index/grid_index.h"
#include "util/thread_pool.h"

namespace rdbsc::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Timings {
  double brute_build = 0.0;
  double grid_retrieve = 0.0;
  double sampling = 0.0;
  double dc = 0.0;
};

Timings Measure(const core::Instance& instance, util::Executor* executor,
                const BenchOptions& options) {
  Timings timing;
  for (int rep = 0; rep < options.num_seeds; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    core::CandidateGraph graph =
        core::CandidateGraph::Build(instance, executor, util::Deadline())
            .value();
    timing.brute_build += Seconds(t0);

    index::GridIndex index = index::GridIndex::Build(instance, 0.05);
    t0 = std::chrono::steady_clock::now();
    index.RetrieveEdges(instance.num_workers(), nullptr, executor).value();
    timing.grid_retrieve += Seconds(t0);

    core::SolverOptions solver_options;
    solver_options.seed = options.seed0 + rep;
    core::SolveRequest request;
    request.instance = &instance;
    request.graph = &graph;
    request.executor = executor;

    core::SamplingSolver sampling(solver_options);
    t0 = std::chrono::steady_clock::now();
    sampling.Solve(request).value();
    timing.sampling += Seconds(t0);

    core::DivideConquerSolver dc(solver_options);
    t0 = std::chrono::steady_clock::now();
    dc.Solve(request).value();
    timing.dc += Seconds(t0);
  }
  return timing;
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("parallel_speedup", options);
  int max_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--max-threads=", 14) == 0) {
      max_threads = std::max(1, std::atoi(argv[a] + 14));
    }
  }

  gen::WorkloadConfig config = DefaultSynthetic(options, options.seed0);
  core::Instance instance = gen::GenerateInstance(config);

  std::printf("== Parallel speedup (fig16 workload, UNIFORM) ==\n");
  std::printf(
      "scale: base=%d (paper 10K), m=%d tasks, n=%d workers, seeds=%d, "
      "hardware_concurrency=%u\n",
      options.base, instance.num_tasks(), instance.num_workers(),
      options.num_seeds, std::thread::hardware_concurrency());

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) {
    thread_counts.push_back(max_threads);
  }

  std::vector<std::string> rows;
  std::vector<std::vector<double>> time_cells, speedup_cells;
  Timings base{};
  for (int threads : thread_counts) {
    Timings timing;
    if (threads == 1) {
      timing = Measure(instance, nullptr, options);
      base = timing;
    } else {
      // The calling thread participates in ShardedFor, so a pool of N-1
      // workers gives exactly N-way parallelism -- the row label is the
      // true concurrency level.
      util::ThreadPool pool(threads - 1);
      timing = Measure(instance, &pool, options);
    }
    rows.push_back(std::to_string(threads));
    time_cells.push_back({timing.brute_build, timing.grid_retrieve,
                          timing.sampling, timing.dc});
    auto speedup = [](double serial, double parallel) {
      return parallel > 0.0 ? serial / parallel : 0.0;
    };
    speedup_cells.push_back({speedup(base.brute_build, timing.brute_build),
                             speedup(base.grid_retrieve, timing.grid_retrieve),
                             speedup(base.sampling, timing.sampling),
                             speedup(base.dc, timing.dc)});
  }

  const std::vector<std::string> columns = {"build", "grid-ret", "SAMPLING",
                                            "D&C"};
  PrintTable("wall time (s)", "threads", rows, columns, time_cells, 4);
  PrintTable("speedup vs 1 thread", "threads", rows, columns, speedup_cells,
             2);
  report.AddTable("wall time (s)", "threads", rows, columns, time_cells);
  report.AddTable("speedup vs 1 thread", "threads", rows, columns,
                  speedup_cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
