// Ablation: the divide-and-conquer leaf threshold gamma. Small gamma means
// deeper recursion (cheaper leaves, more merge work and more duplicated
// workers); large gamma degenerates into plain SAMPLING.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "core/registry.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("ablation_dc_gamma", options);
  std::printf("== Ablation: D&C leaf threshold gamma ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (int gamma : {4, 8, 16, 32, 64, 1 << 30}) {
    rows.push_back(gamma == (1 << 30) ? "inf (no split)"
                                      : std::to_string(gamma));
    double total_std = 0.0, rel = 0.0, secs = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      core::Instance instance = gen::GenerateInstance(config);
      core::CandidateGraph graph = core::CandidateGraph::Build(instance);
      core::SolverOptions so;
      so.gamma = gamma;
      so.seed = options.seed0 + seed_index;
      auto solver = core::SolverRegistry::Global().Create("dc", so).value();
      core::SolveResult result = solver->Solve(instance, graph).value();
      total_std += result.objectives.total_std;
      rel += result.objectives.min_reliability;
      secs += result.stats.wall_seconds;
    }
    cells.push_back({rel / options.num_seeds, total_std / options.num_seeds,
                     secs / options.num_seeds});
  }
  PrintTable("D&C gamma ablation", "gamma", rows,
             {"min rel", "total_STD", "time (s)"}, cells, 3);
  report.AddTable("D&C gamma ablation", "gamma", rows,
                  {"min rel", "total_STD", "time (s)"}, cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
