// Ablation: the Appendix I cost model's cell side eta. Sweeps multiples of
// the model's optimum and reports actual retrieval cost, validating that
// the analytic optimum sits near the empirical minimum.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "index/cost_model.h"
#include "index/grid_index.h"
#include "util/fractal.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("ablation_grid_eta", options);
  std::printf("== Ablation: grid cell side eta vs the cost-model optimum ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  gen::WorkloadConfig config = DefaultSynthetic(options, options.seed0);
  core::Instance instance = gen::GenerateInstance(config);

  std::vector<util::KmPoint> pts;
  for (int i = 0; i < instance.num_tasks(); ++i) {
    pts.push_back({instance.task(i).location.x,
                   instance.task(i).location.y});
  }
  index::CostModelParams cm;
  cm.l_max = 0.9;
  cm.d2 = util::EstimateCorrelationDimension(pts);
  cm.num_points = instance.num_tasks();
  double eta_star = index::OptimalEta(cm);
  std::printf("estimated D2=%.2f, cost-model eta*=%.4f\n", cm.d2, eta_star);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    double eta = eta_star * factor;
    double build_s = 0.0, retrieve_s = 0.0, model_cost = 0.0;
    index::RetrievalStats stats;
    for (int rep = 0; rep < options.num_seeds; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      index::GridIndex index = index::GridIndex::Build(instance, eta);
      build_s += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      t0 = std::chrono::steady_clock::now();
      index.RetrieveEdges(instance.num_workers(), &stats).value();
      retrieve_s += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    }
    model_cost = index::EstimateUpdateCost(eta, cm);
    rows.push_back(std::to_string(factor) + " x eta*");
    cells.push_back({eta, build_s / options.num_seeds,
                     retrieve_s / options.num_seeds,
                     static_cast<double>(stats.pair_tests), model_cost});
  }
  PrintTable("grid eta ablation", "eta", rows,
             {"eta", "build (s)", "retrieve(s)", "pair tests", "model cost"},
             cells, 4);
  report.AddTable("grid eta ablation", "eta", rows,
                  {"eta", "build (s)", "retrieve(s)", "pair tests",
                   "model cost"},
                  cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
