// Figure 24: Effect of the Number of Workers n (SKEWED)
// Paper shape: same trends as Figure 14 on skewed data.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig24_workers_skewed", options);
  RunQualitySweep(
      "Figure 24: Effect of the Number of Workers n (SKEWED)",
      "n", WorkerCountSweep(options, rdbsc::gen::SpatialDistribution::kSkewed), options, &report);
  report.Write();
  return 0;
}
