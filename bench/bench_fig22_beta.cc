// Figure 22: effect of the requester-specified weight range beta over the
// real-data substitute. Paper shape: both objectives are insensitive to
// beta (robustness check).

#include "bench/harness.h"
#include "bench/params.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig22_beta", options);
  struct Range {
    const char* label;
    double lo, hi;
  };
  const Range ranges[] = {{"(0,0.2]", 0.0, 0.2},
                          {"(0.2,0.4]", 0.2, 0.4},
                          {"(0.4,0.6]", 0.4, 0.6},
                          {"(0.6,0.8]", 0.6, 0.8},
                          {"(0.8,1)", 0.8, 1.0}};
  std::vector<SweepPoint> points;
  for (const Range& r : ranges) {
    points.push_back({r.label, [=](uint64_t seed) {
                        gen::RealWorkloadConfig config =
                            DefaultReal(options, seed);
                        config.beta_min = r.lo;
                        config.beta_max = r.hi;
                        return gen::GenerateRealInstance(config);
                      }});
  }
  RunQualitySweep(
      "Figure 22: Effect of the Requester-Specified Weight beta (real data)",
      "beta", points, options, &report);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
