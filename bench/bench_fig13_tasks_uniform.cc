// Figure 13: Effect of the Number of Tasks m (UNIFORM)
// Paper shape: reliability stable ~0.9; GREEDY total_STD grows with m while SAMPLING/D&C decrease.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig13_tasks_uniform", options);
  RunQualitySweep(
      "Figure 13: Effect of the Number of Tasks m (UNIFORM)",
      "m", TaskCountSweep(options, rdbsc::gen::SpatialDistribution::kUniform), options, &report);
  report.Write();
  return 0;
}
