// Figure 16: CPU time of the four approaches as m and n grow (UNIFORM).
// Paper shape: GREEDY (and at large m also D&C / G-TRUTH) grow quickly,
// SAMPLING stays nearly flat thanks to the small (epsilon, delta)-bounded
// sample size.

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "bench/sweeps.h"

namespace rdbsc::bench {
namespace {

void RunAxis(const char* axis, const std::vector<SweepPoint>& points,
             const BenchOptions& options, BenchReport& report) {
  std::vector<std::string> solver_names;
  for (const Engine& engine : MakeEngines(0)) {
    solver_names.emplace_back(engine.solver_display_name());
  }
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;
  std::vector<std::vector<double>> build_cells;
  for (const SweepPoint& point : points) {
    row_labels.push_back(point.label);
    std::vector<double> row(solver_names.size(), 0.0);
    double build_seconds = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      uint64_t seed = options.seed0 + 17 * seed_index;
      core::Instance instance = point.make(seed);
      // Engines report into the shared bench registry, so the JSON
      // document carries per-solver stage histograms next to the table.
      std::vector<Engine> engines =
          MakeEngines(seed, options.num_threads, &report.metrics());
      auto t0 = std::chrono::steady_clock::now();
      core::CandidateGraph graph =
          engines.front().BuildGraph(instance).value();
      build_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      for (size_t s = 0; s < engines.size(); ++s) {
        t0 = std::chrono::steady_clock::now();
        engines[s].SolveOn(instance, graph).value();
        row[s] += std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      }
    }
    for (double& v : row) v /= options.num_seeds;
    cells.push_back(row);
    build_cells.push_back({build_seconds / options.num_seeds});
  }
  const std::string title = std::string("CPU time (s) vs ") + axis;
  PrintTable(title, axis, row_labels, solver_names, cells, 4);
  report.AddTable(title, axis, row_labels, solver_names, cells);
  // The shared candidate-graph construction, timed separately: this is the
  // O(m*n) pair-validation hot path the SoA kernels accelerate.
  const std::string build_title = std::string("graph build (s) vs ") + axis;
  PrintTable(build_title, axis, row_labels, {"build"}, build_cells, 4);
  report.AddTable(build_title, axis, row_labels, {"build"}, build_cells);
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig16_runtime", options);
  std::printf("== Figure 16: Running Time Comparisons (UNIFORM) ==\n");
  std::printf("scale: base=%d (paper 10K), seeds=%d\n", options.base,
              options.num_seeds);
  RunAxis("m", TaskCountSweep(options, gen::SpatialDistribution::kUniform),
          options, report);
  RunAxis("n", WorkerCountSweep(options, gen::SpatialDistribution::kUniform),
          options, report);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
