// Admission-server throughput: sweeps submitter threads x dispatch
// workers, replaying the same pre-generated instance set through
// engine::Server for every cell, and reports tickets/second plus the p95
// submit-to-completion latency from ServerStats. Per-ticket results are
// bit-identical across the whole sweep (the async determinism contract),
// so the tables measure scheduling, never answer drift.
//
// Flags (see bench/harness.h): --base scales the per-ticket instance
// size, --threads caps the worker-count axis, plus
//   --tickets=N     submissions per submitter thread (default 6)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "engine/server.h"
#include "gen/workload.h"

using namespace rdbsc;

namespace {

core::Instance MakeInstance(const bench::BenchOptions& options,
                            uint64_t seed) {
  gen::WorkloadConfig config;
  config.num_tasks = bench::Scaled(options, 1'000);
  config.num_workers = bench::Scaled(options, 1'000);
  config.start_max = 4.0;
  config.seed = seed;
  return gen::GenerateInstance(config);
}

struct CellResult {
  double throughput = 0.0;  ///< tickets per second
  double p95 = 0.0;         ///< submit -> completion, seconds
};

CellResult RunCell(const std::vector<core::Instance>& instances,
                   int num_submitters, int num_workers, int tickets_each,
                   bench::BenchReport& report) {
  engine::ServerConfig config;
  config.engine.solver_name = "dc";
  config.engine.solver_options.seed = 1;
  config.engine.validate_instances = false;
  config.num_workers = num_workers;
  config.max_queue_depth = num_submitters * tickets_each + 1;
  config.overload_policy = engine::OverloadPolicy::kBlock;
  std::unique_ptr<engine::Server> server =
      std::move(engine::Server::Create(std::move(config)).value());

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  submitters.reserve(num_submitters);
  for (int s = 0; s < num_submitters; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<engine::Ticket> tickets;
      tickets.reserve(tickets_each);
      for (int i = 0; i < tickets_each; ++i) {
        const core::Instance& instance =
            instances[(s * tickets_each + i) % instances.size()];
        tickets.push_back(server->Submit(instance).value());
      }
      for (engine::Ticket& ticket : tickets) ticket.Wait();
    });
  }
  for (std::thread& t : submitters) t.join();
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  engine::ServerStats stats = server->Stats();
  server->Shutdown(engine::ShutdownMode::kDrain);
  // Import the cell's full server registry -- queue/run/total latency
  // split, finished-outcome counters, engine stage timings -- labeled
  // with the cell coordinates so the sweep's cells stay distinguishable.
  report.AddMetrics(server->metrics().Snapshot(),
                    {{"workers", std::to_string(num_workers)},
                     {"submitters", std::to_string(num_submitters)}});

  CellResult cell;
  cell.throughput =
      wall > 0.0 ? static_cast<double>(stats.completed) / wall : 0.0;
  cell.p95 = stats.latency_p95_seconds;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::BenchReport report("server_throughput", options);
  int tickets_each = 6;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--tickets=", 10) == 0) {
      tickets_each = std::max(1, std::atoi(argv[a] + 10));
    }
  }

  std::vector<int> worker_counts = {1, 2, 4, 8};
  // --threads caps the worker axis (e.g. --threads=2 sweeps {1, 2}). The
  // raw flag value is used, not EffectiveThreads: one dispatch worker is
  // a real server configuration, unlike a one-thread engine pool.
  if (int cap = options.num_threads; cap > 0) {
    std::erase_if(worker_counts, [cap](int w) { return w > cap; });
    if (worker_counts.empty()) worker_counts.push_back(cap);
  }
  const std::vector<int> submitter_counts = {1, 2, 4, 8};

  std::printf("== Admission-server throughput (submitters x workers) ==\n");
  std::printf(
      "scale: base=%d, %d tickets/submitter, instance %d x %d, solver dc\n",
      options.base, tickets_each, bench::Scaled(options, 1'000),
      bench::Scaled(options, 1'000));

  // One shared instance set: every cell replays identical work.
  std::vector<core::Instance> instances;
  for (uint64_t i = 0; i < 8; ++i) {
    instances.push_back(MakeInstance(options, options.seed0 + i));
  }

  std::vector<std::string> row_labels, column_labels;
  for (int w : worker_counts) {
    row_labels.push_back("workers=" + std::to_string(w));
  }
  for (int s : submitter_counts) {
    column_labels.push_back(std::to_string(s) + " sub");
  }
  std::vector<std::vector<double>> throughput(worker_counts.size());
  std::vector<std::vector<double>> p95(worker_counts.size());
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    for (int submitters : submitter_counts) {
      CellResult cell = RunCell(instances, submitters, worker_counts[w],
                                tickets_each, report);
      throughput[w].push_back(cell.throughput);
      p95[w].push_back(cell.p95);
    }
  }

  bench::PrintTable("Throughput (tickets/s)", "pool size", row_labels,
                    column_labels, throughput, 1);
  bench::PrintTable("p95 latency (s)", "pool size", row_labels,
                    column_labels, p95);
  std::printf("\n");
  report.AddTable("Throughput (tickets/s)", "pool size", row_labels,
                  column_labels, throughput);
  report.AddTable("p95 latency (s)", "pool size", row_labels,
                  column_labels, p95);
  report.Write();
  return 0;
}
