// Ablation: the Lemma 4.3 bound-based pruning inside GREEDY. The pruning
// must leave the answer unchanged while skipping exact expected-diversity
// evaluations; this bench reports both the evaluation counts and the wall
// time with and without it.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "core/registry.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("ablation_pruning", options);
  std::printf("== Ablation: GREEDY with vs without Lemma 4.3 pruning ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (double factor : {0.5, 1.0, 2.0}) {
    int m = static_cast<int>(Scaled(options, 10'000) * factor);
    int n = static_cast<int>(Scaled(options, 10'000) * factor);
    rows.push_back("m=n=" + std::to_string(m));
    double time_on = 0.0, time_off = 0.0;
    double evals_on = 0.0, evals_off = 0.0, pruned = 0.0;
    double std_delta = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      config.num_tasks = m;
      config.num_workers = n;
      core::Instance instance = gen::GenerateInstance(config);
      core::CandidateGraph graph = core::CandidateGraph::Build(instance);

      core::SolverOptions on, off;
      // Exact-increment mode so the pruning has exact evaluations to save.
      on.greedy_increment = core::SolverOptions::GreedyIncrement::kExact;
      on.use_pruning = true;
      off = on;
      off.use_pruning = false;
      auto& registry = core::SolverRegistry::Global();
      auto with = registry.Create("greedy", on).value();
      auto without = registry.Create("greedy", off).value();
      core::SolveResult r_on = with->Solve(instance, graph).value();
      core::SolveResult r_off = without->Solve(instance, graph).value();
      time_on += r_on.stats.wall_seconds;
      time_off += r_off.stats.wall_seconds;
      evals_on += static_cast<double>(r_on.stats.exact_std_evals);
      evals_off += static_cast<double>(r_off.stats.exact_std_evals);
      pruned += static_cast<double>(r_on.stats.pruned_pairs);
      std_delta += r_on.objectives.total_std - r_off.objectives.total_std;
    }
    int k = options.num_seeds;
    cells.push_back({time_on / k, time_off / k, evals_on / k, evals_off / k,
                     pruned / k, std_delta / k});
  }
  PrintTable("GREEDY pruning ablation", "size", rows,
             {"t+prune(s)", "t-prune(s)", "evals+", "evals-", "pruned",
              "dSTD"},
             cells, 3);
  report.AddTable("GREEDY pruning ablation", "size", rows,
                  {"t+prune(s)", "t-prune(s)", "evals+", "evals-", "pruned",
                   "dSTD"},
                  cells);
  std::printf("(dSTD must be 0: pruning is result-preserving)\n\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
