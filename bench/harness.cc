#include "bench/harness.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/json.h"

namespace rdbsc::bench {
namespace {

constexpr int kPaperBase = 10'000;

}  // namespace

BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--paper-scale") == 0) {
      options.paper_scale = true;
      options.base = kPaperBase;
    } else if (std::strncmp(arg, "--base=", 7) == 0) {
      options.base = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--seeds=", 8) == 0) {
      options.num_seeds = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      // Validate instead of silently accepting 0/negative/garbage: a
      // mistyped flag would otherwise masquerade as a serial measurement.
      char* end = nullptr;
      long threads = std::strtol(arg + 10, &end, 10);
      if (end == arg + 10 || *end != '\0' || threads < 0) {
        std::fprintf(stderr,
                     "warning: invalid %s (want --threads=N with N >= 0); "
                     "running serial\n",
                     arg);
        threads = 0;
      }
      options.num_threads = static_cast<int>(threads);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      options.out_path = arg + 6;
      if (options.out_path.empty()) {
        std::fprintf(stderr,
                     "warning: empty --out= path; no JSON will be "
                     "written\n");
      }
    }
  }
  if (options.base < 10) options.base = 10;
  if (options.num_seeds < 1) options.num_seeds = 1;
  return options;
}

int EffectiveThreads(const BenchOptions& options) {
  // Engine/ThreadPool only spawn a pool for N > 1; 0 and 1 are both the
  // serial path. Report what will actually run.
  return options.num_threads > 1 ? options.num_threads : 0;
}

int Scaled(const BenchOptions& options, int paper_count) {
  if (options.paper_scale) return paper_count;
  int64_t scaled = static_cast<int64_t>(paper_count) * options.base /
                   kPaperBase;
  return static_cast<int>(std::max<int64_t>(scaled, 10));
}

const std::vector<std::string>& ApproachNames() {
  static const std::vector<std::string> names(
      std::begin(core::kSection81Approaches),
      std::end(core::kSection81Approaches));
  return names;
}

std::vector<Engine> MakeEngines(uint64_t seed, int num_threads,
                                obs::Registry* metrics) {
  std::vector<Engine> engines;
  engines.reserve(ApproachNames().size());
  for (const std::string& name : ApproachNames()) {
    EngineConfig config;
    config.solver_name = name;
    config.solver_options.seed = seed;
    config.num_threads = num_threads;
    config.metrics = metrics;
    // Benches time SolveOn tightly; generated instances are valid by
    // construction, so skip the O(m+n) re-validation per approach.
    config.validate_instances = false;
    engines.push_back(Engine::Create(std::move(config)).value());
  }
  return engines;
}

void PrintTable(const std::string& metric, const std::string& x_label,
                const std::vector<std::string>& row_labels,
                const std::vector<std::string>& column_labels,
                const std::vector<std::vector<double>>& cells,
                int precision) {
  std::printf("\n-- %s --\n", metric.c_str());
  std::printf("%-16s", x_label.c_str());
  for (const std::string& col : column_labels) {
    std::printf("%12s", col.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%-16s", row_labels[r].c_str());
    for (double v : cells[r]) {
      std::printf("%12.*f", precision, v);
    }
    std::printf("\n");
  }
}

BenchReport::BenchReport(std::string bench_name, BenchOptions options)
    : name_(std::move(bench_name)), options_(std::move(options)) {}

void BenchReport::AddTable(std::string metric, std::string x_label,
                           std::vector<std::string> row_labels,
                           std::vector<std::string> column_labels,
                           std::vector<std::vector<double>> cells) {
  tables_.push_back(Table{std::move(metric), std::move(x_label),
                          std::move(row_labels), std::move(column_labels),
                          std::move(cells)});
}

void BenchReport::AddMetrics(const obs::RegistrySnapshot& snapshot,
                             const obs::Labels& extra_labels) {
  for (const obs::MetricSnapshot& metric : snapshot.metrics) {
    obs::MetricSnapshot copy = metric;
    copy.labels.insert(copy.labels.end(), extra_labels.begin(),
                       extra_labels.end());
    imported_.push_back(std::move(copy));
  }
}

std::string BenchReport::Json() const {
  std::string out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema");
  w.String(obs::kResultsSchemaName);
  w.Key("schema_version");
  w.Int(obs::kResultsSchemaVersion);
  w.Key("bench");
  w.String(name_);
  w.Key("options");
  w.BeginObject();
  w.Key("base");
  w.Int(options_.base);
  w.Key("seeds");
  w.Int(options_.num_seeds);
  w.Key("paper_scale");
  w.Bool(options_.paper_scale);
  w.Key("threads");
  w.Int(options_.num_threads);
  w.EndObject();
  w.Key("tables");
  w.BeginArray();
  for (const Table& table : tables_) {
    w.BeginObject();
    w.Key("metric");
    w.String(table.metric);
    w.Key("x_label");
    w.String(table.x_label);
    w.Key("rows");
    w.BeginArray();
    for (const std::string& row : table.rows) w.String(row);
    w.EndArray();
    w.Key("columns");
    w.BeginArray();
    for (const std::string& column : table.columns) w.String(column);
    w.EndArray();
    w.Key("cells");
    w.BeginArray();
    for (const std::vector<double>& row : table.cells) {
      w.BeginArray();
      for (double value : row) w.Double(value);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  // The report-owned registry first (deterministically sorted), then the
  // imports in AddMetrics call order.
  w.Key("metrics");
  w.BeginArray();
  const obs::RegistrySnapshot own = registry_.Snapshot();
  for (const obs::MetricSnapshot& metric : own.metrics) {
    obs::AppendMetric(w, metric);
  }
  for (const obs::MetricSnapshot& metric : imported_) {
    obs::AppendMetric(w, metric);
  }
  w.EndArray();
  w.EndObject();
  return out;
}

void BenchReport::Write() const {
  if (options_.out_path.empty()) return;
  const std::string doc = Json();
  std::FILE* file = std::fopen(options_.out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot write --out=%s: %s\n",
                 options_.out_path.c_str(), std::strerror(errno));
    return;
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != doc.size() || !closed) {
    std::fprintf(stderr, "warning: short write to --out=%s\n",
                 options_.out_path.c_str());
    return;
  }
  std::printf("wrote %s (%zu bytes)\n", options_.out_path.c_str(),
              doc.size());
}

std::vector<std::vector<PointResult>> RunQualitySweep(
    const std::string& figure_title, const std::string& x_label,
    const std::vector<SweepPoint>& points, const BenchOptions& options,
    BenchReport* report) {
  std::printf("== %s ==\n", figure_title.c_str());
  const int threads = EffectiveThreads(options);
  std::printf("scale: base=%d (paper 10K)%s, seeds=%d, threads=%d%s\n",
              options.base, options.paper_scale ? " [paper scale]" : "",
              options.num_seeds, threads, threads == 0 ? " (serial)" : "");

  std::vector<std::string> solver_names;
  for (const Engine& engine : MakeEngines(0)) {
    solver_names.emplace_back(engine.solver_display_name());
  }
  const size_t num_solvers = solver_names.size();

  std::vector<std::vector<PointResult>> results(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    results[p].resize(num_solvers);
    for (size_t s = 0; s < num_solvers; ++s) {
      results[p][s].solver = solver_names[s];
    }
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      uint64_t seed = options.seed0 + 17 * seed_index;
      core::Instance instance = points[p].make(seed);
      std::vector<Engine> engines =
          MakeEngines(seed, options.num_threads,
                      report != nullptr ? &report->metrics() : nullptr);
      // One graph per instance, shared by all four approaches.
      core::CandidateGraph graph =
          engines.front().BuildGraph(instance).value();
      for (size_t s = 0; s < num_solvers; ++s) {
        auto t0 = std::chrono::steady_clock::now();
        core::SolveResult solve =
            engines[s].SolveOn(instance, graph).value();
        double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        results[p][s].min_reliability += solve.objectives.min_reliability;
        results[p][s].total_std += solve.objectives.total_std;
        results[p][s].wall_seconds += elapsed;
      }
    }
    for (size_t s = 0; s < num_solvers; ++s) {
      results[p][s].min_reliability /= options.num_seeds;
      results[p][s].total_std /= options.num_seeds;
      results[p][s].wall_seconds /= options.num_seeds;
    }
  }

  std::vector<std::string> row_labels;
  for (const SweepPoint& point : points) row_labels.push_back(point.label);

  auto cells_of = [&](auto getter) {
    std::vector<std::vector<double>> cells(points.size());
    for (size_t p = 0; p < points.size(); ++p) {
      for (size_t s = 0; s < num_solvers; ++s) {
        cells[p].push_back(getter(results[p][s]));
      }
    }
    return cells;
  };

  const auto reliability_cells =
      cells_of([](const PointResult& r) { return r.min_reliability; });
  const auto std_cells =
      cells_of([](const PointResult& r) { return r.total_std; });
  const auto time_cells =
      cells_of([](const PointResult& r) { return r.wall_seconds; });
  PrintTable("Minimum Reliability", x_label, row_labels, solver_names,
             reliability_cells);
  PrintTable("total_STD", x_label, row_labels, solver_names, std_cells, 2);
  PrintTable("CPU time (s)", x_label, row_labels, solver_names, time_cells);
  std::printf("\n");
  if (report != nullptr) {
    report->AddTable("Minimum Reliability", x_label, row_labels,
                     solver_names, reliability_cells);
    report->AddTable("total_STD", x_label, row_labels, solver_names,
                     std_cells);
    report->AddTable("CPU time (s)", x_label, row_labels, solver_names,
                     time_cells);
  }
  return results;
}

}  // namespace rdbsc::bench
