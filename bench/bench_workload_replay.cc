// Declarative-workload replay bench: compiles one workloads/*.wl scenario
// (src/wl) and replays it at a sweep of dispatch worker counts, twice per
// count, asserting the determinism contract as it goes -- every replay's
// per-ticket fingerprint vector must be bit-identical to the first one.
// A divergence prints the first differing slot and exits non-zero, so CI
// smoke runs double as a determinism gate. Tables report throughput and
// latency per worker count; those are the only numbers allowed to vary.
//
// Flags (see bench/harness.h for the shared ones):
//   --workload=FILE  the scenario to replay (default: the checked-in
//                    rush_hour.wl)
//   --dilation=X     open-loop pacing scale (default 0: flood -- pacing
//                    changes latency numbers, never fingerprints)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "wl/compile.h"
#include "wl/runner.h"
#include "wl/spec.h"

#ifndef RDBSC_WORKLOADS_DIR
#define RDBSC_WORKLOADS_DIR "workloads"
#endif

using namespace rdbsc;

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], name, len) == 0 && argv[a][len] == '=') {
      return argv[a] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const char* flag;
  std::string path = (flag = FlagValue(argc, argv, "--workload"))
                         ? flag
                         : std::string(RDBSC_WORKLOADS_DIR) + "/rush_hour.wl";
  double dilation =
      (flag = FlagValue(argc, argv, "--dilation")) ? std::atof(flag) : 0.0;

  util::StatusOr<wl::WorkloadSpec> spec = wl::ParseWorkloadFile(path);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 spec.status().message().c_str());
    return 1;
  }
  util::StatusOr<wl::CompiledWorkload> compiled =
      wl::CompileWorkload(spec.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().message().c_str());
    return 1;
  }

  bench::BenchReport report("workload_replay_" + compiled.value().name,
                            options);
  std::printf("workload %s (%s): %lld ops, dilation %g\n",
              compiled.value().name.c_str(), path.c_str(),
              static_cast<long long>(compiled.value().total_ops), dilation);

  const std::vector<int> worker_counts = {1, 2, 8};
  const int reruns = 2;
  std::vector<std::string> reference;
  std::vector<std::string> row_labels;
  std::vector<std::vector<double>> cells;

  for (int workers : worker_counts) {
    for (int run = 0; run < reruns; ++run) {
      wl::ReplayOptions replay;
      replay.num_workers = workers;
      replay.time_dilation = dilation;
      replay.metrics = &report.metrics();
      util::StatusOr<wl::ReplayReport> result =
          wl::ReplayWorkload(compiled.value(), replay);
      if (!result.ok()) {
        std::fprintf(stderr, "replay error: %s\n",
                     result.status().message().c_str());
        return 1;
      }
      const std::vector<std::string>& prints = result.value().fingerprints;
      if (reference.empty()) {
        reference = prints;
      } else if (prints != reference) {
        size_t first = 0;
        while (first < prints.size() && first < reference.size() &&
               prints[first] == reference[first]) {
          ++first;
        }
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: workers=%d run=%d diverges at "
                     "op %zu\n  expected %s\n  got      %s\n",
                     workers, run, first,
                     first < reference.size() ? reference[first].c_str()
                                              : "<missing>",
                     first < prints.size() ? prints[first].c_str()
                                           : "<missing>");
        return 1;
      }
      double wall = result.value().wall_seconds;
      double throughput =
          wall > 0.0 ? static_cast<double>(prints.size()) / wall : 0.0;
      std::printf(
          "workers=%d run=%d: %zu ops in %.3fs (%.0f ops/s) digest %s\n",
          workers, run, prints.size(), wall, throughput,
          wl::FingerprintDigest(prints).c_str());
      row_labels.push_back("workers=" + std::to_string(workers) + " run=" +
                           std::to_string(run));
      double p99 = 0.0;
      for (const wl::PhaseReport& phase : result.value().phases) {
        if (phase.latency.p99() > p99) p99 = phase.latency.p99();
      }
      cells.push_back({static_cast<double>(prints.size()), wall, throughput,
                       p99});
    }
  }

  std::printf("determinism: %zu fingerprints bit-identical across %zu "
              "replays ({1,2,8} workers x %d runs)\n",
              reference.size(), worker_counts.size() * reruns, reruns);
  report.AddTable("workload replay", "statistic", row_labels,
                  {"ops", "wall_seconds", "ops_per_second", "p99_seconds"},
                  cells);
  report.Write();
  return 0;
}
