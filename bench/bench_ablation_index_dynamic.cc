// Ablation: dynamic maintenance of the RDB-SC-Grid (Section 7.2). Workers
// and tasks churn in and out of the system; the index must absorb inserts
// and removals cheaply (lazy summary repair) while retrieval stays exact.
// Reports insert/remove throughput and the retrieval cost after churn.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "index/grid_index.h"
#include "util/rng.h"

namespace rdbsc::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  std::printf("== Ablation: RDB-SC-Grid dynamic maintenance ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (double churn_fraction : {0.1, 0.3, 0.5}) {
    double insert_rate = 0.0, remove_rate = 0.0, retrieve_s = 0.0;
    int64_t edges_index = 0, edges_brute = 0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      core::Instance instance = gen::GenerateInstance(config);
      index::GridIndex index = index::GridIndex::Build(instance, 0.05);
      util::Rng rng(options.seed0 + seed_index);

      // Remove a churn_fraction of workers and tasks...
      int removals = static_cast<int>(instance.num_workers() *
                                      churn_fraction);
      std::vector<core::WorkerId> removed_workers;
      std::vector<core::TaskId> removed_tasks;
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < removals; ++r) {
        core::WorkerId j = static_cast<core::WorkerId>(
            rng.UniformInt(0, instance.num_workers() - 1));
        if (index.RemoveWorker(j).ok()) removed_workers.push_back(j);
        core::TaskId i = static_cast<core::TaskId>(
            rng.UniformInt(0, instance.num_tasks() - 1));
        if (index.RemoveTask(i).ok()) removed_tasks.push_back(i);
      }
      double remove_elapsed = Seconds(t0);
      remove_rate += (removed_workers.size() + removed_tasks.size()) /
                     std::max(remove_elapsed, 1e-9);

      // ... and re-insert them (arrival of "new" workers/tasks).
      t0 = std::chrono::steady_clock::now();
      for (core::WorkerId j : removed_workers) {
        index.InsertWorker(j, instance.worker(j));
      }
      for (core::TaskId i : removed_tasks) {
        index.InsertTask(i, instance.task(i));
      }
      double insert_elapsed = Seconds(t0);
      insert_rate += (removed_workers.size() + removed_tasks.size()) /
                     std::max(insert_elapsed, 1e-9);

      // Retrieval after churn must match brute force exactly.
      t0 = std::chrono::steady_clock::now();
      auto edges = index.RetrieveEdges(instance.num_workers()).value();
      retrieve_s += Seconds(t0);
      for (const auto& list : edges) {
        edges_index += static_cast<int64_t>(list.size());
      }
      edges_brute += core::CandidateGraph::Build(instance).NumEdges();
    }
    if (edges_index != edges_brute) {
      std::printf("ERROR: churned index disagrees with brute force\n");
      return 1;
    }
    rows.push_back(std::to_string(churn_fraction));
    cells.push_back({remove_rate / options.num_seeds,
                     insert_rate / options.num_seeds,
                     retrieve_s / options.num_seeds});
  }
  PrintTable("dynamic maintenance", "churn", rows,
             {"removes/s", "inserts/s", "retrieve(s)"}, cells, 1);
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
