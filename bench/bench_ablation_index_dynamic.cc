// Ablation: dynamic maintenance of the RDB-SC-Grid (Section 7.2). Workers
// and tasks churn in and out of the system; the index must absorb inserts
// and removals cheaply (lazy summary repair) while retrieval stays exact.
// Reports insert/remove throughput and the retrieval cost after churn.
//
// The second section measures the streaming delta engine on small-delta
// rounds (a few percent of workers move between assignments):
//
//   --maintenance=delta    per-round cost = patch the moved rows and
//                          repair only dirty / horizon-expired ones
//                          (index::DeltaGraph); the default
//   --maintenance=rebuild  per-round cost = full RetrievePairs scan
//                          (the pre-delta engine's behavior)
//
// Both modes produce the identical edge set (verified in-process each
// seed); only the "round (s)" column moves. The checked-in
// BENCH_ablation_index_dynamic.{before,after}.json pair captures
// rebuild vs delta and is gated by tools/bench_trend.py in CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "index/delta_graph.h"
#include "index/grid_index.h"
#include "util/rng.h"

namespace rdbsc::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  bool delta_mode = true;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--maintenance=rebuild") == 0) {
      delta_mode = false;
    } else if (std::strcmp(argv[a], "--maintenance=delta") == 0) {
      delta_mode = true;
    }
  }
  BenchReport report("ablation_index_dynamic", options);
  std::printf("== Ablation: RDB-SC-Grid dynamic maintenance ==\n");
  std::printf("scale: base=%d, seeds=%d, maintenance=%s\n", options.base,
              options.num_seeds, delta_mode ? "delta" : "rebuild");

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (double churn_fraction : {0.1, 0.3, 0.5}) {
    double insert_rate = 0.0, remove_rate = 0.0, retrieve_s = 0.0;
    int64_t edges_index = 0, edges_brute = 0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      core::Instance instance = gen::GenerateInstance(config);
      index::GridIndex index = index::GridIndex::Build(instance, 0.05);
      util::Rng rng(options.seed0 + seed_index);

      // Remove a churn_fraction of workers and tasks...
      int removals = static_cast<int>(instance.num_workers() *
                                      churn_fraction);
      std::vector<core::WorkerId> removed_workers;
      std::vector<core::TaskId> removed_tasks;
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < removals; ++r) {
        core::WorkerId j = static_cast<core::WorkerId>(
            rng.UniformInt(0, instance.num_workers() - 1));
        if (index.RemoveWorker(j).ok()) removed_workers.push_back(j);
        core::TaskId i = static_cast<core::TaskId>(
            rng.UniformInt(0, instance.num_tasks() - 1));
        if (index.RemoveTask(i).ok()) removed_tasks.push_back(i);
      }
      double remove_elapsed = Seconds(t0);
      remove_rate += (removed_workers.size() + removed_tasks.size()) /
                     std::max(remove_elapsed, 1e-9);

      // ... and re-insert them (arrival of "new" workers/tasks).
      t0 = std::chrono::steady_clock::now();
      for (core::WorkerId j : removed_workers) {
        index.InsertWorker(j, instance.worker(j));
      }
      for (core::TaskId i : removed_tasks) {
        index.InsertTask(i, instance.task(i));
      }
      double insert_elapsed = Seconds(t0);
      insert_rate += (removed_workers.size() + removed_tasks.size()) /
                     std::max(insert_elapsed, 1e-9);

      // Retrieval after churn must match brute force exactly.
      t0 = std::chrono::steady_clock::now();
      auto edges = index.RetrieveEdges(instance.num_workers()).value();
      retrieve_s += Seconds(t0);
      for (const auto& list : edges) {
        edges_index += static_cast<int64_t>(list.size());
      }
      edges_brute += core::CandidateGraph::Build(instance).NumEdges();
    }
    if (edges_index != edges_brute) {
      std::printf("ERROR: churned index disagrees with brute force\n");
      return 1;
    }
    rows.push_back(std::to_string(churn_fraction));
    cells.push_back({remove_rate / options.num_seeds,
                     insert_rate / options.num_seeds,
                     retrieve_s / options.num_seeds});
  }
  PrintTable("dynamic maintenance", "churn", rows,
             {"removes/s", "inserts/s", "retrieve(s)"}, cells, 1);
  report.AddTable("dynamic maintenance", "churn", rows,
                  {"removes/s", "inserts/s", "retrieve(s)"}, cells);
  std::printf("\n");

  // --- Small-delta rounds: the streaming engine's target regime. ---
  constexpr int kRounds = 10;
  std::vector<std::string> delta_rows;
  std::vector<std::vector<double>> delta_cells;
  for (double moved_fraction : {0.01, 0.05}) {
    double round_s = 0.0;
    double edges_per_round = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + 31 * seed_index);
      core::Instance instance = gen::GenerateInstance(config);
      index::GridIndex index = index::GridIndex::Build(instance, 0.05);
      util::Rng rng(options.seed0 + 31 * seed_index);
      std::vector<geo::Point> position(instance.num_workers());
      for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
        position[j] = instance.worker(j).location;
      }

      index::DeltaGraph delta;
      if (delta_mode) {
        for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
          delta.AddRow(j).ok();
        }
        delta.RepairRows(index).ok();  // warm start, outside the timer
      }

      const int moved = std::max(
          1, static_cast<int>(instance.num_workers() * moved_fraction));
      int64_t edges = 0;
      for (int round = 0; round < kRounds; ++round) {
        // Draw the round's move events mode-independently so both
        // strategies process the identical event stream.
        std::vector<std::pair<core::WorkerId, geo::Point>> moves;
        moves.reserve(static_cast<size_t>(moved));
        for (int k = 0; k < moved; ++k) {
          core::WorkerId j = static_cast<core::WorkerId>(
              rng.UniformInt(0, instance.num_workers() - 1));
          geo::Point to = position[j];
          to.x += rng.Uniform(-0.02, 0.02);
          to.y += rng.Uniform(-0.02, 0.02);
          moves.emplace_back(j, to);
        }

        auto t0 = std::chrono::steady_clock::now();
        for (const auto& [j, to] : moves) {
          index.MoveWorker(j, to).ok();
          position[j] = to;
          if (delta_mode) delta.MarkRowDirty(j).ok();
        }
        if (delta_mode) {
          delta.RepairRows(index).ok();
          edges += static_cast<int64_t>(delta.Pairs().size());
        } else {
          edges +=
              static_cast<int64_t>(index.RetrievePairs().value().size());
        }
        round_s += Seconds(t0);
      }
      edges_per_round +=
          static_cast<double>(edges) / static_cast<double>(kRounds);

      if (delta_mode &&
          delta.Pairs() != index.RetrievePairs().value()) {
        std::printf("ERROR: delta engine disagrees with full retrieval\n");
        return 1;
      }
    }
    delta_rows.push_back(std::to_string(moved_fraction));
    delta_cells.push_back(
        {round_s / (options.num_seeds * kRounds),
         edges_per_round / options.num_seeds});
  }
  PrintTable("small-delta rounds", "moved frac", delta_rows,
             {"round (s)", "edges"}, delta_cells, 6);
  report.AddTable("small-delta rounds", "moved frac", delta_rows,
                  {"round (s)", "edges"}, delta_cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
