// Figure 17: efficiency of the RDB-SC-Grid index (UNIFORM, m = 10K,
// n varying 5K..30K at paper scale): (a) index construction time,
// (b) valid W-T pair retrieval time with vs without the index.
// Paper shape: construction < 1s; indexed retrieval far cheaper than the
// no-index scan (up to ~67% reduction reported).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "index/cost_model.h"
#include "index/grid_index.h"
#include "util/fractal.h"

namespace rdbsc::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig17_grid_index", options);
  std::printf("== Figure 17: Efficiency of the RDB-SC-Grid Index ==\n");
  std::printf("scale: base=%d (paper 10K), seeds=%d\n", options.base,
              options.num_seeds);

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (int paper_n : {5'000, 8'000, 10'000, 20'000, 30'000}) {
    double build_s = 0.0, with_s = 0.0, without_s = 0.0;
    double pruned_frac = 0.0;
    int64_t edges_with = 0, edges_without = 0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      config.num_workers = Scaled(options, paper_n);
      core::Instance instance = gen::GenerateInstance(config);

      // Cell side from the cost model (Appendix I): L_max from the fastest
      // worker over the longest open period, D2 estimated from the tasks.
      std::vector<util::KmPoint> pts;
      for (int i = 0; i < instance.num_tasks(); ++i) {
        pts.push_back({instance.task(i).location.x,
                       instance.task(i).location.y});
      }
      index::CostModelParams cm;
      cm.l_max = 0.9;  // v_max * longest deadline, clamped to the space
      cm.d2 = util::EstimateCorrelationDimension(pts);
      cm.num_points = instance.num_tasks();
      double eta = index::OptimalEta(cm);

      auto t0 = std::chrono::steady_clock::now();
      index::GridIndex index = index::GridIndex::Build(instance, eta);
      build_s += Seconds(t0);

      index::RetrievalStats stats;
      t0 = std::chrono::steady_clock::now();
      auto edges = index.RetrieveEdges(instance.num_workers(), &stats).value();
      with_s += Seconds(t0);
      edges_with += stats.edges;
      pruned_frac += stats.cell_pairs_examined > 0
                         ? static_cast<double>(stats.cell_pairs_pruned) /
                               stats.cell_pairs_examined
                         : 0.0;

      t0 = std::chrono::steady_clock::now();
      core::CandidateGraph brute = core::CandidateGraph::Build(instance);
      without_s += Seconds(t0);
      edges_without += brute.NumEdges();
    }
    if (edges_with != edges_without) {
      std::printf("ERROR: index returned %lld edges, brute force %lld\n",
                  static_cast<long long>(edges_with),
                  static_cast<long long>(edges_without));
      return 1;
    }
    rows.push_back(std::to_string(Scaled(options, paper_n)));
    cells.push_back({build_s / options.num_seeds,
                     with_s / options.num_seeds,
                     without_s / options.num_seeds,
                     pruned_frac / options.num_seeds});
  }
  const std::vector<std::string> columns = {"build (s)", "with idx (s)",
                                            "no idx (s)", "pruned frac"};
  PrintTable("RDB-SC-Grid timings", "n", rows, columns, cells, 4);
  report.AddTable("RDB-SC-Grid timings", "n", rows, columns, cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
