// Ablation: how GREEDY estimates the diversity increase of a candidate
// pair. The paper's Section 4.3 ranks pairs by bound-derived increases
// (fast, but optimistic bounds favor already-populated tasks and cause the
// start-up herding the paper describes); computing exact increments is
// slower but substantially stronger. Also compares the Figure 3 global
// pair selection against the Section 8.1 per-worker local variant.

#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/params.h"
#include "core/registry.h"

namespace rdbsc::bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("ablation_greedy_increments", options);
  std::printf("== Ablation: GREEDY increase estimation and selection order ==\n");
  std::printf("scale: base=%d, seeds=%d\n", options.base, options.num_seeds);

  using GI = core::SolverOptions::GreedyIncrement;
  struct Variant {
    const char* label;
    bool per_worker;
    GI increment;
  };
  const Variant variants[] = {
      {"pair+bounds", false, GI::kBounds},
      {"pair+exact", false, GI::kExact},
      {"worker+bounds", true, GI::kBounds},
      {"worker+exact", true, GI::kExact},
  };

  std::vector<std::string> rows;
  std::vector<std::vector<double>> cells;
  for (const Variant& v : variants) {
    rows.push_back(v.label);
    double rel = 0.0, total_std = 0.0, secs = 0.0;
    for (int seed_index = 0; seed_index < options.num_seeds; ++seed_index) {
      gen::WorkloadConfig config =
          DefaultSynthetic(options, options.seed0 + seed_index);
      core::Instance instance = gen::GenerateInstance(config);
      core::CandidateGraph graph = core::CandidateGraph::Build(instance);
      core::SolverOptions so;
      so.seed = options.seed0 + seed_index;
      so.greedy_increment = v.increment;
      auto solver = core::SolverRegistry::Global()
                        .Create(v.per_worker ? "worker-greedy" : "greedy",
                                so)
                        .value();
      core::SolveResult result = solver->Solve(instance, graph).value();
      rel += result.objectives.min_reliability;
      total_std += result.objectives.total_std;
      secs += result.stats.wall_seconds;
    }
    cells.push_back({rel / options.num_seeds, total_std / options.num_seeds,
                     secs / options.num_seeds});
  }
  PrintTable("greedy variants", "variant", rows,
             {"min rel", "total_STD", "time (s)"}, cells, 3);
  report.AddTable("greedy variants", "variant", rows,
                  {"min rel", "total_STD", "time (s)"}, cells);
  std::printf("\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace rdbsc::bench

int main(int argc, char** argv) { return rdbsc::bench::Run(argc, argv); }
