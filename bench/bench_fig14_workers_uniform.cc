// Figure 14: Effect of the Number of Workers n (UNIFORM)
// Paper shape: reliability insensitive to n; total_STD grows with n for all approaches.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  RunQualitySweep(
      "Figure 14: Effect of the Number of Workers n (UNIFORM)",
      "n", WorkerCountSweep(options, rdbsc::gen::SpatialDistribution::kUniform), options);
  return 0;
}
