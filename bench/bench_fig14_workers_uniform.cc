// Figure 14: Effect of the Number of Workers n (UNIFORM)
// Paper shape: reliability insensitive to n; total_STD grows with n for all approaches.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig14_workers_uniform", options);
  RunQualitySweep(
      "Figure 14: Effect of the Number of Workers n (UNIFORM)",
      "n", WorkerCountSweep(options, rdbsc::gen::SpatialDistribution::kUniform), options, &report);
  report.Write();
  return 0;
}
