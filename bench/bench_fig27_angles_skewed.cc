// Figure 27: Effect of the Range of Moving Angles (SKEWED)
// Paper shape: same trends as Figure 15 on skewed data.

#include "bench/harness.h"
#include "bench/sweeps.h"

int main(int argc, char** argv) {
  using namespace rdbsc::bench;
  BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig27_angles_skewed", options);
  RunQualitySweep(
      "Figure 27: Effect of the Range of Moving Angles (SKEWED)",
      "(a+-a-)", AngleRangeSweep(options, rdbsc::gen::SpatialDistribution::kSkewed), options, &report);
  report.Write();
  return 0;
}
