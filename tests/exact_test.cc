#include "core/exact.h"

#include <memory>

#include "core/dominance.h"
#include "core/registry.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

// Tiny instances so the population stays enumerable.
Instance TinyInstance(uint64_t seed) {
  return test::SmallInstance(seed, /*num_tasks=*/4, /*num_workers=*/8);
}

// Dominance with a tolerance: the exact optimum and an approximation can
// evaluate the same assignment along different arithmetic paths, so
// equality must absorb ~1e-12 of float drift.
bool DominatesEps(const ObjectiveValue& a, const ObjectiveValue& b,
                  double eps = 1e-9) {
  bool no_worse = a.min_reliability >= b.min_reliability - eps &&
                  a.total_std >= b.total_std - eps;
  bool strict = a.min_reliability > b.min_reliability + eps ||
                a.total_std > b.total_std + eps;
  return no_worse && strict;
}

TEST(ExactSolverTest, PopulationArithmetic) {
  Instance instance = TinyInstance(1);
  CandidateGraph graph = CandidateGraph::Build(instance);
  int64_t expected = 1;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (graph.Degree(j) > 0) expected *= graph.Degree(j);
  }
  EXPECT_EQ(ExactSolver::Population(graph, 1'000'000'000), expected);
}

TEST(ExactSolverTest, PopulationOverCapIsNegative) {
  Instance instance = test::SmallInstance(2, 20, 60);
  CandidateGraph graph = CandidateGraph::Build(instance);
  EXPECT_EQ(ExactSolver::Population(graph, 4), -1);
}

// Regression for the old `assert(population >= 0 ...)`: with NDEBUG the
// solver used to walk a garbage population silently. An over-cap request
// must now surface as kInvalidArgument in every build type.
TEST(ExactSolverTest, OverCapPopulationReturnsInvalidArgument) {
  Instance instance = test::SmallInstance(2, 20, 60);
  CandidateGraph graph = CandidateGraph::Build(instance);
  ExactSolver solver({}, /*max_enumeration=*/4);
  util::StatusOr<SolveResult> result = solver.Solve(instance, graph);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

// The registry path hits the same admission error (default cap).
TEST(ExactSolverTest, RegistryCreatedExactRejectsLargeInstances) {
  Instance instance = test::SmallInstance(3, 40, 120);
  CandidateGraph graph = CandidateGraph::Build(instance);
  auto solver = SolverRegistry::Global().Create("exact").value();
  util::StatusOr<SolveResult> result = solver->Solve(instance, graph);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ExactSolverTest, FeasibleAndConsistent) {
  Instance instance = TinyInstance(3);
  CandidateGraph graph = CandidateGraph::Build(instance);
  ExactSolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  test::ExpectFeasible(instance, graph, result.assignment);
  ObjectiveValue check = EvaluateAssignment(instance, result.assignment);
  EXPECT_NEAR(result.objectives.total_std, check.total_std, 1e-9);
  EXPECT_NEAR(result.objectives.min_reliability, check.min_reliability,
              1e-9);
}

// The defining property of the exact answer: no assignment in the
// population dominates it.
class ExactOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactOptimalityTest, NoSampledAssignmentDominatesExact) {
  Instance instance = TinyInstance(GetParam());
  CandidateGraph graph = CandidateGraph::Build(instance);
  ExactSolver exact;
  ObjectiveValue best = exact.Solve(instance, graph).value().objectives;

  // Heavy randomized probing of the population.
  util::Rng rng(GetParam() * 7);
  for (int trial = 0; trial < 500; ++trial) {
    Assignment sample(instance.num_workers());
    for (WorkerId j = 0; j < instance.num_workers(); ++j) {
      const auto& tasks = graph.TasksOf(j);
      if (tasks.empty()) continue;
      sample.Assign(j, tasks[static_cast<size_t>(rng.UniformInt(
                           0, static_cast<int64_t>(tasks.size()) - 1))]);
    }
    ObjectiveValue value = EvaluateAssignment(instance, sample);
    EXPECT_FALSE(DominatesEps(value, best)) << "trial " << trial;
  }
}

TEST_P(ExactOptimalityTest, ApproximationsNeverDominateExact) {
  Instance instance = TinyInstance(GetParam() + 40);
  CandidateGraph graph = CandidateGraph::Build(instance);
  ExactSolver exact;
  ObjectiveValue best = exact.Solve(instance, graph).value().objectives;

  SolverOptions options;
  options.gamma = 2;
  std::vector<std::unique_ptr<Solver>> approximations;
  for (std::string_view name : kSection81Approaches) {
    approximations.push_back(
        SolverRegistry::Global().Create(name, options).value());
  }
  for (auto& solver : approximations) {
    ObjectiveValue value = solver->Solve(instance, graph).value().objectives;
    EXPECT_FALSE(DominatesEps(value, best)) << solver->name();
    // And the approximations should recover a decent share of the optimum.
    EXPECT_GT(value.total_std, 0.25 * best.total_std) << solver->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactOptimalityTest,
                         ::testing::Values(5, 6, 7, 8, 9));

TEST(ParetoFrontTest, FrontIsMutuallyNonDominating) {
  Instance instance = TinyInstance(11);
  CandidateGraph graph = CandidateGraph::Build(instance);
  auto front = EnumerateParetoFront(instance, graph);
  ASSERT_TRUE(front.ok());
  ASSERT_FALSE(front.value().empty());
  std::vector<ObjectiveValue> values;
  for (const Assignment& assignment : front.value()) {
    values.push_back(EvaluateAssignment(instance, assignment));
  }
  for (size_t a = 0; a < values.size(); ++a) {
    for (size_t b = 0; b < values.size(); ++b) {
      EXPECT_FALSE(DominatesEps(values[a], values[b]))
          << "front member " << a << " dominates member " << b;
    }
  }
}

TEST(ParetoFrontTest, ExactWinnerOnTheFront) {
  Instance instance = TinyInstance(12);
  CandidateGraph graph = CandidateGraph::Build(instance);
  ExactSolver exact;
  ObjectiveValue best = exact.Solve(instance, graph).value().objectives;
  auto front = EnumerateParetoFront(instance, graph);
  ASSERT_TRUE(front.ok());
  bool found = false;
  for (const Assignment& assignment : front.value()) {
    ObjectiveValue value = EvaluateAssignment(instance, assignment);
    if (util::NearlyEqual(value.total_std, best.total_std) &&
        util::NearlyEqual(value.min_reliability, best.min_reliability)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ParetoFrontTest, OverCapFails) {
  Instance instance = test::SmallInstance(13, 20, 60);
  CandidateGraph graph = CandidateGraph::Build(instance);
  auto front = EnumerateParetoFront(instance, graph, /*max_enumeration=*/8);
  EXPECT_FALSE(front.ok());
  EXPECT_EQ(front.status().code(), util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rdbsc::core
