#include "core/worker_greedy.h"

#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::core {
namespace {

using test::ExpectFeasible;
using test::SmallInstance;

/// The same instance restricted to its first `k` workers (tasks, time and
/// policy unchanged). Valid pairs of the kept workers are unaffected.
Instance TruncateWorkers(const Instance& instance, int k) {
  std::vector<Worker> workers(instance.workers().begin(),
                              instance.workers().begin() + k);
  return Instance(instance.tasks(), std::move(workers), instance.now(),
                  instance.policy());
}

class WorkerGreedyFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkerGreedyFeasibilityTest, FeasibleOnRandomInstances) {
  Instance instance = SmallInstance(GetParam());
  CandidateGraph graph = CandidateGraph::Build(instance);
  WorkerGreedySolver solver;
  SolveResult result = solver.Solve(instance, graph).value();
  ExpectFeasible(instance, graph, result.assignment);
  // GREEDY processes every worker once: exactly the connected ones serve.
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_EQ(result.assignment.TaskOf(j) != kNoTask, graph.Degree(j) > 0)
        << "worker " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkerGreedyFeasibilityTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

TEST(WorkerGreedyTest, ObjectivesMatchReevaluationInBothIncrementModes) {
  for (auto mode : {SolverOptions::GreedyIncrement::kBounds,
                    SolverOptions::GreedyIncrement::kExact}) {
    Instance instance = SmallInstance(61);
    CandidateGraph graph = CandidateGraph::Build(instance);
    SolverOptions options;
    options.greedy_increment = mode;
    WorkerGreedySolver solver(options);
    SolveResult result = solver.Solve(instance, graph).value();
    ObjectiveValue check = EvaluateAssignment(instance, result.assignment);
    EXPECT_NEAR(result.objectives.total_std, check.total_std, 1e-9);
    EXPECT_NEAR(result.objectives.min_reliability, check.min_reliability,
                1e-9);
  }
}

TEST(WorkerGreedyTest, ExactModeCountsStdEvaluations) {
  Instance instance = SmallInstance(62);
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolverOptions exact;
  exact.greedy_increment = SolverOptions::GreedyIncrement::kExact;
  SolveResult re = WorkerGreedySolver(exact).Solve(instance, graph).value();
  SolveResult rb = WorkerGreedySolver().Solve(instance, graph).value();
  EXPECT_EQ(re.stats.exact_std_evals, graph.NumEdges());
  EXPECT_EQ(rb.stats.exact_std_evals, 0);
}

// GREEDY handles workers in id order and each choice depends only on the
// state left by earlier workers, so solving the first-k-workers instance
// must reproduce the first k assignments of the full run...
TEST(WorkerGreedyTest, PrefixConsistentAcrossWorkerCounts) {
  Instance full = SmallInstance(63, /*num_tasks=*/12, /*num_workers=*/40);
  CandidateGraph full_graph = CandidateGraph::Build(full);
  SolveResult full_result = WorkerGreedySolver().Solve(full, full_graph).value();
  for (int k : {10, 25, 40}) {
    Instance prefix = TruncateWorkers(full, k);
    CandidateGraph graph = CandidateGraph::Build(prefix);
    SolveResult result = WorkerGreedySolver().Solve(prefix, graph).value();
    for (WorkerId j = 0; j < k; ++j) {
      EXPECT_EQ(result.assignment.TaskOf(j), full_result.assignment.TaskOf(j))
          << "k=" << k << " worker " << j;
    }
  }
}

// ...and the objective it optimizes, total E[STD], is therefore monotone
// non-decreasing in the worker count: extra workers only add observations,
// and the diversity entropy of a refined partition never shrinks.
TEST(WorkerGreedyTest, TotalStdMonotoneInWorkerCount) {
  Instance full = SmallInstance(64, /*num_tasks=*/12, /*num_workers=*/40);
  double previous = 0.0;
  for (int k : {5, 10, 20, 30, 40}) {
    Instance prefix = TruncateWorkers(full, k);
    CandidateGraph graph = CandidateGraph::Build(prefix);
    SolveResult result = WorkerGreedySolver().Solve(prefix, graph).value();
    EXPECT_GE(result.objectives.total_std, previous - 1e-9) << "k=" << k;
    previous = result.objectives.total_std;
  }
}

TEST(WorkerGreedyTest, EmptyInstance) {
  Instance instance({}, {});
  CandidateGraph graph = CandidateGraph::Build(instance);
  SolveResult result = WorkerGreedySolver().Solve(instance, graph).value();
  EXPECT_EQ(result.assignment.NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(result.objectives.total_std, 0.0);
}

TEST(WorkerGreedyTest, NoValidPairsLeavesEveryoneUnassigned) {
  Task t = test::MakeTask(0.5, 0.0, 0.01);
  t.location = {0.0, 0.0};
  Worker w;
  w.location = {1.0, 1.0};
  w.velocity = 0.01;
  Instance instance({t}, {w});
  CandidateGraph graph = CandidateGraph::Build(instance);
  ASSERT_EQ(graph.NumEdges(), 0);
  SolveResult result = WorkerGreedySolver().Solve(instance, graph).value();
  EXPECT_EQ(result.assignment.NumAssigned(), 0);
}

}  // namespace
}  // namespace rdbsc::core
