#include "geo/angle.h"

#include <cmath>
#include <numbers>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace rdbsc::geo {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(NormalizeAngleTest, IdentityInRange) {
  EXPECT_DOUBLE_EQ(NormalizeAngle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeAngle(1.5), 1.5);
  EXPECT_DOUBLE_EQ(NormalizeAngle(kTwoPi - 1e-9), kTwoPi - 1e-9);
}

TEST(NormalizeAngleTest, WrapsPositive) {
  EXPECT_NEAR(NormalizeAngle(kTwoPi + 0.25), 0.25, 1e-12);
  EXPECT_NEAR(NormalizeAngle(5.0 * kTwoPi + 1.0), 1.0, 1e-9);
}

TEST(NormalizeAngleTest, WrapsNegative) {
  EXPECT_NEAR(NormalizeAngle(-0.25), kTwoPi - 0.25, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-kTwoPi), 0.0, 1e-12);
}

TEST(NormalizeAngleTest, TinyNegativeFoldsToZeroRange) {
  double a = NormalizeAngle(-1e-18);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, kTwoPi);
}

TEST(CcwDeltaTest, BasicSweeps) {
  EXPECT_NEAR(CcwDelta(0.0, kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(CcwDelta(kPi / 2, 0.0), 3 * kPi / 2, 1e-12);
  EXPECT_DOUBLE_EQ(CcwDelta(1.0, 1.0), 0.0);
}

TEST(CcwDeltaTest, CrossesSeam) {
  EXPECT_NEAR(CcwDelta(kTwoPi - 0.1, 0.1), 0.2, 1e-12);
}

TEST(AngularIntervalTest, SimpleContains) {
  AngularInterval cone(0.5, 1.5);
  EXPECT_TRUE(cone.Contains(0.5));
  EXPECT_TRUE(cone.Contains(1.0));
  EXPECT_TRUE(cone.Contains(1.5));
  EXPECT_FALSE(cone.Contains(1.6));
  EXPECT_FALSE(cone.Contains(0.4));
  EXPECT_FALSE(cone.Contains(4.0));
}

TEST(AngularIntervalTest, SeamCrossingContains) {
  AngularInterval cone(kTwoPi - 0.5, 0.5);  // [ -0.5, +0.5 ]
  EXPECT_TRUE(cone.Contains(0.0));
  EXPECT_TRUE(cone.Contains(kTwoPi - 0.25));
  EXPECT_TRUE(cone.Contains(0.25));
  EXPECT_FALSE(cone.Contains(kPi));
}

TEST(AngularIntervalTest, FullCircleContainsEverything) {
  AngularInterval full = AngularInterval::FullCircle();
  for (double a = 0.0; a < kTwoPi; a += 0.37) {
    EXPECT_TRUE(full.Contains(a));
  }
  EXPECT_DOUBLE_EQ(full.width(), kTwoPi);
}

TEST(AngularIntervalTest, ZeroWidthIsSingleDirection) {
  AngularInterval ray(1.0, 1.0);
  EXPECT_DOUBLE_EQ(ray.width(), 0.0);
  EXPECT_TRUE(ray.Contains(1.0));
  EXPECT_FALSE(ray.Contains(1.1));
}

TEST(AngularIntervalTest, IntersectsOverlapping) {
  AngularInterval a(0.0, 1.0);
  AngularInterval b(0.5, 2.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
}

TEST(AngularIntervalTest, IntersectsDisjoint) {
  AngularInterval a(0.0, 1.0);
  AngularInterval b(2.0, 3.0);
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_FALSE(b.Intersects(a));
}

TEST(AngularIntervalTest, IntersectsContainment) {
  AngularInterval outer(0.0, 3.0);
  AngularInterval inner(1.0, 2.0);
  EXPECT_TRUE(outer.Intersects(inner));
  EXPECT_TRUE(inner.Intersects(outer));
}

TEST(AngularIntervalTest, IntersectsAcrossSeam) {
  AngularInterval a(kTwoPi - 0.3, 0.3);
  AngularInterval b(0.2, 1.0);
  EXPECT_TRUE(a.Intersects(b));
  AngularInterval c(1.0, 2.0);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(CoverUnionTest, DisjointIntervalsPicksNarrowCover) {
  AngularInterval a(0.0, 0.5);
  AngularInterval b(1.0, 1.5);
  AngularInterval cover = CoverUnion(a, b);
  EXPECT_TRUE(cover.Contains(0.0));
  EXPECT_TRUE(cover.Contains(0.5));
  EXPECT_TRUE(cover.Contains(1.0));
  EXPECT_TRUE(cover.Contains(1.5));
  EXPECT_NEAR(cover.width(), 1.5, 1e-9);  // [0, 1.5], not the long way round
}

TEST(CoverUnionTest, SeamAwareCover) {
  AngularInterval a(kTwoPi - 0.4, kTwoPi - 0.1);
  AngularInterval b(0.1, 0.4);
  AngularInterval cover = CoverUnion(a, b);
  EXPECT_NEAR(cover.width(), 0.8, 1e-9);
  EXPECT_TRUE(cover.Contains(0.0));
}

TEST(CoverUnionTest, FullCircleAbsorbs) {
  AngularInterval cover =
      CoverUnion(AngularInterval::FullCircle(), AngularInterval(0.0, 0.1));
  EXPECT_DOUBLE_EQ(cover.width(), kTwoPi);
}

// Property: the cover contains everything either input contains.
class CoverUnionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverUnionPropertyTest, CoverContainsBothInputs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    AngularInterval a(rng.Uniform(0, kTwoPi),
                      rng.Uniform(0, kTwoPi) + rng.Uniform(0, kTwoPi));
    AngularInterval b(rng.Uniform(0, kTwoPi),
                      rng.Uniform(0, kTwoPi) + rng.Uniform(0, kTwoPi));
    AngularInterval cover = CoverUnion(a, b);
    for (double frac = 0.0; frac <= 1.0; frac += 0.25) {
      EXPECT_TRUE(cover.Contains(NormalizeAngle(a.lo() + frac * a.width())));
      EXPECT_TRUE(cover.Contains(NormalizeAngle(b.lo() + frac * b.width())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverUnionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace rdbsc::geo
