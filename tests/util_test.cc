#include <cmath>

#include "gtest/gtest.h"
#include "util/fractal.h"
#include "util/kmeans.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/status.h"

namespace rdbsc::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eta");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 1);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, TruncatedGaussianStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.TruncatedGaussian(0.95, 0.02, 0.9, 1.0);
    EXPECT_GE(v, 0.9);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The child stream should differ from the parent's continuation.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Uniform(0, 1) != child.Uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(MathTest, EntropyTermLimits) {
  EXPECT_DOUBLE_EQ(EntropyTerm(0.0), 0.0);
  EXPECT_DOUBLE_EQ(EntropyTerm(1.0), 0.0);
  EXPECT_NEAR(EntropyTerm(0.5), 0.5 * std::log(2.0), 1e-12);
  EXPECT_GT(EntropyTerm(0.1), 0.0);
}

TEST(MathTest, ClampConfidenceGuardsEndpoints) {
  EXPECT_DOUBLE_EQ(ClampConfidence(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(ClampConfidence(0.5), 0.5);
  EXPECT_LT(ClampConfidence(1.0), 1.0);
  EXPECT_TRUE(std::isfinite(ReliabilityWeight(1.0)));
}

TEST(MathTest, ReliabilityRoundTrip) {
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(ReducedToProbability(ReliabilityWeight(p)), p, 1e-12);
  }
}

TEST(MathTest, LogBinomialMatchesSmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-9);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-6);
}

TEST(KmeansTest, SeparatesTwoClusters) {
  std::vector<KmPoint> points;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.Uniform(0.0, 0.2), rng.Uniform(0.0, 0.2)});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.Uniform(0.8, 1.0), rng.Uniform(0.8, 1.0)});
  }
  TwoMeansResult result = TwoMeans(points, rng);
  // All of the first 50 share a label, all of the last 50 share the other.
  for (int i = 1; i < 50; ++i) EXPECT_EQ(result.label[i], result.label[0]);
  for (int i = 51; i < 100; ++i) EXPECT_EQ(result.label[i], result.label[50]);
  EXPECT_NE(result.label[0], result.label[50]);
}

TEST(KmeansTest, HandlesDegenerateInputs) {
  Rng rng(4);
  EXPECT_TRUE(TwoMeans({}, rng).label.empty());
  EXPECT_EQ(TwoMeans({{0.5, 0.5}}, rng).label.size(), 1u);
  // All-identical points must not crash or loop forever.
  std::vector<KmPoint> same(20, KmPoint{0.3, 0.3});
  TwoMeansResult result = TwoMeans(same, rng);
  EXPECT_EQ(result.label.size(), 20u);
}

TEST(KmeansTest, RoughlyBalancedOnUniformData) {
  Rng rng(5);
  std::vector<KmPoint> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  TwoMeansResult result = TwoMeans(points, rng);
  int ones = 0;
  for (int label : result.label) ones += label;
  EXPECT_GT(ones, 80);   // neither cluster degenerates
  EXPECT_LT(ones, 320);
}

TEST(FractalTest, UniformDataNearTwo) {
  Rng rng(6);
  std::vector<KmPoint> points;
  for (int i = 0; i < 4000; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  double d2 = EstimateCorrelationDimension(points);
  EXPECT_GT(d2, 1.6);
  EXPECT_LE(d2, 2.0);
}

TEST(FractalTest, PointMassNearZeroIsClamped) {
  std::vector<KmPoint> points(1000, KmPoint{0.5, 0.5});
  double d2 = EstimateCorrelationDimension(points);
  EXPECT_DOUBLE_EQ(d2, 0.5);  // clamped floor
}

TEST(FractalTest, LineDataNearOne) {
  Rng rng(8);
  std::vector<KmPoint> points;
  for (int i = 0; i < 4000; ++i) {
    double x = rng.Uniform(0, 1);
    points.push_back({x, x});
  }
  double d2 = EstimateCorrelationDimension(points);
  EXPECT_GT(d2, 0.7);
  EXPECT_LT(d2, 1.4);
}

TEST(FractalTest, DegenerateInputDefaultsToTwo) {
  EXPECT_DOUBLE_EQ(EstimateCorrelationDimension({}), 2.0);
  EXPECT_DOUBLE_EQ(EstimateCorrelationDimension({{0.1, 0.2}}), 2.0);
}

}  // namespace
}  // namespace rdbsc::util
