// Satellite acceptance for the parallel execution layer: with a fixed
// seed, every parallel path must reproduce its serial result bit for bit
// at every thread count -- identical candidate-graph edge sets, identical
// RetrievalStats totals, and identical D&C / sampling assignments and
// objectives. Threads only change wall-clock time, never answers.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/divide_conquer.h"
#include "core/instance.h"
#include "core/sampling.h"
#include "core/solver.h"
#include "gtest/gtest.h"
#include "index/grid_index.h"
#include "sim/platform.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace rdbsc {
namespace {

using core::CandidateGraph;
using core::Instance;
using core::SolveResult;
using core::TaskId;
using core::WorkerId;

constexpr int kThreadCounts[] = {1, 2, 8};

void ExpectSameAssignment(const Instance& instance, const SolveResult& a,
                          const SolveResult& b, const char* label) {
  EXPECT_DOUBLE_EQ(a.objectives.total_std, b.objectives.total_std) << label;
  EXPECT_DOUBLE_EQ(a.objectives.min_reliability,
                   b.objectives.min_reliability)
      << label;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    ASSERT_EQ(a.assignment.TaskOf(j), b.assignment.TaskOf(j))
        << label << ", worker " << j;
  }
}

SolveResult SolveWith(core::Solver& solver, const Instance& instance,
                      const CandidateGraph& graph,
                      util::Executor* executor) {
  core::SolveRequest request;
  request.instance = &instance;
  request.graph = &graph;
  request.executor = executor;
  return solver.Solve(request).value();
}

TEST(ParallelDeterminismTest, CandidateGraphBuildMatchesSerial) {
  for (uint64_t seed : {3, 7, 11}) {
    Instance instance = test::SmallInstance(seed, 60, 90);
    CandidateGraph serial = CandidateGraph::Build(instance);
    for (int threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      CandidateGraph parallel =
          CandidateGraph::Build(instance, &pool, util::Deadline()).value();
      ASSERT_EQ(parallel.NumEdges(), serial.NumEdges()) << threads;
      for (WorkerId j = 0; j < instance.num_workers(); ++j) {
        ASSERT_TRUE(std::ranges::equal(parallel.TasksOf(j), serial.TasksOf(j)))
            << threads << " threads, worker " << j;
      }
      for (TaskId i = 0; i < instance.num_tasks(); ++i) {
        ASSERT_TRUE(
            std::ranges::equal(parallel.WorkersOf(i), serial.WorkersOf(i)))
            << threads << " threads, task " << i;
      }
    }
  }
}

TEST(ParallelDeterminismTest, GridRetrievalMatchesSerialIncludingStats) {
  Instance instance = test::SmallInstance(13, 80, 80);
  for (double eta : {0.05, 0.15}) {
    index::GridIndex serial_index = index::GridIndex::Build(instance, eta);
    index::RetrievalStats serial_stats;
    std::vector<std::vector<TaskId>> serial_edges =
        serial_index.RetrieveEdges(instance.num_workers(), &serial_stats)
            .value();
    auto serial_pairs = serial_index.RetrievePairs().value();

    for (int threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      // Fresh index per thread count so the lazy-cache state (and with it
      // the cell-pair accounting) starts identical to the serial run.
      index::GridIndex index = index::GridIndex::Build(instance, eta);
      index::RetrievalStats stats;
      std::vector<std::vector<TaskId>> edges =
          index.RetrieveEdges(instance.num_workers(), &stats, &pool).value();
      EXPECT_EQ(edges, serial_edges) << threads << " threads, eta " << eta;
      EXPECT_EQ(stats.cell_pairs_examined, serial_stats.cell_pairs_examined);
      EXPECT_EQ(stats.cell_pairs_pruned, serial_stats.cell_pairs_pruned);
      EXPECT_EQ(stats.pair_tests, serial_stats.pair_tests);
      EXPECT_EQ(stats.edges, serial_stats.edges);

      auto pairs = index.RetrievePairs(nullptr, &pool).value();
      EXPECT_EQ(pairs, serial_pairs) << threads << " threads, eta " << eta;
    }
  }
}

TEST(ParallelDeterminismTest, SamplingSolverMatchesSerial) {
  for (uint64_t seed : {5, 9}) {
    Instance instance = test::SmallInstance(seed, 20, 50);
    CandidateGraph graph = CandidateGraph::Build(instance);
    core::SolverOptions options;
    options.seed = seed * 1'000 + 1;
    core::SamplingSolver solver(options);
    SolveResult serial = SolveWith(solver, instance, graph, nullptr);
    for (int threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      SolveResult parallel = SolveWith(solver, instance, graph, &pool);
      ExpectSameAssignment(instance, parallel, serial, "sampling");
      EXPECT_EQ(parallel.stats.sample_size, serial.stats.sample_size);
      EXPECT_EQ(parallel.stats.exact_std_evals, serial.stats.exact_std_evals);
    }
  }
}

TEST(ParallelDeterminismTest, DivideConquerMatchesSerial) {
  for (uint64_t seed : {4, 8}) {
    // Enough tasks that the recursion produces several leaves.
    Instance instance = test::SmallInstance(seed, 80, 60);
    CandidateGraph graph = CandidateGraph::Build(instance);
    core::SolverOptions options;
    options.seed = seed + 100;
    options.gamma = 12;
    core::DivideConquerSolver solver(options);
    SolveResult serial = SolveWith(solver, instance, graph, nullptr);
    for (int threads : kThreadCounts) {
      util::ThreadPool pool(threads);
      SolveResult parallel = SolveWith(solver, instance, graph, &pool);
      ExpectSameAssignment(instance, parallel, serial, "dc");
      EXPECT_EQ(parallel.stats.exact_std_evals, serial.stats.exact_std_evals);
      EXPECT_EQ(parallel.stats.sample_size, serial.stats.sample_size);
    }
  }
}

TEST(ParallelDeterminismTest, GroundTruthSolverMatchesSerial) {
  Instance instance = test::SmallInstance(6, 50, 40);
  CandidateGraph graph = CandidateGraph::Build(instance);
  core::SolverOptions options;
  options.gamma = 10;
  core::GroundTruthSolver solver(options);
  SolveResult serial = SolveWith(solver, instance, graph, nullptr);
  util::ThreadPool pool(4);
  SolveResult parallel = SolveWith(solver, instance, graph, &pool);
  ExpectSameAssignment(instance, parallel, serial, "gtruth");
}

TEST(ParallelDeterminismTest, PlatformTrajectoryMatchesSerial) {
  sim::PlatformConfig config;
  config.num_sites = 6;
  config.num_workers = 12;
  config.solver_name = "dc";
  config.seed = 77;
  sim::PlatformResult serial = sim::Platform(config).Run().value();
  for (int threads : {2, 8}) {
    config.num_threads = threads;
    sim::PlatformResult parallel = sim::Platform(config).Run().value();
    EXPECT_EQ(parallel.assignments_made, serial.assignments_made) << threads;
    EXPECT_EQ(parallel.answers_received, serial.answers_received) << threads;
    EXPECT_DOUBLE_EQ(parallel.final_objectives.total_std,
                     serial.final_objectives.total_std)
        << threads;
    EXPECT_DOUBLE_EQ(parallel.final_objectives.min_reliability,
                     serial.final_objectives.min_reliability)
        << threads;
  }
}

}  // namespace
}  // namespace rdbsc
