// Snapshot-consistency contract of Server::Stats(): every counter
// transition happens in one critical section under the server mutex, so a
// concurrent Stats() reader must never observe a half-applied transition.
// With cache off (no single-flight followers) and kReject (no shedding),
// the partition invariants below hold for EVERY snapshot, not just
// quiescent ones:
//
//   submitted == admitted + rejected
//   admitted  == finished + queue_depth + in_flight
//               (finished = completed + deadline_exceeded
//                         + cancelled + failed + shed)
//
// The suite hammers Submit from several threads while observer threads
// snapshot continuously; it runs in CI's TSan job (all labels), where the
// same traffic also proves Stats() itself race-free.

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "engine/server.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::engine {
namespace {

core::Instance TinyInstance(uint64_t seed) {
  return test::SmallInstance(seed, 8, 16);
}

int64_t Finished(const ServerStats& s) {
  return s.completed + s.deadline_exceeded + s.cancelled + s.failed + s.shed;
}

void ExpectSnapshotConsistent(const ServerStats& s, const ServerConfig& cfg) {
  EXPECT_EQ(s.submitted, s.admitted + s.rejected)
      << "Submit must count itself and its admit/reject verdict atomically";
  EXPECT_EQ(s.admitted, Finished(s) + s.queue_depth + s.in_flight)
      << "every admitted request is exactly one of queued/in-flight/finished";
  EXPECT_GE(s.queue_depth, 0);
  EXPECT_LE(s.queue_depth, cfg.max_queue_depth);
  EXPECT_GE(s.in_flight, 0);
  EXPECT_LE(s.in_flight, cfg.num_workers);
  EXPECT_EQ(s.shed, 0) << "kReject never sheds";
  EXPECT_EQ(s.collapsed, 0) << "cache off disables single-flight";
}

void ExpectMonotone(const ServerStats& prev, const ServerStats& cur) {
  EXPECT_GE(cur.submitted, prev.submitted);
  EXPECT_GE(cur.admitted, prev.admitted);
  EXPECT_GE(cur.rejected, prev.rejected);
  EXPECT_GE(cur.completed, prev.completed);
  EXPECT_GE(Finished(cur), Finished(prev));
}

TEST(ServerStatsTest, SnapshotsStayConsistentUnderConcurrentSubmitters) {
  ServerConfig config;
  config.engine.solver_name = "greedy";
  config.num_workers = 4;
  config.max_queue_depth = 8;
  config.overload_policy = OverloadPolicy::kReject;
  config.cache_mode = CacheMode::kOff;
  config.cache_result_entries = 0;
  config.cache_graph_entries = 0;
  auto server = Server::Create(config).value();

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 40;
  std::atomic<bool> done{false};
  std::atomic<int64_t> observed_rejections{0};

  // Observers: continuous snapshots, each checked for the partition
  // invariants and for monotonicity against the previous one.
  std::vector<std::thread> observers;
  for (int o = 0; o < 2; ++o) {
    observers.emplace_back([&] {
      ServerStats prev;
      while (!done.load(std::memory_order_acquire)) {
        ServerStats cur = server->Stats();
        ExpectSnapshotConsistent(cur, config);
        ExpectMonotone(prev, cur);
        prev = cur;
      }
    });
  }

  std::vector<std::thread> submitters;
  std::vector<std::vector<Ticket>> tickets(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        auto ticket = server->Submit(
            TinyInstance(static_cast<uint64_t>(s * kPerSubmitter + i)));
        if (ticket.ok()) {
          tickets[s].push_back(std::move(ticket).value());
        } else {
          // kReject under a full queue is expected traffic here.
          EXPECT_EQ(ticket.status().code(),
                    util::StatusCode::kResourceExhausted);
          observed_rejections.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (auto& owned : tickets) {
    for (Ticket& t : owned) EXPECT_TRUE(t.Wait().ok());
  }
  server->Shutdown(ShutdownMode::kDrain);
  done.store(true, std::memory_order_release);
  for (std::thread& t : observers) t.join();

  // Quiescent final snapshot: everything admitted has completed OK.
  const ServerStats final_stats = server->Stats();
  ExpectSnapshotConsistent(final_stats, config);
  EXPECT_EQ(final_stats.submitted,
            static_cast<int64_t>(kSubmitters) * kPerSubmitter);
  EXPECT_EQ(final_stats.rejected,
            observed_rejections.load(std::memory_order_relaxed));
  EXPECT_EQ(final_stats.queue_depth, 0);
  EXPECT_EQ(final_stats.in_flight, 0);
  EXPECT_EQ(final_stats.admitted, final_stats.completed);
  EXPECT_EQ(final_stats.failed, 0);
  EXPECT_EQ(final_stats.cancelled, 0);
  EXPECT_EQ(final_stats.deadline_exceeded, 0);
}

TEST(ServerStatsTest, RejectionsPartitionUnderSaturation) {
  // One worker and a depth-1 queue guarantee rejections; the partition
  // invariants must hold right through the churn.
  ServerConfig config;
  config.engine.solver_name = "greedy";
  config.num_workers = 1;
  config.max_queue_depth = 1;
  config.overload_policy = OverloadPolicy::kReject;
  config.cache_mode = CacheMode::kOff;
  config.cache_result_entries = 0;
  config.cache_graph_entries = 0;
  auto server = Server::Create(config).value();

  std::vector<Ticket> owned;
  int64_t rejected = 0;
  for (int i = 0; i < 32; ++i) {
    auto ticket = server->Submit(TinyInstance(static_cast<uint64_t>(i)));
    if (ticket.ok()) {
      owned.push_back(std::move(ticket).value());
    } else {
      ++rejected;
    }
    ExpectSnapshotConsistent(server->Stats(), config);
  }
  for (Ticket& t : owned) EXPECT_TRUE(t.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);

  const ServerStats s = server->Stats();
  ExpectSnapshotConsistent(s, config);
  EXPECT_EQ(s.submitted, 32);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_EQ(s.admitted, static_cast<int64_t>(owned.size()));
  EXPECT_EQ(s.admitted, s.completed);
}

}  // namespace
}  // namespace rdbsc::engine
