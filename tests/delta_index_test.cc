// Property suite of the streaming delta engine: randomized event
// sequences (cross-cell moves, same-cell jitter, task arrivals and
// expirations, interleaved completions) driven through both maintenance
// strategies, asserting the tentpole contract -- delta-maintained state
// is bit-identical to a from-scratch rebuild: grid cell summaries, the
// candidate edge set, and the per-round solve outcomes.

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "gtest/gtest.h"
#include "index/delta_graph.h"
#include "index/grid_index.h"
#include "sim/events.h"
#include "sim/incremental.h"
#include "sim/platform.h"
#include "sim/streaming.h"
#include "util/rng.h"

namespace rdbsc {
namespace {

core::Task RandomTask(util::Rng& rng, double now) {
  core::Task t;
  t.location = {rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
  t.start = now;
  t.end = now + rng.Uniform(0.2, 1.2);
  t.beta = rng.Uniform(0.4, 0.6);
  return t;
}

core::Worker RandomWorker(util::Rng& rng) {
  core::Worker w;
  w.location = {rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
  w.velocity = rng.Uniform(0.4, 1.5);
  w.confidence = rng.Uniform(0.8, 0.99);
  if (rng.Bernoulli(0.3)) {
    w.direction = geo::AngularInterval::FromWidth(
        rng.Uniform(0.0, geo::kTwoPi), rng.Uniform(2.0, geo::kTwoPi));
  }
  return w;
}

using Pairs = std::vector<std::pair<core::WorkerId, core::TaskId>>;

// ---------------------------------------------------------------------------
// DeltaGraph against the index oracle.

TEST(DeltaGraphTest, RowLifecycleStatuses) {
  index::DeltaGraph delta;
  EXPECT_TRUE(delta.AddRow(3).ok());
  EXPECT_EQ(delta.AddRow(3).code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(delta.RemoveRow(4).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(delta.MarkRowDirty(4).code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(delta.MarkRowDirty(3).ok());
  EXPECT_TRUE(delta.RemoveRow(3).ok());
  EXPECT_EQ(delta.num_rows(), 0);
}

// Random churn -- task arrivals/removals, worker arrivals/departures,
// cross-cell moves and same-cell jitter, clock advances -- with the
// delta-maintained pair list checked against a full retrieval after
// every repair.
TEST(DeltaGraphTest, MatchesFullRetrievalUnderRandomChurn) {
  for (uint64_t seed : {11u, 23u, 42u, 77u, 1234u}) {
    util::Rng rng(seed);
    index::GridIndex index(0.08, /*now=*/0.0,
                           core::ArrivalPolicy::kAllowWait);
    index::DeltaGraph delta;
    std::map<core::TaskId, core::Task> tasks;
    std::map<core::WorkerId, core::Worker> workers;
    core::TaskId next_task = 0;
    core::WorkerId next_worker = 0;
    double now = 0.0;

    for (int round = 0; round < 40; ++round) {
      now += rng.Uniform(0.0, 0.05);
      index.set_now(now);

      // A few random events per round.
      const int events = static_cast<int>(rng.UniformInt(1, 5));
      for (int e = 0; e < events; ++e) {
        switch (rng.UniformInt(0, 5)) {
          case 0: {  // task arrives
            core::Task t = RandomTask(rng, now);
            ASSERT_TRUE(index.InsertTask(next_task, t).ok());
            delta.OnTaskArrived(index, next_task, t);
            tasks.emplace(next_task, t);
            ++next_task;
            break;
          }
          case 1: {  // task expires / completes
            if (tasks.empty()) break;
            auto it = tasks.begin();
            std::advance(it, rng.UniformInt(
                                 0, static_cast<int64_t>(tasks.size()) - 1));
            ASSERT_TRUE(index.RemoveTask(it->first).ok());
            delta.OnTaskRemoved(it->first);
            tasks.erase(it);
            break;
          }
          case 2: {  // worker arrives
            core::Worker w = RandomWorker(rng);
            ASSERT_TRUE(index.InsertWorker(next_worker, w).ok());
            ASSERT_TRUE(delta.AddRow(next_worker).ok());
            workers.emplace(next_worker, w);
            ++next_worker;
            break;
          }
          case 3: {  // worker leaves
            if (workers.empty()) break;
            auto it = workers.begin();
            std::advance(it,
                         rng.UniformInt(
                             0, static_cast<int64_t>(workers.size()) - 1));
            ASSERT_TRUE(index.RemoveWorker(it->first).ok());
            ASSERT_TRUE(delta.RemoveRow(it->first).ok());
            workers.erase(it);
            break;
          }
          case 4: {  // cross-cell move (anywhere on the map)
            if (workers.empty()) break;
            auto it = workers.begin();
            std::advance(it,
                         rng.UniformInt(
                             0, static_cast<int64_t>(workers.size()) - 1));
            geo::Point to{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
            ASSERT_TRUE(index.MoveWorker(it->first, to).ok());
            ASSERT_TRUE(delta.MarkRowDirty(it->first).ok());
            it->second.location = to;
            break;
          }
          default: {  // same-cell jitter (tiny nudge, summaries untouched)
            if (workers.empty()) break;
            auto it = workers.begin();
            std::advance(it,
                         rng.UniformInt(
                             0, static_cast<int64_t>(workers.size()) - 1));
            geo::Point to = it->second.location;
            to.x += rng.Uniform(-1e-4, 1e-4);
            to.y += rng.Uniform(-1e-4, 1e-4);
            ASSERT_TRUE(index.MoveWorker(it->first, to).ok());
            ASSERT_TRUE(delta.MarkRowDirty(it->first).ok());
            it->second.location = to;
            break;
          }
        }
      }

      ASSERT_TRUE(delta.RepairRows(index).ok());
      const Pairs maintained = delta.Pairs();
      const Pairs rebuilt = index.RetrievePairs().value();
      ASSERT_EQ(maintained, rebuilt)
          << "seed " << seed << " round " << round;
    }
    // The whole point: quiet rows are served from their horizon.
    EXPECT_GT(delta.stats().rows_reused, 0) << "seed " << seed;
  }
}

// Exactly at the compaction threshold the patch lists are kept; one past
// it they fold into the base row -- with identical materialized pairs on
// both sides of the boundary.
TEST(DeltaGraphTest, CompactionThresholdBoundary) {
  constexpr int kThreshold = 4;
  index::GridIndex index(0.2, /*now=*/0.0, core::ArrivalPolicy::kAllowWait);
  index::DeltaGraph delta(kThreshold);
  core::Worker w;
  w.location = {0.5, 0.5};
  w.velocity = 2.0;
  ASSERT_TRUE(index.InsertWorker(9, w).ok());
  ASSERT_TRUE(delta.AddRow(9).ok());
  ASSERT_TRUE(delta.RepairRows(index).ok());  // row now clean and empty

  core::Task t;
  t.location = {0.52, 0.5};
  t.start = 0.0;
  t.end = 100.0;
  for (core::TaskId i = 0; i < kThreshold; ++i) {
    ASSERT_TRUE(index.InsertTask(i, t).ok());
    delta.OnTaskArrived(index, i, t);
  }
  EXPECT_EQ(delta.stats().compactions, 0) << "at threshold: no compaction";
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());

  ASSERT_TRUE(index.InsertTask(kThreshold, t).ok());
  delta.OnTaskArrived(index, kThreshold, t);
  EXPECT_EQ(delta.stats().compactions, 1) << "one past threshold: compacted";
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());
  EXPECT_EQ(delta.Pairs().size(), static_cast<size_t>(kThreshold) + 1);
}

// Rounds with no events and an un-expired stability horizon recompute
// nothing at all.
TEST(DeltaGraphTest, QuietRoundsReuseEveryRow) {
  index::GridIndex index(0.2, /*now=*/0.0, core::ArrivalPolicy::kAllowWait);
  index::DeltaGraph delta;
  core::Task t;
  t.location = {0.5, 0.5};
  t.start = 0.0;
  t.end = 1000.0;
  ASSERT_TRUE(index.InsertTask(0, t).ok());
  for (core::WorkerId j = 0; j < 8; ++j) {
    core::Worker w;
    w.location = {0.4 + 0.01 * j, 0.5};
    w.velocity = 5.0;
    ASSERT_TRUE(index.InsertWorker(j, w).ok());
    ASSERT_TRUE(delta.AddRow(j).ok());
  }
  ASSERT_TRUE(delta.RepairRows(index).ok());
  const int64_t computed = delta.stats().rows_recomputed;
  EXPECT_EQ(computed, 8);

  index.set_now(0.001);  // far inside every pair's stability window
  ASSERT_TRUE(delta.RepairRows(index).ok());
  EXPECT_EQ(delta.stats().rows_recomputed, computed);
  EXPECT_EQ(delta.stats().rows_reused, 8);
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());
}

// Full-churn rounds on instances at/above bulk_min_rows are served by one
// vectorized bulk retrieval; small-delta rounds at the same clock still
// take the per-row path. Both produce the exact RetrievePairs edge set.
TEST(DeltaGraphTest, FullChurnRoundsUseBulkRefill) {
  util::Rng rng(7);
  index::GridIndex index(0.1, /*now=*/0.0, core::ArrivalPolicy::kAllowWait);
  index::DeltaGraph delta(index::DeltaGraph::kDefaultCompactionThreshold,
                          /*bulk_min_rows=*/4);
  for (core::TaskId i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.InsertTask(i, RandomTask(rng, 0.0)).ok());
  }
  std::vector<geo::Point> homes;
  for (core::WorkerId j = 0; j < 12; ++j) {
    core::Worker w = RandomWorker(rng);
    homes.push_back(w.location);
    ASSERT_TRUE(index.InsertWorker(j, w).ok());
    ASSERT_TRUE(delta.AddRow(j).ok());
  }

  // Every row is born dirty, so the very first repair is a bulk round.
  ASSERT_TRUE(delta.RepairRows(index).ok());
  EXPECT_EQ(delta.stats().bulk_refills, 1);
  EXPECT_EQ(delta.stats().rows_recomputed, 12);
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());

  // One dirty row out of twelve at an unchanged clock: below the
  // half-due crossover, so the per-row path repairs it.
  geo::Point moved = homes[5];
  moved.x += 0.2;
  ASSERT_TRUE(index.MoveWorker(5, moved).ok());
  ASSERT_TRUE(delta.MarkRowDirty(5).ok());
  ASSERT_TRUE(delta.RepairRows(index).ok());
  EXPECT_EQ(delta.stats().bulk_refills, 1);
  EXPECT_EQ(delta.stats().rows_recomputed, 13);
  EXPECT_EQ(delta.stats().rows_reused, 11);
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());

  // Bulk rows carry no stability lookahead, so a clock advance makes
  // every bulk-refilled row due again: another bulk round.
  index.set_now(0.01);
  ASSERT_TRUE(delta.RepairRows(index).ok());
  EXPECT_EQ(delta.stats().bulk_refills, 2);
  EXPECT_EQ(delta.Pairs(), index.RetrievePairs().value());

  // A tracked worker missing from the index surfaces as NotFound from
  // the bulk path, exactly like the per-row path would report it.
  ASSERT_TRUE(index.RemoveWorker(7).ok());
  index.set_now(0.02);
  EXPECT_EQ(delta.RepairRows(index).code(), util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// GridIndex canonical-cell-state contract: an index mutated by an
// arbitrary event history is bit-identical -- per-cell membership,
// summaries, and retrieved pairs -- to a fresh index built from the
// final member sets alone.

TEST(DeltaIndexPropertyTest, MutatedIndexMatchesFreshIndexBitIdentically) {
  for (uint64_t seed : {5u, 17u, 99u}) {
    util::Rng rng(seed);
    const double eta = 0.1;
    index::GridIndex evolved(eta, 0.0, core::ArrivalPolicy::kStrict);
    std::map<core::TaskId, core::Task> tasks;
    std::map<core::WorkerId, core::Worker> workers;
    double now = 0.0;

    for (int step = 0; step < 120; ++step) {
      now += rng.Uniform(0.0, 0.01);
      evolved.set_now(now);
      switch (rng.UniformInt(0, 4)) {
        case 0: {
          core::Task t = RandomTask(rng, now);
          core::TaskId id = static_cast<core::TaskId>(step);
          ASSERT_TRUE(evolved.InsertTask(id, t).ok());
          tasks.emplace(id, t);
          break;
        }
        case 1: {
          if (tasks.empty()) break;
          auto it = tasks.begin();
          std::advance(it, rng.UniformInt(
                               0, static_cast<int64_t>(tasks.size()) - 1));
          ASSERT_TRUE(evolved.RemoveTask(it->first).ok());
          tasks.erase(it);
          break;
        }
        case 2: {
          core::Worker w = RandomWorker(rng);
          core::WorkerId id = static_cast<core::WorkerId>(step);
          ASSERT_TRUE(evolved.InsertWorker(id, w).ok());
          workers.emplace(id, w);
          break;
        }
        case 3: {
          if (workers.empty()) break;
          auto it = workers.begin();
          std::advance(it, rng.UniformInt(
                               0, static_cast<int64_t>(workers.size()) - 1));
          ASSERT_TRUE(evolved.RemoveWorker(it->first).ok());
          workers.erase(it);
          break;
        }
        default: {
          if (workers.empty()) break;
          auto it = workers.begin();
          std::advance(it, rng.UniformInt(
                               0, static_cast<int64_t>(workers.size()) - 1));
          geo::Point to{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
          ASSERT_TRUE(evolved.MoveWorker(it->first, to).ok());
          it->second.location = to;
          break;
        }
      }
    }

    index::GridIndex fresh(eta, now, core::ArrivalPolicy::kStrict);
    for (const auto& [id, t] : tasks) ASSERT_TRUE(fresh.InsertTask(id, t).ok());
    for (const auto& [id, w] : workers) {
      ASSERT_TRUE(fresh.InsertWorker(id, w).ok());
    }

    ASSERT_EQ(evolved.num_cells(), fresh.num_cells());
    for (int cell = 0; cell < evolved.num_cells(); ++cell) {
      ASSERT_EQ(evolved.DebugCellState(cell), fresh.DebugCellState(cell))
          << "seed " << seed << " cell " << cell;
    }
    EXPECT_EQ(evolved.RetrievePairs().value(), fresh.RetrievePairs().value())
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the same randomized event script through a kDelta and a
// kRebuild assigner commits identical pairs every round and lands on
// bit-identical objectives.

struct ScriptTrace {
  std::vector<std::vector<std::pair<core::TaskId, core::WorkerId>>> commits;
  core::ObjectiveValue objectives;
};

ScriptTrace RunEventScript(sim::MaintenanceMode mode, uint64_t seed) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  sim::IncrementalAssigner assigner(solver.get(), 0.08);
  assigner.set_maintenance_mode(mode);

  util::Rng rng(seed);
  ScriptTrace trace;
  std::map<core::TaskId, core::Task> live_tasks;
  std::set<core::WorkerId> free_workers;
  std::map<core::WorkerId, core::TaskId> busy;
  std::map<core::TaskId, std::vector<core::WorkerId>> serving;
  core::TaskId next_task = 0;
  core::WorkerId next_worker = 0;

  for (int j = 0; j < 12; ++j) {
    EXPECT_TRUE(assigner.AddWorker(next_worker, RandomWorker(rng)).ok());
    free_workers.insert(next_worker++);
  }

  double now = 0.0;
  for (int round = 0; round < 30; ++round) {
    now += rng.Uniform(0.01, 0.08);
    sim::EventBatch batch;
    batch.now = now;

    // Expire a random still-live task now and then (interleaving with
    // the automatic end-of-window expiry inside Update).
    if (!live_tasks.empty() && rng.Bernoulli(0.25)) {
      auto it = live_tasks.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<int64_t>(live_tasks.size()) - 1));
      batch.expired.push_back({it->first});
      for (core::WorkerId w : serving[it->first]) {
        busy.erase(w);  // voided commitments free their workers
        free_workers.insert(w);
      }
      serving.erase(it->first);
      live_tasks.erase(it);
    }
    // Complete some busy workers at fresh positions.
    std::vector<core::WorkerId> busy_ids;
    for (const auto& [w, t] : busy) busy_ids.push_back(w);
    for (core::WorkerId w : busy_ids) {
      if (!rng.Bernoulli(0.4)) continue;
      geo::Point pos{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
      batch.completed.push_back({w, pos});
      auto& crew = serving[busy[w]];
      crew.erase(std::find(crew.begin(), crew.end(), w));
      busy.erase(w);
      free_workers.insert(w);
    }
    // New tasks.
    const int arrivals = static_cast<int>(rng.UniformInt(0, 2));
    for (int a = 0; a < arrivals; ++a) {
      core::Task t = RandomTask(rng, now);
      batch.arrived.push_back({next_task, t});
      live_tasks.emplace(next_task, t);
      ++next_task;
    }
    // Move some free workers: occasionally a big cross-cell jump,
    // otherwise a same-cell jitter.
    for (core::WorkerId w : free_workers) {
      if (!rng.Bernoulli(0.3)) continue;
      geo::Point to{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
      batch.moved.push_back({w, to});
    }

    util::Status applied = assigner.ApplyEvents(batch);
    EXPECT_TRUE(applied.ok()) << applied.message();
    auto committed = assigner.Update(now);
    EXPECT_TRUE(committed.ok());
    trace.commits.push_back(committed.value());
    for (const auto& [tid, wid] : committed.value()) {
      busy[wid] = tid;
      serving[tid].push_back(wid);
      free_workers.erase(wid);
    }
    // Mirror Update's automatic expiry of timed-out tasks.
    std::vector<core::TaskId> timed_out;
    for (const auto& [tid, t] : live_tasks) {
      if (t.end < now) timed_out.push_back(tid);
    }
    for (core::TaskId tid : timed_out) {
      for (core::WorkerId w : serving[tid]) {
        busy.erase(w);
        free_workers.insert(w);
      }
      serving.erase(tid);
      live_tasks.erase(tid);
    }
  }
  trace.objectives = assigner.Objectives();
  return trace;
}

TEST(DeltaIndexPropertyTest, DeltaEqualsRebuildOverEventScripts) {
  for (uint64_t seed : {11u, 23u, 42u}) {
    const ScriptTrace delta =
        RunEventScript(sim::MaintenanceMode::kDelta, seed);
    const ScriptTrace rebuild =
        RunEventScript(sim::MaintenanceMode::kRebuild, seed);
    ASSERT_EQ(delta.commits.size(), rebuild.commits.size());
    for (size_t r = 0; r < delta.commits.size(); ++r) {
      EXPECT_EQ(delta.commits[r], rebuild.commits[r])
          << "seed " << seed << " round " << r;
    }
    EXPECT_EQ(delta.objectives.min_reliability,
              rebuild.objectives.min_reliability)
        << "seed " << seed;
    EXPECT_EQ(delta.objectives.total_std, rebuild.objectives.total_std)
        << "seed " << seed;
  }
}

// Two producers that collected the same logical events in different
// orders converge to identical rounds: the batch order is canonical.
TEST(DeltaIndexPropertyTest, EventBatchOrderIsCanonical) {
  auto run = [](bool reversed) {
    auto solver = core::SolverRegistry::Global().Create("greedy").value();
    sim::IncrementalAssigner assigner(solver.get(), 0.1);
    for (core::WorkerId j = 0; j < 4; ++j) {
      core::Worker w;
      w.location = {0.4 + 0.02 * j, 0.5};
      w.velocity = 1.0;
      w.confidence = 0.9;
      EXPECT_TRUE(assigner.AddWorker(j, w).ok());
    }
    sim::EventBatch batch;
    batch.now = 0.0;
    for (core::TaskId i = 0; i < 5; ++i) {
      core::Task t;
      t.location = {0.45 + 0.01 * i, 0.52};
      t.start = 0.0;
      t.end = 2.0;
      batch.arrived.push_back({i, t});
    }
    batch.moved.push_back({1, {0.46, 0.5}});
    batch.moved.push_back({3, {0.44, 0.5}});
    if (reversed) {
      std::reverse(batch.arrived.begin(), batch.arrived.end());
      std::reverse(batch.moved.begin(), batch.moved.end());
    }
    EXPECT_TRUE(assigner.ApplyEvents(batch).ok());
    return assigner.Update(0.0).value();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// StreamingSession facade: rounds match the rebuild-mode session.

TEST(StreamingSessionTest, RoundsMatchRebuildMode) {
  auto drive = [](sim::MaintenanceMode mode) {
    EngineConfig config;
    config.solver_name = "greedy";
    config.eta = 0.1;
    auto session = sim::StreamingSession::Create(config, mode).value();
    util::Rng rng(7);
    for (core::WorkerId j = 0; j < 6; ++j) {
      EXPECT_TRUE(
          session->assigner().AddWorker(j, RandomWorker(rng)).ok());
    }
    std::vector<std::pair<core::TaskId, core::WorkerId>> all;
    for (int round = 0; round < 6; ++round) {
      sim::EventBatch batch;
      batch.now = 0.05 * round;
      for (int a = 0; a < 2; ++a) {
        batch.arrived.push_back(
            {static_cast<core::TaskId>(2 * round + a),
             RandomTask(rng, batch.now)});
      }
      auto committed = session->Round(batch).value();
      all.insert(all.end(), committed.begin(), committed.end());
    }
    return all;
  };
  EXPECT_EQ(drive(sim::MaintenanceMode::kDelta),
            drive(sim::MaintenanceMode::kRebuild));
}

TEST(StreamingSessionTest, UnknownSolverSurfacesNotFound) {
  EngineConfig config;
  config.solver_name = "no-such-solver";
  EXPECT_EQ(sim::StreamingSession::Create(config).status().code(),
            util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Platform streaming mode: the whole simulated trajectory -- rounds,
// answers, objectives -- is bit-identical to the rebuild path, at every
// thread count.

TEST(StreamingPlatformTest, TrajectoryMatchesInlineRebuild) {
  for (int threads : {1, 2, 8}) {
    sim::PlatformConfig base;
    base.num_sites = 6;
    base.num_workers = 14;
    base.horizon = 0.25;
    base.num_threads = threads;
    base.solver_name = "greedy";

    sim::PlatformConfig streaming = base;
    streaming.streaming = true;

    const sim::PlatformResult a = sim::Platform(base).Run().value();
    const sim::PlatformResult b = sim::Platform(streaming).Run().value();

    ASSERT_EQ(a.rounds.size(), b.rounds.size()) << "threads " << threads;
    for (size_t r = 0; r < a.rounds.size(); ++r) {
      EXPECT_EQ(a.rounds[r].time, b.rounds[r].time);
      EXPECT_EQ(a.rounds[r].newly_assigned, b.rounds[r].newly_assigned);
      EXPECT_EQ(a.rounds[r].objectives.min_reliability,
                b.rounds[r].objectives.min_reliability);
      EXPECT_EQ(a.rounds[r].objectives.total_std,
                b.rounds[r].objectives.total_std);
    }
    ASSERT_EQ(a.answers.size(), b.answers.size());
    for (size_t k = 0; k < a.answers.size(); ++k) {
      EXPECT_EQ(a.answers[k].task, b.answers[k].task);
      EXPECT_EQ(a.answers[k].worker, b.answers[k].worker);
      EXPECT_EQ(a.answers[k].angle, b.answers[k].angle);
      EXPECT_EQ(a.answers[k].time, b.answers[k].time);
    }
    EXPECT_EQ(a.assignments_made, b.assignments_made);
    EXPECT_EQ(a.answers_received, b.answers_received);
    EXPECT_EQ(a.final_objectives.min_reliability,
              b.final_objectives.min_reliability);
    EXPECT_EQ(a.final_objectives.total_std, b.final_objectives.total_std);
    EXPECT_EQ(a.mean_accuracy_error, b.mean_accuracy_error);
  }
}

TEST(StreamingPlatformTest, StreamingIsInlineOnly) {
  sim::PlatformConfig config;
  config.streaming = true;
  config.server_workers = 2;
  EXPECT_EQ(sim::Platform(config).Run().status().code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdbsc
