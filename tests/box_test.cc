#include "geo/box.h"

#include <cmath>

#include "geo/angle.h"
#include "geo/point.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace rdbsc::geo {
namespace {

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Distance2({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, BearingQuadrants) {
  EXPECT_NEAR(Bearing({0, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {0, 1}), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {-1, 0}), std::numbers::pi, 1e-12);
  EXPECT_NEAR(Bearing({0, 0}, {0, -1}), 3 * std::numbers::pi / 2, 1e-12);
}

TEST(PointTest, BearingOfCoincidentPointsIsZero) {
  EXPECT_DOUBLE_EQ(Bearing({0.3, 0.7}, {0.3, 0.7}), 0.0);
}

TEST(BoxTest, ContainsAndCenter) {
  Box box{{0.0, 0.0}, {1.0, 2.0}};
  EXPECT_TRUE(box.Contains({0.5, 1.0}));
  EXPECT_TRUE(box.Contains({0.0, 0.0}));
  EXPECT_FALSE(box.Contains({1.5, 1.0}));
  EXPECT_DOUBLE_EQ(box.Center().x, 0.5);
  EXPECT_DOUBLE_EQ(box.Center().y, 1.0);
}

TEST(BoxDistanceTest, OverlappingBoxesHaveZeroMinDistance) {
  Box a{{0, 0}, {1, 1}};
  Box b{{0.5, 0.5}, {2, 2}};
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 0.0);
}

TEST(BoxDistanceTest, AxisAlignedGap) {
  Box a{{0, 0}, {1, 1}};
  Box b{{3, 0}, {4, 1}};
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 2.0);
}

TEST(BoxDistanceTest, DiagonalGap) {
  Box a{{0, 0}, {1, 1}};
  Box b{{2, 2}, {3, 3}};
  EXPECT_DOUBLE_EQ(MinDistance(a, b), std::sqrt(2.0));
}

TEST(BoxDistanceTest, MaxDistanceIsFarthestCorners) {
  Box a{{0, 0}, {1, 1}};
  Box b{{2, 2}, {3, 3}};
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::sqrt(18.0));
}

TEST(BoxDistanceTest, SameBox) {
  Box a{{0, 0}, {1, 2}};
  EXPECT_DOUBLE_EQ(MinDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(MaxDistance(a, a), std::sqrt(5.0));
}

TEST(BearingIntervalTest, OverlappingBoxesGiveFullCircle) {
  Box a{{0, 0}, {1, 1}};
  Box b{{0.5, 0.5}, {1.5, 1.5}};
  EXPECT_DOUBLE_EQ(BearingInterval(a, b).width(), kTwoPi);
}

TEST(BearingIntervalTest, BoxDueEast) {
  Box a{{0, 0}, {1, 1}};
  Box b{{5, 0}, {6, 1}};
  AngularInterval interval = BearingInterval(a, b);
  // Every from->to bearing is near 0 (east), never west.
  EXPECT_TRUE(interval.Contains(0.0));
  EXPECT_FALSE(interval.Contains(std::numbers::pi));
  EXPECT_LT(interval.width(), std::numbers::pi);
}

// Property: the interval contains the bearing between any sampled pair.
class BearingIntervalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BearingIntervalPropertyTest, ContainsAllSampledBearings) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Box a{{rng.Uniform(0, 1), rng.Uniform(0, 1)}, {0, 0}};
    a.max = {a.min.x + rng.Uniform(0.01, 0.3), a.min.y + rng.Uniform(0.01, 0.3)};
    Box b{{rng.Uniform(0, 2), rng.Uniform(0, 2)}, {0, 0}};
    b.max = {b.min.x + rng.Uniform(0.01, 0.3), b.min.y + rng.Uniform(0.01, 0.3)};
    AngularInterval interval = BearingInterval(a, b);
    for (int s = 0; s < 30; ++s) {
      Point p{rng.Uniform(a.min.x, a.max.x), rng.Uniform(a.min.y, a.max.y)};
      Point q{rng.Uniform(b.min.x, b.max.x), rng.Uniform(b.min.y, b.max.y)};
      if (p == q) continue;
      EXPECT_TRUE(interval.Contains(Bearing(p, q)))
          << "bearing " << Bearing(p, q) << " outside [" << interval.lo()
          << " w=" << interval.width() << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BearingIntervalPropertyTest,
                         ::testing::Values(10, 11, 12, 13));

}  // namespace
}  // namespace rdbsc::geo
