#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "core/instance.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::core {
namespace {

constexpr double kPi = std::numbers::pi;

Worker MakeWorker(geo::Point loc, double v, geo::AngularInterval dir,
                  double p = 0.9) {
  Worker w;
  w.location = loc;
  w.velocity = v;
  w.direction = dir;
  w.confidence = p;
  return w;
}

TEST(ModelTest, TravelTimeStraightLine) {
  Worker w = MakeWorker({0, 0}, 0.5, geo::AngularInterval::FullCircle());
  EXPECT_DOUBLE_EQ(TravelTime(w, {0.3, 0.4}), 1.0);
  EXPECT_DOUBLE_EQ(TravelTime(w, {0, 0}), 0.0);
}

TEST(ModelTest, NonPositiveVelocityNeverArrives) {
  Worker w = MakeWorker({0, 0}, 0.0, geo::AngularInterval::FullCircle());
  EXPECT_TRUE(std::isinf(TravelTime(w, {0.1, 0.1})));
}

TEST(ModelTest, ArrivalPolicyStrictVsWait) {
  Worker w = MakeWorker({0, 0}, 1.0, geo::AngularInterval::FullCircle());
  Task t = test::MakeTask(0.5, /*start=*/2.0, /*end=*/3.0);
  t.location = {0.5, 0.0};  // 0.5 h away
  // Strict: arrival at 0.5 is before the period opens.
  EXPECT_DOUBLE_EQ(ArrivalTime(w, t, 0.0, ArrivalPolicy::kStrict), 0.5);
  EXPECT_FALSE(IsValidPair(t, w, 0.0, ArrivalPolicy::kStrict));
  // Waiting: the worker idles at the site until the period opens.
  EXPECT_DOUBLE_EQ(ArrivalTime(w, t, 0.0, ArrivalPolicy::kAllowWait), 2.0);
  EXPECT_TRUE(IsValidPair(t, w, 0.0, ArrivalPolicy::kAllowWait));
}

TEST(ModelTest, ValidityRequiresArrivalInsidePeriod) {
  Worker w = MakeWorker({0, 0}, 1.0, geo::AngularInterval::FullCircle());
  Task t = test::MakeTask(0.5, 0.0, 1.0);
  t.location = {0.5, 0.0};
  EXPECT_TRUE(IsValidPair(t, w, 0.0, ArrivalPolicy::kStrict));
  // Departing too late misses the deadline.
  EXPECT_FALSE(IsValidPair(t, w, 0.8, ArrivalPolicy::kStrict));
  // Waiting cannot help a missed deadline either.
  EXPECT_FALSE(IsValidPair(t, w, 0.8, ArrivalPolicy::kAllowWait));
}

TEST(ModelTest, CheckInDelaysDeparture) {
  Worker w = MakeWorker({0, 0}, 1.0, geo::AngularInterval::FullCircle());
  w.available_from = 2.0;  // checks in at hour 2
  Task t = test::MakeTask(0.5, 0.0, 1.0);
  t.location = {0.5, 0.0};
  // Departing at the check-in, the worker arrives at 2.5 -- after the
  // deadline -- even though now = 0.
  EXPECT_DOUBLE_EQ(ArrivalTime(w, t, 0.0, ArrivalPolicy::kStrict), 2.5);
  EXPECT_FALSE(IsValidPair(t, w, 0.0, ArrivalPolicy::kStrict));
  // A later task window fits.
  Task late = test::MakeTask(0.5, 2.0, 3.0);
  late.location = {0.5, 0.0};
  EXPECT_TRUE(IsValidPair(late, w, 0.0, ArrivalPolicy::kStrict));
  // `now` past the check-in dominates it.
  EXPECT_DOUBLE_EQ(ArrivalTime(w, late, 4.0, ArrivalPolicy::kStrict), 4.5);
}

TEST(ModelTest, ValidityRequiresDirectionInCone) {
  // Worker moving east-ish only.
  Worker w = MakeWorker({0.5, 0.5}, 1.0,
                        geo::AngularInterval(-kPi / 8, kPi / 8));
  Task east = test::MakeTask(0.5, 0.0, 2.0);
  east.location = {0.9, 0.5};
  Task west = test::MakeTask(0.5, 0.0, 2.0);
  west.location = {0.1, 0.5};
  EXPECT_TRUE(IsValidPair(east, w, 0.0, ArrivalPolicy::kStrict));
  EXPECT_FALSE(IsValidPair(west, w, 0.0, ArrivalPolicy::kStrict));
}

TEST(ModelTest, WorkerOnTaskLocationIgnoresDirection) {
  Worker w = MakeWorker({0.5, 0.5}, 1.0, geo::AngularInterval(0.0, 0.1));
  Task t = test::MakeTask(0.5, 0.0, 1.0);
  t.location = {0.5, 0.5};
  EXPECT_TRUE(IsValidPair(t, w, 0.0, ArrivalPolicy::kStrict));
}

TEST(ModelTest, ApproachAngleIsBearingFromTask) {
  Task t = test::MakeTask();
  t.location = {0.5, 0.5};
  Worker w = MakeWorker({1.0, 0.5}, 1.0, geo::AngularInterval::FullCircle());
  EXPECT_NEAR(ApproachAngle(t, w), 0.0, 1e-12);  // worker due east of task
  w.location = {0.5, 1.0};
  EXPECT_NEAR(ApproachAngle(t, w), kPi / 2, 1e-12);
}

TEST(InstanceTest, ValidateAcceptsWellFormed) {
  Instance instance = test::SmallInstance(1);
  EXPECT_TRUE(instance.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsBadDuration) {
  Task t = test::MakeTask(0.5, 2.0, 1.0);  // end < start
  Instance instance({t}, {});
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsBadBeta) {
  Task t = test::MakeTask(1.5);
  Instance instance({t}, {});
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsBadWorker) {
  Worker w = MakeWorker({0, 0}, -1.0, geo::AngularInterval::FullCircle());
  Instance instance({}, {w});
  EXPECT_FALSE(instance.Validate().ok());
  w.velocity = 1.0;
  w.confidence = 2.0;
  Instance instance2({}, {w});
  EXPECT_FALSE(instance2.Validate().ok());
}

TEST(CandidateGraphTest, BuildMatchesPairwisePredicate) {
  Instance instance = test::SmallInstance(2);
  CandidateGraph graph = CandidateGraph::Build(instance);
  int64_t edges = 0;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    for (TaskId i = 0; i < instance.num_tasks(); ++i) {
      bool valid = IsValidPair(instance.task(i), instance.worker(j),
                               instance.now(), instance.policy());
      const auto& tasks = graph.TasksOf(j);
      bool listed = std::find(tasks.begin(), tasks.end(), i) != tasks.end();
      EXPECT_EQ(valid, listed);
      edges += valid ? 1 : 0;
    }
  }
  EXPECT_EQ(graph.NumEdges(), edges);
}

TEST(CandidateGraphTest, TransposeIsConsistent) {
  Instance instance = test::SmallInstance(3);
  CandidateGraph graph = CandidateGraph::Build(instance);
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    for (WorkerId j : graph.WorkersOf(i)) {
      const auto& tasks = graph.TasksOf(j);
      EXPECT_NE(std::find(tasks.begin(), tasks.end(), i), tasks.end());
    }
  }
}

TEST(CandidateGraphTest, LogPopulationSumsDegrees) {
  Instance instance = test::SmallInstance(4);
  CandidateGraph graph = CandidateGraph::Build(instance);
  double expected = 0.0;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (graph.Degree(j) > 0) expected += std::log(graph.Degree(j));
  }
  EXPECT_NEAR(graph.LogPopulation(), expected, 1e-12);
}

}  // namespace
}  // namespace rdbsc::core
