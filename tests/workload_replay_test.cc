// Determinism gate over the checked-in declarative workloads: every
// workloads/*.wl scenario is compiled once and replayed at {1, 2, 8}
// dispatch workers x 2 reruns; all six fingerprint vectors must be
// bit-identical to the first. Runs flooded (time_dilation 0) so the
// whole sweep is fast, which is exactly the point -- fingerprints are
// pacing-independent by construction. Registered under the `stress` and
// `workload` ctest labels and runs under the TSan CI job.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "wl/compile.h"
#include "wl/runner.h"
#include "wl/spec.h"

#ifndef RDBSC_WORKLOADS_DIR
#define RDBSC_WORKLOADS_DIR "workloads"
#endif

namespace rdbsc::wl {
namespace {

std::vector<std::string> CheckedInWorkloads() {
  std::vector<std::string> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(RDBSC_WORKLOADS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".wl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string TestName(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return stem;
}

class WorkloadReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadReplay, FingerprintsBitIdenticalAcrossWorkersAndReruns) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadFile(GetParam());
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  ASSERT_GT(compiled.value().total_ops, 0);

  std::vector<std::string> reference;
  for (int workers : {1, 2, 8}) {
    for (int rerun = 0; rerun < 2; ++rerun) {
      ReplayOptions options;
      options.num_workers = workers;
      options.time_dilation = 0.0;
      util::StatusOr<ReplayReport> report =
          ReplayWorkload(compiled.value(), options);
      ASSERT_TRUE(report.ok())
          << "workers=" << workers << ": " << report.status().message();
      ASSERT_EQ(static_cast<int64_t>(report.value().fingerprints.size()),
                compiled.value().total_ops);
      if (reference.empty()) {
        reference = report.value().fingerprints;
      } else {
        EXPECT_EQ(report.value().fingerprints, reference)
            << GetParam() << " diverged at workers=" << workers
            << " rerun=" << rerun;
      }
    }
  }
  // The digest is a pure function of the vector; log it for cross-checks
  // against bench_workload_replay output.
  SCOPED_TRACE(FingerprintDigest(reference));
  EXPECT_FALSE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(CheckedIn, WorkloadReplay,
                         ::testing::ValuesIn(CheckedInWorkloads()), TestName);

TEST(WorkloadReplayContract, AllScenariosPresent) {
  // Guard against the suite silently shrinking: the repo ships (at least)
  // these scenarios, one per stress family named in the roadmap.
  std::vector<std::string> stems;
  for (const std::string& path : CheckedInWorkloads()) {
    stems.push_back(std::filesystem::path(path).stem().string());
  }
  for (const char* required :
       {"rush_hour", "hotspot_skew", "cache_storm", "overload_block",
        "overload_reject", "drain_restart"}) {
    EXPECT_NE(std::find(stems.begin(), stems.end(), required), stems.end())
        << "missing workloads/" << required << ".wl";
  }
}

TEST(WorkloadReplayContract, PacingDoesNotChangeFingerprints) {
  // Dilation scales open-loop sleeps only; replaying the same compiled
  // workload flooded vs. (mildly) paced must agree bit-for-bit.
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadFile(
      std::string(RDBSC_WORKLOADS_DIR) + "/cache_storm.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();

  ReplayOptions flooded;
  flooded.num_workers = 2;
  flooded.time_dilation = 0.0;
  ReplayOptions paced = flooded;
  paced.time_dilation = 0.25;

  util::StatusOr<ReplayReport> a = ReplayWorkload(compiled.value(), flooded);
  util::StatusOr<ReplayReport> b = ReplayWorkload(compiled.value(), paced);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_EQ(a.value().fingerprints, b.value().fingerprints);
}

TEST(WorkloadReplayContract, RestartPhasesSpawnFreshServerGenerations) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadFile(
      std::string(RDBSC_WORKLOADS_DIR) + "/drain_restart.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();

  ReplayOptions options;
  options.num_workers = 2;
  options.time_dilation = 0.0;
  util::StatusOr<ReplayReport> report =
      ReplayWorkload(compiled.value(), options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  // warm | cold (restart) | wind_down (restart) => three generations.
  EXPECT_EQ(report.value().server_generations, 3);
  // Every op is accounted for in exactly one phase tally.
  int64_t total = 0;
  for (const PhaseReport& phase : report.value().phases) {
    EXPECT_EQ(phase.ops, phase.ok + phase.cancelled + phase.errors);
    total += phase.ops;
  }
  EXPECT_EQ(total, compiled.value().total_ops);
}

}  // namespace
}  // namespace rdbsc::wl
