#include "sim/platform.h"

#include <cmath>

#include "core/greedy.h"
#include "core/sampling.h"
#include "geo/angle.h"
#include "gtest/gtest.h"
#include "sim/aggregation.h"
#include "test_util.h"
#include "util/rng.h"

namespace rdbsc::sim {
namespace {

PlatformConfig SmallPlatform(uint64_t seed) {
  PlatformConfig config;
  config.seed = seed;
  return config;
}

TEST(PlatformTest, RunsAndProducesAnswers) {
  core::GreedySolver solver;
  Platform platform(SmallPlatform(1), &solver);
  PlatformResult result = platform.Run();
  EXPECT_GT(result.assignments_made, 0);
  EXPECT_GT(result.answers_received, 0);
  EXPECT_GE(result.assignments_made, result.answers_received);
  EXPECT_FALSE(result.rounds.empty());
}

TEST(PlatformTest, AnswersRespectTaskPeriods) {
  core::GreedySolver solver;
  Platform platform(SmallPlatform(2), &solver);
  PlatformResult result = platform.Run();
  PlatformConfig config = SmallPlatform(2);
  for (const Answer& answer : result.answers) {
    EXPECT_GE(answer.time, 0.0);
    EXPECT_LE(answer.time, config.task_open_time + 1e-9);
    EXPECT_GE(answer.quality, 0.0);
    EXPECT_LE(answer.quality, 1.0);
    EXPECT_GE(answer.task, 0);
    EXPECT_LT(answer.task, config.num_sites);
  }
}

TEST(PlatformTest, AccuracyErrorInUnitRange) {
  core::SamplingSolver solver;
  Platform platform(SmallPlatform(3), &solver);
  PlatformResult result = platform.Run();
  EXPECT_GE(result.mean_accuracy_error, 0.0);
  EXPECT_LE(result.mean_accuracy_error, 1.0);
}

TEST(PlatformTest, SmallerIntervalMeansMoreRounds) {
  core::GreedySolver solver;
  PlatformConfig fast = SmallPlatform(4);
  fast.t_interval = 1.0 / 60.0;
  PlatformConfig slow = SmallPlatform(4);
  slow.t_interval = 4.0 / 60.0;
  PlatformResult fast_result = Platform(fast, &solver).Run();
  PlatformResult slow_result = Platform(slow, &solver).Run();
  EXPECT_GT(fast_result.rounds.size(), slow_result.rounds.size());
}

TEST(PlatformTest, FinalObjectivesNonNegative) {
  core::SamplingSolver solver;
  Platform platform(SmallPlatform(5), &solver);
  PlatformResult result = platform.Run();
  EXPECT_GE(result.final_objectives.total_std, 0.0);
  EXPECT_GE(result.final_objectives.min_reliability, 0.0);
  EXPECT_LE(result.final_objectives.min_reliability, 1.0);
}

TEST(PlatformTest, DeterministicForSeed) {
  core::GreedySolver solver_a, solver_b;
  PlatformResult a = Platform(SmallPlatform(6), &solver_a).Run();
  PlatformResult b = Platform(SmallPlatform(6), &solver_b).Run();
  EXPECT_EQ(a.answers_received, b.answers_received);
  EXPECT_DOUBLE_EQ(a.final_objectives.total_std,
                   b.final_objectives.total_std);
}

TEST(AggregationTest, PicksBestPerBucket) {
  core::Task task = rdbsc::test::MakeTask(0.5, 0.0, 1.0);
  std::vector<Answer> answers;
  // Two answers in the same angular/time bucket; the better quality wins.
  answers.push_back({.task = 0, .worker = 0, .angle = 0.1, .time = 0.1,
                     .quality = 0.5});
  answers.push_back({.task = 0, .worker = 1, .angle = 0.12, .time = 0.12,
                     .quality = 0.9});
  // One answer far away in angle.
  answers.push_back({.task = 0, .worker = 2, .angle = 3.2, .time = 0.1,
                     .quality = 0.4});
  std::vector<Answer> reps = AggregateAnswers(task, answers);
  ASSERT_EQ(reps.size(), 2u);
  bool found_best = false;
  for (const Answer& rep : reps) {
    if (rep.worker == 1) found_best = true;
    EXPECT_NE(rep.worker, 0);  // dominated by worker 1 in the same bucket
  }
  EXPECT_TRUE(found_best);
}

TEST(AggregationTest, EmptyInput) {
  core::Task task = rdbsc::test::MakeTask();
  EXPECT_TRUE(AggregateAnswers(task, {}).empty());
}

TEST(AggregationTest, BucketCountBoundsOutput) {
  core::Task task = rdbsc::test::MakeTask(0.5, 0.0, 1.0);
  std::vector<Answer> answers;
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    answers.push_back({.task = 0,
                       .worker = i,
                       .angle = rng.Uniform(0, geo::kTwoPi),
                       .time = rng.Uniform(0, 1),
                       .quality = rng.Uniform(0, 1)});
  }
  AggregationConfig config;
  config.angle_buckets = 4;
  config.time_buckets = 2;
  std::vector<Answer> reps = AggregateAnswers(task, answers, config);
  EXPECT_LE(reps.size(), 8u);
  EXPECT_GT(reps.size(), 0u);
}

}  // namespace
}  // namespace rdbsc::sim
