#include "sim/platform.h"

#include <cmath>

#include "core/registry.h"
#include "geo/angle.h"
#include "gtest/gtest.h"
#include "sim/aggregation.h"
#include "test_util.h"
#include "util/rng.h"

namespace rdbsc::sim {
namespace {

PlatformConfig SmallPlatform(uint64_t seed,
                             const char* solver = "greedy") {
  PlatformConfig config;
  config.seed = seed;
  config.solver_name = solver;
  return config;
}

TEST(PlatformTest, RunsAndProducesAnswers) {
  Platform platform(SmallPlatform(1));
  PlatformResult result = platform.Run().value();
  EXPECT_GT(result.assignments_made, 0);
  EXPECT_GT(result.answers_received, 0);
  EXPECT_GE(result.assignments_made, result.answers_received);
  EXPECT_FALSE(result.rounds.empty());
}

TEST(PlatformTest, AnswersRespectTaskPeriods) {
  Platform platform(SmallPlatform(2));
  PlatformResult result = platform.Run().value();
  PlatformConfig config = SmallPlatform(2);
  for (const Answer& answer : result.answers) {
    EXPECT_GE(answer.time, 0.0);
    EXPECT_LE(answer.time, config.task_open_time + 1e-9);
    EXPECT_GE(answer.quality, 0.0);
    EXPECT_LE(answer.quality, 1.0);
    EXPECT_GE(answer.task, 0);
    EXPECT_LT(answer.task, config.num_sites);
  }
}

TEST(PlatformTest, AccuracyErrorInUnitRange) {
  Platform platform(SmallPlatform(3, "sampling"));
  PlatformResult result = platform.Run().value();
  EXPECT_GE(result.mean_accuracy_error, 0.0);
  EXPECT_LE(result.mean_accuracy_error, 1.0);
}

TEST(PlatformTest, SmallerIntervalMeansMoreRounds) {
  PlatformConfig fast = SmallPlatform(4);
  fast.t_interval = 1.0 / 60.0;
  PlatformConfig slow = SmallPlatform(4);
  slow.t_interval = 4.0 / 60.0;
  PlatformResult fast_result = Platform(fast).Run().value();
  PlatformResult slow_result = Platform(slow).Run().value();
  EXPECT_GT(fast_result.rounds.size(), slow_result.rounds.size());
}

TEST(PlatformTest, FinalObjectivesNonNegative) {
  Platform platform(SmallPlatform(5, "sampling"));
  PlatformResult result = platform.Run().value();
  EXPECT_GE(result.final_objectives.total_std, 0.0);
  EXPECT_GE(result.final_objectives.min_reliability, 0.0);
  EXPECT_LE(result.final_objectives.min_reliability, 1.0);
}

TEST(PlatformTest, DeterministicForSeed) {
  PlatformResult a = Platform(SmallPlatform(6)).Run().value();
  PlatformResult b = Platform(SmallPlatform(6)).Run().value();
  EXPECT_EQ(a.answers_received, b.answers_received);
  EXPECT_DOUBLE_EQ(a.final_objectives.total_std,
                   b.final_objectives.total_std);
}

TEST(PlatformTest, UnknownSolverNameSurfacesFromRun) {
  Platform platform(SmallPlatform(7, "no-such-solver"));
  util::StatusOr<PlatformResult> run = platform.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kNotFound);
}

// Satellite requirement: the platform must run end-to-end with *every*
// registered solver name, including the EXACT oracle -- which is why this
// configuration is kept tiny (population <= num_sites^num_workers).
TEST(PlatformTest, RunsEndToEndWithEachRegisteredSolver) {
  for (const std::string& name : core::SolverRegistry::Global().Names()) {
    PlatformConfig config = SmallPlatform(8, name.c_str());
    config.num_sites = 3;
    config.num_workers = 6;
    Platform platform(config);
    util::StatusOr<PlatformResult> run = platform.Run();
    ASSERT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    EXPECT_GT(run.value().assignments_made, 0) << name;
    EXPECT_GE(run.value().final_objectives.total_std, 0.0) << name;
  }
}

TEST(AggregationTest, PicksBestPerBucket) {
  core::Task task = rdbsc::test::MakeTask(0.5, 0.0, 1.0);
  std::vector<Answer> answers;
  // Two answers in the same angular/time bucket; the better quality wins.
  answers.push_back({.task = 0, .worker = 0, .angle = 0.1, .time = 0.1,
                     .quality = 0.5});
  answers.push_back({.task = 0, .worker = 1, .angle = 0.12, .time = 0.12,
                     .quality = 0.9});
  // One answer far away in angle.
  answers.push_back({.task = 0, .worker = 2, .angle = 3.2, .time = 0.1,
                     .quality = 0.4});
  std::vector<Answer> reps = AggregateAnswers(task, answers);
  ASSERT_EQ(reps.size(), 2u);
  bool found_best = false;
  for (const Answer& rep : reps) {
    if (rep.worker == 1) found_best = true;
    EXPECT_NE(rep.worker, 0);  // dominated by worker 1 in the same bucket
  }
  EXPECT_TRUE(found_best);
}

TEST(AggregationTest, EmptyInput) {
  core::Task task = rdbsc::test::MakeTask();
  EXPECT_TRUE(AggregateAnswers(task, {}).empty());
}

TEST(AggregationTest, BucketCountBoundsOutput) {
  core::Task task = rdbsc::test::MakeTask(0.5, 0.0, 1.0);
  std::vector<Answer> answers;
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    answers.push_back({.task = 0,
                       .worker = i,
                       .angle = rng.Uniform(0, geo::kTwoPi),
                       .time = rng.Uniform(0, 1),
                       .quality = rng.Uniform(0, 1)});
  }
  AggregationConfig config;
  config.angle_buckets = 4;
  config.time_buckets = 2;
  std::vector<Answer> reps = AggregateAnswers(task, answers, config);
  EXPECT_LE(reps.size(), 8u);
  EXPECT_GT(reps.size(), 0u);
}

}  // namespace
}  // namespace rdbsc::sim
