#include "core/dominance.h"

#include <algorithm>
#include <limits>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

TEST(DominatesPointTest, BasicRelations) {
  EXPECT_TRUE(DominatesPoint({2, 2}, {1, 1}));
  EXPECT_TRUE(DominatesPoint({2, 1}, {1, 1}));
  EXPECT_TRUE(DominatesPoint({1, 2}, {1, 1}));
  EXPECT_FALSE(DominatesPoint({1, 1}, {1, 1}));  // equal: no domination
  EXPECT_FALSE(DominatesPoint({2, 0}, {1, 1}));  // incomparable
  EXPECT_FALSE(DominatesPoint({0, 2}, {1, 1}));
}

TEST(SkylineTest, SimpleStaircase) {
  // (3,1), (2,2), (1,3) are mutually incomparable; the rest are dominated.
  std::vector<BiPoint> points = {{3, 1}, {2, 2}, {1, 3},
                                 {1, 1}, {2, 1}, {0, 0}};
  std::vector<size_t> skyline = SkylineIndices(points);
  EXPECT_EQ(skyline, (std::vector<size_t>{0, 1, 2}));
}

TEST(SkylineTest, DuplicatesAllKept) {
  std::vector<BiPoint> points = {{1, 1}, {1, 1}, {0, 0}};
  std::vector<size_t> skyline = SkylineIndices(points);
  EXPECT_EQ(skyline, (std::vector<size_t>{0, 1}));
}

TEST(SkylineTest, EqualXKeepsOnlyMaxY) {
  std::vector<BiPoint> points = {{1, 5}, {1, 3}, {1, 5}};
  std::vector<size_t> skyline = SkylineIndices(points);
  EXPECT_EQ(skyline, (std::vector<size_t>{0, 2}));
}

TEST(SkylineTest, SinglePointAndEmpty) {
  EXPECT_TRUE(SkylineIndices({}).empty());
  EXPECT_EQ(SkylineIndices({{1, 1}}), std::vector<size_t>{0});
}

// Property: the skyline computed by the sweep equals the O(n^2) oracle.
class SkylinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SkylinePropertyTest, MatchesQuadraticOracle) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.UniformInt(0, 40));
    std::vector<BiPoint> points;
    for (int i = 0; i < n; ++i) {
      // Small integer grid so ties are frequent.
      points.push_back({static_cast<double>(rng.UniformInt(0, 5)),
                        static_cast<double>(rng.UniformInt(0, 5))});
    }
    std::vector<size_t> expected;
    for (size_t a = 0; a < points.size(); ++a) {
      bool dominated = false;
      for (size_t b = 0; b < points.size(); ++b) {
        if (DominatesPoint(points[b], points[a])) dominated = true;
      }
      if (!dominated) expected.push_back(a);
    }
    EXPECT_EQ(SkylineIndices(points), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylinePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DominanceScoresTest, CountsDominatedPoints) {
  std::vector<BiPoint> points = {{3, 3}, {1, 1}, {2, 2}, {0, 4}};
  std::vector<int64_t> scores = DominanceScores(points, {0, 3});
  EXPECT_EQ(scores[0], 2);  // (3,3) dominates (1,1) and (2,2)
  EXPECT_EQ(scores[1], 0);  // (0,4) dominates nothing
}

TEST(TopDominatingTest, PicksHighestScore) {
  // (2,2) dominates two points; (0,5) dominates none.
  std::vector<BiPoint> points = {{2, 2}, {1, 1}, {2, 1}, {0, 5}};
  EXPECT_EQ(TopDominating(points), 0u);
}

TEST(TopDominatingTest, TieBreaksTowardsY) {
  // Both skyline points dominate one point each.
  std::vector<BiPoint> points = {{3, 1}, {1, 3}, {2, 0}, {0, 2}};
  EXPECT_EQ(TopDominating(points), 1u);  // y = 3 wins the tie
}

TEST(TopDominatingTest, EmptyInput) {
  EXPECT_EQ(TopDominating({}), std::numeric_limits<size_t>::max());
}

TEST(TopDominatingTest, AllEqual) {
  std::vector<BiPoint> points = {{1, 1}, {1, 1}, {1, 1}};
  size_t best = TopDominating(points);
  EXPECT_LT(best, points.size());
}

// Property: the winner is never dominated by any point.
class TopDominatingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TopDominatingPropertyTest, WinnerIsParetoOptimal) {
  util::Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.UniformInt(1, 60));
    std::vector<BiPoint> points;
    for (int i = 0; i < n; ++i) {
      points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    size_t best = TopDominating(points);
    ASSERT_LT(best, points.size());
    for (const BiPoint& p : points) {
      EXPECT_FALSE(DominatesPoint(p, points[best]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopDominatingPropertyTest,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace rdbsc::core
