// Concurrency stress for the caching layer (runs under the TSan CI job):
// real submitter threads hammer one engine::Server with duplicate
// instances so the SolveCache shards, the single-flight registry, and the
// hit/miss counters race for real. Invariants: every OK ticket is
// bit-identical to the direct cold solve of its instance, and every
// read-enabled admission is accounted exactly once as a hit, a miss, or a
// collapse.

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/fingerprint.h"
#include "engine/server.h"
#include "gtest/gtest.h"
#include "stress_util.h"
#include "test_util.h"

namespace rdbsc {
namespace {

using engine::CacheMode;
using engine::ServerConfig;
using engine::ServerStats;
using engine::ShutdownMode;
using engine::SubmitControls;
using engine::Ticket;
using test::SmallInstance;

ServerConfig StressCacheConfig(int num_workers) {
  ServerConfig config;
  config.engine.solver_name = "dc";
  config.engine.solver_options.seed = 7;
  config.engine.validate_instances = false;
  config.num_workers = num_workers;
  config.max_queue_depth = 256;
  config.overload_policy = engine::OverloadPolicy::kBlock;
  config.cache_mode = CacheMode::kReadWrite;
  return config;
}

// Canonical cold fingerprints (direct Engine::Run, no cache) for the
// duplicate pool every stress round draws from.
std::vector<std::string> ColdFingerprints(
    const ServerConfig& config, const std::vector<core::Instance>& pool) {
  Engine engine = Engine::Create(config.engine).value();
  std::vector<std::string> prints;
  prints.reserve(pool.size());
  for (const core::Instance& instance : pool) {
    prints.push_back(engine::ResultFingerprint(engine.Run(instance)));
  }
  return prints;
}

// The accounting satellite: N threads x M submissions over a 2-instance
// pool, drained cleanly. Whatever the interleaving, (a) every ticket's
// answer is bit-identical to the cold solve, and (b) the counters
// partition the admissions: collapsed + cache_hits + cache_misses ==
// admitted (every request either rode a leader or dispatched exactly
// once, hitting or missing).
TEST(CacheStressTest, ConcurrentDuplicateSubmitsStayBitIdentical) {
  const std::vector<core::Instance> pool = {SmallInstance(61, 10, 20),
                                            SmallInstance(62, 10, 20)};
  for (int round = 0; round < 6; ++round) {
    ServerConfig config = StressCacheConfig(1 + round % 3);
    const std::vector<std::string> cold = ColdFingerprints(config, pool);
    auto server = std::move(engine::Server::Create(std::move(config)).value());

    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 6;
    std::vector<std::vector<std::pair<int, Ticket>>> tickets(kSubmitters);
    std::vector<std::thread> threads;
    threads.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      threads.emplace_back([&, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          const int which = (s + i) % 2;
          tickets[s].emplace_back(
              which, server->Submit(pool[which]).value());
        }
      });
    }
    // Concurrent Stats readers race the counters on purpose (TSan food).
    std::thread poller([&] {
      for (int i = 0; i < 50; ++i) {
        ServerStats stats = server->Stats();
        EXPECT_GE(stats.submitted, 0);
      }
    });
    for (std::thread& t : threads) t.join();
    poller.join();

    for (std::vector<std::pair<int, Ticket>>& per : tickets) {
      for (auto& [which, ticket] : per) {
        const util::StatusOr<EngineResult>& result = ticket.Wait();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(engine::ResultFingerprint(result), cold[which]);
      }
    }
    server->Shutdown(ShutdownMode::kDrain);
    ServerStats stats = server->Stats();
    EXPECT_EQ(stats.admitted, kSubmitters * kPerSubmitter);
    EXPECT_EQ(stats.collapsed + stats.cache_hits + stats.cache_misses,
              stats.admitted);
    EXPECT_EQ(stats.completed, stats.admitted);
    EXPECT_GE(stats.cache_misses, 1);  // someone had to solve cold
  }
}

// The race loop: Submit + Shutdown(kCancel) + follower teardown under
// fire. A collapsed follower must share its leader's fate (solved,
// cancelled, or shed) without double accounting, and any ticket that does
// complete OK must still be bit-identical to the cold solve.
TEST(CacheStressTest, SubmitShutdownCancelRaceKeepsCacheConsistent) {
  const std::vector<core::Instance> pool = {SmallInstance(71, 10, 20),
                                            SmallInstance(72, 10, 20)};
  for (int round = 0; round < 8; ++round) {
    ServerConfig config = StressCacheConfig(2);
    config.max_queue_depth = 8;
    config.overload_policy = round % 2 == 0
                                 ? engine::OverloadPolicy::kReject
                                 : engine::OverloadPolicy::kShedOldest;
    const std::vector<std::string> cold = ColdFingerprints(config, pool);
    auto server = std::move(engine::Server::Create(std::move(config)).value());

    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 6;
    std::vector<std::vector<std::pair<int, Ticket>>> tickets(kSubmitters);
    std::vector<std::thread> threads;
    threads.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      threads.emplace_back([&, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          const int which = i % 2;
          SubmitControls controls;
          controls.priority = i % 3;
          auto ticket = server->Submit(pool[which], controls);
          if (ticket.ok()) {
            tickets[s].emplace_back(which, std::move(ticket).value());
          }
          // Rejections (queue full / shut down) are legal here.
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    server->Shutdown(ShutdownMode::kCancel);
    for (std::thread& t : threads) t.join();

    int64_t resolved = 0;
    for (std::vector<std::pair<int, Ticket>>& per : tickets) {
      for (auto& [which, ticket] : per) {
        const util::StatusOr<EngineResult>& result = ticket.Wait();
        ++resolved;
        if (result.ok()) {
          EXPECT_EQ(engine::ResultFingerprint(result), cold[which]);
          continue;
        }
        util::StatusCode code = result.status().code();
        EXPECT_TRUE(code == util::StatusCode::kCancelled ||
                    code == util::StatusCode::kResourceExhausted)
            << result.status().ToString();
      }
    }
    ServerStats stats = server->Stats();
    EXPECT_EQ(stats.admitted, resolved);
    EXPECT_EQ(stats.admitted, stats.completed + stats.cancelled +
                                  stats.shed + stats.failed +
                                  stats.deadline_exceeded);
    // Dispatch accounting never exceeds the admissions, and every
    // counted event is one of the three kinds.
    EXPECT_LE(stats.collapsed + stats.cache_hits + stats.cache_misses,
              stats.admitted);
    EXPECT_EQ(stats.queue_depth, 0);
    EXPECT_EQ(stats.in_flight, 0);
  }
}

// Replay determinism with caching under real submitter concurrency: the
// scripted stress harness compares a cache-enabled replay at 1/2/8
// workers against the cache-off baseline, with a duplicate-heavy script
// (every submitter draws from the same 4 seeds).
TEST(CacheStressTest, ScriptedReplayWithCacheMatchesColdBaseline) {
  test::StressScript script = test::MakeStressScript(99, 3, 6);
  for (auto& arrivals : script.arrivals) {
    for (test::StressArrival& arrival : arrivals) {
      arrival.instance_seed = 200 + arrival.instance_seed % 4;
      arrival.num_tasks = 8;
      arrival.num_workers = 16;
    }
  }
  ServerConfig cold_config = StressCacheConfig(1);
  cold_config.cache_mode = CacheMode::kOff;
  cold_config.cache_result_entries = 0;
  cold_config.cache_graph_entries = 0;
  const std::vector<std::string> baseline =
      test::ReplayScript(script, cold_config, 1);
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE(workers);
    EXPECT_EQ(test::ReplayScript(script, StressCacheConfig(workers), workers),
              baseline);
  }
}

}  // namespace
}  // namespace rdbsc
