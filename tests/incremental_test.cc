#include "sim/incremental.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/registry.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace rdbsc::sim {
namespace {

core::Task OpenTask(geo::Point loc, double start, double end,
                    double beta = 0.5) {
  core::Task t;
  t.location = loc;
  t.start = start;
  t.end = end;
  t.beta = beta;
  return t;
}

core::Worker FreeWorker(geo::Point loc, double v = 0.5, double p = 0.9) {
  core::Worker w;
  w.location = loc;
  w.velocity = v;
  w.confidence = p;
  return w;
}

TEST(IncrementalAssignerTest, RegistrationStatuses) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  EXPECT_TRUE(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).ok());
  EXPECT_EQ(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_TRUE(assigner.AddWorker(7, FreeWorker({0.4, 0.5})).ok());
  EXPECT_EQ(assigner.AddWorker(7, FreeWorker({0.4, 0.5})).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(assigner.RemoveTask(99).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(assigner.RemoveWorker(99).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(assigner.num_open_tasks(), 1);
  EXPECT_EQ(assigner.num_workers(), 1);
}

TEST(IncrementalAssignerTest, AssignsAvailableWorkerToOpenTask) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).ok());
  ASSERT_TRUE(assigner.AddWorker(7, FreeWorker({0.45, 0.5})).ok());
  auto committed = assigner.Update(0.0).value();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].first, 1);
  EXPECT_EQ(committed[0].second, 7);
  EXPECT_EQ(assigner.CommittedTask(7), 1);
  // A second round does not reassign the busy worker.
  EXPECT_TRUE(assigner.Update(0.1).value().empty());
}

TEST(IncrementalAssignerTest, CompletedWorkerIsReassignable) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.3, 0.5}, 0, 3)).ok());
  ASSERT_TRUE(assigner.AddTask(2, OpenTask({0.7, 0.5}, 0, 3)).ok());
  ASSERT_TRUE(assigner.AddWorker(7, FreeWorker({0.3, 0.45})).ok());
  auto first = assigner.Update(0.0).value();
  ASSERT_EQ(first.size(), 1u);
  core::TaskId first_task = first[0].first;

  EXPECT_EQ(assigner.CompleteWorker(99, {0, 0}).code(),
            util::StatusCode::kNotFound);
  ASSERT_TRUE(assigner.CompleteWorker(
                  7, first_task == 1 ? geo::Point{0.3, 0.5}
                                     : geo::Point{0.7, 0.5})
                  .ok());
  EXPECT_EQ(assigner.CommittedTask(7), core::kNoTask);
  EXPECT_EQ(assigner.CompleteWorker(7, {0, 0}).code(),
            util::StatusCode::kFailedPrecondition);

  auto second = assigner.Update(0.5).value();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].first, first_task) << "should take the other task";
}

TEST(IncrementalAssignerTest, ExpiredTasksAreDropped) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 0.5)).ok());
  ASSERT_TRUE(assigner.AddWorker(7, FreeWorker({0.45, 0.5})).ok());
  EXPECT_TRUE(assigner.Update(1.0).value().empty());  // task expired before round
  EXPECT_EQ(assigner.num_open_tasks(), 0);
}

TEST(IncrementalAssignerTest, RemovingPendingTaskFreesWorker) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).ok());
  ASSERT_TRUE(assigner.AddWorker(7, FreeWorker({0.45, 0.5})).ok());
  ASSERT_EQ(assigner.Update(0.0).value().size(), 1u);
  ASSERT_TRUE(assigner.RemoveTask(1).ok());
  EXPECT_EQ(assigner.CommittedTask(7), core::kNoTask);
  // The voided contribution no longer counts.
  EXPECT_DOUBLE_EQ(assigner.Objectives().total_std, 0.0);
  // The worker can serve a new task.
  ASSERT_TRUE(assigner.AddTask(2, OpenTask({0.5, 0.55}, 0, 3)).ok());
  EXPECT_EQ(assigner.Update(0.2).value().size(), 1u);
}

TEST(IncrementalAssignerTest, ObjectivesAccumulateOverRounds) {
  auto solver = core::SolverRegistry::Global().Create("sampling").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  util::Rng rng(3);
  for (int t = 0; t < 6; ++t) {
    assigner.AddTask(t, OpenTask({rng.Uniform(0.3, 0.7),
                                  rng.Uniform(0.3, 0.7)},
                                 0, 5));
  }
  for (int w = 0; w < 12; ++w) {
    assigner.AddWorker(w, FreeWorker({rng.Uniform(0.2, 0.8),
                                      rng.Uniform(0.2, 0.8)},
                                     0.4, rng.Uniform(0.7, 0.95)));
  }
  double previous = 0.0;
  for (int round = 0; round < 4; ++round) {
    double now = round * 0.5;
    auto committed = assigner.Update(now).value();
    // Complete everyone so the next round can reassign.
    for (const auto& [tid, wid] : committed) {
      (void)tid;
      assigner.CompleteWorker(wid, {rng.Uniform(0.3, 0.7),
                                    rng.Uniform(0.3, 0.7)});
    }
    double current = assigner.Objectives().total_std;
    EXPECT_GE(current, previous - 1e-9)
        << "cumulative diversity dropped in round " << round;
    previous = current;
  }
  EXPECT_GT(previous, 0.0);
  EXPECT_GT(assigner.Objectives().min_reliability, 0.5);
}

TEST(IncrementalAssignerTest, UnchangedRoundReusesCandidateGraph) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  // A round with content but nothing assignable: the worker cannot reach
  // the task inside its window, so Update commits nothing and the system
  // state -- hence the snapshot fingerprint -- stays bit-identical.
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.9, 0.9}, 0, 0.05)).ok());
  ASSERT_TRUE(
      assigner.AddWorker(7, FreeWorker({0.1, 0.1}, /*v=*/0.01)).ok());

  EXPECT_TRUE(assigner.Update(0.0).value().empty());
  EXPECT_EQ(assigner.round_cache_stats().rounds, 1);
  EXPECT_EQ(assigner.round_cache_stats().graph_reuses, 0);

  EXPECT_TRUE(assigner.Update(0.0).value().empty());
  EXPECT_EQ(assigner.round_cache_stats().rounds, 2);
  EXPECT_EQ(assigner.round_cache_stats().graph_reuses, 1);

  // Any membership change produces a new fingerprint: no stale reuse.
  ASSERT_TRUE(assigner.AddWorker(8, FreeWorker({0.12, 0.1}, 0.01)).ok());
  EXPECT_TRUE(assigner.Update(0.0).value().empty());
  EXPECT_EQ(assigner.round_cache_stats().rounds, 3);
  EXPECT_EQ(assigner.round_cache_stats().graph_reuses, 1);

  // And the changed round is itself memoized for the next repeat.
  EXPECT_TRUE(assigner.Update(0.0).value().empty());
  EXPECT_EQ(assigner.round_cache_stats().graph_reuses, 2);
}

TEST(IncrementalAssignerTest, MemoedAssignerCommitsIdenticallyToFresh) {
  // Two assigners end up with identical membership, but one went through
  // extra no-op rounds first (populating and replaying its graph memo).
  // The first assignable round must commit identical pairs either way --
  // the memo may only ever change *when* a graph is built, never what is
  // assigned.
  auto solver_a = core::SolverRegistry::Global().Create("greedy").value();
  auto solver_b = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner seasoned(solver_a.get(), 0.1);
  IncrementalAssigner fresh(solver_b.get(), 0.1);
  for (IncrementalAssigner* assigner : {&seasoned, &fresh}) {
    // An unreachable pairing that keeps early rounds assignment-free.
    ASSERT_TRUE(assigner->AddTask(9, OpenTask({0.9, 0.9}, 0, 0.05)).ok());
    ASSERT_TRUE(
        assigner->AddWorker(19, FreeWorker({0.1, 0.1}, /*v=*/0.01)).ok());
  }
  // Seasoned only: burn no-op rounds so the memo is both filled and
  // replayed before the assignable content arrives.
  EXPECT_TRUE(seasoned.Update(0.0).value().empty());
  EXPECT_TRUE(seasoned.Update(0.0).value().empty());
  ASSERT_EQ(seasoned.round_cache_stats().graph_reuses, 1);

  for (IncrementalAssigner* assigner : {&seasoned, &fresh}) {
    ASSERT_TRUE(assigner->AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).ok());
    ASSERT_TRUE(assigner->AddTask(2, OpenTask({0.6, 0.5}, 0, 2)).ok());
    ASSERT_TRUE(assigner->AddWorker(7, FreeWorker({0.45, 0.5})).ok());
    ASSERT_TRUE(assigner->AddWorker(8, FreeWorker({0.55, 0.5})).ok());
  }
  EXPECT_EQ(seasoned.Update(0.0).value(), fresh.Update(0.0).value());
  EXPECT_EQ(seasoned.Objectives().total_std, fresh.Objectives().total_std);
}

TEST(IncrementalAssignerTest, ObjectivesIndependentOfInsertionOrder) {
  // Regression test: Objectives() once accumulated total_std in the
  // ledger's hash-map iteration order, which depends on insertion
  // history; float addition is non-associative, so two assigners with
  // identical contents could disagree in the last bits. The sum now runs
  // in sorted task-id order and must be bit-identical either way.
  util::Rng rng(11);
  std::vector<std::pair<core::TaskId, core::Task>> tasks;
  std::vector<std::pair<core::WorkerId, core::Worker>> workers;
  for (int t = 0; t < 40; ++t) {
    tasks.emplace_back(t, OpenTask({rng.Uniform(0.2, 0.8),
                                    rng.Uniform(0.2, 0.8)},
                                   0, 5, rng.Uniform(0.3, 0.9)));
  }
  for (int w = 0; w < 40; ++w) {
    workers.emplace_back(w, FreeWorker({rng.Uniform(0.2, 0.8),
                                        rng.Uniform(0.2, 0.8)},
                                       0.5, rng.Uniform(0.7, 0.95)));
  }

  auto run = [&](bool reversed) {
    auto solver = core::SolverRegistry::Global().Create("greedy").value();
    IncrementalAssigner assigner(solver.get(), 0.1);
    auto ordered_tasks = tasks;
    auto ordered_workers = workers;
    if (reversed) {
      std::reverse(ordered_tasks.begin(), ordered_tasks.end());
      std::reverse(ordered_workers.begin(), ordered_workers.end());
    }
    for (const auto& [id, task] : ordered_tasks) {
      EXPECT_TRUE(assigner.AddTask(id, task).ok());
    }
    for (const auto& [id, worker] : ordered_workers) {
      EXPECT_TRUE(assigner.AddWorker(id, worker).ok());
    }
    EXPECT_FALSE(assigner.Update(0.0).value().empty());
    return assigner.Objectives();
  };

  core::ObjectiveValue forward = run(false);
  core::ObjectiveValue backward = run(true);
  EXPECT_GT(forward.total_std, 0.0);
  // Bit-identical, not just approximately equal.
  EXPECT_EQ(forward.total_std, backward.total_std);
  EXPECT_EQ(forward.min_reliability, backward.min_reliability);
}

TEST(IncrementalAssignerTest, WorkerLeavingMidRouteVoidsContribution) {
  auto solver = core::SolverRegistry::Global().Create("greedy").value();
  IncrementalAssigner assigner(solver.get(), 0.1);
  ASSERT_TRUE(assigner.AddTask(1, OpenTask({0.5, 0.5}, 0, 2)).ok());
  ASSERT_TRUE(assigner.AddWorker(7, FreeWorker({0.45, 0.5})).ok());
  ASSERT_EQ(assigner.Update(0.0).value().size(), 1u);
  EXPECT_GT(assigner.Objectives().total_std, 0.0);
  ASSERT_TRUE(assigner.RemoveWorker(7).ok());
  EXPECT_DOUBLE_EQ(assigner.Objectives().total_std, 0.0);
  EXPECT_EQ(assigner.num_workers(), 0);
}

}  // namespace
}  // namespace rdbsc::sim
