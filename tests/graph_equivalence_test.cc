// Property test closing a coverage gap: the grid-index retrieval and the
// brute-force O(m*n) scan must produce edge-set-identical candidate
// graphs on randomized instances (previously only spot-checked), and the
// cost-model arbitrated GraphStrategy::kAuto must always match one of the
// two concrete paths.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc {
namespace {

Engine MakeEngine(GraphStrategy strategy) {
  EngineConfig config;
  config.solver_name = "greedy";  // irrelevant: only BuildGraph is used
  config.graph_strategy = strategy;
  config.validate_instances = false;
  return std::move(Engine::Create(std::move(config)).value());
}

// Per-worker adjacency as sorted rows: the two construction paths may
// emit a worker's tasks in different orders, but the edge *set* must
// match exactly.
std::vector<std::vector<core::TaskId>> SortedRows(
    const core::CandidateGraph& graph) {
  std::vector<std::vector<core::TaskId>> rows(graph.num_workers());
  for (core::WorkerId j = 0; j < graph.num_workers(); ++j) {
    const auto row = graph.TasksOf(j);
    rows[j].assign(row.begin(), row.end());
    std::sort(rows[j].begin(), rows[j].end());
  }
  return rows;
}

TEST(GraphEquivalenceTest, GridAndBruteForceAgreeOnRandomInstances) {
  Engine brute = MakeEngine(GraphStrategy::kBruteForce);
  Engine grid = MakeEngine(GraphStrategy::kGridIndex);
  Engine automatic = MakeEngine(GraphStrategy::kAuto);

  int auto_grid_picks = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    // Vary the shape: 8..57 tasks x 12..110 workers across the sweep.
    const int num_tasks = 8 + static_cast<int>(seed);
    const int num_workers = 12 + static_cast<int>(seed * 2);
    core::Instance instance =
        test::SmallInstance(seed, num_tasks, num_workers);

    GraphPlan brute_plan, grid_plan, auto_plan;
    core::CandidateGraph brute_graph =
        brute.BuildGraph(instance, &brute_plan).value();
    core::CandidateGraph grid_graph =
        grid.BuildGraph(instance, &grid_plan).value();
    core::CandidateGraph auto_graph =
        automatic.BuildGraph(instance, &auto_plan).value();

    ASSERT_FALSE(brute_plan.used_grid_index);
    ASSERT_TRUE(grid_plan.used_grid_index);

    // Edge-set identity between the two concrete paths.
    ASSERT_EQ(grid_graph.NumEdges(), brute_graph.NumEdges())
        << "seed " << seed;
    std::vector<std::vector<core::TaskId>> brute_rows =
        SortedRows(brute_graph);
    ASSERT_EQ(SortedRows(grid_graph), brute_rows) << "seed " << seed;

    // The task-side adjacency must be consistent with the worker side.
    int64_t task_side_edges = 0;
    for (core::TaskId i = 0; i < instance.num_tasks(); ++i) {
      task_side_edges +=
          static_cast<int64_t>(brute_graph.WorkersOf(i).size());
    }
    ASSERT_EQ(task_side_edges, brute_graph.NumEdges()) << "seed " << seed;

    // kAuto picks one of the two paths and reproduces its edge set.
    ASSERT_EQ(SortedRows(auto_graph), brute_rows) << "seed " << seed;
    ASSERT_EQ(auto_graph.NumEdges(), brute_graph.NumEdges())
        << "seed " << seed;
    if (auto_plan.used_grid_index) {
      ASSERT_GT(auto_plan.eta, 0.0) << "seed " << seed;
      ++auto_grid_picks;
    } else {
      ASSERT_EQ(auto_plan.eta, 0.0) << "seed " << seed;
    }
  }
  // The arbitration is allowed to pick either path per instance; just
  // surface the split so a cost-model regression that pins it to one
  // side forever is visible in the test log.
  RecordProperty("auto_grid_picks", auto_grid_picks);
}

TEST(GraphEquivalenceTest, EmptyAndDegenerateInstancesAgree) {
  Engine brute = MakeEngine(GraphStrategy::kBruteForce);
  Engine grid = MakeEngine(GraphStrategy::kGridIndex);
  for (auto [num_tasks, num_workers] :
       {std::pair<int, int>{1, 1}, {1, 8}, {6, 1}}) {
    core::Instance instance =
        test::SmallInstance(5, num_tasks, num_workers);
    core::CandidateGraph a = brute.BuildGraph(instance).value();
    core::CandidateGraph b = grid.BuildGraph(instance).value();
    EXPECT_EQ(SortedRows(a), SortedRows(b))
        << num_tasks << "x" << num_workers;
  }
}

}  // namespace
}  // namespace rdbsc
