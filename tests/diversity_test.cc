#include "core/diversity.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "geo/angle.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

using test::MakeTask;
using test::Obs;

constexpr double kPi = std::numbers::pi;

// ---------- Exact spatial diversity (Eq. 3) ----------

TEST(SpatialDiversityTest, FewerThanTwoRaysIsZero) {
  EXPECT_DOUBLE_EQ(SpatialDiversity({}), 0.0);
  EXPECT_DOUBLE_EQ(SpatialDiversity({1.0}), 0.0);
}

TEST(SpatialDiversityTest, OppositeRaysMaximizeTwoRayEntropy) {
  // Two rays splitting the circle in half: entropy ln 2.
  EXPECT_NEAR(SpatialDiversity({0.0, kPi}), std::log(2.0), 1e-12);
}

TEST(SpatialDiversityTest, CoincidentRaysHaveZeroDiversity) {
  EXPECT_NEAR(SpatialDiversity({1.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(SpatialDiversity({1.0, 1.0, 1.0}), 0.0, 1e-12);
}

TEST(SpatialDiversityTest, EvenSplitGivesLogR) {
  // r equally spaced rays: entropy ln r.
  for (int r = 2; r <= 8; ++r) {
    std::vector<double> angles;
    for (int i = 0; i < r; ++i) angles.push_back(i * geo::kTwoPi / r);
    EXPECT_NEAR(SpatialDiversity(angles), std::log(static_cast<double>(r)),
                1e-9)
        << "r=" << r;
  }
}

TEST(SpatialDiversityTest, InvariantUnderRotation) {
  util::Rng rng(77);
  std::vector<double> angles = {0.3, 1.7, 2.9, 4.4};
  double base = SpatialDiversity(angles);
  for (int trial = 0; trial < 20; ++trial) {
    double shift = rng.Uniform(0, geo::kTwoPi);
    std::vector<double> rotated;
    for (double a : angles) rotated.push_back(a + shift);
    EXPECT_NEAR(SpatialDiversity(rotated), base, 1e-9);
  }
}

// ---------- Exact temporal diversity (Eq. 4) ----------

TEST(TemporalDiversityTest, NoArrivalsIsZero) {
  EXPECT_DOUBLE_EQ(TemporalDiversity({}, 0.0, 1.0), 0.0);
}

TEST(TemporalDiversityTest, MidpointSplitsEvenly) {
  EXPECT_NEAR(TemporalDiversity({0.5}, 0.0, 1.0), std::log(2.0), 1e-12);
}

TEST(TemporalDiversityTest, BoundaryArrivalAddsNothing) {
  EXPECT_NEAR(TemporalDiversity({0.0}, 0.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(TemporalDiversity({1.0}, 0.0, 1.0), 0.0, 1e-12);
}

TEST(TemporalDiversityTest, EvenSplitGivesLogIntervals) {
  // r arrivals at the (r+1)-quantiles: entropy ln(r+1).
  for (int r = 1; r <= 6; ++r) {
    std::vector<double> arrivals;
    for (int i = 1; i <= r; ++i) {
      arrivals.push_back(static_cast<double>(i) / (r + 1));
    }
    EXPECT_NEAR(TemporalDiversity(arrivals, 0.0, 1.0),
                std::log(static_cast<double>(r + 1)), 1e-9);
  }
}

TEST(TemporalDiversityTest, ScalesWithPeriod) {
  // The same relative split yields the same entropy on any period.
  double base = TemporalDiversity({0.25, 0.5}, 0.0, 1.0);
  EXPECT_NEAR(TemporalDiversity({2.5, 5.0}, 0.0, 10.0), base, 1e-12);
  EXPECT_NEAR(TemporalDiversity({3.25, 3.5}, 3.0, 4.0), base, 1e-12);
}

// ---------- STD combination (Eq. 5) ----------

TEST(StdTest, BetaBlendsSpatialAndTemporal) {
  std::vector<Observation> obs = {Obs(0.0, 0.25, 0.9), Obs(kPi, 0.75, 0.9)};
  double sd = SpatialDiversity({0.0, kPi});
  double td = TemporalDiversity({0.25, 0.75}, 0.0, 1.0);
  EXPECT_NEAR(Std(MakeTask(1.0), obs), sd, 1e-12);
  EXPECT_NEAR(Std(MakeTask(0.0), obs), td, 1e-12);
  EXPECT_NEAR(Std(MakeTask(0.3), obs), 0.3 * sd + 0.7 * td, 1e-12);
}

// ---------- Expected diversity: matrix method vs possible worlds ----------

TEST(ExpectedDiversityTest, EmptyAndSingleWorker) {
  Task task = MakeTask(0.5);
  EXPECT_DOUBLE_EQ(ExpectedStd(task, {}), 0.0);
  // A single worker has no spatial diversity but splits the period.
  std::vector<Observation> one = {Obs(1.0, 0.5, 0.8)};
  double expected = 0.5 * 0.8 * std::log(2.0);
  EXPECT_NEAR(ExpectedStd(task, one), expected, 1e-12);
}

TEST(ExpectedDiversityTest, TwoWorkerClosedForm) {
  // With two workers the only diverse world is both-present.
  Task task = MakeTask(1.0);  // spatial only
  std::vector<Observation> obs = {Obs(0.0, 0.2, 0.7), Obs(kPi, 0.8, 0.6)};
  EXPECT_NEAR(ExpectedSpatialDiversity(obs), 0.7 * 0.6 * std::log(2.0),
              1e-12);
  EXPECT_NEAR(ExpectedStd(task, obs), 0.7 * 0.6 * std::log(2.0), 1e-12);
}

TEST(ExpectedDiversityTest, CertainWorkersReduceToDeterministicStd) {
  Task task = MakeTask(0.4);
  std::vector<Observation> obs = {Obs(0.1, 0.2, 1.0), Obs(2.0, 0.5, 1.0),
                                  Obs(4.0, 0.9, 1.0)};
  EXPECT_NEAR(ExpectedStd(task, obs), Std(task, obs), 1e-9);
}

// The central correctness property: the O(r^2) matrix computation equals
// exhaustive possible-worlds enumeration (Lemma 3.1).
class MatrixVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixVsBruteForceTest, ExpectedStdMatchesEnumeration) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    int r = static_cast<int>(rng.UniformInt(0, 10));
    double beta = rng.Uniform(0.0, 1.0);
    double start = rng.Uniform(0.0, 5.0);
    double end = start + rng.Uniform(0.5, 3.0);
    Task task = MakeTask(beta, start, end);
    std::vector<Observation> obs;
    for (int i = 0; i < r; ++i) {
      obs.push_back(Obs(rng.Uniform(0.0, geo::kTwoPi),
                        rng.Uniform(start, end), rng.Uniform(0.0, 1.0)));
    }
    double matrix = ExpectedStd(task, obs);
    double brute = ExpectedStdBruteForce(task, obs);
    EXPECT_NEAR(matrix, brute, 1e-9)
        << "r=" << r << " beta=" << beta << " trial=" << trial;
  }
}

TEST_P(MatrixVsBruteForceTest, SpatialOnlyMatches) {
  util::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    int r = static_cast<int>(rng.UniformInt(2, 9));
    Task task = MakeTask(1.0);
    std::vector<Observation> obs;
    for (int i = 0; i < r; ++i) {
      obs.push_back(Obs(rng.Uniform(0.0, geo::kTwoPi), 0.5,
                        rng.Uniform(0.1, 1.0)));
    }
    EXPECT_NEAR(ExpectedSpatialDiversity(obs),
                ExpectedStdBruteForce(task, obs), 1e-9);
  }
}

TEST_P(MatrixVsBruteForceTest, TemporalOnlyMatches) {
  util::Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 30; ++trial) {
    int r = static_cast<int>(rng.UniformInt(1, 9));
    Task task = MakeTask(0.0, 1.0, 3.0);
    std::vector<Observation> obs;
    for (int i = 0; i < r; ++i) {
      obs.push_back(Obs(0.0, rng.Uniform(1.0, 3.0), rng.Uniform(0.1, 1.0)));
    }
    EXPECT_NEAR(ExpectedTemporalDiversity(obs, task.start, task.end),
                ExpectedStdBruteForce(task, obs), 1e-9);
  }
}

// Duplicate angles / arrival collisions must agree with enumeration too.
TEST_P(MatrixVsBruteForceTest, DegenerateGeometryMatches) {
  util::Rng rng(GetParam() + 3000);
  for (int trial = 0; trial < 20; ++trial) {
    Task task = MakeTask(rng.Uniform(0.0, 1.0));
    double shared_angle = rng.Uniform(0.0, geo::kTwoPi);
    double shared_time = rng.Uniform(0.0, 1.0);
    std::vector<Observation> obs;
    int r = static_cast<int>(rng.UniformInt(2, 7));
    for (int i = 0; i < r; ++i) {
      bool duplicate = rng.Bernoulli(0.5);
      obs.push_back(Obs(duplicate ? shared_angle
                                  : rng.Uniform(0.0, geo::kTwoPi),
                        duplicate ? shared_time : rng.Uniform(0.0, 1.0),
                        rng.Uniform(0.0, 1.0)));
    }
    EXPECT_NEAR(ExpectedStd(task, obs), ExpectedStdBruteForce(task, obs),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixVsBruteForceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Monotonicity (Lemma 4.2) ----------

class MonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicityTest, AddingWorkerNeverDecreasesExpectedStd) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    Task task = MakeTask(rng.Uniform(0.0, 1.0));
    std::vector<Observation> obs;
    double previous = 0.0;
    for (int i = 0; i < 8; ++i) {
      obs.push_back(Obs(rng.Uniform(0.0, geo::kTwoPi), rng.Uniform(0.0, 1.0),
                        rng.Uniform(0.0, 1.0)));
      double current = ExpectedStd(task, obs);
      EXPECT_GE(current, previous - 1e-12)
          << "adding worker " << i << " decreased E[STD]";
      previous = current;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         ::testing::Values(21, 22, 23, 24));

// ---------- Bounds (Section 4.3) ----------

class BoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundsTest, BoundsSandwichExactValue) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    Task task = MakeTask(rng.Uniform(0.0, 1.0));
    int r = static_cast<int>(rng.UniformInt(0, 9));
    std::vector<Observation> obs;
    for (int i = 0; i < r; ++i) {
      obs.push_back(Obs(rng.Uniform(0.0, geo::kTwoPi), rng.Uniform(0.0, 1.0),
                        rng.Uniform(0.0, 1.0)));
    }
    DiversityBounds bounds = ExpectedStdBounds(task, obs);
    double exact = ExpectedStd(task, obs);
    EXPECT_LE(bounds.lb, exact + 1e-9) << "lower bound violated, r=" << r;
    EXPECT_GE(bounds.ub, exact - 1e-9) << "upper bound violated, r=" << r;
    EXPECT_LE(bounds.lb, bounds.ub + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsTest, ::testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace rdbsc::core
