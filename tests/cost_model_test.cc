#include "index/cost_model.h"

#include <cmath>

#include "gtest/gtest.h"

namespace rdbsc::index {
namespace {

constexpr double kEtaMin = 1.0 / 1024.0;
constexpr double kEtaMax = 1.0;

TEST(CostModelTest, OptimalEtaStaysInClampRange) {
  for (double l_max : {0.01, 0.1, 0.3, 0.9}) {
    for (double d2 : {1.2, 1.6, 2.0}) {
      for (int n : {2, 100, 10'000, 1'000'000}) {
        CostModelParams params{.l_max = l_max, .d2 = d2, .num_points = n};
        double eta = OptimalEta(params);
        EXPECT_GE(eta, kEtaMin) << "l_max=" << l_max << " d2=" << d2
                                << " n=" << n;
        EXPECT_LE(eta, kEtaMax);
      }
    }
  }
}

TEST(CostModelTest, UniformDataMatchesClosedForm) {
  // For D2 = 2, Eq. (23) reduces to eta^3 = L_max / (N - 1).
  CostModelParams params{.l_max = 0.3, .d2 = 2.0, .num_points = 10'000};
  double expected = std::cbrt(params.l_max / (params.num_points - 1));
  EXPECT_NEAR(OptimalEta(params), expected, 1e-6);
}

TEST(CostModelTest, OptimalEtaMinimizesModelCost) {
  // An interior solution must beat a coarser and a finer grid under the
  // very cost it models.
  CostModelParams params{.l_max = 0.3, .d2 = 2.0, .num_points = 10'000};
  double eta = OptimalEta(params);
  ASSERT_GT(eta, kEtaMin);
  ASSERT_LT(eta, kEtaMax);
  double best = EstimateUpdateCost(eta, params);
  EXPECT_LE(best, EstimateUpdateCost(0.5 * eta, params));
  EXPECT_LE(best, EstimateUpdateCost(2.0 * eta, params));
}

TEST(CostModelTest, MorePointsMeanFinerGrid) {
  CostModelParams coarse{.l_max = 0.3, .d2 = 2.0, .num_points = 1'000};
  CostModelParams fine = coarse;
  fine.num_points = 100'000;
  EXPECT_GT(OptimalEta(coarse), OptimalEta(fine));
}

TEST(CostModelTest, LongerReachMeansCoarserGrid) {
  CostModelParams slow{.l_max = 0.05, .d2 = 2.0, .num_points = 10'000};
  CostModelParams fast = slow;
  fast.l_max = 0.9;
  EXPECT_LT(OptimalEta(slow), OptimalEta(fast));
}

TEST(CostModelTest, DegenerateSinglePointReturnsCoarsestGrid) {
  CostModelParams params{.l_max = 0.3, .d2 = 2.0, .num_points = 1};
  EXPECT_DOUBLE_EQ(OptimalEta(params), kEtaMax);
}

TEST(CostModelTest, HugePointCountClampsToFinestGrid) {
  CostModelParams params{.l_max = 0.3, .d2 = 2.0,
                         .num_points = 1'000'000'000};
  EXPECT_DOUBLE_EQ(OptimalEta(params), kEtaMin);
}

TEST(CostModelTest, UpdateCostIsPositiveAndGrowsWithPoints) {
  CostModelParams params{.l_max = 0.3, .d2 = 2.0, .num_points = 1'000};
  CostModelParams bigger = params;
  bigger.num_points = 10'000;
  for (double eta : {0.01, 0.05, 0.25}) {
    EXPECT_GT(EstimateUpdateCost(eta, params), 0.0);
    EXPECT_LT(EstimateUpdateCost(eta, params),
              EstimateUpdateCost(eta, bigger));
  }
}

}  // namespace
}  // namespace rdbsc::index
