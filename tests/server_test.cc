// Unit and race coverage of engine::Server: admission policies (block /
// reject / shed-oldest), the server-wide budget pool, priority dispatch,
// graceful shutdown in both modes, and a concurrent
// Submit + Shutdown(kCancel) + deadline-expiry loop that the TSan CI job
// runs to flush races out of the ticket/future path.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/server.h"
#include "gtest/gtest.h"
#include "stress_util.h"
#include "test_util.h"

namespace rdbsc {
namespace {

using engine::OverloadPolicy;
using engine::Server;
using engine::ServerConfig;
using engine::ServerStats;
using engine::ShutdownMode;
using engine::SubmitControls;
using engine::Ticket;

ServerConfig BaseConfig(int num_workers = 1) {
  ServerConfig config;
  config.engine.solver_name = "dc";
  config.engine.solver_options.seed = 7;
  config.engine.validate_instances = false;
  config.num_workers = num_workers;
  return config;
}

std::unique_ptr<Server> MakeServer(ServerConfig config) {
  return std::move(Server::Create(std::move(config)).value());
}

// A solve heavy enough (hundreds of ms) to keep the single dispatch
// worker busy while a test manipulates the queue behind it.
core::Instance GateInstance() { return test::SmallInstance(1, 220, 220); }

// A solve in the low milliseconds.
core::Instance QuickInstance(uint64_t seed = 3) {
  return test::SmallInstance(seed, 10, 24);
}

// Spins (with 1 ms naps) until `pred` holds; fails the test after ~10 s.
template <typename Pred>
void WaitUntil(Pred pred) {
  for (int i = 0; i < 10'000; ++i) {
    if (pred()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "condition not reached within 10 s";
}

TEST(ServerTest, CreateRejectsUnknownSolver) {
  ServerConfig config;
  config.engine.solver_name = "no-such-solver";
  auto server = Server::Create(std::move(config));
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), util::StatusCode::kNotFound);
}

TEST(ServerTest, SubmitMatchesDirectEngineRun) {
  core::Instance instance = QuickInstance(11);
  ServerConfig config = BaseConfig(2);
  util::StatusOr<Engine> direct = Engine::Create(config.engine);
  util::StatusOr<EngineResult> expected = direct.value().Run(instance);

  auto server = MakeServer(std::move(config));
  Ticket ticket = server->Submit(instance).value();
  const util::StatusOr<EngineResult>& got = ticket.Wait();
  EXPECT_EQ(engine::ResultFingerprint(got),
            engine::ResultFingerprint(expected));
  server->Shutdown(ShutdownMode::kDrain);

  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_GE(stats.latency_max_seconds, stats.latency_p50_seconds);
}

TEST(ServerTest, TryGetAndWaitFor) {
  auto server = MakeServer(BaseConfig(1));
  Ticket ticket = server->Submit(QuickInstance()).value();
  EXPECT_TRUE(ticket.valid());
  EXPECT_TRUE(ticket.WaitFor(30.0));
  ASSERT_NE(ticket.TryGet(), nullptr);
  EXPECT_TRUE(ticket.TryGet()->ok());
}

TEST(ServerTest, TinyBudgetExpiresTicket) {
  auto server = MakeServer(BaseConfig(1));
  SubmitControls controls;
  controls.budget_seconds = 1e-9;
  Ticket ticket = server->Submit(QuickInstance(), controls).value();
  const util::StatusOr<EngineResult>& result = ticket.Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  server->Shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(server->Stats().deadline_exceeded, 1);
}

TEST(ServerTest, RejectPolicyFailsWhenQueueFull) {
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 1;
  config.overload_policy = OverloadPolicy::kReject;
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket queued = server->Submit(QuickInstance()).value();

  auto rejected = server->Submit(QuickInstance());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kResourceExhausted);

  EXPECT_TRUE(gate.Wait().ok());
  EXPECT_TRUE(queued.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(ServerTest, ShedOldestDropsTheOldestQueuedTicket) {
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 2;
  config.overload_policy = OverloadPolicy::kShedOldest;
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket oldest = server->Submit(QuickInstance(1)).value();
  Ticket second = server->Submit(QuickInstance(2)).value();
  Ticket third = server->Submit(QuickInstance(3)).value();  // sheds `oldest`

  const util::StatusOr<EngineResult>& shed = oldest.Wait();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);

  EXPECT_TRUE(gate.Wait().ok());
  EXPECT_TRUE(second.Wait().ok());
  EXPECT_TRUE(third.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(ServerTest, BlockPolicyWaitsForSpace) {
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket queued = server->Submit(QuickInstance(1)).value();

  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    Ticket late = server->Submit(QuickInstance(2)).value();
    admitted.store(true);
    EXPECT_TRUE(late.Wait().ok());
  });
  // The submitter stays blocked while the queue is full...
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(admitted.load());
  // ...and is admitted once the gate finishes and frees the slot.
  EXPECT_TRUE(gate.Wait().ok());
  blocked.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(queued.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  EXPECT_EQ(server->Stats().rejected, 0);
  EXPECT_EQ(server->Stats().completed, 3);
}

TEST(ServerTest, HighPriorityDispatchesBeforeEarlierLowPriority) {
  // One worker, busy gate; a *slow* low-priority ticket is queued before a
  // *quick* high-priority one. With priority dispatch the quick ticket
  // finishes while the slow one is still pending/running; with FIFO the
  // slow one would already be done when the quick one completes.
  auto server = MakeServer(BaseConfig(1));
  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });

  SubmitControls low;
  low.priority = 0;
  Ticket slow_low = server->Submit(test::SmallInstance(2, 220, 220), low)
                        .value();
  SubmitControls high;
  high.priority = 5;
  Ticket quick_high = server->Submit(QuickInstance(), high).value();

  EXPECT_TRUE(quick_high.Wait().ok());
  EXPECT_EQ(slow_low.TryGet(), nullptr)
      << "low-priority ticket finished first: FIFO dispatch?";
  EXPECT_TRUE(slow_low.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
}

TEST(ServerTest, BudgetPoolDeductsAndExhausts) {
  ServerConfig config = BaseConfig(1);
  config.default_budget_seconds = 20.0;
  config.total_budget_seconds = 30.0;
  auto server = MakeServer(std::move(config));

  // First admission deducts its 20 s budget; the second (unlimited
  // request) is capped at the remaining 10 s; the third finds the pool
  // empty.
  Ticket first = server->Submit(QuickInstance(1)).value();
  SubmitControls unlimited;
  unlimited.budget_seconds = 0.0;
  Ticket second = server->Submit(QuickInstance(2), unlimited).value();
  auto third = server->Submit(QuickInstance(3));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), util::StatusCode::kResourceExhausted);

  EXPECT_TRUE(first.Wait().ok());
  EXPECT_TRUE(second.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.budget_remaining_seconds, 0.0);
}

TEST(ServerTest, ExhaustedPoolRejectsWithoutShedding) {
  // Regression: with the budget pool spent, a Submit under kShedOldest
  // must be rejected up front -- not evict an already-funded queued
  // ticket and then get rejected anyway.
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 2;
  config.overload_policy = OverloadPolicy::kShedOldest;
  config.default_budget_seconds = 10.0;
  config.total_budget_seconds = 30.0;
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket q1 = server->Submit(QuickInstance(1)).value();
  Ticket q2 = server->Submit(QuickInstance(2)).value();  // pool now empty

  auto q3 = server->Submit(QuickInstance(3));
  ASSERT_FALSE(q3.ok());
  EXPECT_EQ(q3.status().code(), util::StatusCode::kResourceExhausted);

  EXPECT_TRUE(gate.Wait().ok());
  EXPECT_TRUE(q1.Wait().ok());
  EXPECT_TRUE(q2.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 3);
}

TEST(ServerTest, BlockedSubmitterIsRejectedNotHungWhenPoolDrains) {
  // Regression: a kBlock submitter woken by a queue pop but rejected for
  // pool exhaustion must pass the wake-up on, so the next blocked
  // submitter gets rejected too instead of hanging forever.
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 1;
  config.overload_policy = OverloadPolicy::kBlock;
  config.default_budget_seconds = 10.0;
  config.total_budget_seconds = 30.0;  // funds gate + queued + ONE more
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket queued = server->Submit(QuickInstance(1)).value();

  // Two submitters block on the full queue; only one can still be funded.
  util::Status results[2];
  std::thread blocked[2];
  for (int i = 0; i < 2; ++i) {
    blocked[i] = std::thread([&, i] {
      auto ticket = server->Submit(QuickInstance(10 + i));
      results[i] = ticket.ok() ? util::Status::OK() : ticket.status();
      if (ticket.ok()) ticket.value().Wait();
    });
  }
  // Without the baton-pass this join hangs (the second waiter is never
  // woken once the first consumes the pop notification and is rejected).
  blocked[0].join();
  blocked[1].join();

  int admitted = (results[0].ok() ? 1 : 0) + (results[1].ok() ? 1 : 0);
  EXPECT_EQ(admitted, 1);
  for (const util::Status& status : results) {
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
    }
  }
  EXPECT_TRUE(gate.Wait().ok());
  EXPECT_TRUE(queued.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
}

TEST(ServerTest, ShedRefundsVictimBudgetToPool) {
  ServerConfig config = BaseConfig(1);
  config.max_queue_depth = 1;
  config.overload_policy = OverloadPolicy::kShedOldest;
  config.default_budget_seconds = 10.0;
  config.total_budget_seconds = 30.0;
  auto server = MakeServer(std::move(config));

  Ticket gate = server->Submit(GateInstance()).value();  // pool: 20
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket victim = server->Submit(QuickInstance(1)).value();  // pool: 10
  // Sheds `victim` (refund -> 20), then funds itself (deduct -> 10).
  Ticket replacement = server->Submit(QuickInstance(2)).value();

  ASSERT_FALSE(victim.Wait().ok());
  EXPECT_EQ(victim.Wait().status().code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(gate.Wait().ok());
  EXPECT_TRUE(replacement.Wait().ok());
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_DOUBLE_EQ(stats.budget_remaining_seconds, 10.0);
}

TEST(ServerTest, ShutdownDrainRunsEverythingThenRefuses) {
  auto server = MakeServer(BaseConfig(2));
  std::vector<Ticket> tickets;
  for (uint64_t s = 0; s < 6; ++s) {
    tickets.push_back(server->Submit(QuickInstance(s)).value());
  }
  server->Shutdown(ShutdownMode::kDrain);
  for (Ticket& ticket : tickets) EXPECT_TRUE(ticket.Wait().ok());

  auto late = server->Submit(QuickInstance());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), util::StatusCode::kFailedPrecondition);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.rejected, 1);
}

TEST(ServerTest, ShutdownCancelFailsQueuedTickets) {
  auto server = MakeServer(BaseConfig(1));
  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  std::vector<Ticket> queued;
  for (uint64_t s = 0; s < 4; ++s) {
    queued.push_back(server->Submit(QuickInstance(s)).value());
  }
  server->Shutdown(ShutdownMode::kCancel);
  // The in-flight gate either finished in time or saw the token.
  const util::StatusOr<EngineResult>& gate_result = gate.Wait();
  EXPECT_TRUE(gate_result.ok() ||
              gate_result.status().code() == util::StatusCode::kCancelled);
  for (Ticket& ticket : queued) {
    ASSERT_FALSE(ticket.Wait().ok());
    EXPECT_EQ(ticket.Wait().status().code(), util::StatusCode::kCancelled);
  }
  ServerStats stats = server->Stats();
  EXPECT_GE(stats.cancelled, 4);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.in_flight, 0);
}

TEST(ServerTest, ShutdownIsIdempotent) {
  auto server = MakeServer(BaseConfig(1));
  Ticket ticket = server->Submit(QuickInstance()).value();
  server->Shutdown(ShutdownMode::kDrain);
  server->Shutdown(ShutdownMode::kDrain);
  server->Shutdown(ShutdownMode::kCancel);
  EXPECT_TRUE(ticket.Wait().ok());
}

TEST(ServerTest, CancelAtDispatchCompletesCancelledWithoutSolving) {
  auto server = MakeServer(BaseConfig(2));
  SubmitControls controls;
  controls.cancel_at_dispatch = true;
  Ticket ticket = server->Submit(QuickInstance(), controls).value();
  EXPECT_EQ(ticket.Wait().status().code(), util::StatusCode::kCancelled);
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.admitted, 1);
}

// The scripted-cancel determinism contract the workload DSL builds on:
// a fixed submission list mixing solves and cancel_at_dispatch requests
// produces the same per-ticket fingerprints at every worker count.
TEST(ServerTest, CancelAtDispatchScriptReplaysIdenticallyAcrossWorkers) {
  std::vector<std::string> baseline;
  for (int workers : {1, 2, 8}) {
    auto server = MakeServer(BaseConfig(workers));
    std::vector<Ticket> tickets;
    for (int i = 0; i < 12; ++i) {
      SubmitControls controls;
      controls.cancel_at_dispatch = i % 3 == 0;
      tickets.push_back(
          server->Submit(QuickInstance(static_cast<uint64_t>(100 + i)),
                         controls)
              .value());
    }
    std::vector<std::string> prints;
    prints.reserve(tickets.size());
    for (Ticket& ticket : tickets) {
      prints.push_back(engine::ResultFingerprint(ticket.Wait()));
    }
    server->Shutdown(ShutdownMode::kDrain);
    if (baseline.empty()) {
      baseline = prints;
      for (size_t i = 0; i < prints.size(); ++i) {
        const bool cancelled = i % 3 == 0;
        EXPECT_EQ(prints[i].find("code=0") == 0, !cancelled) << prints[i];
      }
    } else {
      EXPECT_EQ(prints, baseline) << workers << " workers";
    }
  }
}

TEST(ServerTest, TicketCancelAbortsQueuedRequest) {
  auto server = MakeServer(BaseConfig(1));
  Ticket gate = server->Submit(GateInstance()).value();
  WaitUntil([&] { return server->Stats().in_flight == 1; });
  Ticket queued = server->Submit(QuickInstance()).value();
  // The gate still has hundreds of ms to run; `queued` cannot have been
  // dispatched, so its cancel lands pre-dispatch deterministically.
  queued.Cancel();
  EXPECT_EQ(queued.Wait().status().code(), util::StatusCode::kCancelled);
  // In-flight cancellation is best-effort: the gate aborts at its next
  // deadline poll unless it finished first.
  gate.Cancel();
  const util::StatusOr<EngineResult>& gate_result = gate.Wait();
  EXPECT_TRUE(gate_result.ok() ||
              gate_result.status().code() == util::StatusCode::kCancelled)
      << gate_result.status().ToString();
  server->Shutdown(ShutdownMode::kDrain);
  ServerStats stats = server->Stats();
  EXPECT_GE(stats.cancelled, 1);
  EXPECT_EQ(stats.queue_depth, 0);
}

// The race-focused satellite: concurrent Submit + Shutdown(kCancel) +
// deadline expiry, looped. Every ticket must resolve to exactly one of
// {OK, kCancelled, kDeadlineExceeded}, the counters must reconcile, and
// under the TSan CI job any data race in the ticket/future or
// admission path fails the test.
TEST(ServerTest, ConcurrentSubmitShutdownCancelAndDeadlines) {
  for (int round = 0; round < 8; ++round) {
    ServerConfig config = BaseConfig(4);
    config.max_queue_depth = 8;
    config.overload_policy =
        round % 2 == 0 ? OverloadPolicy::kReject : OverloadPolicy::kShedOldest;
    auto server = MakeServer(std::move(config));

    constexpr int kSubmitters = 4;
    constexpr int kPerSubmitter = 6;
    std::vector<std::vector<Ticket>> tickets(kSubmitters);
    std::vector<std::thread> threads;
    threads.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      threads.emplace_back([&, s] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          SubmitControls controls;
          controls.priority = i % 3;
          // Mix unlimited, expiring, and generous budgets.
          controls.budget_seconds =
              i % 3 == 0 ? -1.0 : (i % 3 == 1 ? 1e-9 : 30.0);
          auto ticket = server->Submit(
              QuickInstance(static_cast<uint64_t>(s * 100 + i)), controls);
          if (ticket.ok()) tickets[s].push_back(std::move(ticket).value());
          // Rejections (queue full / already shut down) are legal here.
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    server->Shutdown(ShutdownMode::kCancel);
    for (std::thread& t : threads) t.join();

    int64_t resolved = 0;
    for (std::vector<Ticket>& per : tickets) {
      for (Ticket& ticket : per) {
        const util::StatusOr<EngineResult>& result = ticket.Wait();
        ++resolved;
        if (result.ok()) continue;
        util::StatusCode code = result.status().code();
        EXPECT_TRUE(code == util::StatusCode::kCancelled ||
                    code == util::StatusCode::kDeadlineExceeded ||
                    code == util::StatusCode::kResourceExhausted)
            << result.status().ToString();
      }
    }
    ServerStats stats = server->Stats();
    EXPECT_EQ(stats.admitted, resolved);
    EXPECT_EQ(stats.admitted, stats.completed + stats.cancelled +
                                  stats.deadline_exceeded + stats.shed +
                                  stats.failed);
    EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
    EXPECT_EQ(stats.queue_depth, 0);
    EXPECT_EQ(stats.in_flight, 0);
  }
}

}  // namespace
}  // namespace rdbsc
