#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace rdbsc::obs {
namespace {

// Serializes one histogram snapshot through the production JSON path, so
// equality of the returned strings is bitwise equality of every derived
// statistic (including the %.17g double round-trips).
std::string HistogramJson(const HistogramSnapshot& snapshot) {
  MetricSnapshot metric;
  metric.name = "h";
  metric.kind = MetricSnapshot::Kind::kHistogram;
  metric.histogram = snapshot;
  std::string out;
  JsonWriter writer(out);
  AppendMetric(writer, metric);
  return out;
}

// --- Bucket geometry -------------------------------------------------------

TEST(ObsHistogramTest, BucketGeometryRoundTrips) {
  for (int index = 0; index < Histogram::kNumBuckets; ++index) {
    const int64_t low = Histogram::BucketLow(index);
    const int64_t mid = Histogram::BucketMid(index);
    const int64_t high = Histogram::BucketHigh(index);
    EXPECT_LE(low, mid) << "index=" << index;
    EXPECT_LE(mid, high) << "index=" << index;
    EXPECT_EQ(Histogram::BucketIndex(low), index);
    EXPECT_EQ(Histogram::BucketIndex(mid), index);
    EXPECT_EQ(Histogram::BucketIndex(high), index);
    if (index + 1 < Histogram::kNumBuckets) {
      // Buckets tile the unit axis with no gap and no overlap.
      EXPECT_EQ(Histogram::BucketLow(index + 1), high + 1)
          << "index=" << index;
    }
    // The log-linear contract: relative bucket width is at most 1/16, so
    // the midpoint reproduces any member within 1/32.
    if (low >= Histogram::kSubBuckets) {
      EXPECT_LE(high - low + 1, (low + 15) / 16) << "index=" << index;
    } else {
      EXPECT_EQ(low, high) << "index=" << index;  // sub-32 buckets exact
    }
  }
  EXPECT_EQ(Histogram::BucketLow(0), 0);
  // The clamp ceiling is representable.
  EXPECT_LT(Histogram::BucketIndex(Histogram::kMaxValue),
            Histogram::kNumBuckets);
}

TEST(ObsHistogramTest, SmallUnitsAreExact) {
  Histogram hist;
  for (int64_t u = 0; u < Histogram::kSubBuckets; ++u) hist.Record(u);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), Histogram::kSubBuckets);
  EXPECT_EQ(snap.min(), 0.0);
  EXPECT_EQ(snap.max(), 31.0);
  EXPECT_EQ(snap.sum(), 496.0);  // 0 + 1 + ... + 31
  EXPECT_EQ(snap.avg(), 15.5);
  // Every unit below 32 has its own bucket: nearest-rank percentiles are
  // exact, not approximations. rank = ceil(q * 32), value = rank - 1.
  for (int rank = 1; rank <= 32; ++rank) {
    const double q = static_cast<double>(rank) / 32.0;
    EXPECT_EQ(snap.ValueAtPercentile(q), static_cast<double>(rank - 1))
        << "rank=" << rank;
  }
}

TEST(ObsHistogramTest, ClampsNegativeNaNAndOverflow) {
  Histogram hist;
  hist.Observe(-1.5);
  hist.Observe(std::numeric_limits<double>::quiet_NaN());
  hist.Observe(0.0);
  hist.Record(-7);
  EXPECT_EQ(hist.count(), 4);
  HistogramSnapshot low = hist.Snapshot();
  EXPECT_EQ(low.min(), 0.0);
  EXPECT_EQ(low.max(), 0.0);
  EXPECT_EQ(low.sum(), 0.0);

  Histogram big;
  big.Observe(std::numeric_limits<double>::infinity());
  big.Record(Histogram::kMaxValue + 1);
  HistogramSnapshot high = big.Snapshot();
  EXPECT_EQ(high.count(), 2);
  EXPECT_EQ(high.max(), static_cast<double>(Histogram::kMaxValue));
  EXPECT_EQ(high.min(), static_cast<double>(Histogram::kMaxValue));
}

// --- Percentiles against a sorted-vector oracle ----------------------------

TEST(ObsHistogramTest, PercentileWithinBucketResolutionOfOracle) {
  // Mixed-magnitude samples: a uniform exponent in [0, 40) then a uniform
  // mantissa, so every octave of the bucket table gets exercised.
  std::mt19937_64 rng(20260808);
  Histogram hist;
  std::vector<int64_t> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const int shift = static_cast<int>(rng() % 40);
    const int64_t value =
        static_cast<int64_t>(rng() % (uint64_t{1} << shift)) + 1;
    samples.push_back(value);
    hist.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count(), static_cast<int64_t>(samples.size()));
  EXPECT_EQ(snap.min(), static_cast<double>(samples.front()));
  EXPECT_EQ(snap.max(), static_cast<double>(samples.back()));

  for (double q : {0.0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                   0.999, 1.0}) {
    const auto rank = std::clamp<int64_t>(
        static_cast<int64_t>(
            std::ceil(q * static_cast<double>(samples.size()))),
        1, static_cast<int64_t>(samples.size()));
    const double oracle = static_cast<double>(samples[rank - 1]);
    const double got = snap.ValueAtPercentile(q);
    // The histogram reports the midpoint of the bucket holding the true
    // rank-th sample: off by at most the half-width, i.e. 1/32 relative
    // (documented contract), plus one unit of slack for the exact range.
    EXPECT_LE(std::abs(got - oracle), oracle / 32.0 + 1.0) << "q=" << q;
  }
  // p100 is exact by the [min, max] clamp, not just within resolution.
  EXPECT_EQ(snap.ValueAtPercentile(1.0), static_cast<double>(samples.back()));
}

TEST(ObsHistogramTest, ScaledResolutionRoundTrips) {
  Histogram hist(1e-9);  // nanosecond units, seconds in and out
  hist.Observe(1.5e-6);
  hist.Observe(2.5e-3);
  hist.Observe(0.25);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 3);
  EXPECT_EQ(snap.resolution(), 1e-9);
  EXPECT_DOUBLE_EQ(snap.min(), 1.5e-6);
  EXPECT_DOUBLE_EQ(snap.max(), 0.25);
  EXPECT_DOUBLE_EQ(snap.sum(), 1.5e-6 + 2.5e-3 + 0.25);
  EXPECT_NEAR(snap.p50(), 2.5e-3, 2.5e-3 / 16.0);
}

TEST(ObsHistogramTest, EmptyHistogramIsZero) {
  Histogram hist;
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 0);
  EXPECT_EQ(snap.sum(), 0.0);
  EXPECT_EQ(snap.avg(), 0.0);
  EXPECT_EQ(snap.min(), 0.0);
  EXPECT_EQ(snap.max(), 0.0);
  EXPECT_EQ(snap.stddev(), 0.0);
  EXPECT_EQ(snap.p50(), 0.0);
  EXPECT_EQ(snap.ValueAtPercentile(1.0), 0.0);
}

TEST(ObsHistogramTest, ResetClearsState) {
  Histogram hist;
  hist.Record(5);
  hist.Record(1000);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count(), 0);
  EXPECT_EQ(snap.max(), 0.0);
  hist.Record(3);
  EXPECT_EQ(hist.Snapshot().min(), 3.0);  // old min does not leak through
}

// --- Deterministic merging -------------------------------------------------

TEST(ObsHistogramTest, MergeIsOrderInsensitive) {
  // Three parts with deliberately different magnitude bands.
  std::mt19937_64 rng(7);
  std::vector<HistogramSnapshot> parts;
  for (int p = 0; p < 3; ++p) {
    Histogram hist;
    for (int i = 0; i < 500; ++i) {
      hist.Record(static_cast<int64_t>(rng() % (uint64_t{100} << (8 * p))));
    }
    parts.push_back(hist.Snapshot());
  }

  std::vector<int> order = {0, 1, 2};
  std::string reference;
  do {
    HistogramSnapshot merged;
    for (int i : order) merged.Merge(parts[i]);
    const std::string json = HistogramJson(merged);
    if (reference.empty()) {
      reference = json;
    } else {
      // Bit-identical across all 6 permutations: integer state only.
      EXPECT_EQ(json, reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_FALSE(reference.empty());
}

TEST(ObsHistogramTest, MergeMatchesCombinedRecording) {
  std::mt19937_64 rng(11);
  Histogram combined;
  Histogram part_a;
  Histogram part_b;
  for (int i = 0; i < 2000; ++i) {
    const auto value = static_cast<int64_t>(rng() % 1'000'000);
    combined.Record(value);
    (i % 2 == 0 ? part_a : part_b).Record(value);
  }
  HistogramSnapshot merged = part_a.Snapshot();
  merged.Merge(part_b.Snapshot());
  EXPECT_EQ(HistogramJson(merged), HistogramJson(combined.Snapshot()));
}

TEST(ObsHistogramTest, MergeIntoEmptyAdoptsState) {
  Histogram hist(1e-9);
  hist.Observe(0.5);
  HistogramSnapshot merged;  // default resolution 1.0
  merged.Merge(hist.Snapshot());
  EXPECT_EQ(merged.count(), 1);
  EXPECT_EQ(merged.resolution(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), 0.5);
  HistogramSnapshot empty;
  merged.Merge(empty);  // merging an empty snapshot is a no-op
  EXPECT_EQ(merged.count(), 1);
  EXPECT_DOUBLE_EQ(merged.min(), 0.5);
}

// --- Windowed recording ----------------------------------------------------

TEST(ObsWindowedRecorderTest, RotateSplitsWindowsAndKeepsTotal) {
  WindowedRecorder recorder;
  recorder.Observe(1.0);
  recorder.Observe(2.0);
  recorder.Observe(3.0);
  HistogramSnapshot first = recorder.Rotate();
  EXPECT_EQ(first.count(), 3);
  EXPECT_EQ(first.min(), 1.0);
  EXPECT_EQ(first.max(), 3.0);

  recorder.Observe(10.0);
  HistogramSnapshot in_progress = recorder.Window();
  EXPECT_EQ(in_progress.count(), 1);
  EXPECT_EQ(in_progress.max(), 10.0);

  HistogramSnapshot second = recorder.Rotate();
  EXPECT_EQ(second.count(), 1);
  EXPECT_EQ(second.min(), 10.0);
  EXPECT_EQ(second.max(), 10.0);

  HistogramSnapshot third = recorder.Rotate();  // nothing since last rotate
  EXPECT_EQ(third.count(), 0);

  HistogramSnapshot total = recorder.Total();
  EXPECT_EQ(total.count(), 4);
  EXPECT_EQ(total.min(), 1.0);
  EXPECT_EQ(total.max(), 10.0);
  EXPECT_EQ(recorder.rotations(), 3);
}

TEST(ObsWindowedRecorderTest, ReusedBufferStartsEmpty) {
  WindowedRecorder recorder;
  // Three rotations cycle through both internal buffers; a stale buffer
  // must never leak samples from two windows ago.
  for (int round = 1; round <= 3; ++round) {
    recorder.Observe(static_cast<double>(round));
    HistogramSnapshot window = recorder.Rotate();
    EXPECT_EQ(window.count(), 1) << "round=" << round;
    EXPECT_EQ(window.max(), static_cast<double>(round));
  }
  EXPECT_EQ(recorder.Total().count(), 3);
}

// --- Registry --------------------------------------------------------------

TEST(ObsRegistryTest, SameNameAndLabelsSameInstance) {
  Registry registry;
  Counter& a =
      registry.GetCounter("requests", {{"stage", "solve"}, {"solver", "dc"}});
  Counter& b =
      registry.GetCounter("requests", {{"solver", "dc"}, {"stage", "solve"}});
  EXPECT_EQ(&a, &b);  // label order is canonicalized on registration
  a.Increment(2);
  b.Increment(3);
  EXPECT_EQ(a.value(), 5);

  Histogram& h1 = registry.GetHistogram("latency", {}, 1e-9);
  Histogram& h2 = registry.GetHistogram("latency", {}, 1e-3);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.resolution(), 1e-9);  // fixed by the first registration
}

TEST(ObsRegistryTest, DistinctLabelsDistinctInstances) {
  Registry registry;
  Counter& hit = registry.GetCounter("cache", {{"outcome", "hit"}});
  Counter& miss = registry.GetCounter("cache", {{"outcome", "miss"}});
  EXPECT_NE(&hit, &miss);
  hit.Increment();
  EXPECT_EQ(hit.value(), 1);
  EXPECT_EQ(miss.value(), 0);
}

TEST(ObsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  Registry registry;
  // Register in scrambled order; the snapshot must sort by (name, labels).
  registry.GetGauge("z.gauge").Set(4.0);
  registry.GetCounter("a.metric", {{"k", "2"}}).Increment();
  registry.GetHistogram("m.hist").Record(1);
  registry.GetCounter("a.metric", {{"k", "1"}}).Increment();

  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_EQ(snap.metrics[0].name, "a.metric");
  EXPECT_EQ(snap.metrics[0].labels, (Labels{{"k", "1"}}));
  EXPECT_EQ(snap.metrics[1].name, "a.metric");
  EXPECT_EQ(snap.metrics[1].labels, (Labels{{"k", "2"}}));
  EXPECT_EQ(snap.metrics[2].name, "m.hist");
  EXPECT_EQ(snap.metrics[2].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snap.metrics[3].name, "z.gauge");
  EXPECT_EQ(snap.metrics[3].gauge_value, 4.0);
}

// --- JSON ------------------------------------------------------------------

TEST(ObsJsonTest, WriterEscapesAndSeparates) {
  std::string out;
  JsonWriter writer(out);
  writer.BeginObject();
  writer.Key("s");
  writer.String("a\"b\\c\nd\te\x01");
  writer.Key("i");
  writer.Int(-42);
  writer.Key("d");
  writer.Double(0.5);
  writer.Key("b");
  writer.Bool(true);
  writer.Key("n");
  writer.Null();
  writer.Key("arr");
  writer.BeginArray();
  writer.Int(1);
  writer.Int(2);
  writer.BeginObject();
  writer.EndObject();
  writer.EndArray();
  writer.EndObject();
  EXPECT_EQ(out,
            "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\",\"i\":-42,\"d\":0.5,"
            "\"b\":true,\"n\":null,\"arr\":[1,2,{}]}");
}

TEST(ObsJsonTest, NonFiniteDoublesSerializeAsNull) {
  std::string out;
  JsonWriter writer(out);
  writer.BeginArray();
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(-std::numeric_limits<double>::infinity());
  writer.Double(std::numeric_limits<double>::quiet_NaN());
  writer.Double(1.0);
  writer.EndArray();
  EXPECT_EQ(out, "[null,null,null,1]");
}

// Golden snapshot of the full registry -> JSON path. The sample values
// are chosen so every derived statistic is exactly representable and the
// expected text can be written down by hand; any change to the emission
// format must update this string (and bump kResultsSchemaVersion if a
// field changed meaning).
TEST(ObsJsonTest, MetricsJsonGolden) {
  Registry registry;
  Histogram& hist = registry.GetHistogram("a.hist");
  hist.Record(1);
  hist.Record(1);
  hist.Record(3);
  hist.Record(3);  // mean 2, population variance 1 -> stddev exactly 1
  registry.GetCounter("b.count", {{"k", "v"}}).Increment(3);
  registry.GetGauge("c.gauge").Set(1.5);

  const std::string expected =
      "[{\"name\":\"a.hist\",\"labels\":{},\"kind\":\"histogram\","
      "\"count\":4,\"avg\":2,\"min\":1,\"max\":3,\"stddev\":1,"
      "\"p50\":1,\"p90\":3,\"p95\":3,\"p99\":3,\"p999\":3},"
      "{\"name\":\"b.count\",\"labels\":{\"k\":\"v\"},\"kind\":\"counter\","
      "\"value\":3},"
      "{\"name\":\"c.gauge\",\"labels\":{},\"kind\":\"gauge\",\"value\":1.5}"
      "]";
  EXPECT_EQ(MetricsJson(registry.Snapshot()), expected);
}

// --- Concurrency (stress tier) ---------------------------------------------

// Concurrent recording must aggregate to the exact same state as
// sequential recording of the same multiset: all internal state is
// integral and order-insensitive, so the comparison is bitwise (via the
// serialized JSON), not approximate.
TEST(ObsConcurrentStressTest, ConcurrentRecordMatchesSequential) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  // Deterministic per-thread sample streams.
  auto sample = [](int thread, int i) {
    std::mt19937_64 rng(uint64_t{1} + thread * 7919 + i);
    return static_cast<int64_t>(rng() % 10'000'000);
  };

  Histogram concurrent;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&concurrent, &sample, t] {
        for (int i = 0; i < kPerThread; ++i) {
          concurrent.Record(sample(t, i));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  Histogram sequential;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) sequential.Record(sample(t, i));
  }

  EXPECT_EQ(concurrent.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(HistogramJson(concurrent.Snapshot()),
            HistogramJson(sequential.Snapshot()));
}

TEST(ObsConcurrentStressTest, ConcurrentObserveAndRotateLosesNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  WindowedRecorder recorder;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Observe(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  int64_t rotated = 0;
  for (int r = 0; r < 50; ++r) rotated += recorder.Rotate().count();
  for (std::thread& thread : threads) thread.join();
  rotated += recorder.Rotate().count();
  rotated += recorder.Rotate().count();  // drain the second buffer too

  // The total is exact: every sample survives there. A sample racing a
  // rotation may land in the resetting buffer (documented), so the
  // rotated-window sum can only undershoot, never double-count.
  const int64_t expected = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(recorder.Total().count(), expected);
  EXPECT_LE(rotated, expected);
  EXPECT_GT(rotated, 0);
}

}  // namespace
}  // namespace rdbsc::obs
