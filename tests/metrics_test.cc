#include "core/metrics.h"

#include "core/registry.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::core {
namespace {

TEST(MetricsTest, EmptyAssignment) {
  Instance instance = test::SmallInstance(1, 10, 10);
  AssignmentMetrics metrics =
      ComputeMetrics(instance, Assignment(instance.num_workers()));
  EXPECT_EQ(metrics.assigned_workers, 0);
  EXPECT_EQ(metrics.nonempty_tasks, 0);
  EXPECT_EQ(metrics.empty_tasks, 10);
  EXPECT_EQ(metrics.roster_histogram[0], 10);
  EXPECT_DOUBLE_EQ(metrics.total_expected_std, 0.0);
}

TEST(MetricsTest, HandBuiltAssignment) {
  Instance instance = test::SmallInstance(2, 3, 6);
  Assignment assignment(6);
  assignment.Assign(0, 0);
  assignment.Assign(1, 0);
  assignment.Assign(2, 0);
  assignment.Assign(3, 1);
  AssignmentMetrics metrics = ComputeMetrics(instance, assignment);
  EXPECT_EQ(metrics.assigned_workers, 4);
  EXPECT_EQ(metrics.nonempty_tasks, 2);
  EXPECT_EQ(metrics.empty_tasks, 1);
  EXPECT_EQ(metrics.max_roster, 3);
  EXPECT_DOUBLE_EQ(metrics.mean_roster, 2.0);
  EXPECT_EQ(metrics.roster_histogram[0], 1);
  EXPECT_EQ(metrics.roster_histogram[1], 1);
  EXPECT_EQ(metrics.roster_histogram[3], 1);
}

TEST(MetricsTest, HistogramTailAggregates) {
  Instance instance = test::SmallInstance(3, 1, 8);
  Assignment assignment(8);
  for (WorkerId j = 0; j < 8; ++j) assignment.Assign(j, 0);
  AssignmentMetrics metrics =
      ComputeMetrics(instance, assignment, /*histogram_buckets=*/4);
  EXPECT_EQ(metrics.roster_histogram.back(), 1);  // 8 workers -> last bucket
  EXPECT_EQ(metrics.max_roster, 8);
}

TEST(MetricsTest, AgreesWithObjectives) {
  Instance instance = test::SmallInstance(4, 12, 30);
  CandidateGraph graph = CandidateGraph::Build(instance);
  auto solver = SolverRegistry::Global().Create("greedy").value();
  SolveResult result = solver->Solve(instance, graph).value();
  AssignmentMetrics metrics = ComputeMetrics(instance, result.assignment);
  EXPECT_NEAR(metrics.total_expected_std, result.objectives.total_std, 1e-9);
  EXPECT_NEAR(metrics.min_task_reliability,
              result.objectives.min_reliability, 1e-9);
  EXPECT_GE(metrics.mean_task_reliability, metrics.min_task_reliability);
  EXPECT_EQ(metrics.nonempty_tasks + metrics.empty_tasks,
            instance.num_tasks());
}

TEST(MetricsTest, HerdingShowsUpInHistogram) {
  // The bounds-mode greedy concentrates workers; sampling spreads them.
  // The metrics should expose that structural difference.
  Instance instance = test::SmallInstance(5, 20, 60);
  CandidateGraph graph = CandidateGraph::Build(instance);
  // Default options: the paper's bound-estimated greedy increments.
  auto greedy = SolverRegistry::Global().Create("greedy").value();
  auto sampling = SolverRegistry::Global().Create("sampling").value();
  AssignmentMetrics g = ComputeMetrics(
      instance, greedy->Solve(instance, graph).value().assignment);
  AssignmentMetrics s = ComputeMetrics(
      instance, sampling->Solve(instance, graph).value().assignment);
  EXPECT_EQ(g.assigned_workers, s.assigned_workers);
  EXPECT_GE(g.max_roster, s.max_roster * 3 / 4)
      << "expected greedy to concentrate at least comparably";
}

}  // namespace
}  // namespace rdbsc::core
