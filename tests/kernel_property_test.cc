// Property tests for the batched geometry kernels (core/kernels.h).
//
// The kernels' contract is exact equality with the scalar IsValidPair
// oracle -- not approximate agreement -- so these tests sweep seeded
// uniform/skewed instances plus hand-built degenerate ones (zero-velocity
// workers, a worker standing on a task, full-circle vs. narrow vs.
// zero-width cones, arrivals landing exactly on t.start / t.end) and
// assert the kernel-built CandidateGraph rows and the grid retrieval are
// bit-identical to a brute-force oracle scan, at 1/2/8-way sharding.

#include "core/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "core/instance.h"
#include "core/model.h"
#include "gen/workload.h"
#include "gtest/gtest.h"
#include "index/grid_index.h"
#include "util/thread_pool.h"

namespace rdbsc {
namespace {

using core::ArrivalPolicy;
using core::Instance;
using core::Task;
using core::TaskId;
using core::Worker;
using core::WorkerId;

std::vector<std::vector<TaskId>> OracleRows(const Instance& instance) {
  std::vector<std::vector<TaskId>> rows(instance.num_workers());
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    for (TaskId i = 0; i < instance.num_tasks(); ++i) {
      if (core::IsValidPair(instance.task(i), instance.worker(j),
                            instance.now(), instance.policy())) {
        rows[j].push_back(i);
      }
    }
  }
  return rows;
}

Instance WithPolicy(const Instance& instance, ArrivalPolicy policy) {
  return Instance(instance.tasks(), instance.workers(), instance.now(),
                  policy);
}

// Kernel Build at 1/2/8-way sharding plus grid retrieval, all against the
// scalar oracle. Kernel rows and sorted grid rows are both ascending, so
// the comparison is element-exact.
void ExpectKernelMatchesOracle(const Instance& instance) {
  const std::vector<std::vector<TaskId>> oracle = OracleRows(instance);
  int64_t oracle_edges = 0;
  for (const auto& row : oracle) {
    oracle_edges += static_cast<int64_t>(row.size());
  }
  for (int threads : {1, 2, 8}) {
    core::CandidateGraph graph;
    if (threads == 1) {
      graph = core::CandidateGraph::Build(instance);
    } else {
      // A pool of N-1 workers plus the calling thread = N-way sharding.
      util::ThreadPool pool(threads - 1);
      graph =
          core::CandidateGraph::Build(instance, &pool, util::Deadline())
              .value();
    }
    ASSERT_EQ(graph.NumEdges(), oracle_edges) << threads << " threads";
    for (WorkerId j = 0; j < instance.num_workers(); ++j) {
      ASSERT_TRUE(std::ranges::equal(graph.TasksOf(j), oracle[j]))
          << threads << " threads, worker " << j;
    }
  }
  index::GridIndex index = index::GridIndex::Build(instance, 0.2);
  std::vector<std::vector<TaskId>> retrieved =
      index.RetrieveEdges(instance.num_workers()).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    ASSERT_EQ(retrieved[j], oracle[j]) << "grid, worker " << j;
  }
}

// Every certain ClassifyRow verdict must agree with the oracle. Returns
// the fraction of certain verdicts so sweeps can also assert the kernel
// stays useful (not everything uncertain).
double CertainFraction(const Instance& instance) {
  const core::InstanceSoA& soa = instance.soa();
  const core::TaskBlock& block = soa.task_block();
  std::vector<uint8_t> cls(block.size());
  int64_t certain = 0, total = 0;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    const core::WorkerGeom& geom = soa.worker_geoms()[j];
    if (geom.scalar_only) continue;
    core::ClassifyRow(geom, instance.policy(), block, cls.data());
    for (size_t k = 0; k < block.size(); ++k) {
      ++total;
      if (cls[k] == core::kPairUncertain) continue;
      ++certain;
      EXPECT_EQ(cls[k] == core::kPairAccept,
                core::IsValidPair(block.oracle[k], instance.worker(j),
                                  instance.now(), instance.policy()))
          << "worker " << j << ", task " << k;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(certain) / total;
}

gen::WorkloadConfig SweepConfig(uint64_t seed, bool skewed,
                                double angle_range) {
  gen::WorkloadConfig config;
  config.num_tasks = 40;
  config.num_workers = 60;
  config.seed = seed;
  config.angle_range = angle_range;
  if (skewed) {
    config.task_distribution = gen::SpatialDistribution::kSkewed;
    config.worker_distribution = gen::SpatialDistribution::kSkewed;
  }
  config.start_min = 0.0;
  config.start_max = 4.0;
  config.rt_min = 0.5;
  config.rt_max = 3.0;
  return config;
}

TEST(KernelPropertyTest, SweepMatchesOracleAtAllWidths) {
  const double kAngles[] = {std::numbers::pi / 24.0, std::numbers::pi / 6.0,
                            geo::kTwoPi};
  for (uint64_t seed : {1, 2, 3}) {
    for (bool skewed : {false, true}) {
      for (double angle : kAngles) {
        Instance base = gen::GenerateInstance(SweepConfig(seed, skewed, angle));
        for (ArrivalPolicy policy :
             {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
          ExpectKernelMatchesOracle(WithPolicy(base, policy));
        }
      }
    }
  }
}

TEST(KernelPropertyTest, ClassificationSoundAndMostlyCertain) {
  for (bool skewed : {false, true}) {
    gen::WorkloadConfig config = SweepConfig(11, skewed, std::numbers::pi / 6);
    config.num_tasks = 200;
    config.num_workers = 200;
    Instance base = gen::GenerateInstance(config);
    for (ArrivalPolicy policy :
         {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
      Instance instance = WithPolicy(base, policy);
      // The margins are ~1e-9 wide; on generated data essentially nothing
      // lands inside them. A collapse of this fraction would mean the
      // kernel degraded to oracle-per-pair (a perf regression the edge-set
      // tests cannot see).
      EXPECT_GT(CertainFraction(instance), 0.999);
    }
  }
}

TEST(KernelPropertyTest, DegenerateWorkersMatchOracle) {
  std::vector<Task> tasks;
  // A small lattice of tasks, including the exact location of worker 0.
  for (double x : {0.1, 0.3, 0.5, 0.7}) {
    for (double y : {0.2, 0.5, 0.8}) {
      Task t;
      t.location = {x, y};
      t.start = 0.5;
      t.end = x + 2.0 * y;  // varied periods, some unreachable
      tasks.push_back(t);
    }
  }
  std::vector<Worker> workers;
  Worker on_task;  // stands exactly on task (0.5, 0.5): direction is moot
  on_task.location = {0.5, 0.5};
  on_task.velocity = 0.4;
  on_task.direction = geo::AngularInterval(1.0, 1.5);
  workers.push_back(on_task);

  Worker stopped;  // zero velocity: every task unreachable
  stopped.location = {0.4, 0.4};
  stopped.velocity = 0.0;
  workers.push_back(stopped);

  Worker full;  // explicit full circle
  full.location = {0.9, 0.1};
  full.velocity = 0.6;
  full.direction = geo::AngularInterval::FullCircle();
  workers.push_back(full);

  Worker narrow;  // 1e-9 rad cone aimed at task (0.7, 0.8)
  narrow.location = {0.1, 0.2};
  narrow.velocity = 0.8;
  double aim = geo::Bearing(narrow.location, geo::Point{0.7, 0.8});
  narrow.direction = geo::AngularInterval(aim - 5e-10, aim + 5e-10);
  workers.push_back(narrow);

  Worker zero_width;  // lo == hi: a single admissible direction
  zero_width.location = {0.3, 0.9};
  zero_width.velocity = 0.5;
  zero_width.direction = geo::AngularInterval(aim, aim);
  workers.push_back(zero_width);

  Worker late;  // checks in long after now
  late.location = {0.6, 0.6};
  late.velocity = 0.7;
  late.available_from = 1.75;
  workers.push_back(late);

  for (ArrivalPolicy policy :
       {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
    Instance instance(tasks, workers, /*now=*/0.25, policy);
    ExpectKernelMatchesOracle(instance);
    CertainFraction(instance);  // soundness EXPECTs inside
  }
}

TEST(KernelPropertyTest, BoundaryArrivalsMatchOracle) {
  Worker w;
  w.location = {0.25, 0.75};
  w.velocity = 0.35;
  w.available_from = 0.5;
  const double now = 0.125;

  std::vector<Task> tasks;
  for (double x : {0.5, 0.8125, 0.26}) {
    Task probe;
    probe.location = {x, 0.3};
    const double arrival =
        core::ArrivalTime(w, probe, now, ArrivalPolicy::kStrict);
    // Arrival exactly on each boundary, plus one-ulp misses on both sides:
    // the kernel must leave all of these to the oracle (or judge them the
    // same way), never flip them.
    for (double start : {arrival, std::nextafter(arrival, 2.0 * arrival),
                         std::nextafter(arrival, 0.0)}) {
      Task t = probe;
      t.start = start;
      t.end = start + 1.0;
      tasks.push_back(t);
      t.start = start - 1.0;
      t.end = start;
      tasks.push_back(t);
      t.start = start;
      t.end = start;  // zero-length period: valid iff arrival == start
      tasks.push_back(t);
    }
  }
  std::vector<Worker> workers = {w};
  Worker free = w;  // same geometry, full circle, so direction never blocks
  free.direction = geo::AngularInterval::FullCircle();
  workers.push_back(free);

  for (ArrivalPolicy policy :
       {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
    Instance instance(tasks, workers, now, policy);
    ExpectKernelMatchesOracle(instance);
    CertainFraction(instance);
  }
}

// ObservationRow batches MakeObservation over a task block; the contract
// is the exact scalar sequence, observation by observation.
TEST(KernelPropertyTest, ObservationRowMatchesScalarSequence) {
  for (uint64_t seed : {1, 7}) {
    Instance base = gen::GenerateInstance(SweepConfig(seed, seed == 7,
                                                      std::numbers::pi / 6));
    for (ArrivalPolicy policy :
         {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
      Instance instance = WithPolicy(base, policy);
      std::vector<core::Observation> row;
      for (WorkerId j = 0; j < instance.num_workers(); ++j) {
        core::ObservationRow(instance.worker(j), instance.now(), policy,
                             instance.soa().task_block(), &row);
        ASSERT_EQ(row.size(), static_cast<size_t>(instance.num_tasks()));
        for (TaskId i = 0; i < instance.num_tasks(); ++i) {
          const core::Observation want = core::MakeObservation(
              instance.task(i), instance.worker(j), instance.now(), policy);
          EXPECT_EQ(row[static_cast<size_t>(i)].angle, want.angle);
          EXPECT_EQ(row[static_cast<size_t>(i)].arrival, want.arrival);
          EXPECT_EQ(row[static_cast<size_t>(i)].confidence, want.confidence);
        }
      }
    }
  }
}

// ClassifyPairWindow: validity must equal the scalar oracle at the query
// time, and the stability horizon must be sound -- re-evaluating at any
// probe time inside the window yields the same validity verdict.
TEST(KernelPropertyTest, PairWindowValidityAndHorizonAreSound) {
  Instance base = gen::GenerateInstance(SweepConfig(3, true,
                                                    std::numbers::pi / 6));
  for (ArrivalPolicy policy :
       {ArrivalPolicy::kStrict, ArrivalPolicy::kAllowWait}) {
    Instance instance = WithPolicy(base, policy);
    const double now = instance.now();
    for (WorkerId j = 0; j < instance.num_workers(); ++j) {
      for (TaskId i = 0; i < instance.num_tasks(); ++i) {
        const Task& t = instance.task(i);
        const Worker& w = instance.worker(j);
        const core::PairWindow pw =
            core::ClassifyPairWindow(t, w, now, policy);
        ASSERT_EQ(pw.valid, core::IsValidPair(t, w, now, policy));
        ASSERT_GE(pw.stable_until, now);
        const double horizon =
            std::isinf(pw.stable_until) ? now + 1e6 : pw.stable_until;
        for (double frac : {0.25, 0.75, 1.0}) {
          const double probe = now + frac * (horizon - now);
          EXPECT_EQ(core::IsValidPair(t, w, probe, policy), pw.valid)
              << "worker " << j << " task " << i << " probe " << probe;
        }
      }
    }
  }
}

TEST(KernelPropertyTest, SoaViewIsCachedAndSharedAcrossCopies) {
  Instance instance = gen::GenerateInstance(SweepConfig(5, false, 1.0));
  const core::InstanceSoA* first = &instance.soa();
  EXPECT_EQ(first, &instance.soa());
  Instance copy = instance;
  EXPECT_EQ(first, &copy.soa());
  EXPECT_EQ(first->num_workers(), instance.num_workers());
  EXPECT_EQ(first->task_block().size(),
            static_cast<size_t>(instance.num_tasks()));
}

}  // namespace
}  // namespace rdbsc
