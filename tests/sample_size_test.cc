#include "core/sample_size.h"

#include <cmath>

#include "gtest/gtest.h"

namespace rdbsc::core {
namespace {

SampleSizeParams Params(double eps, double delta, double log_n) {
  SampleSizeParams p;
  p.epsilon = eps;
  p.delta = delta;
  p.log_population = log_n;
  return p;
}

TEST(SampleSizeLowerBoundTest, SmallForTinyPopulations) {
  // p*M = 1-eps regardless of N, so the bound stays O(1).
  double bound = SampleSizeLowerBound(Params(0.1, 0.9, std::log(100.0)));
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 10.0);
}

TEST(SampleSizeLowerBoundTest, StableForHugePopulations) {
  double small = SampleSizeLowerBound(Params(0.1, 0.9, 50.0));
  double huge = SampleSizeLowerBound(Params(0.1, 0.9, 5000.0));
  // e(1-eps) - 1 in the limit; both regimes should be close to it.
  double limit = std::exp(1.0) * 0.9 - 1.0;
  EXPECT_NEAR(small, limit, 0.2);
  EXPECT_NEAR(huge, limit, 0.05);
}

TEST(LogProbRankAtMostTest, DecreasesInK) {
  SampleSizeParams params = Params(0.1, 0.9, 30.0);
  double prev = LogProbRankAtMost(params, 2);
  for (int64_t k = 3; k < 40; ++k) {
    double current = LogProbRankAtMost(params, k);
    EXPECT_LT(current, prev) << "k=" << k;
    prev = current;
  }
}

TEST(LogProbRankAtMostTest, AsymptoticRegimeIsFiniteAndDecreasing) {
  SampleSizeParams params = Params(0.1, 0.9, 10'000.0);  // N ~ e^10000
  double prev = LogProbRankAtMost(params, 1);
  EXPECT_TRUE(std::isfinite(prev));
  for (int64_t k = 2; k < 30; ++k) {
    double current = LogProbRankAtMost(params, k);
    EXPECT_TRUE(std::isfinite(current));
    EXPECT_LT(current, prev);
    prev = current;
  }
}

TEST(LogProbRankAtMostTest, RegimesAgreeNearTheSwitch) {
  // Just below and just above the huge-N switch (ln N = 25) the exact and
  // asymptotic forms should approximately agree.
  for (int64_t k : {2, 5, 10}) {
    double exact = LogProbRankAtMost(Params(0.2, 0.9, 24.9), k);
    double asymptotic = LogProbRankAtMost(Params(0.2, 0.9, 25.1), k);
    EXPECT_NEAR(exact, asymptotic, 0.01) << "k=" << k;
  }
}

TEST(DetermineSampleSizeTest, TrivialPopulation) {
  EXPECT_EQ(DetermineSampleSize(Params(0.1, 0.9, 0.0), 100), 1);
}

TEST(DetermineSampleSizeTest, MeetsConfidenceTarget) {
  SampleSizeParams params = Params(0.1, 0.9, 40.0);
  int64_t k = DetermineSampleSize(params, 10'000);
  double log_target = std::log1p(-params.delta);
  EXPECT_LE(LogProbRankAtMost(params, k), log_target);
  if (k > 1) {
    EXPECT_GT(LogProbRankAtMost(params, k - 1), log_target)
        << "K-hat is not minimal";
  }
}

TEST(DetermineSampleSizeTest, TighterEpsilonNeedsMoreSamples) {
  int64_t loose = DetermineSampleSize(Params(0.3, 0.9, 100.0), 10'000);
  int64_t tight = DetermineSampleSize(Params(0.05, 0.9, 100.0), 10'000);
  EXPECT_GT(tight, loose);
}

TEST(DetermineSampleSizeTest, HigherConfidenceNeedsMoreSamples) {
  int64_t low = DetermineSampleSize(Params(0.1, 0.5, 100.0), 10'000);
  int64_t high = DetermineSampleSize(Params(0.1, 0.99, 100.0), 10'000);
  EXPECT_GE(high, low);
}

TEST(DetermineSampleSizeTest, RespectsCap) {
  int64_t k = DetermineSampleSize(Params(0.001, 0.999, 1'000.0), 64);
  EXPECT_LE(k, 64);
  EXPECT_GE(k, 1);
}

TEST(DetermineSampleSizeTest, PaperScalePopulationsStaySmall) {
  // 10K workers with ~20 reachable tasks each: log N ~ 10000 * 3.
  int64_t k = DetermineSampleSize(Params(0.1, 0.9, 30'000.0), 100'000);
  // The paper observes "SAMPLING only takes several seconds (due to small
  // sample size)": K-hat must be modest.
  EXPECT_LT(k, 100);
  EXPECT_GE(k, 2);
}

}  // namespace
}  // namespace rdbsc::core
