#include "index/grid_index.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "gtest/gtest.h"
#include "index/cost_model.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "test_util.h"

namespace rdbsc::index {
namespace {

using core::CandidateGraph;
using core::Instance;
using core::TaskId;
using core::WorkerId;

// Canonical comparison: the index must produce exactly the edges the
// brute-force predicate produces.
void ExpectSameEdges(const Instance& instance, const GridIndex& index) {
  CandidateGraph brute = CandidateGraph::Build(instance);
  std::vector<std::vector<TaskId>> indexed =
      index.RetrieveEdges(instance.num_workers()).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    const auto row = brute.TasksOf(j);
    std::vector<TaskId> expected(row.begin(), row.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(indexed[j], expected) << "worker " << j;
  }
}

TEST(GridIndexTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    Instance instance = test::SmallInstance(seed, 40, 60);
    GridIndex index = GridIndex::Build(instance, /*eta=*/0.1);
    ExpectSameEdges(instance, index);
  }
}

TEST(GridIndexTest, MatchesBruteForceAcrossCellSizes) {
  Instance instance = test::SmallInstance(7, 30, 50);
  for (double eta : {0.02, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    GridIndex index = GridIndex::Build(instance, eta);
    ExpectSameEdges(instance, index);
  }
}

TEST(GridIndexTest, PruningActuallyFires) {
  // Narrow cones and short periods make many cells unreachable.
  gen::WorkloadConfig config;
  config.num_tasks = 60;
  config.num_workers = 60;
  config.angle_range = 0.3;
  config.rt_min = 0.2;
  config.rt_max = 0.4;
  config.v_min = 0.05;
  config.v_max = 0.1;
  config.seed = 13;
  Instance instance = gen::GenerateInstance(config);
  GridIndex index = GridIndex::Build(instance, 0.08);
  RetrievalStats stats;
  index.RetrieveEdges(instance.num_workers(), &stats).value();
  EXPECT_GT(stats.cell_pairs_pruned, 0);
  ExpectSameEdges(instance, index);  // and pruning is safe
}

TEST(GridIndexTest, DuplicateInsertRejected) {
  GridIndex index(0.1);
  core::Worker w;
  w.location = {0.2, 0.2};
  EXPECT_TRUE(index.InsertWorker(1, w).ok());
  util::Status dup = index.InsertWorker(1, w);
  EXPECT_EQ(dup.code(), util::StatusCode::kAlreadyExists);
  core::Task t = test::MakeTask();
  EXPECT_TRUE(index.InsertTask(1, t).ok());
  EXPECT_EQ(index.InsertTask(1, t).code(),
            util::StatusCode::kAlreadyExists);
}

TEST(GridIndexTest, RemoveMissingRejected) {
  GridIndex index(0.1);
  EXPECT_EQ(index.RemoveWorker(5).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(index.RemoveTask(5).code(), util::StatusCode::kNotFound);
}

TEST(GridIndexTest, DynamicChurnStaysConsistent) {
  Instance instance = test::SmallInstance(11, 30, 40);
  GridIndex index = GridIndex::Build(instance, 0.1);
  // Remove half the workers and a third of the tasks...
  std::vector<core::Task> tasks;
  std::vector<core::Worker> workers;
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (j % 2 == 0) {
      ASSERT_TRUE(index.RemoveWorker(j).ok());
    }
  }
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(index.RemoveTask(i).ok());
    }
  }
  // ... and rebuild the same reduced instance for brute-force comparison,
  // re-inserting under fresh contiguous ids.
  GridIndex fresh(0.1);
  std::vector<core::Task> kept_tasks;
  std::vector<core::Worker> kept_workers;
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    if (i % 3 != 0) kept_tasks.push_back(instance.task(i));
  }
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (j % 2 != 0) kept_workers.push_back(instance.worker(j));
  }
  Instance reduced(kept_tasks, kept_workers, instance.now(),
                   instance.policy());
  for (TaskId i = 0; i < reduced.num_tasks(); ++i) {
    ASSERT_TRUE(fresh.InsertTask(i, reduced.task(i)).ok());
  }
  for (WorkerId j = 0; j < reduced.num_workers(); ++j) {
    ASSERT_TRUE(fresh.InsertWorker(j, reduced.worker(j)).ok());
  }
  ExpectSameEdges(reduced, fresh);

  // The churned index must agree with brute force on the surviving ids.
  CandidateGraph brute = CandidateGraph::Build(instance);
  std::vector<std::vector<TaskId>> edges =
      index.RetrieveEdges(instance.num_workers()).value();
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (j % 2 == 0) {
      EXPECT_TRUE(edges[j].empty());
      continue;
    }
    std::vector<TaskId> expected;
    for (TaskId i : brute.TasksOf(j)) {
      if (i % 3 != 0) expected.push_back(i);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(edges[j], expected) << "worker " << j;
  }
}

TEST(GridIndexTest, ReinsertAfterRemoveWorks) {
  GridIndex index(0.2);
  core::Worker w;
  w.location = {0.5, 0.5};
  ASSERT_TRUE(index.InsertWorker(0, w).ok());
  ASSERT_TRUE(index.RemoveWorker(0).ok());
  EXPECT_TRUE(index.InsertWorker(0, w).ok());
  EXPECT_EQ(index.num_workers(), 1);
}

TEST(GridIndexTest, ReachableCellsSubsetOfAllTaskCells) {
  Instance instance = test::SmallInstance(17, 40, 40);
  GridIndex index = GridIndex::Build(instance, 0.1);
  std::vector<int> reachable =
      index.ReachableCells(instance.worker(0).location);
  EXPECT_LE(static_cast<int>(reachable.size()), index.num_cells());
  for (int cell : reachable) {
    EXPECT_GE(cell, 0);
    EXPECT_LT(cell, index.num_cells());
  }
}

TEST(GridIndexTest, CachedReachabilityMatchesFreshAfterChurn) {
  Instance instance = test::SmallInstance(19, 50, 50);
  GridIndex index = GridIndex::Build(instance, 0.1);
  util::Rng rng(19);

  // Warm the cache everywhere.
  for (int cell = 0; cell < index.num_cells(); ++cell) {
    index.CachedReachable(cell);
  }
  int64_t rebuilds_after_warm = index.reachability_rebuilds();

  // Random insert/remove churn with cache patching along the way.
  std::vector<bool> worker_in(instance.num_workers(), true);
  std::vector<bool> task_in(instance.num_tasks(), true);
  for (int step = 0; step < 120; ++step) {
    if (rng.Bernoulli(0.5)) {
      WorkerId j = static_cast<WorkerId>(
          rng.UniformInt(0, instance.num_workers() - 1));
      if (worker_in[j]) {
        ASSERT_TRUE(index.RemoveWorker(j).ok());
      } else {
        ASSERT_TRUE(index.InsertWorker(j, instance.worker(j)).ok());
      }
      worker_in[j] = !worker_in[j];
    } else {
      TaskId i = static_cast<TaskId>(
          rng.UniformInt(0, instance.num_tasks() - 1));
      if (task_in[i]) {
        ASSERT_TRUE(index.RemoveTask(i).ok());
      } else {
        ASSERT_TRUE(index.InsertTask(i, instance.task(i)).ok());
      }
      task_in[i] = !task_in[i];
    }
  }
  EXPECT_GT(index.reachability_patches(), 0);

  // The cached lists must equal a from-scratch index over the survivors.
  GridIndex fresh(0.1, instance.now(), instance.policy());
  for (TaskId i = 0; i < instance.num_tasks(); ++i) {
    if (task_in[i]) {
      ASSERT_TRUE(fresh.InsertTask(i, instance.task(i)).ok());
    }
  }
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (worker_in[j]) {
      ASSERT_TRUE(fresh.InsertWorker(j, instance.worker(j)).ok());
    }
  }
  for (int cell = 0; cell < index.num_cells(); ++cell) {
    EXPECT_EQ(index.CachedReachable(cell), fresh.CachedReachable(cell))
        << "cell " << cell;
  }
  // And retrieval stays exact.
  std::vector<core::Task> kept_tasks;
  std::vector<core::Worker> kept_workers_padded = instance.workers();
  auto edges = index.RetrieveEdges(instance.num_workers()).value();
  CandidateGraph brute = CandidateGraph::Build(instance);
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    std::vector<TaskId> expected;
    if (worker_in[j]) {
      for (TaskId i : brute.TasksOf(j)) {
        if (task_in[i]) expected.push_back(i);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(edges[j], expected) << "worker " << j;
  }
  (void)rebuilds_after_warm;
}

TEST(GridIndexTest, WarmCacheAvoidsRebuilds) {
  Instance instance = test::SmallInstance(23, 40, 40);
  GridIndex index = GridIndex::Build(instance, 0.1);
  index.RetrieveEdges(instance.num_workers()).value();
  int64_t rebuilds = index.reachability_rebuilds();
  // A second retrieval with no churn rebuilds nothing.
  index.RetrieveEdges(instance.num_workers()).value();
  EXPECT_EQ(index.reachability_rebuilds(), rebuilds);
}

TEST(GridIndexTest, ConcurrentRetrievalIsSafeAndConsistent) {
  // Regression: lazy summary repair used to mutate cells from the const
  // retrieval path, so two concurrent read-only retrievals raced. Repair
  // is now eager (on mutation) and the reachability cache is guarded, so
  // concurrent retrievals on a shared index must all agree with a single
  // serial retrieval -- including right after churn left caches cold.
  Instance instance = test::SmallInstance(29, 60, 60);
  GridIndex index = GridIndex::Build(instance, 0.1);
  // Churn so summaries shrank and several tcell_lists are invalid.
  for (WorkerId j = 0; j < instance.num_workers(); j += 4) {
    ASSERT_TRUE(index.RemoveWorker(j).ok());
  }
  for (TaskId i = 0; i < instance.num_tasks(); i += 5) {
    ASSERT_TRUE(index.RemoveTask(i).ok());
  }

  constexpr int kReaders = 4;
  std::vector<std::vector<std::vector<TaskId>>> edges(kReaders);
  std::vector<RetrievalStats> stats(kReaders);
  {
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        edges[r] =
            index.RetrieveEdges(instance.num_workers(), &stats[r]).value();
      });
    }
    for (std::thread& reader : readers) reader.join();
  }

  RetrievalStats serial_stats;
  std::vector<std::vector<TaskId>> serial =
      index.RetrieveEdges(instance.num_workers(), &serial_stats).value();
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(edges[r], serial) << "reader " << r;
    EXPECT_EQ(stats[r].pair_tests, serial_stats.pair_tests);
    EXPECT_EQ(stats[r].edges, serial_stats.edges);
  }
}

TEST(GridIndexTest, RetrievalReportsTrippedDeadline) {
  Instance instance = test::SmallInstance(31, 40, 40);
  GridIndex index = GridIndex::Build(instance, 0.1);
  util::CancelToken cancel;
  cancel.Cancel();
  util::Deadline tripped(/*budget_seconds=*/0.0, &cancel);
  auto edges =
      index.RetrieveEdges(instance.num_workers(), nullptr, nullptr, tripped);
  EXPECT_FALSE(edges.ok());
  EXPECT_EQ(edges.status().code(), util::StatusCode::kCancelled);
  auto pairs = index.RetrievePairs(nullptr, nullptr, tripped);
  EXPECT_FALSE(pairs.ok());
  EXPECT_EQ(pairs.status().code(), util::StatusCode::kCancelled);
}

TEST(GridIndexTest, EtaClamping) {
  GridIndex tiny(1e-9);
  EXPECT_LE(tiny.cells_per_axis(), 1024);
  GridIndex huge(5.0);
  EXPECT_EQ(huge.cells_per_axis(), 1);
}

TEST(CostModelTest, UniformClosedForm) {
  CostModelParams params;
  params.l_max = 0.3;
  params.d2 = 2.0;
  params.num_points = 10'000;
  EXPECT_NEAR(OptimalEta(params), std::cbrt(0.3 / 9'999.0), 1e-6);
}

TEST(CostModelTest, MorePointsMeanFinerGrid) {
  CostModelParams a, b;
  a.l_max = b.l_max = 0.3;
  a.d2 = b.d2 = 2.0;
  a.num_points = 1'000;
  b.num_points = 100'000;
  EXPECT_GT(OptimalEta(a), OptimalEta(b));
}

TEST(CostModelTest, LargerReachMeansCoarserGrid) {
  CostModelParams a, b;
  a.num_points = b.num_points = 10'000;
  a.d2 = b.d2 = 2.0;
  a.l_max = 0.05;
  b.l_max = 0.5;
  EXPECT_LT(OptimalEta(a), OptimalEta(b));
}

TEST(CostModelTest, SkewedDataChangesEta) {
  CostModelParams uniform, skewed;
  uniform.num_points = skewed.num_points = 10'000;
  uniform.l_max = skewed.l_max = 0.3;
  uniform.d2 = 2.0;
  skewed.d2 = 1.4;
  // The optimum exists and differs; both solve Eq. (23).
  double eu = OptimalEta(uniform);
  double es = OptimalEta(skewed);
  EXPECT_GT(eu, 0.0);
  EXPECT_GT(es, 0.0);
  EXPECT_NE(eu, es);
}

TEST(CostModelTest, OptimalEtaMinimizesEstimatedCost) {
  CostModelParams params;
  params.l_max = 0.25;
  params.d2 = 2.0;
  params.num_points = 5'000;
  double eta_star = OptimalEta(params);
  double best = EstimateUpdateCost(eta_star, params);
  for (double factor : {0.25, 0.5, 2.0, 4.0}) {
    EXPECT_LE(best, EstimateUpdateCost(eta_star * factor, params) + 1e-6)
        << "factor " << factor;
  }
}

TEST(CostModelTest, DegenerateInputs) {
  CostModelParams params;
  params.num_points = 1;
  EXPECT_DOUBLE_EQ(OptimalEta(params), 1.0);
}

}  // namespace
}  // namespace rdbsc::index
