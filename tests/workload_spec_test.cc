// Parser-level tests of the declarative workload format (src/wl/spec.h):
// golden round-trips through the canonical printer, template/include
// composition, include-cycle detection, and a table of known-bad inputs
// asserting each error's exact file:line:col position and message.

#include "wl/spec.h"

#include <map>
#include <string>

#include "gtest/gtest.h"
#include "wl/compile.h"

namespace rdbsc::wl {
namespace {

/// In-memory file set standing in for the filesystem loader.
FileLoader MapLoader(std::map<std::string, std::string> files) {
  return [files = std::move(files)](
             const std::string& path) -> util::StatusOr<std::string> {
    auto it = files.find(path);
    if (it == files.end()) {
      return util::Status::NotFound("no such file '" + path + "'");
    }
    return it->second;
  };
}

constexpr char kFullSpec[] = R"(# every construct in one document
workload full
seed 9
solver greedy
policy shed
queue_depth 40
cache rw
cache_entries 128 32

template base {
  mode closed
  submitters 3
  tasks 4 9
  workers 8 16
  mix submit 2 urgent 1
}

phase first extends base {
  iterations 5
  priority 1 4
  seed_pool 100
  dist skewed
  cache ro
}

phase second {
  mode open
  submitters 2
  rate 25.5
  duration 0.75
  arrival poisson
  restart on
  mix cached 3 uncached 1 cancel 1
}
)";

TEST(WorkloadSpec, ParsesEveryConstruct) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(kFullSpec, "full.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  const WorkloadSpec& s = spec.value();
  EXPECT_EQ(s.name, "full");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.solver, "greedy");
  EXPECT_EQ(s.policy, engine::OverloadPolicy::kShedOldest);
  // 40 covers the open phase's worst case (2 submitters x 19 ops) under
  // the shed policy's capacity guard.
  EXPECT_EQ(s.queue_depth, 40);
  EXPECT_EQ(s.cache_mode, engine::CacheMode::kReadWrite);
  EXPECT_EQ(s.cache_result_entries, 128);
  EXPECT_EQ(s.cache_graph_entries, 32);
  ASSERT_EQ(s.phases.size(), 2u);

  const PhaseSpec& first = s.phases[0];
  EXPECT_EQ(first.name, "first");
  EXPECT_EQ(first.mode, PhaseMode::kClosed);
  EXPECT_EQ(first.submitters, 3);  // inherited from `base`
  EXPECT_EQ(first.iterations, 5);  // overridden
  EXPECT_EQ(first.tasks_min, 4);
  EXPECT_EQ(first.tasks_max, 9);
  EXPECT_EQ(first.priority_min, 1);
  EXPECT_EQ(first.priority_max, 4);
  EXPECT_EQ(first.seed_pool, 100);
  EXPECT_TRUE(first.skewed);
  EXPECT_EQ(first.cache, engine::CacheMode::kReadOnly);
  EXPECT_FALSE(first.restart);
  ASSERT_EQ(first.mix.size(), 2u);  // inherited mix
  EXPECT_EQ(first.mix[0].op, OpKind::kSubmit);
  EXPECT_EQ(first.mix[0].weight, 2);
  EXPECT_EQ(first.mix[1].op, OpKind::kUrgent);

  const PhaseSpec& second = s.phases[1];
  EXPECT_EQ(second.mode, PhaseMode::kOpen);
  EXPECT_DOUBLE_EQ(second.rate_per_second, 25.5);
  EXPECT_DOUBLE_EQ(second.duration_seconds, 0.75);
  EXPECT_EQ(second.arrival, ArrivalProcess::kPoisson);
  EXPECT_TRUE(second.restart);
  ASSERT_EQ(second.mix.size(), 3u);
  EXPECT_EQ(second.mix[0].op, OpKind::kCached);
  EXPECT_EQ(second.mix[1].op, OpKind::kUncached);
  EXPECT_EQ(second.mix[2].op, OpKind::kCancel);
}

TEST(WorkloadSpec, DumpRoundTripsToAFixedPoint) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(kFullSpec, "full.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  std::string dump = DumpSpec(spec.value());

  util::StatusOr<WorkloadSpec> reparsed = ParseWorkloadText(dump, "dump.wl");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(DumpSpec(reparsed.value()), dump);
}

TEST(WorkloadSpec, DefaultsAreAppliedAndRoundTrip) {
  util::StatusOr<WorkloadSpec> spec =
      ParseWorkloadText("phase only {\n}\n", "tiny.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  const WorkloadSpec& s = spec.value();
  EXPECT_EQ(s.name, "tiny");  // falls back to the source stem
  EXPECT_EQ(s.solver, "dc");
  EXPECT_EQ(s.policy, engine::OverloadPolicy::kBlock);
  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].mode, PhaseMode::kClosed);
  EXPECT_EQ(s.phases[0].submitters, 2);
  ASSERT_EQ(s.phases[0].mix.size(), 1u);
  EXPECT_EQ(s.phases[0].mix[0].op, OpKind::kSubmit);

  std::string dump = DumpSpec(s);
  util::StatusOr<WorkloadSpec> reparsed = ParseWorkloadText(dump, "tiny.wl");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(DumpSpec(reparsed.value()), dump);
}

TEST(WorkloadSpec, IncludeSplicesTemplatesAndSettings) {
  FileLoader loader = MapLoader({
      {"lib/common.wl", "solver greedy\ntemplate base {\n  submitters 7\n}\n"},
  });
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "include \"lib/common.wl\"\nphase p extends base {\n}\n", "main.wl",
      loader);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec.value().solver, "greedy");
  ASSERT_EQ(spec.value().phases.size(), 1u);
  EXPECT_EQ(spec.value().phases[0].submitters, 7);
}

TEST(WorkloadSpec, IncludePathsResolveRelativeToIncluder) {
  FileLoader loader = MapLoader({
      {"dir/a.wl", "include \"b.wl\"\n"},
      {"dir/b.wl", "seed 77\n"},
  });
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "include \"dir/a.wl\"\nphase p {\n}\n", "main.wl", loader);
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  EXPECT_EQ(spec.value().seed, 77u);
}

TEST(WorkloadSpec, PhaseMayExtendEarlierPhase) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "phase a {\n  submitters 5\n}\nphase b extends a {\n  iterations 9\n}\n",
      "x.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  ASSERT_EQ(spec.value().phases.size(), 2u);
  EXPECT_EQ(spec.value().phases[1].submitters, 5);
  EXPECT_EQ(spec.value().phases[1].iterations, 9);
}

TEST(WorkloadSpec, IncludeCycleIsDetected) {
  FileLoader loader = MapLoader({
      {"a.wl", "include \"b.wl\"\n"},
      {"b.wl", "include \"a.wl\"\n"},
  });
  util::StatusOr<WorkloadSpec> spec =
      ParseWorkloadText("include \"a.wl\"\n", "main.wl", loader);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("include cycle"), std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("a.wl -> b.wl -> a.wl"),
            std::string::npos)
      << spec.status().message();
}

TEST(WorkloadSpec, SelfIncludeIsACycle) {
  FileLoader loader = MapLoader({{"a.wl", "include \"a.wl\"\n"}});
  util::StatusOr<WorkloadSpec> spec =
      ParseWorkloadText("include \"a.wl\"\n", "main.wl", loader);
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("include cycle"), std::string::npos);
}

TEST(WorkloadSpec, MissingIncludeReportsTheLoaderError) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "include \"nope.wl\"\n", "main.wl", MapLoader({}));
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("main.wl:1:9"), std::string::npos)
      << spec.status().message();
  EXPECT_NE(spec.status().message().find("nope.wl"), std::string::npos);
}

/// Known-bad inputs: each must fail with the expected positioned message.
struct BadCase {
  const char* name;
  const char* text;
  const char* expect;  ///< substring of the error, starting "file:line:col"
};

TEST(WorkloadSpecErrors, PositionsAndMessagesAreExact) {
  const BadCase cases[] = {
      {"unknown statement", "wibble 3\n", "bad.wl:1:1: unknown statement 'wibble'"},
      {"unknown policy", "policy blok\n",
       "bad.wl:1:8: unknown admission policy 'blok' (expected "
       "block|reject|shed)"},
      {"unknown mode", "phase p {\n  mode sideways\n}\n",
       "bad.wl:2:8: unknown mode 'sideways' (expected closed|open)"},
      {"unknown phase key", "phase p {\n  colour red\n}\n",
       "bad.wl:2:3: unknown phase key 'colour'"},
      {"bad weight", "phase p {\n  mix submit -1\n}\n",
       "bad.wl:2:14: expected a non-negative integer, got '-1'"},
      {"non-numeric weight", "phase p {\n  mix submit lots\n}\n",
       "bad.wl:2:14: expected an integer, got 'lots'"},
      {"unknown op kind", "phase p {\n  mix teleport 1\n}\n",
       "bad.wl:2:7: unknown op kind 'teleport' (expected "
       "submit|urgent|cached|uncached|cancel)"},
      {"odd mix tokens", "phase p {\n  mix submit\n}\n",
       "bad.wl:2:3: 'mix' expects op/weight pairs"},
      {"zero mix total", "phase p {\n  mix submit 0 cancel 0\n}\n",
       "bad.wl:2:3: mix weights must sum to > 0"},
      {"duplicate mix op", "phase p {\n  mix submit 1 submit 2\n}\n",
       "bad.wl:2:16: duplicate op kind 'submit' in mix"},
      {"empty range", "phase p {\n  tasks 9 3\n}\n",
       "bad.wl:2:9: empty range: 9 > 3"},
      {"missing argument", "seed\n", "bad.wl:1:1: 'seed' expects 1 argument"},
      {"trailing token", "seed 1 2\n",
       "bad.wl:1:8: unexpected token '2' after 'seed'"},
      {"bad integer", "queue_depth many\n",
       "bad.wl:1:13: expected an integer, got 'many'"},
      {"zero queue depth", "queue_depth 0\n",
       "bad.wl:1:13: queue_depth must be >= 1"},
      {"unknown cache mode", "cache sideways\n",
       "bad.wl:1:7: unknown cache mode 'sideways' (expected off|ro|wo|rw)"},
      {"top-level cache default", "cache default\n",
       "bad.wl:1:7: unknown cache mode 'default'"},
      {"unknown template", "phase p extends nope {\n}\n",
       "bad.wl:1:17: unknown template 'nope'"},
      {"duplicate phase", "phase p {\n}\nphase p {\n}\n",
       "bad.wl:3:7: duplicate phase name 'p'"},
      {"unmatched close", "}\n", "bad.wl:1:1: unmatched '}'"},
      {"unterminated block", "phase p {\n  mode open\n",
       "bad.wl:2:1: unterminated block for 'p' (missing '}')"},
      {"unterminated string", "include \"x\n",
       "bad.wl:1:9: unterminated string literal"},
      {"unquoted include", "include x.wl\n",
       "bad.wl:1:9: include path must be a \"quoted\" string"},
      {"include without loader", "include \"x.wl\"\n",
       "bad.wl:1:1: includes are not available here"},
      {"bad block header", "phase p extends {\n}\n",
       "bad.wl:1:1: expected 'phase NAME [extends BASE] {'"},
      {"invalid phase name", "phase 9lives {\n}\n",
       "bad.wl:1:7: invalid phase name '9lives'"},
      {"statement inside nothing", "mode open\n",
       "bad.wl:1:1: unknown statement 'mode'"},
  };
  for (const BadCase& test_case : cases) {
    util::StatusOr<WorkloadSpec> spec =
        ParseWorkloadText(test_case.text, "bad.wl");
    ASSERT_FALSE(spec.ok()) << test_case.name;
    EXPECT_NE(spec.status().message().find(test_case.expect),
              std::string::npos)
        << test_case.name << ": got \"" << spec.status().message() << "\"";
  }
}

TEST(WorkloadCompile, OpenPhaseDerivesOpCountFromRateTimesDuration) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "phase p {\n  mode open\n  submitters 2\n  rate 10\n  duration 0.5\n}\n",
      "x.wl");
  ASSERT_TRUE(spec.ok()) << spec.status().message();
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  ASSERT_EQ(compiled.value().phases.size(), 1u);
  EXPECT_EQ(compiled.value().phases[0].total_ops, 10);  // 2 x floor(10*0.5)
  // Fixed arrivals are evenly spaced at 1/rate.
  const CompiledSubmitter& submitter =
      compiled.value().phases[0].submitters[0];
  ASSERT_EQ(submitter.ops.size(), 5u);
  EXPECT_DOUBLE_EQ(submitter.ops[0].arrival_offset_seconds, 0.0);
  EXPECT_DOUBLE_EQ(submitter.ops[3].arrival_offset_seconds, 0.3);
}

TEST(WorkloadCompile, RejectsOpenPhaseWithoutRate) {
  util::StatusOr<WorkloadSpec> spec =
      ParseWorkloadText("phase p {\n  mode open\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("open mode requires rate > 0"),
            std::string::npos);
}

TEST(WorkloadCompile, RejectsUnknownSolver) {
  util::StatusOr<WorkloadSpec> spec =
      ParseWorkloadText("solver quantum\nphase p {\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("unknown solver 'quantum'"),
            std::string::npos);
}

TEST(WorkloadCompile, CapacityGuardRejectsTimingDependentAdmission) {
  // 9 closed-loop submitters against an 8-deep queue under kReject: the
  // 9th outstanding submission *may* be rejected depending on dispatch
  // timing, so the compiler must refuse.
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "policy reject\nqueue_depth 8\nphase p {\n  submitters 9\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("timing-dependent"),
            std::string::npos)
      << compiled.status().message();

  // Exactly at capacity is provably safe and accepted.
  spec = ParseWorkloadText(
      "policy reject\nqueue_depth 8\nphase p {\n  submitters 8\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(CompileWorkload(spec.value()).ok());

  // Blocking admission never rejects, so any load is fine.
  spec = ParseWorkloadText(
      "policy block\nqueue_depth 8\nphase p {\n  submitters 9\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(CompileWorkload(spec.value()).ok());
}

TEST(WorkloadCompile, EnforcesCaps) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(
      "phase p {\n  iterations 100000\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(CompileWorkload(spec.value()).ok());

  spec = ParseWorkloadText("phase p {\n  tasks 1 9999\n}\n", "x.wl");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(CompileWorkload(spec.value()).ok());

  spec = ParseWorkloadText("", "x.wl");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(CompileWorkload(spec.value()).ok());  // no phases
}

TEST(WorkloadCompile, DoubleCompileIsByteIdentical) {
  util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(kFullSpec, "full.wl");
  ASSERT_TRUE(spec.ok());
  util::StatusOr<CompiledWorkload> first = CompileWorkload(spec.value());
  util::StatusOr<CompiledWorkload> second = CompileWorkload(spec.value());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(CompiledDebugString(first.value()),
            CompiledDebugString(second.value()));
}

TEST(WorkloadCompile, StreamsAreKeyedByPhaseNameNotPosition) {
  // Renaming (or resizing) one phase must not disturb another phase's
  // schedule: streams are derived from (seed, phase name, submitter).
  auto compile = [](const char* text) {
    util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(text, "x.wl");
    EXPECT_TRUE(spec.ok());
    util::StatusOr<CompiledWorkload> compiled = CompileWorkload(spec.value());
    EXPECT_TRUE(compiled.ok());
    return std::move(compiled.value());
  };
  CompiledWorkload a =
      compile("phase keep {\n}\nphase other {\n  submitters 1\n}\n");
  CompiledWorkload b =
      compile("phase renamed {\n  submitters 6\n}\nphase keep {\n}\n");
  const CompiledPhase* keep_a = &a.phases[0];
  const CompiledPhase* keep_b = &b.phases[1];
  ASSERT_EQ(keep_a->name, "keep");
  ASSERT_EQ(keep_b->name, "keep");
  ASSERT_EQ(keep_a->submitters.size(), keep_b->submitters.size());
  for (size_t s = 0; s < keep_a->submitters.size(); ++s) {
    ASSERT_EQ(keep_a->submitters[s].ops.size(),
              keep_b->submitters[s].ops.size());
    for (size_t i = 0; i < keep_a->submitters[s].ops.size(); ++i) {
      EXPECT_EQ(keep_a->submitters[s].ops[i].instance_seed,
                keep_b->submitters[s].ops[i].instance_seed);
    }
  }
}

}  // namespace
}  // namespace rdbsc::wl
