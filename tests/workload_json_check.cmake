# ctest helper (see tests/CMakeLists.txt `workload_json_check`): replays a
# declarative workload through the run_workload example with --out, then
# validates the emitted results document with tools/check_bench_json.py.
# Variables: RUN_WORKLOAD, WORKLOAD, CHECKER, PYTHON, OUT.

execute_process(
  COMMAND ${RUN_WORKLOAD} --workload=${WORKLOAD} --threads=2 --dilation=0
          --out=${OUT}
  RESULT_VARIABLE replay_rc)
if(NOT replay_rc EQUAL 0)
  message(FATAL_ERROR "run_workload --workload=${WORKLOAD} exited ${replay_rc}")
endif()

execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_bench_json.py rejected ${OUT} (exit ${check_rc})")
endif()
