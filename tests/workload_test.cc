#include "gen/workload.h"

#include <cmath>

#include "gen/trajectory.h"
#include "geo/angle.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace rdbsc::gen {
namespace {

TEST(WorkloadTest, GeneratesRequestedCounts) {
  WorkloadConfig config;
  config.num_tasks = 123;
  config.num_workers = 77;
  core::Instance instance = GenerateInstance(config);
  EXPECT_EQ(instance.num_tasks(), 123);
  EXPECT_EQ(instance.num_workers(), 77);
  EXPECT_TRUE(instance.Validate().ok());
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadConfig config;
  config.num_tasks = 50;
  config.num_workers = 50;
  config.seed = 42;
  core::Instance a = GenerateInstance(config);
  core::Instance b = GenerateInstance(config);
  for (int i = 0; i < a.num_tasks(); ++i) {
    EXPECT_EQ(a.task(i).location.x, b.task(i).location.x);
    EXPECT_EQ(a.task(i).start, b.task(i).start);
  }
  for (int j = 0; j < a.num_workers(); ++j) {
    EXPECT_EQ(a.worker(j).confidence, b.worker(j).confidence);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig a_config, b_config;
  a_config.num_tasks = b_config.num_tasks = 20;
  a_config.num_workers = b_config.num_workers = 0;
  a_config.seed = 1;
  b_config.seed = 2;
  core::Instance a = GenerateInstance(a_config);
  core::Instance b = GenerateInstance(b_config);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    any_diff |= a.task(i).location.x != b.task(i).location.x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, RespectsParameterRanges) {
  WorkloadConfig config;
  config.num_tasks = 300;
  config.num_workers = 300;
  config.rt_min = 0.5;
  config.rt_max = 1.0;
  config.p_min = 0.85;
  config.p_max = 0.95;
  config.v_min = 0.1;
  config.v_max = 0.2;
  config.beta_min = 0.2;
  config.beta_max = 0.4;
  config.angle_range = 0.5;
  core::Instance instance = GenerateInstance(config);
  for (int i = 0; i < instance.num_tasks(); ++i) {
    const core::Task& t = instance.task(i);
    EXPECT_GE(t.Duration(), 0.5);
    EXPECT_LE(t.Duration(), 1.0);
    EXPECT_GE(t.beta, 0.2);
    EXPECT_LE(t.beta, 0.4);
    EXPECT_GE(t.location.x, 0.0);
    EXPECT_LE(t.location.x, 1.0);
  }
  for (int j = 0; j < instance.num_workers(); ++j) {
    const core::Worker& w = instance.worker(j);
    EXPECT_GE(w.confidence, 0.85);
    EXPECT_LE(w.confidence, 0.95);
    EXPECT_GE(w.velocity, 0.1);
    EXPECT_LE(w.velocity, 0.2);
    EXPECT_LE(w.direction.width(), 0.5 + 1e-9);
  }
}

TEST(WorkloadTest, SkewedConcentratesAroundCenter) {
  WorkloadConfig config;
  config.num_tasks = 2'000;
  config.num_workers = 0;
  config.task_distribution = SpatialDistribution::kSkewed;
  core::Instance instance = GenerateInstance(config);
  int near_center = 0;
  for (int i = 0; i < instance.num_tasks(); ++i) {
    if (geo::Distance(instance.task(i).location, {0.5, 0.5}) < 0.45) {
      ++near_center;
    }
  }
  // 90% cluster with sigma 0.2: the 0.45-ball holds the bulk of the mass.
  EXPECT_GT(near_center, 1'500);
}

TEST(WorkloadTest, CheckInsSpreadOverHorizon) {
  WorkloadConfig config;
  config.num_tasks = 0;
  config.num_workers = 500;
  config.start_max = 10.0;
  core::Instance instance = GenerateInstance(config);
  int early = 0;
  for (int j = 0; j < instance.num_workers(); ++j) {
    double t = instance.worker(j).available_from;
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 10.0);
    if (t < 5.0) ++early;
  }
  EXPECT_GT(early, 150);  // roughly uniform halves
  EXPECT_LT(early, 350);
}

TEST(WorkloadTest, GaussianStartTimesConcentrateAtMidpoint) {
  WorkloadConfig uniform_config, gaussian_config;
  uniform_config.num_tasks = gaussian_config.num_tasks = 1'000;
  uniform_config.num_workers = gaussian_config.num_workers = 0;
  uniform_config.start_max = gaussian_config.start_max = 12.0;
  gaussian_config.start_distribution = TimeDistribution::kGaussian;
  int center_uniform = 0, center_gaussian = 0;
  core::Instance u = GenerateInstance(uniform_config);
  core::Instance g = GenerateInstance(gaussian_config);
  for (int i = 0; i < 1'000; ++i) {
    if (std::fabs(u.task(i).start - 6.0) < 2.0) ++center_uniform;
    if (std::fabs(g.task(i).start - 6.0) < 2.0) ++center_gaussian;
    EXPECT_GE(g.task(i).start, 0.0);
    EXPECT_LE(g.task(i).start, 12.0);
  }
  EXPECT_GT(center_gaussian, center_uniform + 100);
}

TEST(SampleTimeTest, RespectsBounds) {
  util::Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    double u = SampleTime(TimeDistribution::kUniform, 2.0, 3.0, rng);
    double g = SampleTime(TimeDistribution::kGaussian, 2.0, 3.0, rng);
    EXPECT_GE(u, 2.0);
    EXPECT_LE(u, 3.0);
    EXPECT_GE(g, 2.0);
    EXPECT_LE(g, 3.0);
  }
}

TEST(TrajectoryTest, GeneratesRequestedTaxis) {
  TrajectoryConfig config;
  config.num_taxis = 25;
  std::vector<Trajectory> traces = GenerateTrajectories(config);
  ASSERT_EQ(traces.size(), 25u);
  for (const Trajectory& t : traces) {
    EXPECT_EQ(t.points.size(), t.times.size());
    EXPECT_GE(t.points.size(), 2u);
    // Times strictly ordered (taxis move forward in time).
    for (size_t i = 1; i < t.times.size(); ++i) {
      EXPECT_GE(t.times[i], t.times[i - 1]);
    }
  }
}

TEST(TrajectoryTest, WorkerDerivationMatchesPaperRecipe) {
  Trajectory trace;
  trace.points = {{0.5, 0.5}, {0.6, 0.5}, {0.6, 0.6}};
  trace.times = {0.0, 1.0, 2.0};
  core::Worker w = WorkerFromTrajectory(trace, 0.9);
  EXPECT_EQ(w.location.x, 0.5);
  EXPECT_EQ(w.location.y, 0.5);
  EXPECT_NEAR(w.velocity, 0.1, 1e-12);  // 0.2 distance over 2 hours
  EXPECT_DOUBLE_EQ(w.confidence, 0.9);
  // The sector must contain the bearings to both later points.
  EXPECT_TRUE(w.direction.Contains(geo::Bearing({0.5, 0.5}, {0.6, 0.5})));
  EXPECT_TRUE(w.direction.Contains(geo::Bearing({0.5, 0.5}, {0.6, 0.6})));
}

TEST(TrajectoryTest, SectorContainsAllBearingsProperty) {
  TrajectoryConfig config;
  config.num_taxis = 40;
  config.seed = 3;
  for (const Trajectory& trace : GenerateTrajectories(config)) {
    core::Worker w = WorkerFromTrajectory(trace, 0.9);
    for (size_t i = 1; i < trace.points.size(); ++i) {
      if (trace.points[i] == w.location) continue;
      EXPECT_TRUE(
          w.direction.Contains(geo::Bearing(w.location, trace.points[i])));
    }
  }
}

TEST(TrajectoryTest, StationaryTraceGetsFallbackSpeed) {
  Trajectory trace;
  trace.points = {{0.5, 0.5}, {0.5, 0.5}};
  trace.times = {0.0, 1.0};
  core::Worker w = WorkerFromTrajectory(trace, 0.8);
  EXPECT_GT(w.velocity, 0.0);
}

TEST(PoiTest, PoisInUnitSquare) {
  PoiConfig config;
  config.num_pois = 500;
  for (const geo::Point& p : GeneratePois(config)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(RealWorkloadTest, BuildsValidInstance) {
  RealWorkloadConfig config;
  config.num_tasks = 80;
  config.poi.num_pois = 300;
  config.trajectory.num_taxis = 60;
  core::Instance instance = GenerateRealInstance(config);
  EXPECT_EQ(instance.num_tasks(), 80);
  EXPECT_EQ(instance.num_workers(), 60);
  EXPECT_TRUE(instance.Validate().ok());
  for (int i = 0; i < instance.num_tasks(); ++i) {
    EXPECT_GE(instance.task(i).Duration(), config.rt_min - 1e-9);
    EXPECT_LE(instance.task(i).Duration(), config.rt_max + 1e-9);
  }
  for (int j = 0; j < instance.num_workers(); ++j) {
    EXPECT_GE(instance.worker(j).confidence, config.p_min);
    EXPECT_LE(instance.worker(j).confidence, config.p_max);
  }
}

TEST(RealWorkloadTest, TaskCountCappedByPois) {
  RealWorkloadConfig config;
  config.num_tasks = 1'000;
  config.poi.num_pois = 50;
  config.trajectory.num_taxis = 5;
  core::Instance instance = GenerateRealInstance(config);
  EXPECT_EQ(instance.num_tasks(), 50);
}

}  // namespace
}  // namespace rdbsc::gen
