#ifndef RDBSC_TESTS_TEST_UTIL_H_
#define RDBSC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/assignment.h"
#include "core/instance.h"
#include "gen/workload.h"
#include "gtest/gtest.h"

namespace rdbsc::test {

/// A small random instance for solver tests (sizes keep every solver in
/// milliseconds while still exercising non-trivial candidate graphs).
inline core::Instance SmallInstance(uint64_t seed, int num_tasks = 12,
                                    int num_workers = 30) {
  gen::WorkloadConfig config;
  config.num_tasks = num_tasks;
  config.num_workers = num_workers;
  config.seed = seed;
  // Wide cones and long periods so the candidate graph is dense enough to
  // make assignment choices interesting.
  config.angle_range = 3.14159;
  config.start_min = 0.0;
  config.start_max = 2.0;
  config.rt_min = 2.0;
  config.rt_max = 4.0;
  config.v_min = 0.3;
  config.v_max = 0.6;
  return gen::GenerateInstance(config);
}

/// Asserts that `assignment` only uses valid pairs of `graph` and assigns
/// every worker at most once (the RDB-SC feasibility conditions).
inline void ExpectFeasible(const core::Instance& instance,
                           const core::CandidateGraph& graph,
                           const core::Assignment& assignment) {
  ASSERT_EQ(assignment.num_workers(), instance.num_workers());
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    core::TaskId i = assignment.TaskOf(j);
    if (i == core::kNoTask) continue;
    ASSERT_GE(i, 0);
    ASSERT_LT(i, instance.num_tasks());
    const auto& tasks = graph.TasksOf(j);
    EXPECT_NE(std::find(tasks.begin(), tasks.end(), i), tasks.end())
        << "worker " << j << " assigned to invalid task " << i;
  }
}

/// Builds a task with the given diversity weight and period.
inline core::Task MakeTask(double beta = 0.5, double start = 0.0,
                           double end = 1.0) {
  core::Task t;
  t.location = {0.5, 0.5};
  t.start = start;
  t.end = end;
  t.beta = beta;
  return t;
}

/// Builds an observation literal.
inline core::Observation Obs(double angle, double arrival,
                             double confidence) {
  return core::Observation{.angle = angle,
                           .arrival = arrival,
                           .confidence = confidence};
}

}  // namespace rdbsc::test

#endif  // RDBSC_TESTS_TEST_UTIL_H_
