#ifndef RDBSC_TESTS_STRESS_UTIL_H_
#define RDBSC_TESTS_STRESS_UTIL_H_

// Deterministic stress-harness pieces for the async admission server
// (genny-style: a workload is a *scripted* arrival schedule generated from
// one seed, so a run can be replayed bit for bit). A StressScript lists,
// per scripted submitter thread, which instances it submits in which
// order; ReplayScript plays it against a live engine::Server from real
// concurrent threads and folds every ticket's outcome into a canonical
// fingerprint string ordered by (submitter, arrival index) -- independent
// of scheduling -- so two replays can be compared with a single EXPECT_EQ.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "engine/fingerprint.h"
#include "engine/server.h"
#include "gen/workload.h"
#include "test_util.h"
#include "util/rng.h"

namespace rdbsc::test {

/// One scripted submission.
struct StressArrival {
  uint64_t instance_seed = 0;
  int num_tasks = 0;
  int num_workers = 0;
  int priority = 0;
};

/// The full schedule: arrivals[s] is the ordered submission list of
/// scripted submitter thread s.
struct StressScript {
  std::vector<std::vector<StressArrival>> arrivals;
};

/// Draws a schedule from one seed: instance sizes, seeds, and priorities
/// all come from the same deterministic stream.
inline StressScript MakeStressScript(uint64_t seed, int num_submitters,
                                     int arrivals_per_submitter) {
  util::Rng rng(seed);
  StressScript script;
  script.arrivals.resize(num_submitters);
  for (int s = 0; s < num_submitters; ++s) {
    script.arrivals[s].reserve(arrivals_per_submitter);
    for (int a = 0; a < arrivals_per_submitter; ++a) {
      StressArrival arrival;
      arrival.instance_seed = static_cast<uint64_t>(rng.UniformInt(1, 1'000'000));
      arrival.num_tasks = static_cast<int>(rng.UniformInt(6, 18));
      arrival.num_workers = static_cast<int>(rng.UniformInt(10, 40));
      arrival.priority = static_cast<int>(rng.UniformInt(0, 3));
      script.arrivals[s].push_back(arrival);
    }
  }
  return script;
}

/// The instance a scripted arrival stands for (same generator the solver
/// tests use, sized by the script).
inline core::Instance StressInstance(const StressArrival& arrival) {
  return SmallInstance(arrival.instance_seed, arrival.num_tasks,
                       arrival.num_workers);
}

// The harness's historical test-only Fingerprint/HexBits helpers were
// promoted to engine::ResultFingerprint (engine/fingerprint.h) with a
// byte-for-byte identical format; call that directly so the tests and the
// library agree on what result identity means.

/// Plays `script` against a fresh server built from `config` (its
/// num_workers overridden to `num_workers`): one real thread per scripted
/// submitter, each submitting its arrivals in order and waiting for every
/// ticket. Returns the fingerprints in script order, which is the same
/// for every interleaving -- so the caller compares replays directly.
inline std::vector<std::string> ReplayScript(const StressScript& script,
                                             engine::ServerConfig config,
                                             int num_workers) {
  config.num_workers = num_workers;
  std::unique_ptr<engine::Server> server =
      std::move(engine::Server::Create(std::move(config)).value());

  const int num_submitters = static_cast<int>(script.arrivals.size());
  std::vector<std::vector<std::string>> prints(num_submitters);
  std::vector<std::thread> submitters;
  submitters.reserve(num_submitters);
  for (int s = 0; s < num_submitters; ++s) {
    submitters.emplace_back([&, s] {
      const std::vector<StressArrival>& mine = script.arrivals[s];
      std::vector<engine::Ticket> tickets;
      tickets.reserve(mine.size());
      for (const StressArrival& arrival : mine) {
        engine::SubmitControls controls;
        controls.priority = arrival.priority;
        tickets.push_back(
            server->Submit(StressInstance(arrival), controls).value());
      }
      prints[s].reserve(tickets.size());
      for (const engine::Ticket& ticket : tickets) {
        prints[s].push_back(engine::ResultFingerprint(ticket.Wait()));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  server->Shutdown(engine::ShutdownMode::kDrain);

  std::vector<std::string> flat;
  for (const std::vector<std::string>& per : prints) {
    flat.insert(flat.end(), per.begin(), per.end());
  }
  return flat;
}

}  // namespace rdbsc::test

#endif  // RDBSC_TESTS_STRESS_UTIL_H_
