// Fuzz-lite property test for the workload pipeline: seeded mutations of
// valid spec texts are thrown at the parser and compiler. Every mutant
// must land in one of three buckets -- parse error with a positioned
// message, compile error, or a schedule that two independent Compile
// calls render byte-identically. Nothing may crash, hang, or produce a
// diverging schedule; the compile caps in wl/compile.h are what bound
// runtime for adversarial-but-parseable inputs.

#include <cctype>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "wl/compile.h"
#include "wl/spec.h"

namespace rdbsc::wl {
namespace {

const char* const kSeedTexts[] = {
    // A broad closed/open mix exercising most keys.
    "workload fuzz\n"
    "seed 3\n"
    "solver dc\n"
    "policy block\n"
    "queue_depth 16\n"
    "cache rw\n"
    "cache_entries 64 16\n"
    "template base {\n"
    "  submitters 2\n"
    "  tasks 4 8\n"
    "  workers 8 12\n"
    "  mix submit 2 urgent 1\n"
    "}\n"
    "phase a extends base {\n"
    "  iterations 3\n"
    "  priority 0 4\n"
    "  dist skewed\n"
    "}\n"
    "phase b {\n"
    "  mode open\n"
    "  rate 40\n"
    "  duration 0.2\n"
    "  arrival poisson\n"
    "  mix cached 1 cancel 1\n"
    "}\n",
    // Minimal.
    "phase only {\n  iterations 2\n}\n",
    // Reject policy at the capacity edge plus a restart phase.
    "policy reject\n"
    "queue_depth 4\n"
    "phase edge {\n"
    "  submitters 4\n"
    "  iterations 2\n"
    "  mix submit 3 cancel 1\n"
    "}\n"
    "phase again extends edge {\n"
    "  restart on\n"
    "}\n",
};

// Tokens the inserter splices in: valid keywords, numbers, and junk.
const char* const kVocabulary[] = {
    "phase",  "template", "extends", "mix",     "submit",   "cancel",
    "urgent", "cached",   "mode",    "open",    "closed",   "rate",
    "{",      "}",        "#",       "\"x\"",   "include",  "seed",
    "0",      "1",        "99999",   "-3",      "1e9",      "nan",
    "policy", "reject",   "tasks",   "workers", "duration", "zzz",
};

std::string Mutate(const std::string& base, util::Rng& rng) {
  std::string text = base;
  int edits = static_cast<int>(rng.UniformInt(1, 4));
  for (int edit = 0; edit < edits && !text.empty(); ++edit) {
    switch (rng.UniformInt(0, 4)) {
      case 0: {  // flip one byte to a random printable (or newline)
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
        text[at] = static_cast<char>(
            rng.Bernoulli(0.1) ? '\n' : rng.UniformInt(' ', '~'));
        break;
      }
      case 1: {  // insert a vocabulary token at a random position
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size())));
        const char* token = kVocabulary[rng.UniformInt(
            0, static_cast<int64_t>(std::size(kVocabulary)) - 1)];
        text.insert(at, std::string(" ") + token + " ");
        break;
      }
      case 2: {  // delete a random span
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
        size_t len = static_cast<size_t>(rng.UniformInt(1, 12));
        text.erase(at, len);
        break;
      }
      case 3: {  // duplicate a random line
        std::vector<std::string> lines;
        size_t start = 0;
        while (start <= text.size()) {
          size_t end = text.find('\n', start);
          if (end == std::string::npos) end = text.size();
          lines.push_back(text.substr(start, end - start));
          start = end + 1;
        }
        size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
        lines.insert(lines.begin() + pick, lines[pick]);
        text.clear();
        for (const std::string& line : lines) text += line + "\n";
        break;
      }
      default: {  // truncate
        text.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(text.size()))));
        break;
      }
    }
  }
  return text;
}

TEST(WorkloadFuzz, MutantsParseErrorCleanlyOrCompileDeterministically) {
  int parsed = 0;
  int compiled_ok = 0;
  int rejected = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    util::Rng rng(0x5eed0000 + seed);
    const std::string base =
        kSeedTexts[seed % std::size(kSeedTexts)];
    std::string text = Mutate(base, rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ":\n" + text);

    util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(text, "fuzz.wl");
    if (!spec.ok()) {
      // Errors must be positioned and non-empty -- "fuzz.wl:LINE:COL: ..."
      // (include errors carry the includer's position the same way).
      EXPECT_NE(spec.status().message().find("fuzz.wl:"), std::string::npos)
          << spec.status().message();
      ++rejected;
      continue;
    }
    ++parsed;

    util::StatusOr<CompiledWorkload> first = CompileWorkload(spec.value());
    util::StatusOr<CompiledWorkload> second = CompileWorkload(spec.value());
    ASSERT_EQ(first.ok(), second.ok());
    if (!first.ok()) {
      EXPECT_FALSE(first.status().message().empty());
      EXPECT_EQ(first.status().message(), second.status().message());
      continue;
    }
    ++compiled_ok;
    EXPECT_LE(first.value().total_ops, kMaxTotalOps);
    EXPECT_EQ(CompiledDebugString(first.value()),
              CompiledDebugString(second.value()));
  }
  // The mutator must actually exercise both sides of the contract; if one
  // of these trips, the corpus or mutation rates need rebalancing.
  EXPECT_GT(parsed, 20) << "mutator too destructive";
  EXPECT_GT(rejected, 20) << "mutator too gentle";
  EXPECT_GT(compiled_ok, 5);
}

TEST(WorkloadFuzz, ParsedSpecsRoundTripThroughDump) {
  // Any mutant that parses must also survive the canonical printer:
  // parse(dump(spec)) succeeds and dumps identically (dump is a fixed
  // point), even for specs the compiler rejects.
  for (uint64_t seed = 0; seed < 150; ++seed) {
    util::Rng rng(0xd00d0000 + seed);
    std::string text = Mutate(kSeedTexts[seed % std::size(kSeedTexts)], rng);
    util::StatusOr<WorkloadSpec> spec = ParseWorkloadText(text, "fuzz.wl");
    if (!spec.ok()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed) + ":\n" + text);
    std::string dump = DumpSpec(spec.value());
    util::StatusOr<WorkloadSpec> reparsed =
        ParseWorkloadText(dump, "fuzz.wl");
    ASSERT_TRUE(reparsed.ok())
        << "dump of a parsed spec failed to reparse: "
        << reparsed.status().message() << "\n"
        << dump;
    EXPECT_EQ(DumpSpec(reparsed.value()), dump);
  }
}

}  // namespace
}  // namespace rdbsc::wl
