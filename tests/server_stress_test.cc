// Tentpole acceptance for the async admission server: a seeded, scripted
// arrival schedule (genny-style, see stress_util.h) replayed by real
// concurrent submitter threads must produce bit-identical per-ticket
// results across {1, 2, 8} dispatch workers and across reruns. Worker
// count and scheduling may only change wall-clock time, never answers --
// the PR-3 determinism contract extended to the async layer.

#include <cstdint>
#include <string>
#include <vector>

#include "engine/server.h"
#include "gtest/gtest.h"
#include "sim/platform.h"
#include "stress_util.h"

namespace rdbsc {
namespace {

using test::MakeStressScript;
using test::ReplayScript;
using test::StressScript;

engine::ServerConfig StressConfig(const std::string& solver_name) {
  engine::ServerConfig config;
  config.engine.solver_name = solver_name;
  config.engine.solver_options.seed = 99;
  // Generated instances are valid by construction; skip re-validation.
  config.engine.validate_instances = false;
  // kBlock with ample depth: no request is ever rejected or shed, so the
  // outcome set is exactly the scripted set (shedding depends on timing
  // and would make the replay outcome scheduling-dependent).
  config.max_queue_depth = 256;
  config.overload_policy = engine::OverloadPolicy::kBlock;
  return config;
}

TEST(ServerStressTest, BitIdenticalAcrossWorkerCountsDC) {
  StressScript script = MakeStressScript(/*seed=*/2026, /*num_submitters=*/4,
                                         /*arrivals_per_submitter=*/6);
  std::vector<std::string> baseline =
      ReplayScript(script, StressConfig("dc"), /*num_workers=*/1);
  ASSERT_EQ(baseline.size(), 24u);
  for (const std::string& print : baseline) {
    EXPECT_EQ(print.rfind("code=0;", 0), 0u) << print;
  }
  for (int workers : {1, 2, 8}) {
    std::vector<std::string> replay =
        ReplayScript(script, StressConfig("dc"), workers);
    EXPECT_EQ(replay, baseline) << workers << " workers";
  }
}

TEST(ServerStressTest, BitIdenticalAcrossWorkerCountsSampling) {
  StressScript script = MakeStressScript(/*seed=*/515, /*num_submitters=*/3,
                                         /*arrivals_per_submitter=*/5);
  std::vector<std::string> baseline =
      ReplayScript(script, StressConfig("sampling"), /*num_workers=*/1);
  ASSERT_EQ(baseline.size(), 15u);
  for (int workers : {2, 8}) {
    std::vector<std::string> replay =
        ReplayScript(script, StressConfig("sampling"), workers);
    EXPECT_EQ(replay, baseline) << workers << " workers";
  }
}

TEST(ServerStressTest, RerunOfSameScriptIsBitIdentical) {
  StressScript script = MakeStressScript(/*seed=*/77, /*num_submitters=*/2,
                                         /*arrivals_per_submitter=*/8);
  std::vector<std::string> first =
      ReplayScript(script, StressConfig("greedy"), /*num_workers=*/8);
  std::vector<std::string> second =
      ReplayScript(script, StressConfig("greedy"), /*num_workers=*/8);
  EXPECT_EQ(first, second);
}

TEST(ServerStressTest, ScriptGenerationIsDeterministic) {
  StressScript a = MakeStressScript(11, 3, 4);
  StressScript b = MakeStressScript(11, 3, 4);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (size_t s = 0; s < a.arrivals.size(); ++s) {
    ASSERT_EQ(a.arrivals[s].size(), b.arrivals[s].size());
    for (size_t i = 0; i < a.arrivals[s].size(); ++i) {
      EXPECT_EQ(a.arrivals[s][i].instance_seed, b.arrivals[s][i].instance_seed);
      EXPECT_EQ(a.arrivals[s][i].num_tasks, b.arrivals[s][i].num_tasks);
      EXPECT_EQ(a.arrivals[s][i].num_workers, b.arrivals[s][i].num_workers);
      EXPECT_EQ(a.arrivals[s][i].priority, b.arrivals[s][i].priority);
    }
  }
  StressScript c = MakeStressScript(12, 3, 4);
  EXPECT_NE(a.arrivals[0][0].instance_seed, c.arrivals[0][0].instance_seed);
}

// The platform's server mode rides the same contract: driving every tick
// through the admission server must reproduce the inline trajectory bit
// for bit, at any worker count.
TEST(ServerStressTest, PlatformServerModeMatchesInline) {
  sim::PlatformConfig config;
  config.num_sites = 6;
  config.num_workers = 12;
  config.solver_name = "dc";
  config.seed = 77;
  sim::PlatformResult inline_run = sim::Platform(config).Run().value();
  for (int workers : {1, 4}) {
    config.server_workers = workers;
    sim::PlatformResult served = sim::Platform(config).Run().value();
    EXPECT_EQ(served.assignments_made, inline_run.assignments_made);
    EXPECT_EQ(served.answers_received, inline_run.answers_received);
    EXPECT_DOUBLE_EQ(served.final_objectives.total_std,
                     inline_run.final_objectives.total_std);
    EXPECT_DOUBLE_EQ(served.final_objectives.min_reliability,
                     inline_run.final_objectives.min_reliability);
    EXPECT_DOUBLE_EQ(served.mean_accuracy_error,
                     inline_run.mean_accuracy_error);
  }
}

}  // namespace
}  // namespace rdbsc
