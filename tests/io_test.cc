#include "io/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "geo/angle.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace rdbsc::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(CsvTest, TaskRoundTrip) {
  core::Instance instance = rdbsc::test::SmallInstance(1, 20, 0);
  std::string path = TempPath("tasks_rt.csv");
  ASSERT_TRUE(WriteTasksCsv(path, instance.tasks()).ok());
  auto read = ReadTasksCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), instance.tasks().size());
  for (size_t i = 0; i < read.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(read.value()[i].location.x,
                     instance.tasks()[i].location.x);
    EXPECT_DOUBLE_EQ(read.value()[i].start, instance.tasks()[i].start);
    EXPECT_DOUBLE_EQ(read.value()[i].end, instance.tasks()[i].end);
    EXPECT_DOUBLE_EQ(read.value()[i].beta, instance.tasks()[i].beta);
  }
}

TEST(CsvTest, WorkerRoundTripIncludingCones) {
  core::Instance instance = rdbsc::test::SmallInstance(2, 0, 25);
  std::vector<core::Worker> workers = instance.workers();
  workers[0].direction = geo::AngularInterval::FullCircle();
  workers[1].direction = geo::AngularInterval(6.0, 0.4);  // seam-crossing
  workers[2].available_from = 3.25;
  std::string path = TempPath("workers_rt.csv");
  ASSERT_TRUE(WriteWorkersCsv(path, workers).ok());
  auto read = ReadWorkersCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), workers.size());
  for (size_t j = 0; j < workers.size(); ++j) {
    EXPECT_DOUBLE_EQ(read.value()[j].velocity, workers[j].velocity);
    EXPECT_DOUBLE_EQ(read.value()[j].confidence, workers[j].confidence);
    EXPECT_DOUBLE_EQ(read.value()[j].available_from,
                     workers[j].available_from);
    EXPECT_NEAR(read.value()[j].direction.lo(), workers[j].direction.lo(),
                1e-12);
    EXPECT_NEAR(read.value()[j].direction.width(),
                workers[j].direction.width(), 1e-9);
  }
}

TEST(CsvTest, AssignmentRoundTrip) {
  core::Assignment assignment(5);
  assignment.Assign(0, 2);
  assignment.Assign(3, 1);
  std::string path = TempPath("assignment_rt.csv");
  ASSERT_TRUE(WriteAssignmentCsv(path, assignment).ok());
  auto read = ReadAssignmentCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().num_workers(), 5);
  for (core::WorkerId j = 0; j < 5; ++j) {
    EXPECT_EQ(read.value().TaskOf(j), assignment.TaskOf(j));
  }
}

TEST(CsvTest, InstanceRoundTripPreservesValidPairs) {
  core::Instance instance = rdbsc::test::SmallInstance(3, 15, 30);
  std::string tasks_path = TempPath("inst_tasks.csv");
  std::string workers_path = TempPath("inst_workers.csv");
  ASSERT_TRUE(WriteTasksCsv(tasks_path, instance.tasks()).ok());
  ASSERT_TRUE(WriteWorkersCsv(workers_path, instance.workers()).ok());
  auto loaded = ReadInstanceCsv(tasks_path, workers_path);
  ASSERT_TRUE(loaded.ok());
  core::CandidateGraph original = core::CandidateGraph::Build(instance);
  core::CandidateGraph reloaded =
      core::CandidateGraph::Build(loaded.value());
  ASSERT_EQ(original.NumEdges(), reloaded.NumEdges());
  for (core::WorkerId j = 0; j < instance.num_workers(); ++j) {
    EXPECT_TRUE(std::ranges::equal(original.TasksOf(j), reloaded.TasksOf(j)))
        << "worker " << j;
  }
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadTasksCsv("/nonexistent/nope.csv").status().code(),
            util::StatusCode::kNotFound);
}

TEST(CsvTest, WrongColumnCountRejected) {
  std::string path = TempPath("bad_cols.csv");
  WriteFile(path, "x,y,start,end,beta\n0.1,0.2,0.3\n");
  auto read = ReadTasksCsv(path);
  EXPECT_EQ(read.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CsvTest, MalformedNumberRejectedWithLine) {
  std::string path = TempPath("bad_num.csv");
  WriteFile(path, "x,y,start,end,beta\n0.1,0.2,0.3,0.4,0.5\n0.1,oops,0,1,0.5\n");
  auto read = ReadTasksCsv(path);
  ASSERT_EQ(read.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, EmptyBodyGivesEmptyVector) {
  std::string path = TempPath("empty.csv");
  WriteFile(path, "x,y,start,end,beta\n");
  auto read = ReadTasksCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST(CsvTest, InvalidInstanceRejectedOnLoad) {
  std::string tasks_path = TempPath("bad_inst_tasks.csv");
  std::string workers_path = TempPath("bad_inst_workers.csv");
  WriteFile(tasks_path, "x,y,start,end,beta\n0.5,0.5,2.0,1.0,0.5\n");  // end<start
  WriteFile(workers_path,
            "x,y,velocity,dir_lo,dir_hi,confidence,available_from\n");
  auto loaded = ReadInstanceCsv(tasks_path, workers_path);
  EXPECT_FALSE(loaded.ok());
}

TEST(CsvTest, AssignmentOutOfRangeWorkerRejected) {
  std::string path = TempPath("bad_assign.csv");
  WriteFile(path, "worker,task\n0,1\n7,2\n");
  auto read = ReadAssignmentCsv(path);
  EXPECT_EQ(read.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rdbsc::io
