#include "core/assignment.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace rdbsc::core {
namespace {

TEST(DominatesTest, StrictAndTiedCases) {
  ObjectiveValue a{.min_reliability = 0.9, .total_std = 10.0};
  ObjectiveValue b{.min_reliability = 0.8, .total_std = 9.0};
  ObjectiveValue c{.min_reliability = 0.9, .total_std = 9.0};
  ObjectiveValue d{.min_reliability = 0.8, .total_std = 11.0};
  EXPECT_TRUE(Dominates(a, b));
  EXPECT_TRUE(Dominates(a, c));   // tie on one axis, better on the other
  EXPECT_FALSE(Dominates(b, a));
  EXPECT_FALSE(Dominates(a, a));  // no self-domination
  EXPECT_FALSE(Dominates(a, d));  // incomparable
  EXPECT_FALSE(Dominates(d, a));
}

TEST(AssignmentTest, AssignUnassignRoundTrip) {
  Assignment assignment(5);
  EXPECT_EQ(assignment.TaskOf(2), kNoTask);
  assignment.Assign(2, 7);
  EXPECT_EQ(assignment.TaskOf(2), 7);
  EXPECT_EQ(assignment.NumAssigned(), 1);
  assignment.Unassign(2);
  EXPECT_EQ(assignment.TaskOf(2), kNoTask);
  EXPECT_EQ(assignment.NumAssigned(), 0);
}

TEST(AssignmentTest, TaskGroupsInvertsMapping) {
  Assignment assignment(4);
  assignment.Assign(0, 1);
  assignment.Assign(1, 1);
  assignment.Assign(3, 0);
  auto groups = assignment.TaskGroups(3);
  EXPECT_EQ(groups[0], std::vector<WorkerId>{3});
  EXPECT_EQ(groups[1], (std::vector<WorkerId>{0, 1}));
  EXPECT_TRUE(groups[2].empty());
}

TEST(AssignmentStateTest, EmptyStateObjectives) {
  Instance instance = test::SmallInstance(1);
  AssignmentState state(instance);
  EXPECT_DOUBLE_EQ(state.Objectives().min_reliability, 0.0);
  EXPECT_DOUBLE_EQ(state.Objectives().total_std, 0.0);
  EXPECT_DOUBLE_EQ(state.MinReducedReliabilityAllTasks(), 0.0);
}

TEST(AssignmentStateTest, SingleAddMatchesWorkerConfidence) {
  Instance instance = test::SmallInstance(2);
  AssignmentState state(instance);
  state.Add(0, 0);
  // Only one non-empty task: min reliability equals that worker's p.
  EXPECT_NEAR(state.Objectives().min_reliability,
              instance.worker(0).confidence, 1e-9);
  EXPECT_EQ(state.TaskOf(0), 0);
}

TEST(AssignmentStateTest, AddRemoveIsIdentity) {
  Instance instance = test::SmallInstance(3);
  AssignmentState state(instance);
  state.Add(1, 2);
  state.Add(1, 3);
  double r_before = state.TaskReducedReliability(1);
  double std_before = state.TaskExpectedStd(1);
  double total_before = state.TotalExpectedStd();

  state.Add(1, 4);
  state.Remove(4);

  EXPECT_NEAR(state.TaskReducedReliability(1), r_before, 1e-9);
  EXPECT_NEAR(state.TaskExpectedStd(1), std_before, 1e-9);
  EXPECT_NEAR(state.TotalExpectedStd(), total_before, 1e-9);
  EXPECT_EQ(state.TaskOf(4), kNoTask);
}

TEST(AssignmentStateTest, RemoveLastWorkerZeroesTask) {
  Instance instance = test::SmallInstance(4);
  AssignmentState state(instance);
  state.Add(2, 1);
  state.Remove(1);
  EXPECT_DOUBLE_EQ(state.TaskReducedReliability(2), 0.0);
  EXPECT_DOUBLE_EQ(state.TaskExpectedStd(2), 0.0);
  EXPECT_DOUBLE_EQ(state.Objectives().min_reliability, 0.0);
}

// Property: incremental maintenance equals from-scratch evaluation.
class IncrementalVsScratchTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalVsScratchTest, StateMatchesEvaluateAssignment) {
  Instance instance = test::SmallInstance(GetParam());
  CandidateGraph graph = CandidateGraph::Build(instance);
  util::Rng rng(GetParam() * 100);

  AssignmentState state(instance);
  Assignment assignment(instance.num_workers());
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    const auto& tasks = graph.TasksOf(j);
    if (tasks.empty() || rng.Bernoulli(0.3)) continue;
    TaskId i = tasks[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(tasks.size()) - 1))];
    state.Add(i, j);
    assignment.Assign(j, i);
  }

  ObjectiveValue incremental = state.Objectives();
  ObjectiveValue scratch = EvaluateAssignment(instance, assignment);
  EXPECT_NEAR(incremental.min_reliability, scratch.min_reliability, 1e-9);
  EXPECT_NEAR(incremental.total_std, scratch.total_std, 1e-9);
}

TEST_P(IncrementalVsScratchTest, RandomAddRemoveChurnStaysConsistent) {
  Instance instance = test::SmallInstance(GetParam() + 50);
  CandidateGraph graph = CandidateGraph::Build(instance);
  util::Rng rng(GetParam() * 31);

  AssignmentState state(instance);
  for (int step = 0; step < 200; ++step) {
    WorkerId j = static_cast<WorkerId>(
        rng.UniformInt(0, instance.num_workers() - 1));
    if (state.TaskOf(j) != kNoTask) {
      state.Remove(j);
    } else if (!graph.TasksOf(j).empty()) {
      const auto& tasks = graph.TasksOf(j);
      state.Add(tasks[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(tasks.size()) - 1))],
                j);
    }
  }
  ObjectiveValue incremental = state.Objectives();
  ObjectiveValue scratch = EvaluateAssignment(instance, state.assignment());
  EXPECT_NEAR(incremental.min_reliability, scratch.min_reliability, 1e-9);
  EXPECT_NEAR(incremental.total_std, scratch.total_std, 1e-9);
}

TEST_P(IncrementalVsScratchTest, PreviewAddMatchesCommit) {
  Instance instance = test::SmallInstance(GetParam() + 99);
  CandidateGraph graph = CandidateGraph::Build(instance);
  util::Rng rng(GetParam() * 7);

  AssignmentState state(instance);
  for (int step = 0; step < 30; ++step) {
    WorkerId j = static_cast<WorkerId>(
        rng.UniformInt(0, instance.num_workers() - 1));
    if (state.TaskOf(j) != kNoTask || graph.TasksOf(j).empty()) continue;
    const auto& tasks = graph.TasksOf(j);
    TaskId i = tasks[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(tasks.size()) - 1))];

    ObjectiveValue preview = state.PreviewAdd(i, j);
    double preview_std = state.PreviewTaskStd(i, j);
    state.Add(i, j);
    EXPECT_NEAR(preview.total_std, state.Objectives().total_std, 1e-9);
    EXPECT_NEAR(preview.min_reliability,
                state.Objectives().min_reliability, 1e-9);
    EXPECT_NEAR(preview_std, state.TaskExpectedStd(i), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsScratchTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AssignmentStateTest, ResetReplaysAssignment) {
  Instance instance = test::SmallInstance(9);
  CandidateGraph graph = CandidateGraph::Build(instance);
  Assignment assignment(instance.num_workers());
  for (WorkerId j = 0; j < instance.num_workers(); ++j) {
    if (!graph.TasksOf(j).empty()) {
      assignment.Assign(j, graph.TasksOf(j).front());
    }
  }
  AssignmentState state(instance);
  state.Add(graph.TasksOf(0).empty() ? 0 : graph.TasksOf(0).front(), 0);
  state.Reset(assignment);
  ObjectiveValue scratch = EvaluateAssignment(instance, assignment);
  EXPECT_NEAR(state.Objectives().total_std, scratch.total_std, 1e-9);
  EXPECT_NEAR(state.Objectives().min_reliability, scratch.min_reliability,
              1e-9);
}

}  // namespace
}  // namespace rdbsc::core
